// Figure 3 (a,b): read-heavy workload (90% contains / 5% insert /
// 5% delete) on ABT and DGT — the regime where eager reservation
// publishing hurts most: reclamation is rare but HP/HE still fence on
// every read, while the POP family reads fence-free.
//
// Scaled to this container; override with POPSMR_BENCH_* (see fig1).
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  struct DsCase {
    const char* ds;
    uint64_t range;
  };
  const DsCase cases[] = {{"ABT", 65536}, {"DGT", 8192}};
  const auto threads = bench_thread_list("1,2,4");
  const auto smrs = bench_smr_list();
  const uint64_t dur = bench_duration_ms(200);

  for (const auto& c : cases) {
    print_table_header(std::string("Figure 3: read-heavy 90c/5i/5d, ") +
                       c.ds + " size " + std::to_string(c.range / 2));
    for (int t : threads) {
      for (const auto& smr : smrs) {
        WorkloadConfig cfg;
        cfg.ds = c.ds;
        cfg.smr = smr;
        cfg.threads = t;
        cfg.key_range = c.range;
        cfg.pct_insert = 5;
        cfg.pct_erase = 5;
        cfg.duration_ms = dur;
        cfg.smr_cfg.retire_threshold = 512;
        print_row(cfg, run_workload(cfg));
      }
    }
  }
  return 0;
}
