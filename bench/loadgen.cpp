// bench_loadgen: the socket loadgen for the networked front end. Replays
// a named scenario's op mixes and key distributions (the same registry
// bench_scenarios sweeps — see src/workload/scenarios.hpp) over M
// connections x P-deep pipelines against a popsmr server, measuring
// END-TO-END latency: encode + socket + epoll + framing + the batched
// map ops + the response path, as a client of a pipelined connection
// experiences it.
//
// Two modes:
//   * in-process (default): each (ds, smr) cell spawns its own NetServer
//     on an ephemeral loopback port, runs the cell, tears it down — the
//     full sweep works in one process with zero setup.
//   * remote (--host set, e.g. --host 127.0.0.1 --port 17979): drives an
//     already-running popsmr_server; one cell, labelled with the local
//     --ds/--smr flags (the wire protocol does not carry the server's).
//
//   bench_loadgen --ds HMHT,RHHT --smr EBR,EpochPOP --connections 4
//                 --pipeline 8 --short --json net.jsonl
//   bench_loadgen --scenario hotspot-churn --connections 16 --pipeline 32
//
// Wire-op mapping from the scenario mix: pct_insert + pct_put -> PUT
// (the wire has no insert-if-absent), pct_erase -> DEL, remainder ->
// GET; plus one PING per connection per phase start. With
// POPSMR_BENCH_JSON set, every cell appends one kind-tagged "net"
// summary row and one "conn" row per connection.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "net/client.hpp"
#include "net/net_jsonl.hpp"
#include "net/server.hpp"
#include "obs/latency_histo.hpp"
#include "obs/obs.hpp"
#include "runtime/env.hpp"
#include "runtime/rng.hpp"
#include "workload/key_dist.hpp"
#include "workload/scenario_engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

struct ConnOutcome {
  service::ConnectionStats stats;
  obs::HistoSnapshot histo;
  bool failed = false;  // socket/protocol error mid-run
};

// Replays one phase on one established connection until the deadline.
void run_phase_on_conn(net::NetClient* client, const ScenarioSpec& spec,
                       const PhaseSpec& phase, const runtime::ZipfTable* zipf,
                       int pipeline, uint64_t deadline_ns, uint64_t seed,
                       ConnOutcome* out) {
  runtime::Xoshiro256 rng(seed);
  const KeyPicker picker(phase.keys, spec.key_range, zipf);
  const uint64_t phase_start = obs::now_ns();

  if (!client->ping()) {
    out->failed = true;
    return;
  }
  out->stats.pings++;
  out->stats.ops++;

  std::vector<net::Request> reqs;
  std::vector<net::Response> resps;
  std::vector<uint64_t> lats;
  const uint32_t pct_write = phase.pct_insert + phase.pct_put;
  while (obs::now_ns() < deadline_ns) {
    // Moving hotspots: the window index advances on wall time, same rule
    // as the scenario engine's coordinator.
    const uint64_t hot_window =
        phase.keys.hot_move_every_ms > 0
            ? (obs::now_ns() - phase_start) / 1000000u /
                  phase.keys.hot_move_every_ms
            : 0;
    reqs.clear();
    for (int p = 0; p < pipeline; ++p) {
      const uint64_t key = picker.next(rng, hot_window);
      const uint32_t roll =
          static_cast<uint32_t>(rng.next_below(100));
      if (roll < pct_write) {
        reqs.push_back({net::Op::kPut, key, rng.next()});
      } else if (roll < pct_write + phase.pct_erase) {
        reqs.push_back({net::Op::kDel, key, 0});
      } else {
        reqs.push_back({net::Op::kGet, key, 0});
      }
    }
    if (!client->exec_batch(reqs, &resps, &lats)) {
      out->failed = true;
      return;
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
      out->histo.add(lats[i]);
      auto& st = out->stats;
      st.ops++;
      switch (reqs[i].op) {
        case net::Op::kGet:
          st.gets++;
          if (resps[i].status == net::Status::kHit) st.get_hits++;
          break;
        case net::Op::kPut:
          st.puts++;
          if (resps[i].status == net::Status::kReplaced) st.put_replaced++;
          break;
        case net::Op::kDel:
          st.dels++;
          if (resps[i].status == net::Status::kHit) st.del_hits++;
          break;
        case net::Op::kPing:
          st.pings++;
          break;
      }
    }
    out->stats.batches++;
    if (reqs.size() > out->stats.max_batch) {
      out->stats.max_batch = reqs.size();
    }
  }
}

// Prefills the map through the wire (PUT key -> key), pipelined.
bool prefill_over_wire(net::NetClient* client, uint64_t prefill,
                       int pipeline) {
  std::vector<net::Request> reqs;
  std::vector<net::Response> resps;
  for (uint64_t k = 0; k < prefill;) {
    reqs.clear();
    for (int p = 0; p < pipeline && k < prefill; ++p, ++k) {
      reqs.push_back({net::Op::kPut, k, k});
    }
    if (!client->exec_batch(reqs, &resps)) return false;
  }
  return true;
}

void print_header(const std::string& scenario) {
  std::printf("\n# loadgen %s: %s\n", scenario.c_str(),
              scenario_description(scenario).c_str());
  std::printf("%-5s %-13s %4s %6s %5s %5s %8s %9s %9s %9s %7s\n", "ds", "smr",
              "wkrs", "shards", "conns", "pipe", "Mops", "p50(us)", "p99(us)",
              "p999(us)", "errors");
  std::fflush(stdout);
}

// One (ds, smr) cell: spins up / connects, prefills, replays every
// phase, emits the table row + JSONL. Returns false on a hard failure
// (server refused to build, no connection survived).
bool run_cell(const std::string& scenario, const std::string& ds,
              const std::string& smr, int shards, int workers,
              int connections, int pipeline, const std::string& host,
              int port, double time_scale, uint64_t key_range,
              const std::string& json) {
  ScenarioBuild b;
  b.ds = ds;
  b.smr = smr;
  b.threads = connections;
  b.time_scale = time_scale;
  b.key_range = key_range;
  b.shards = shards;
  auto maybe_spec = make_scenario(scenario, b);
  if (!maybe_spec) {
    std::fprintf(stderr, "bench_loadgen: unknown scenario '%s' (try --list)\n",
                 scenario.c_str());
    return false;
  }
  ScenarioSpec spec = *maybe_spec;
  for (const auto& w : normalize(spec)) {
    std::fprintf(stderr, "bench_loadgen %s: %s\n", scenario.c_str(), w.c_str());
  }

  // In-process server per cell unless a remote host was given.
  std::unique_ptr<net::NetServer> server;
  std::string target_host = host;
  uint16_t target_port = static_cast<uint16_t>(port);
  if (host.empty()) {
    net::NetServerConfig cfg;
    cfg.ds = ds;
    cfg.smr = smr;
    cfg.shards = spec.shards;
    cfg.workers = workers;
    cfg.port = 0;  // ephemeral
    cfg.set.capacity = spec.key_range;
    cfg.set.load_factor = spec.load_factor;
    cfg.set.smr = spec.smr_cfg;
    server = net::NetServer::create(cfg);
    if (!server) return false;
    server->start();
    target_host = "127.0.0.1";
    target_port = server->port();
  }

  // Shared generator state: one Zipf table per cell when any phase is
  // Zipfian (the CDF build is O(key_range), do it once).
  std::unique_ptr<runtime::ZipfTable> zipf;
  for (const auto& ph : spec.phases) {
    if (ph.keys.kind == KeyDist::kZipfian && !zipf) {
      zipf = std::make_unique<runtime::ZipfTable>(spec.key_range,
                                                  ph.keys.zipf_theta);
    }
  }

  std::vector<std::unique_ptr<net::NetClient>> clients;
  std::vector<ConnOutcome> outcomes(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    auto cl = std::make_unique<net::NetClient>();
    if (!cl->connect_tcp(target_host, target_port)) return false;
    outcomes[static_cast<size_t>(c)].stats.conn_id = static_cast<uint64_t>(c);
    clients.push_back(std::move(cl));
  }

  // spec.prefill's UINT64_MAX sentinel means "default": the engine
  // resolves it at prefill time (key_range / 2), not in normalize() —
  // mirror that here or the wire prefill would try to insert 2^64 keys.
  const uint64_t prefill =
      spec.prefill == UINT64_MAX ? spec.key_range / 2 : spec.prefill;
  if (!prefill_over_wire(clients[0].get(), prefill, pipeline)) {
    std::fprintf(stderr, "bench_loadgen: prefill failed (%s:%u)\n",
                 target_host.c_str(), unsigned{target_port});
    return false;
  }

  const uint64_t cell_start = obs::now_ns();
  for (const auto& phase : spec.phases) {
    const uint64_t deadline =
        obs::now_ns() + phase.duration_ms * 1000000ull;
    std::vector<std::thread> threads;
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back(run_phase_on_conn, clients[static_cast<size_t>(c)].get(),
                           std::cref(spec), std::cref(phase), zipf.get(),
                           pipeline, deadline,
                           /*seed=*/0x5eedull * (static_cast<uint64_t>(c) + 1),
                           &outcomes[static_cast<size_t>(c)]);
    }
    for (auto& t : threads) t.join();
  }
  const double seconds =
      static_cast<double>(obs::now_ns() - cell_start) / 1e9;

  clients.clear();  // close before the server tears down
  if (server) server->stop();

  net::NetCellRow cell;
  cell.scenario = spec.name;
  cell.ds = ds;
  cell.smr = smr;
  cell.workers = workers;
  cell.shards = spec.shards;
  cell.connections = connections;
  cell.pipeline_depth = pipeline;
  cell.seconds = seconds;
  obs::HistoSnapshot merged;
  std::vector<net::ConnRow> conn_rows;
  int failed = 0;
  for (auto& o : outcomes) {
    cell.totals.accumulate(o.stats);
    merged.merge(o.histo);
    conn_rows.push_back({o.stats, obs::summarize(o.histo)});
    if (o.failed) failed++;
  }
  cell.latency = obs::summarize(merged);
  // A connection that died mid-run is an error even if the server never
  // saw a malformed frame; surface it in the row's error column.
  cell.totals.protocol_errors += static_cast<uint64_t>(failed);

  std::printf("%-5s %-13s %4d %6d %5d %5d %8.3f %9.1f %9.1f %9.1f %7llu\n",
              ds.c_str(), smr.c_str(), workers, cell.shards, connections,
              pipeline,
              seconds > 0
                  ? static_cast<double>(cell.totals.ops) / seconds / 1e6
                  : 0.0,
              cell.latency.p50_us, cell.latency.p99_us, cell.latency.p999_us,
              static_cast<unsigned long long>(cell.totals.protocol_errors));
  std::fflush(stdout);
  net::emit_net_jsonl(json, cell, conn_rows);
  return failed < connections;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);

  if (cli.list) {
    for (const auto& name : scenario_names()) {
      std::printf("%-22s %s\n", name.c_str(),
                  scenario_description(name).c_str());
    }
    return 0;
  }

  const std::string scenario =
      cli.scenario.empty() ? "uniform-mixed" : cli.scenario;
  const std::string host = bench_host("");
  const int port = bench_port(17979);
  const int connections = bench_connections(4);
  const int pipeline = bench_pipeline(8);
  const int workers = bench_net_workers(2);
  const int shards = bench_shard_list("1")[0];
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");
  const double time_scale = cli.short_mode ? 0.25 : 1.0;
  const uint64_t key_range = cli.short_mode ? 512 : 0;

  print_header(scenario);
  bool ok = true;
  if (!host.empty()) {
    // Remote mode: one cell against the given server; labels come from
    // the local flags (first list entries).
    ok = run_cell(scenario, bench_ds_list("HMHT")[0], bench_smr_list()[0],
                  shards, workers, connections, pipeline, host, port,
                  time_scale, key_range, json);
  } else {
    for (const auto& ds : bench_ds_list("HMHT")) {
      for (const auto& smr : bench_smr_list()) {
        ok = run_cell(scenario, ds, smr, shards, workers, connections,
                      pipeline, host, port, time_scale, key_range, json) &&
             ok;
      }
    }
  }
  return ok ? 0 : 1;
}
