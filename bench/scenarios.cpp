// bench_scenarios: runs the named scenario matrix — skewed, phased,
// churning, and stalling workloads — per (ds, smr, threads) cell and
// reports per-phase throughput plus the robustness trajectory (peak vs
// recovered unreclaimed memory around an injected stall).
//
//   bench_scenarios --list
//   bench_scenarios --scenario stall-recovery --ds HML
//       --smr EBR,EpochPOP --threads 4
//   bench_scenarios --scenario all --short        # CI smoke matrix
//
// With POPSMR_BENCH_JSON (or --json) set, every cell appends kind-tagged
// JSON Lines: one "scenario" summary, one "phase" row per phase, and one
// "mem_sample" row per timeline point — enough to plot unreclaimed
// memory over time across the park/resume window.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

void print_scenario_header(const std::string& scenario) {
  std::printf("\n# scenario %s: %s\n", scenario.c_str(),
              scenario_description(scenario).c_str());
  std::printf("%-5s %-13s %3s %-12s %8s %9s %10s %11s %9s %8s\n", "ds",
              "smr", "thr", "phase", "Mops", "readMops", "unreclaimed",
              "maxRetire", "signals", "churn");
  std::fflush(stdout);
}

void print_cell(const ScenarioSpec& spec, const ScenarioResult& r) {
  for (const auto& p : r.phases) {
    std::printf("%-5s %-13s %3d %-12s %8.3f %9.3f %10llu %11llu %9llu %8llu\n",
                spec.ds.c_str(), spec.smr.c_str(), p.threads, p.name.c_str(),
                p.mops, p.read_mops,
                static_cast<unsigned long long>(p.unreclaimed_end),
                static_cast<unsigned long long>(p.smr_delta.max_retire_len),
                static_cast<unsigned long long>(p.smr_delta.signals_sent),
                static_cast<unsigned long long>(r.churn_cycles));
  }
  if (spec.stall.enabled) {
    std::printf("      %-13s stall: baseline %llu -> peak %llu -> final %llu "
                "unreclaimed (parked %llu..%llu ms, %zu samples)\n",
                spec.smr.c_str(),
                static_cast<unsigned long long>(r.baseline_unreclaimed),
                static_cast<unsigned long long>(r.stall_peak_unreclaimed),
                static_cast<unsigned long long>(r.final_unreclaimed),
                static_cast<unsigned long long>(r.stall_parked_at_ms),
                static_cast<unsigned long long>(r.stall_resumed_at_ms),
                r.samples.size());
  }
  // Per-kind latency percentiles when --latency / POPSMR_OBS_LATENCY
  // recorded anything (reclamation kinds included).
  for (const auto& L : r.latency) {
    std::printf("      %-13s lat %-9s n=%-9llu p50=%.1fus p90=%.1fus "
                "p99=%.1fus p999=%.1fus max=%.1fus\n",
                spec.smr.c_str(), L.op.c_str(),
                static_cast<unsigned long long>(L.lat.count), L.lat.p50_us,
                L.lat.p90_us, L.lat.p99_us, L.lat.p999_us, L.lat.max_us);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);

  if (cli.list) {
    for (const auto& name : scenario_names()) {
      std::printf("%-22s %s\n", name.c_str(),
                  scenario_description(name).c_str());
    }
    return 0;
  }

  std::vector<std::string> selected;
  if (cli.scenario.empty() || cli.scenario == "all") {
    selected = scenario_names();
  } else {
    if (!make_scenario(cli.scenario, {})) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   cli.scenario.c_str());
      return 2;
    }
    selected.push_back(cli.scenario);
  }

  const auto ds_list = bench_ds_list("HML");
  const auto smrs = bench_smr_list();
  const auto threads = bench_thread_list("4");
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");

  for (const auto& scenario : selected) {
    print_scenario_header(scenario);
    for (const auto& ds : ds_list) {
      for (int t : threads) {
        for (const auto& smr : smrs) {
          ScenarioBuild b;
          b.ds = ds;
          b.smr = smr;
          b.threads = t;
          if (cli.short_mode) {
            // ~50 ms phases over a small universe: the CI smoke matrix.
            b.time_scale = 0.25;
            b.key_range = 512;
          }
          auto spec = make_scenario(scenario, b);
          const auto r = run_scenario(*spec);
          print_cell(*spec, r);
          emit_scenario_jsonl(json, *spec, r);
        }
      }
    }
  }
  return 0;
}
