// bench_kv: the value-carrying map sweep. Runs a one-phase uniform KV
// workload per (ds, smr, threads) cell at every put ratio in the sweep —
// put is insert-or-replace, and every replace retires the displaced node
// through the cell's SMR domain, so raising the put ratio dials up the
// short-lived-node reclamation traffic class that set-only benchmarks
// (insert/erase only) never produce. The remainder of the mix is get()
// with a small fixed insert/erase background so the key population keeps
// churning.
//
//   bench_kv                                      # pct_put in {0,10,50,90}
//   bench_kv --ds HMHT --smr EBR,EpochPOP --threads 4
//   bench_kv --pct-put 0,50 --shards 4            # sharded cells
//   bench_kv --short                              # CI smoke cell
//
// With POPSMR_BENCH_JSON (or --json) set, every cell appends one
// kind-tagged "kv" JSONL row (per-op outcome breakdown: gets/get_hits,
// puts/put_replaced, retired/freed) plus one "shard" row per shard when
// the cell runs sharded.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

void print_header() {
  std::printf("\n# kv put-ratio sweep: put = insert-or-replace; each "
              "replace retires one displaced node\n");
  std::printf("%-5s %-13s %3s %6s %7s %8s %9s %10s %11s %10s %9s\n", "ds",
              "smr", "thr", "shards", "putPct", "Mops", "getHit%",
              "putRepl%", "retired", "unreclaim", "signals");
  std::fflush(stdout);
}

void print_cell(const ScenarioSpec& spec, uint32_t pct_put,
                const ScenarioResult& r) {
  const double hit_pct =
      r.gets > 0 ? 100.0 * static_cast<double>(r.get_hits) /
                       static_cast<double>(r.gets)
                 : 0.0;
  const double repl_pct =
      r.puts > 0 ? 100.0 * static_cast<double>(r.put_replaced) /
                       static_cast<double>(r.puts)
                 : 0.0;
  std::printf("%-5s %-13s %3d %6d %7u %8.3f %9.1f %10.1f %11llu %10llu "
              "%9llu\n",
              spec.ds.c_str(), spec.smr.c_str(), spec.threads, spec.shards,
              pct_put, r.mops, hit_pct, repl_pct,
              static_cast<unsigned long long>(r.smr.retired),
              static_cast<unsigned long long>(r.final_unreclaimed),
              static_cast<unsigned long long>(r.smr.signals_sent));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);
  if (cli.list) {
    std::printf("bench_kv sweeps --pct-put (default 0,10,50,90); it has no "
                "named scenarios\n");
    return 0;
  }

  const auto ds_list = bench_ds_list("HML,HMHT");
  const auto smrs = bench_smr_list();
  const auto threads = bench_thread_list("4");
  const auto put_ratios = bench_pct_put_list("0,10,50,90");
  const auto shard_counts = bench_shard_list("1");
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");
  const uint64_t duration = bench_duration_ms(cli.short_mode ? 50 : 200);

  print_header();
  for (const auto& ds : ds_list) {
    for (int t : threads) {
      for (const auto& smr : smrs) {
        for (int shards : shard_counts) {
          for (int pct_put : put_ratios) {
            ScenarioSpec spec;
            spec.name = "kv-sweep";
            spec.ds = ds;
            spec.smr = smr;
            spec.threads = t;
            spec.shards = shards;
            spec.key_range = cli.short_mode ? 512
                             : (ds == "HML" || ds == "LL") ? 2048
                                                           : 16384;
            PhaseSpec ph;
            ph.name = "kv";
            ph.duration_ms = duration;
            // Fixed 5/5 insert/erase background keeps membership churning
            // so puts keep splitting into insert vs replace outcomes; a
            // ratio above 90 is clamped (with a warning) by normalize.
            ph.pct_insert = 5;
            ph.pct_erase = 5;
            ph.pct_put = static_cast<uint32_t>(pct_put);
            spec.phases.push_back(ph);
            // Report what actually runs (run_scenario clamps a private
            // copy; see bench_sharded for the rationale).
            for (const auto& w : normalize(spec)) {
              std::fprintf(stderr, "bench_kv: %s\n", w.c_str());
            }
            const auto r = run_scenario(spec);
            print_cell(spec, spec.phases[0].pct_put, r);
            emit_kv_jsonl(json, spec, spec.phases[0].pct_put, r);
          }
        }
      }
    }
  }
  return 0;
}
