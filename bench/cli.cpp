#include "cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"

namespace pop::bench {

namespace {

void usage(const char* prog, int exit_code) {
  std::fprintf(
      stderr,
      "usage: %s [--threads N,N,..] [--smr NAME,..] [--ds NAME,..]\n"
      "          [--shards N,N,..] [--shard-hash splitmix|modulo]\n"
      "          [--pct-put N,N,..] [--duration-ms N] [--json PATH]\n"
      "          [--latency] [--hw-counters] [--trace PATH]\n"
      "          [--host ADDR] [--port N] [--connections N] [--pipeline N]\n"
      "          [--net-workers N]\n"
      "          [--scenario NAME|all] [--short] [--list] [--help]\n"
      "Value flags seed the matching POPSMR_BENCH_* env var; an already\n"
      "exported var wins over the flag (CI compatibility).\n",
      prog);
  std::exit(exit_code);
}

// setenv-without-override: the env layer keeps priority.
void seed_env(const char* var, const std::string& value) {
  ::setenv(var, value.c_str(), /*overwrite=*/0);
}

// Accepts "--flag value" and "--flag=value"; returns the value and
// advances *i past a detached one.
std::string flag_value(int argc, char** argv, int* i, const char* flag,
                       const char* prog) {
  const char* arg = argv[*i];
  const size_t flen = std::strlen(flag);
  if (arg[flen] == '=') return arg + flen + 1;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s needs a value\n", prog, flag);
    usage(prog, 2);
  }
  return argv[++(*i)];
}

bool matches(const char* arg, const char* flag) {
  const size_t flen = std::strlen(flag);
  return std::strncmp(arg, flag, flen) == 0 &&
         (arg[flen] == '\0' || arg[flen] == '=');
}

// Identifier flags (scheme / structure / scenario / hash names) travel
// into env vars, JSONL string fields, and factory lookups verbatim, so
// they are validated here at the parse boundary: names are restricted to
// [A-Za-z0-9_-], plus ',' as the separator where the flag takes a list.
// Anything else (a stray quote, a path, a shell glob that expanded) is
// diagnosed on one line and rejected before it can seed an env var.
std::string checked_ident(std::string value, const char* flag,
                          const char* prog, bool list_ok) {
  for (const char c : value) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    (list_ok && c == ',');
    if (!ok) {
      std::fprintf(stderr,
                   "%s: %s '%s' has invalid character '%c' (allowed: "
                   "A-Za-z0-9_-%s)\n",
                   prog, flag, value.c_str(), c, list_ok ? " and ','" : "");
      std::exit(2);
    }
  }
  return value;
}

// Host names travel into connect()/bind() and JSONL labels: the ident
// charset plus '.' (dotted quads, DNS labels). Rejected on one line like
// every other malformed flag value.
std::string checked_host(std::string value, const char* flag,
                         const char* prog) {
  bool ok = !value.empty();
  for (const char c : value) {
    ok = ok && ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.');
  }
  if (!ok) {
    std::fprintf(stderr,
                 "%s: %s '%s' is not a host name (allowed: A-Za-z0-9_-.)\n",
                 prog, flag, value.c_str());
    std::exit(2);
  }
  return value;
}

// Small non-negative integer flags (--port, --connections, ...): digits
// only, bounded. "8x", "-1", or an empty value is a one-line diagnosis,
// not a silent 0.
std::string checked_uint(std::string value, const char* flag, const char* prog,
                         long lo, long hi) {
  bool digits = !value.empty() && value.size() <= 10;
  for (const char c : value) digits = digits && c >= '0' && c <= '9';
  const long v = digits ? std::strtol(value.c_str(), nullptr, 10) : -1;
  if (!digits || v < lo || v > hi) {
    std::fprintf(stderr, "%s: %s '%s' is not an integer in [%ld, %ld]\n", prog,
                 flag, value.c_str(), lo, hi);
    std::exit(2);
  }
  return value;
}

}  // namespace

CliOptions apply_bench_cli(int argc, char** argv) {
  CliOptions out;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (matches(arg, "--threads")) {
      seed_env("POPSMR_BENCH_THREADS",
               flag_value(argc, argv, &i, "--threads", prog));
    } else if (matches(arg, "--smr") || matches(arg, "--smrs")) {
      const char* flag = matches(arg, "--smrs") ? "--smrs" : "--smr";
      seed_env("POPSMR_BENCH_SMRS",
               checked_ident(flag_value(argc, argv, &i, flag, prog), flag,
                             prog, /*list_ok=*/true));
    } else if (matches(arg, "--ds")) {
      seed_env("POPSMR_BENCH_DS",
               checked_ident(flag_value(argc, argv, &i, "--ds", prog), "--ds",
                             prog, /*list_ok=*/true));
    } else if (matches(arg, "--shards")) {
      seed_env("POPSMR_BENCH_SHARDS",
               flag_value(argc, argv, &i, "--shards", prog));
    } else if (matches(arg, "--shard-hash")) {
      seed_env("POPSMR_SHARD_HASH",
               checked_ident(flag_value(argc, argv, &i, "--shard-hash", prog),
                             "--shard-hash", prog, /*list_ok=*/false));
    } else if (matches(arg, "--pct-put")) {
      seed_env("POPSMR_BENCH_PCT_PUT",
               flag_value(argc, argv, &i, "--pct-put", prog));
    } else if (matches(arg, "--duration-ms")) {
      seed_env("POPSMR_BENCH_DURATION_MS",
               flag_value(argc, argv, &i, "--duration-ms", prog));
    } else if (matches(arg, "--json")) {
      seed_env("POPSMR_BENCH_JSON",
               flag_value(argc, argv, &i, "--json", prog));
    } else if (std::strcmp(arg, "--latency") == 0) {
      seed_env("POPSMR_OBS_LATENCY", "1");
    } else if (std::strcmp(arg, "--hw-counters") == 0) {
      seed_env("POPSMR_OBS_HW", "1");
    } else if (matches(arg, "--trace")) {
      // A path, not an identifier: no checked_ident.
      seed_env("POPSMR_TRACE", flag_value(argc, argv, &i, "--trace", prog));
    } else if (matches(arg, "--host")) {
      seed_env("POPSMR_BENCH_HOST",
               checked_host(flag_value(argc, argv, &i, "--host", prog),
                            "--host", prog));
    } else if (matches(arg, "--port")) {
      seed_env("POPSMR_BENCH_PORT",
               checked_uint(flag_value(argc, argv, &i, "--port", prog),
                            "--port", prog, 0, 65535));
    } else if (matches(arg, "--connections")) {
      seed_env("POPSMR_BENCH_CONNECTIONS",
               checked_uint(flag_value(argc, argv, &i, "--connections", prog),
                            "--connections", prog, 1, 4096));
    } else if (matches(arg, "--pipeline")) {
      seed_env("POPSMR_BENCH_PIPELINE",
               checked_uint(flag_value(argc, argv, &i, "--pipeline", prog),
                            "--pipeline", prog, 1, 4096));
    } else if (matches(arg, "--net-workers")) {
      seed_env("POPSMR_NET_WORKERS",
               checked_uint(flag_value(argc, argv, &i, "--net-workers", prog),
                            "--net-workers", prog, 1, 256));
    } else if (matches(arg, "--scenario")) {
      out.scenario =
          checked_ident(flag_value(argc, argv, &i, "--scenario", prog),
                        "--scenario", prog, /*list_ok=*/false);
    } else if (std::strcmp(arg, "--short") == 0) {
      out.short_mode = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      out.list = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage(prog, 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, arg);
      usage(prog, 2);
    }
  }
  // Resolve the observability channels now (env wins over the flags just
  // seeded, like every other knob), and register the end-of-process trace
  // dump once if tracing came up armed.
  obs::init_from_env();
  if (obs::trace_on()) {
    static bool dump_registered = false;
    if (!dump_registered) {
      dump_registered = true;
      std::atexit([] { obs::dump_trace(); });
    }
  }
  return out;
}

}  // namespace pop::bench
