// Design ablations called out in DESIGN.md:
//  (a) retire_threshold (the paper's reclaimFreq; 24K in the main
//      experiments, 2K in Figure 4): lower = more signals per op for the
//      POP family, higher = more garbage held.
//  (b) EpochPOP's C multiplier: how aggressively the POP fallback fires.
//  (c) epoch_freq for the epoch-based schemes.
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  const uint64_t dur = bench_duration_ms(150);
  const int threads = static_cast<int>(bench_thread_list("4").front());

  print_table_header(
      "Ablation (a): retire_threshold sweep, HML 2K update-heavy");
  for (uint64_t thr : {32ull, 128ull, 512ull, 2048ull, 8192ull}) {
    for (const char* smr : {"HazardPtrPOP", "EpochPOP", "HP", "NBR"}) {
      WorkloadConfig cfg;
      cfg.ds = "HML";
      cfg.smr = smr;
      cfg.threads = threads;
      cfg.key_range = 2048;
      cfg.pct_insert = 50;
      cfg.pct_erase = 50;
      cfg.duration_ms = dur;
      cfg.smr_cfg.retire_threshold = thr;
      std::printf("thr=%-6llu ", static_cast<unsigned long long>(thr));
      print_row(cfg, run_workload(cfg));
    }
  }

  print_table_header(
      "Ablation (b): EpochPOP C multiplier, HMHT update-heavy with one "
      "slow epoch");
  for (uint64_t c_mult : {2ull, 4ull, 8ull}) {
    WorkloadConfig cfg;
    cfg.ds = "HMHT";
    cfg.smr = "EpochPOP";
    cfg.threads = threads;
    cfg.key_range = 16384;
    cfg.pct_insert = 50;
    cfg.pct_erase = 50;
    cfg.duration_ms = dur;
    cfg.smr_cfg.retire_threshold = 256;
    cfg.smr_cfg.pop_multiplier = c_mult;
    std::printf("C=%-8llu ", static_cast<unsigned long long>(c_mult));
    print_row(cfg, run_workload(cfg));
  }

  print_table_header("Ablation (c): epoch_freq sweep, EBR vs EpochPOP, DGT");
  for (uint64_t ef : {1ull, 16ull, 64ull, 256ull}) {
    for (const char* smr : {"EBR", "EpochPOP"}) {
      WorkloadConfig cfg;
      cfg.ds = "DGT";
      cfg.smr = smr;
      cfg.threads = threads;
      cfg.key_range = 8192;
      cfg.pct_insert = 50;
      cfg.pct_erase = 50;
      cfg.duration_ms = dur;
      cfg.smr_cfg.retire_threshold = 512;
      cfg.smr_cfg.epoch_freq = ef;
      std::printf("ef=%-7llu ", static_cast<unsigned long long>(ef));
      print_row(cfg, run_workload(cfg));
    }
  }
  return 0;
}
