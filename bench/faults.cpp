// bench_faults: crash-fault sweep — per (ds, smr, threads) cell it runs
// the three injected failure modes the recovery machinery exists to
// absorb, and reports what the reaper / watchdog / backstop did about
// each:
//
//   signal-loss   a victim parks holding its reservation while every ping
//                 to it is silently dropped; the POP watchdog must time
//                 the wave out (waves_timed_out) and the run must recover
//                 once delivery is restored
//   thread-kill   the zombie-storm scenario: workers die mid-operation
//                 leaking their registry slots; the reaper must certify
//                 the corpses (tids_reaped) and adopt their retires
//   pressure      the pressure-backstop scenario: a tight unreclaimed
//                 bound forces handshake passes and degrades to
//                 defer-and-warn while a reservation pins memory
//
//   bench_faults --smr EpochPOP --threads 4
//   bench_faults --short          # CI smoke matrix
//
// With POPSMR_BENCH_JSON (or --json) set, signal-loss and thread-kill
// cells append a kind:"fault" row and the pressure cell a
// kind:"pressure" row. POPSMR_PING_TIMEOUT_MS is seeded (not overridden)
// to a short deadline so the signal-loss cell's watchdog expires within
// the bench window instead of after the default full second.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

void print_fault_header(const char* fault, const char* what) {
  std::printf("\n# fault %s: %s\n", fault, what);
  std::printf("%-5s %-13s %3s %6s %10s %7s %8s %8s %10s %10s %9s\n", "ds",
              "smr", "thr", "Mops", "kills", "reaped", "adopted", "wavesTO",
              "suppressed", "recover_ms", "finalUnr");
  std::fflush(stdout);
}

void print_fault_cell(const ScenarioSpec& spec, const ScenarioResult& r) {
  std::printf("%-5s %-13s %3d %6.3f %10llu %7llu %8llu %8llu %10llu %10llu "
              "%9llu\n",
              spec.ds.c_str(), spec.smr.c_str(), spec.threads, r.mops,
              static_cast<unsigned long long>(r.kills),
              static_cast<unsigned long long>(r.smr.tids_reaped),
              static_cast<unsigned long long>(r.smr.orphans_adopted),
              static_cast<unsigned long long>(r.smr.waves_timed_out),
              static_cast<unsigned long long>(r.signals_suppressed),
              static_cast<unsigned long long>(r.recovered_at_ms),
              static_cast<unsigned long long>(r.final_unreclaimed));
  std::fflush(stdout);
}

void print_pressure_cell(const ScenarioSpec& spec, const ScenarioResult& r) {
  std::printf("%-5s %-13s %3d %6.3f bound %llu events %llu forced %llu "
              "peak %llu final %llu\n",
              spec.ds.c_str(), spec.smr.c_str(), spec.threads, r.mops,
              static_cast<unsigned long long>(spec.smr_cfg.pressure_bound),
              static_cast<unsigned long long>(r.smr.pressure_events),
              static_cast<unsigned long long>(r.smr.forced_handshakes),
              static_cast<unsigned long long>(r.stall_peak_unreclaimed),
              static_cast<unsigned long long>(r.final_unreclaimed));
  std::fflush(stdout);
}

ScenarioBuild cell_build(const std::string& ds, const std::string& smr, int t,
                         bool short_mode) {
  ScenarioBuild b;
  b.ds = ds;
  b.smr = smr;
  b.threads = t;
  if (short_mode) {
    b.time_scale = 0.25;
    b.key_range = 512;
  }
  return b;
}

// The signal-loss cell: stall-recovery's shape (a parked victim pinning
// its reservation under Zipfian churn) with the loss injector dropping
// every ping aimed at the victim while it sleeps. A POP reclaimer's wave
// genuinely cannot complete — the watchdog must expire, classify the
// victim live-but-mute, and defer; delivery is restored when the victim
// resumes so the tail of the run measures recovery.
ScenarioSpec signal_loss_spec(const ScenarioBuild& b) {
  auto spec = make_scenario("stall-recovery", b);
  spec->faults.signal_loss = true;
  spec->faults.signal_loss_pct = 100;
  spec->faults.signal_loss_stop_after_ms =
      spec->stall.park_after_ms + spec->stall.park_for_ms;
  // A low threshold keeps retire backlogs crossing the POP trigger during
  // the park window even in slow sanitizer builds — without waves there
  // is nothing for the loss injector to eat or the watchdog to time out.
  spec->smr_cfg.retire_threshold = 64;
  return *spec;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);
  if (cli.list) {
    std::printf("signal-loss   watchdog: parked victim + dropped pings\n");
    std::printf("thread-kill   reaper: zombie-storm (leaked registry slots)\n");
    std::printf("pressure      backstop: pressure-backstop (tight bound)\n");
    return 0;
  }

  // Short watchdog deadline so a lost wave expires inside the bench
  // window — it must undercut the --short stall window (~60 ms) or the
  // victim resumes before the watchdog fires and the cell measures
  // nothing. An exported value (or a CI recipe) still wins. Healthy waves
  // are unaffected: the deadline arms lazily at the first escalation and
  // a responsive peer publishes in microseconds.
  setenv("POPSMR_PING_TIMEOUT_MS", "20", /*overwrite=*/0);

  const auto ds_list = bench_ds_list("HML");
  const auto smrs = bench_smr_list();
  const auto threads = bench_thread_list("4");
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");

  print_fault_header("signal-loss",
                     "pings to a parked victim dropped until it resumes");
  for (const auto& ds : ds_list) {
    for (int t : threads) {
      for (const auto& smr : smrs) {
        ScenarioSpec spec = signal_loss_spec(cell_build(ds, smr, t,
                                                        cli.short_mode));
        const auto r = run_scenario(spec);
        print_fault_cell(spec, r);
        emit_fault_jsonl(json, spec, "signal-loss", r);
      }
    }
  }

  print_fault_header("thread-kill",
                     "workers killed mid-operation, registry slots leaked");
  for (const auto& ds : ds_list) {
    for (int t : threads) {
      for (const auto& smr : smrs) {
        auto spec = make_scenario("zombie-storm",
                                  cell_build(ds, smr, t, cli.short_mode));
        const auto r = run_scenario(*spec);
        print_fault_cell(*spec, r);
        emit_fault_jsonl(json, *spec, "thread-kill", r);
      }
    }
  }

  std::printf("\n# fault pressure: tight unreclaimed bound under a parked "
              "victim\n");
  for (const auto& ds : ds_list) {
    for (int t : threads) {
      for (const auto& smr : smrs) {
        auto spec = make_scenario("pressure-backstop",
                                  cell_build(ds, smr, t, cli.short_mode));
        const auto r = run_scenario(*spec);
        print_pressure_cell(*spec, r);
        emit_pressure_jsonl(json, *spec, r);
      }
    }
  }
  return 0;
}
