#include "driver.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/padded.hpp"
#include "runtime/proc_stats.hpp"
#include "runtime/rng.hpp"

namespace pop::bench {

namespace {

struct Counters {
  uint64_t reads = 0;
  uint64_t updates = 0;
};

}  // namespace

WorkloadResult run_workload(const WorkloadConfig& cfg) {
  ds::SetConfig sc;
  sc.capacity = cfg.key_range;
  sc.load_factor = cfg.load_factor;
  sc.smr = cfg.smr_cfg;
  auto set = ds::make_set(cfg.ds, cfg.smr, sc);
  if (set == nullptr) {
    std::fprintf(stderr, "unknown ds/smr: %s/%s\n", cfg.ds.c_str(),
                 cfg.smr.c_str());
    std::abort();
  }

  // Prefill to half the key range (paper §5.0.2): every other key keeps
  // the fill deterministic across schemes so structures are comparable.
  // Insertion *order* matters per structure: descending for lists (each
  // key becomes the new minimum, found right after the head: O(1) per
  // insert instead of O(n)); BFS-midpoint for the external BST (produces
  // a balanced tree instead of a degenerate chain). The (a,b)-tree and
  // hash table are insensitive, and take the midpoint order too.
  const uint64_t prefill =
      cfg.prefill == UINT64_MAX ? cfg.key_range / 2 : cfg.prefill;
  const uint64_t nkeys = cfg.key_range / 2;  // even keys 0,2,4,...
  uint64_t inserted = 0;
  if (cfg.ds == "HML" || cfg.ds == "LL") {
    for (uint64_t i = nkeys; i >= 1 && inserted < prefill; --i) {
      inserted += set->insert((i - 1) * 2);
    }
  } else {
    // BFS over index ranges: insert the middle even key of each segment.
    std::vector<std::pair<uint64_t, uint64_t>> queue_;
    queue_.reserve(64);
    queue_.emplace_back(0, nkeys);
    for (size_t qi = 0; qi < queue_.size() && inserted < prefill; ++qi) {
      const auto [lo, hi] = queue_[qi];
      if (lo >= hi) continue;
      const uint64_t mid = lo + (hi - lo) / 2;
      inserted += set->insert(mid * 2);
      queue_.emplace_back(lo, mid);
      queue_.emplace_back(mid + 1, hi);
    }
  }
  // Odd keys (still balanced enough) if a caller asked for more than half.
  for (uint64_t k = 1; k < cfg.key_range && inserted < prefill; k += 2) {
    inserted += set->insert(k);
  }
  set->detach_thread();

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<runtime::Padded<Counters>> counts(cfg.threads);

  const int writers_from =
      cfg.split_readers_writers ? cfg.threads / 2 : cfg.threads;

  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int w = 0; w < cfg.threads; ++w) {
    workers.emplace_back([&, w] {
      runtime::Xoshiro256 rng(0x9E3779B9ull * (w + 1) + 12345);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto& my = *counts[w];
      if (cfg.split_readers_writers && w < writers_from) {
        // Dedicated reader (Figure 4): full-range contains only.
        while (!stop.load(std::memory_order_relaxed)) {
          (void)set->contains(rng.next_below(cfg.key_range));
          ++my.reads;
        }
      } else if (cfg.split_readers_writers) {
        // Dedicated updater near the head of the structure.
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t k = rng.next_below(cfg.writer_key_range);
          if (rng.percent(50)) {
            (void)set->insert(k);
          } else {
            (void)set->erase(k);
          }
          ++my.updates;
        }
      } else {
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t k = rng.next_below(cfg.key_range);
          const uint64_t dice = rng.next_below(100);
          if (dice < cfg.pct_insert) {
            (void)set->insert(k);
            ++my.updates;
          } else if (dice < cfg.pct_insert + cfg.pct_erase) {
            (void)set->erase(k);
            ++my.updates;
          } else {
            (void)set->contains(k);
            ++my.reads;
          }
        }
      }
      set->detach_thread();
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadResult r;
  for (int w = 0; w < cfg.threads; ++w) {
    r.reads_total += counts[w]->reads;
    r.updates_total += counts[w]->updates;
  }
  r.ops_total = r.reads_total + r.updates_total;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.mops = static_cast<double>(r.ops_total) / r.seconds / 1e6;
  r.read_mops = static_cast<double>(r.reads_total) / r.seconds / 1e6;
  r.smr = set->smr_stats();
  r.vm_hwm_kib = runtime::vm_hwm_kib();
  r.final_size = set->size_slow();
  return r;
}

void print_table_header(const std::string& title) {
  std::printf("\n# %s\n", title.c_str());
  std::printf("%-5s %-13s %3s %8s %9s %9s %10s %11s %9s %8s %11s\n", "ds",
              "smr", "thr", "Mops", "readMops", "maxRetire", "unreclaimed",
              "VmHWM(KiB)", "signals", "pings", "neutralized");
  std::fflush(stdout);
}

namespace {

// POPSMR_BENCH_JSON=<path>: append one JSON object (JSON Lines) per
// printed cell, so figure runs also produce a machine-readable
// BENCH_*.json for the perf trajectory.
void append_json_row(const WorkloadConfig& cfg, const WorkloadResult& r) {
  static const std::string path = runtime::env_str("POPSMR_BENCH_JSON", "");
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"ds\":\"%s\",\"smr\":\"%s\",\"threads\":%d,\"mops\":%.6f,"
      "\"read_mops\":%.6f,\"vm_hwm_kib\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu}\n",
      cfg.ds.c_str(), cfg.smr.c_str(), cfg.threads, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent));
  std::fclose(f);
}

}  // namespace

void print_row(const WorkloadConfig& cfg, const WorkloadResult& r) {
  append_json_row(cfg, r);
  std::printf(
      "%-5s %-13s %3d %8.3f %9.3f %9llu %10llu %11llu %9llu %8llu %11llu\n",
      cfg.ds.c_str(), cfg.smr.c_str(), cfg.threads, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.max_retire_len),
      static_cast<unsigned long long>(r.smr.unreclaimed()),
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.smr.pings_received),
      static_cast<unsigned long long>(r.smr.neutralized));
  std::fflush(stdout);
}

std::vector<int> bench_thread_list(const std::string& fallback) {
  const std::string raw = runtime::env_str("POPSMR_BENCH_THREADS", fallback);
  std::vector<int> out;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int v = std::atoi(tok.c_str());
    if (v > 0) out.push_back(v);
  }
  if (out.empty()) out.push_back(2);
  return out;
}

std::vector<std::string> bench_smr_list() {
  const std::string raw = runtime::env_str("POPSMR_BENCH_SMRS", "");
  if (raw.empty()) return ds::all_smr_names();
  std::vector<std::string> out;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

uint64_t bench_duration_ms(uint64_t fallback) {
  return runtime::env_u64("POPSMR_BENCH_DURATION_MS", fallback);
}

}  // namespace pop::bench
