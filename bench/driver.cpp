#include "driver.hpp"

#include <cctype>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/obs.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"

namespace pop::bench {

// The legacy single-phase entry point, now a thin adapter: WorkloadConfig
// maps onto a one-phase ScenarioSpec and the scenario engine runs it (one
// worker-loop implementation for figures, scenarios, and tests alike).
// Invalid configs (prefill > key_range, op mix over 100%) are clamped by
// workload::normalize with a clear stderr message instead of silently
// wrapping as they used to.
WorkloadResult run_workload(const WorkloadConfig& cfg) {
  workload::ScenarioSpec spec;
  spec.name = "workload";
  spec.ds = cfg.ds;
  spec.smr = cfg.smr;
  spec.threads = cfg.threads;
  spec.key_range = cfg.key_range;
  spec.prefill = cfg.prefill;
  spec.load_factor = cfg.load_factor;
  spec.smr_cfg = cfg.smr_cfg;
  workload::PhaseSpec phase;
  phase.name = "main";
  phase.duration_ms = cfg.duration_ms;
  static_cast<workload::OpMix&>(phase) = cfg;  // the shared mix, wholesale
  phase.split_readers_writers = cfg.split_readers_writers;
  phase.writer_key_range = cfg.writer_key_range;
  spec.phases.push_back(phase);

  const auto r = workload::run_scenario(spec);

  WorkloadResult out;
  static_cast<workload::OpCounts&>(out) = r;  // the shared counters
  out.mops = r.mops;
  out.read_mops = r.read_mops;
  out.seconds = r.seconds;
  out.smr = r.smr;
  out.vm_hwm_kib = r.vm_hwm_kib;
  out.final_size = r.final_size;
  out.latency_all = r.latency_all;
  return out;
}

void print_table_header(const std::string& title) {
  std::printf("\n# %s\n", title.c_str());
  std::printf("%-5s %-13s %3s %8s %9s %9s %10s %11s %9s %8s %11s\n", "ds",
              "smr", "thr", "Mops", "readMops", "maxRetire", "unreclaimed",
              "VmHWM(KiB)", "signals", "pings", "neutralized");
  std::fflush(stdout);
}

namespace {

// POPSMR_BENCH_JSON=<path>: append one JSON object (JSON Lines) per
// printed cell, so figure runs also produce a machine-readable
// BENCH_*.json for the perf trajectory.
void append_json_row(const WorkloadConfig& cfg, const WorkloadResult& r) {
  static const std::string path = runtime::env_str("POPSMR_BENCH_JSON", "");
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  // Legacy (kind-less) row shape, now stamped with run_id/ts and carrying
  // the lat_* percentile block (zero-filled when --latency is off) so
  // concatenated multi-run artifacts stay disambiguable.
  std::fprintf(f, "{\"run_id\":%llu,\"ts\":%llu,",
               static_cast<unsigned long long>(obs::run_id()),
               static_cast<unsigned long long>(obs::wall_ts_ms()));
  workload::emit_latency_fields(f, r.latency_all);
  std::fprintf(
      f,
      "\"ds\":\"%s\",\"smr\":\"%s\",\"threads\":%d,\"mops\":%.6f,"
      "\"read_mops\":%.6f,\"vm_hwm_kib\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu}\n",
      cfg.ds.c_str(), cfg.smr.c_str(), cfg.threads, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent));
  std::fclose(f);
}

std::vector<std::string> split_csv(const std::string& raw) {
  std::vector<std::string> out;
  std::stringstream ss(raw);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

// The one parser behind every POPSMR_BENCH_* integer-list knob. Tokens
// without a number (after optional whitespace and sign) are dropped;
// values outside [lo, hi] are clamped into range when `clamp` is set and
// dropped otherwise. An empty result falls back to `def`.
std::vector<int> env_int_list(const char* var, const std::string& fallback,
                              int lo, int hi, bool clamp, int def) {
  const std::string raw = runtime::env_str(var, fallback);
  std::vector<int> out;
  for (const auto& tok : split_csv(raw)) {
    const std::size_t i = tok.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    const std::size_t d =
        i + ((tok[i] == '-' || tok[i] == '+') ? 1 : 0);
    if (d >= tok.size() || !std::isdigit(static_cast<unsigned char>(tok[d]))) {
      continue;  // no number: drop, don't parse to a silent 0
    }
    // strtol, not atoi: out-of-int-range input must saturate into the
    // range filter below instead of being undefined behavior.
    long v = std::strtol(tok.c_str() + i, nullptr, 10);
    if (v > INT_MAX) v = INT_MAX;
    if (v < INT_MIN) v = INT_MIN;
    if (v < lo) {
      if (!clamp) continue;
      v = lo;
    }
    if (v > hi) {
      if (!clamp) continue;
      v = hi;
    }
    out.push_back(static_cast<int>(v));
  }
  if (out.empty()) out.push_back(def);
  return out;
}

}  // namespace

void print_row(const WorkloadConfig& cfg, const WorkloadResult& r) {
  append_json_row(cfg, r);
  std::printf(
      "%-5s %-13s %3d %8.3f %9.3f %9llu %10llu %11llu %9llu %8llu %11llu\n",
      cfg.ds.c_str(), cfg.smr.c_str(), cfg.threads, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.max_retire_len),
      static_cast<unsigned long long>(r.smr.unreclaimed()),
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.smr.pings_received),
      static_cast<unsigned long long>(r.smr.neutralized));
  std::fflush(stdout);
}

std::vector<int> bench_thread_list(const std::string& fallback) {
  return env_int_list("POPSMR_BENCH_THREADS", fallback, 1, INT_MAX,
                      /*clamp=*/false, /*def=*/2);
}

std::vector<std::string> bench_smr_list() {
  const std::string raw = runtime::env_str("POPSMR_BENCH_SMRS", "");
  if (raw.empty()) return ds::all_smr_names();
  return split_csv(raw);
}

std::vector<std::string> bench_ds_list(const std::string& fallback) {
  const std::string raw = runtime::env_str("POPSMR_BENCH_DS", fallback);
  auto out = split_csv(raw);
  if (out.empty()) out.push_back("HML");
  return out;
}

std::vector<int> bench_shard_list(const std::string& fallback) {
  return env_int_list("POPSMR_BENCH_SHARDS", fallback, 1, INT_MAX,
                      /*clamp=*/false, /*def=*/1);
}

std::vector<int> bench_pct_put_list(const std::string& fallback) {
  // Clamped rather than dropped: 0 is a legitimate sweep point and an
  // out-of-range ratio still names a nearest meaningful cell.
  return env_int_list("POPSMR_BENCH_PCT_PUT", fallback, 0, 100,
                      /*clamp=*/true, /*def=*/50);
}

uint64_t bench_duration_ms(uint64_t fallback) {
  return runtime::env_u64("POPSMR_BENCH_DURATION_MS", fallback);
}

namespace {

// Bounded positive-int env knob with a one-line diagnosis on garbage
// (the CLI already validates the flag path; this guards direct exports).
int env_bounded_int(const char* var, int fallback, int lo, int hi) {
  const std::string raw = runtime::env_str(var, "");
  if (raw.empty()) return fallback;
  bool digits = raw.size() <= 10;
  for (const char c : raw) digits = digits && c >= '0' && c <= '9';
  const long v = digits ? std::strtol(raw.c_str(), nullptr, 10) : -1;
  if (!digits || v < lo || v > hi) {
    std::fprintf(stderr,
                 "popsmr bench: %s='%s' is not an integer in [%d, %d]; "
                 "using %d\n",
                 var, raw.c_str(), lo, hi, fallback);
    return fallback;
  }
  return static_cast<int>(v);
}

}  // namespace

std::string bench_host(const std::string& fallback) {
  const std::string raw = runtime::env_str("POPSMR_BENCH_HOST", "");
  if (raw.empty()) return fallback;
  bool ok = true;
  for (const char c : raw) {
    ok = ok && ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.');
  }
  if (!ok) {
    std::fprintf(stderr,
                 "popsmr bench: POPSMR_BENCH_HOST='%s' is not a host name "
                 "(allowed: A-Za-z0-9_-.); using %s\n",
                 raw.c_str(), fallback.empty() ? "<none>" : fallback.c_str());
    return fallback;
  }
  return raw;
}

int bench_port(int fallback) {
  return env_bounded_int("POPSMR_BENCH_PORT", fallback, 0, 65535);
}

int bench_connections(int fallback) {
  return env_bounded_int("POPSMR_BENCH_CONNECTIONS", fallback, 1, 4096);
}

int bench_pipeline(int fallback) {
  return env_bounded_int("POPSMR_BENCH_PIPELINE", fallback, 1, 4096);
}

int bench_net_workers(int fallback) {
  return env_bounded_int("POPSMR_NET_WORKERS", fallback, 1, 256);
}

}  // namespace pop::bench
