// popsmr_server: the standalone networked KV front end. Binds one
// (ds, smr, shards) ShardedMap behind the epoll server in src/net/ and
// serves the length-prefixed wire protocol until SIGINT/SIGTERM.
//
//   popsmr_server --port 17979 --ds HMHT --smr EpochPOP --shards 4
//                 --net-workers 2
//   POPSMR_BENCH_PORT=0 popsmr_server          # ephemeral port, printed
//
// The list-valued sweep knobs (--ds/--smr/--shards) are shared with the
// bench binaries; a server is one cell, so only the first entry of each
// list is used. On shutdown the served-op totals are printed to stdout
// (the loadgen emits the JSONL rows — the client side is where
// end-to-end latency is observable).
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "cli.hpp"
#include "driver.hpp"
#include "net/server.hpp"
#include "runtime/env.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

}  // namespace

int main(int argc, char** argv) {
  using namespace pop;
  const bench::CliOptions cli = bench::apply_bench_cli(argc, argv);
  (void)cli;

  net::NetServerConfig cfg;
  cfg.ds = bench::bench_ds_list("HMHT")[0];
  cfg.smr = bench::bench_smr_list()[0];
  cfg.shards = bench::bench_shard_list("1")[0];
  cfg.workers = bench::bench_net_workers(2);
  cfg.host = bench::bench_host("127.0.0.1");
  cfg.port = static_cast<uint16_t>(bench::bench_port(17979));
  cfg.set.capacity = runtime::env_u64("POPSMR_BENCH_KEY_RANGE", 1 << 16);

  auto server = net::NetServer::create(cfg);
  if (!server) return 2;

  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  server->start();
  std::printf("popsmr_server: listening on %s:%u (ds=%s smr=%s shards=%d "
              "workers=%d)\n",
              cfg.host.c_str(), unsigned{server->port()}, cfg.ds.c_str(),
              cfg.smr.c_str(), cfg.shards, cfg.workers);
  std::fflush(stdout);

  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server->stop();

  const auto s = server->total_stats();
  std::printf("popsmr_server: served %llu connections, %llu ops "
              "(gets=%llu puts=%llu dels=%llu pings=%llu errors=%llu, "
              "batches=%llu max_batch=%llu)\n",
              static_cast<unsigned long long>(server->connections_accepted()),
              static_cast<unsigned long long>(s.ops),
              static_cast<unsigned long long>(s.gets),
              static_cast<unsigned long long>(s.puts),
              static_cast<unsigned long long>(s.dels),
              static_cast<unsigned long long>(s.pings),
              static_cast<unsigned long long>(s.protocol_errors),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.max_batch));
  return 0;
}
