// Shared command-line parsing for the bench binaries, layered UNDER the
// POPSMR_BENCH_* environment knobs for CI compatibility: each value flag
// seeds the corresponding env var only when that var is not already set,
// so `POPSMR_BENCH_THREADS=8 bench_x --threads 2` still runs 8 threads
// and existing CI recipes keep working unchanged.
//
//   --threads 1,2,4        -> POPSMR_BENCH_THREADS
//   --smr EBR,EpochPOP     -> POPSMR_BENCH_SMRS
//   --ds HML,HMHT          -> POPSMR_BENCH_DS      (bench_scenarios)
//   --shards 1,2,4,8       -> POPSMR_BENCH_SHARDS  (bench_sharded)
//   --shard-hash modulo    -> POPSMR_SHARD_HASH    (bench_sharded)
//   --pct-put 0,10,50,90   -> POPSMR_BENCH_PCT_PUT (bench_kv)
//   --duration-ms 200      -> POPSMR_BENCH_DURATION_MS
//   --json out.jsonl       -> POPSMR_BENCH_JSON
//   --latency              -> POPSMR_OBS_LATENCY=1 (per-op histograms)
//   --hw-counters          -> POPSMR_OBS_HW=1 (perf counters per phase)
//   --trace out.trace.json -> POPSMR_TRACE (Chrome trace dumped at exit)
//   --host 127.0.0.1       -> POPSMR_BENCH_HOST   (loadgen: remote server;
//                             popsmr_server: bind address)
//   --port 17979           -> POPSMR_BENCH_PORT   (0..65535; 0 = ephemeral)
//   --connections 4        -> POPSMR_BENCH_CONNECTIONS (loadgen)
//   --pipeline 8           -> POPSMR_BENCH_PIPELINE    (loadgen batch depth)
//   --net-workers 2        -> POPSMR_NET_WORKERS  (server epoll workers)
//   --scenario NAME|all    scenario selection       (bench_scenarios)
//   --short                smoke mode: small key range, ~50 ms phases
//   --list                 list named scenarios and exit
//   --help                 usage and exit
//
// Unknown flags print usage and exit(2); figure binaries simply ignore
// the fields they don't consume. Identifier-valued flags (--scenario,
// --ds, --smr/--smrs, --shard-hash) are validated at parse time: names
// must match [A-Za-z0-9_-] (',' also allowed in list flags); anything
// else is diagnosed on one stderr line and rejected with exit(2) before
// it can leak into env vars, factory lookups, or JSONL string fields.
#pragma once

#include <string>

namespace pop::bench {

struct CliOptions {
  std::string scenario;  // empty = binary's default ("all" for scenarios)
  bool short_mode = false;
  bool list = false;
};

// Parses argv, seeds env knobs (without overriding), and returns the
// flags that are not env-backed. Exits on --help / parse errors.
CliOptions apply_bench_cli(int argc, char** argv);

}  // namespace pop::bench
