// §4.1.2 ablation: oversubscription — the paper's acknowledged worst case
// for POP, since a reclaimer must wait for descheduled threads to be
// scheduled before they can publish. Sweeps thread counts well past the
// core count on the HMHT update-heavy workload and reports how the POP
// family degrades relative to the fence-based and epoch-based schemes.
// (The handshake waits yield after a short spin, so a waiting reclaimer
// donates its timeslice to the threads it is waiting on.)
#include <thread>

#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# hardware threads: %u (counts beyond this are "
              "oversubscribed)\n", cores);
  const uint64_t dur = bench_duration_ms(150);

  print_table_header(
      "Ablation: oversubscription sweep, HMHT 16K update-heavy");
  for (int t : {1, 2, 4, 8, 16, 32}) {
    for (const char* smr :
         {"HP", "HPAsym", "EBR", "HazardPtrPOP", "EpochPOP", "NBR"}) {
      WorkloadConfig cfg;
      cfg.ds = "HMHT";
      cfg.smr = smr;
      cfg.threads = t;
      cfg.key_range = 16384;
      cfg.pct_insert = 50;
      cfg.pct_erase = 50;
      cfg.duration_ms = dur;
      cfg.smr_cfg.retire_threshold = 512;
      print_row(cfg, run_workload(cfg));
    }
  }
  return 0;
}
