// Microbenchmark behind §2.1.2: the per-read cost of protect() for every
// scheme. The paper's perf analysis found HP searches spend ~50% of
// cycles on reading hazard pointers vs ~15% leaky; here the same effect
// appears as ns/protect — HP pays a StoreLoad fence per read, HPAsym a
// plain store, the POP family a private store, era schemes an era check,
// and EBR/NR/NBR nothing.
#include <benchmark/benchmark.h>

#include <atomic>

#include "smr/all.hpp"

namespace {

struct TNode : pop::smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

template <class Smr>
void BM_ProtectChain(benchmark::State& state) {
  Smr d;
  constexpr int kChain = 64;  // pointer-chase like a list traversal
  TNode* nodes[kChain];
  std::atomic<TNode*> edges[kChain];
  for (int i = 0; i < kChain; ++i) nodes[i] = d.template create<TNode>(i);
  for (int i = 0; i < kChain; ++i) edges[i].store(nodes[i]);

  for (auto _ : state) {
    typename Smr::Guard g(d);
    TNode* sink = nullptr;
    for (int i = 0; i < kChain; ++i) {
      sink = d.protect(i & 3, edges[i]);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kChain);
  state.counters["ns_per_protect"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kChain,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);

  for (int i = 0; i < kChain; ++i) pop::smr::destroy_unpublished(nodes[i]);
}

}  // namespace

BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::NrDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::HpDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::HpAsymDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::HeDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::EbrDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::IbrDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::NbrDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::smr::BrcDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::core::HazardPtrPopDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::core::HazardEraPopDomain);
BENCHMARK_TEMPLATE(BM_ProtectChain, pop::core::EpochPopDomain);

BENCHMARK_MAIN();
