// Free-path microbenchmark: per-node PoolAllocator::deallocate versus the
// batched FreeBatch splice, under the cross-thread free pattern deferred
// reclamation produces (§5.0.1: a reclaimer frees large batches of blocks
// owned by other threads' heaps). Every thread allocates a slab of blocks;
// then every thread sweeps the owner heaps in the SAME order, freeing its
// slice of each OTHER thread's blocks — the reclamation-storm shape where
// all reclaimers hit threshold together and each retire list frees in
// allocation order (owner-clustered runs). Per-node mode pays one CAS per
// block on stacks all T-1 peers are hammering; batch mode pays one CAS
// per (owner heap, size class) group per flush.
//
// Methodology: the two modes alternate within each round so both sample
// the same machine state, timing uses per-thread CPU time (robust to
// oversubscription), and the reported speedup is the median of per-round
// ratios.
//
// Knobs: POPSMR_BENCH_THREADS (default "8"), POPSMR_MICRO_BLOCKS (blocks
// per thread per round, default 4096), POPSMR_MICRO_ROUNDS (default 25),
// POPSMR_BENCH_JSON (append one JSON object per row).
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "obs/obs.hpp"
#include "runtime/env.hpp"
#include "runtime/pool_alloc.hpp"

namespace {

using pop::runtime::PoolAllocator;

struct ModeResult {
  double frees_per_sec = 0;
  uint64_t remote_frees = 0;
  uint64_t remote_splices = 0;
};

struct PairResult {
  ModeResult per_node;
  ModeResult batched;
  double speedup = 0;  // median of per-round per_node/batched time ratios
};

// Per-thread CPU time: excludes preemption, so the per-node/batched ratio
// stays meaningful even when the benchmark is oversubscribed (more
// threads than cores, e.g. CI runners).
uint64_t thread_cpu_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t median(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Thread t frees, for every owner o != t, the contiguous slice of o's
// blocks at t's rank among o's T-1 freeers — each block freed exactly
// once, never by its owner, in owner-clustered runs with all threads
// visiting owners in the same order.
PairResult run(int threads, uint64_t blocks, uint64_t rounds) {
  const std::size_t block_size = 64;
  const uint64_t total_rounds = rounds + 1;  // round 0 is warmup
  std::vector<std::vector<void*>> owned(threads,
                                        std::vector<void*>(blocks, nullptr));
  std::atomic<int> phase_arrived{0};
  std::atomic<uint64_t> phase{0};
  // Per (round, mode) CPU nanoseconds summed over threads.
  std::vector<std::vector<std::atomic<uint64_t>>> nanos;
  nanos.emplace_back(total_rounds);
  nanos.emplace_back(total_rounds);
  for (auto& v : nanos) {
    for (auto& n : v) n.store(0);
  }
  // Remote-free counter snapshots, sampled by thread 0 in the quiescent
  // window after each free phase (alloc phases never touch these).
  uint64_t remote_frees[2] = {0, 0};
  uint64_t remote_splices[2] = {0, 0};

  auto barrier = [&](uint64_t expect) {
    // Phase barrier keyed on a monotonically increasing id; the last
    // arrival advances the phase.
    if (phase_arrived.fetch_add(1) + 1 == threads) {
      phase_arrived.store(0);
      phase.store(expect + 1, std::memory_order_release);
    } else {
      while (phase.load(std::memory_order_acquire) <= expect) {
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t ph = 0;
      for (uint64_t r = 0; r < total_rounds; ++r) {
        // Alternate which mode goes first: each free phase inherits the
        // block layout the previous phase produced (chained vs scattered),
        // so a fixed order would bias whichever mode runs second.
        for (int k = 0; k < 2; ++k) {
          const int mode = static_cast<int>(r & 1) ^ k;  // 0 = per-node
          // Remote counters are quiescent here (the previous free phase
          // fully landed; alloc phases never touch them).
          uint64_t before_frees = 0, before_splices = 0;
          if (t == 0) {
            const auto s = PoolAllocator::instance().stats();
            before_frees = s.remote_frees;
            before_splices = s.remote_splices;
          }
          for (uint64_t j = 0; j < blocks; ++j) {
            owned[t][j] = PoolAllocator::instance().allocate(block_size);
          }
          barrier(ph++);
          const uint64_t t0 = thread_cpu_nanos();
          if (mode == 1) {
            PoolAllocator::FreeBatch batch;
            for (int o = 0; o < threads; ++o) {
              if (o == t) continue;
              const int rank = t < o ? t : t - 1;
              const uint64_t lo = blocks * rank / (threads - 1);
              const uint64_t hi = blocks * (rank + 1) / (threads - 1);
              void* const* slice = owned[o].data();
              for (uint64_t j = lo; j < hi; ++j) batch.add(slice[j]);
            }
          } else {
            for (int o = 0; o < threads; ++o) {
              if (o == t) continue;
              const int rank = t < o ? t : t - 1;
              const uint64_t lo = blocks * rank / (threads - 1);
              const uint64_t hi = blocks * (rank + 1) / (threads - 1);
              void* const* slice = owned[o].data();
              for (uint64_t j = lo; j < hi; ++j) {
                PoolAllocator::instance().deallocate(slice[j]);
              }
            }
          }
          nanos[mode][r].fetch_add(thread_cpu_nanos() - t0);
          barrier(ph++);  // all frees landed; remote counters quiescent
          if (t == 0 && r > 0) {
            const auto s = PoolAllocator::instance().stats();
            remote_frees[mode] += s.remote_frees - before_frees;
            remote_splices[mode] += s.remote_splices - before_splices;
          }
          barrier(ph++);  // hold the quiescent window for the sampler
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  PairResult res;
  std::vector<uint64_t> per_round[2];
  std::vector<uint64_t> ratio_milli;
  for (uint64_t r = 1; r < total_rounds; ++r) {  // skip warmup
    const uint64_t pn = nanos[0][r].load();
    const uint64_t b = nanos[1][r].load();
    per_round[0].push_back(pn);
    per_round[1].push_back(b);
    ratio_milli.push_back(b == 0 ? 0 : pn * 1000 / b);
  }
  ModeResult* out[2] = {&res.per_node, &res.batched};
  for (int mode = 0; mode < 2; ++mode) {
    const double med_seconds =
        static_cast<double>(median(per_round[mode])) / 1e9 / threads;
    out[mode]->frees_per_sec =
        static_cast<double>(blocks) * threads / med_seconds;
    out[mode]->remote_frees = remote_frees[mode];
    out[mode]->remote_splices = remote_splices[mode];
  }
  res.speedup = static_cast<double>(median(ratio_milli)) / 1000.0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::runtime;
  const auto thread_list = pop::bench::bench_thread_list("8");
  const uint64_t blocks = env_u64("POPSMR_MICRO_BLOCKS", 4096);
  const uint64_t rounds = std::max<uint64_t>(env_u64("POPSMR_MICRO_ROUNDS", 25), 1);
  const std::string json_path = env_str("POPSMR_BENCH_JSON", "");

  std::printf("# micro_free_batch: cross-thread free throughput, %llu x %llu"
              " 64B blocks/thread (median of interleaved rounds)\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(blocks));
  std::printf("%7s %9s %12s %13s %14s %8s\n", "threads", "mode", "Mfrees/s",
              "remoteFrees", "remoteSplices", "speedup");

  for (const int t : thread_list) {
    if (t < 2) continue;  // the stripe needs at least one remote peer

    const PairResult pr = run(t, blocks, rounds);
    std::printf("%7d %9s %12.2f %13llu %14llu %8s\n", t, "per-node",
                pr.per_node.frees_per_sec / 1e6,
                static_cast<unsigned long long>(pr.per_node.remote_frees),
                static_cast<unsigned long long>(pr.per_node.remote_splices),
                "");
    std::printf("%7d %9s %12.2f %13llu %14llu %7.2fx\n", t, "batched",
                pr.batched.frees_per_sec / 1e6,
                static_cast<unsigned long long>(pr.batched.remote_frees),
                static_cast<unsigned long long>(pr.batched.remote_splices),
                pr.speedup);
    if (!json_path.empty()) {
      if (std::FILE* f = std::fopen(json_path.c_str(), "a")) {
        std::fprintf(
            f,
            "{\"bench\":\"micro_free_batch\",\"run_id\":%llu,\"ts\":%llu,"
            "\"threads\":%d,"
            "\"per_node_mfrees\":%.3f,\"batched_mfrees\":%.3f,"
            "\"speedup\":%.3f,\"batched_remote_frees\":%llu,"
            "\"batched_remote_splices\":%llu}\n",
            static_cast<unsigned long long>(pop::obs::run_id()),
            static_cast<unsigned long long>(pop::obs::wall_ts_ms()),
            t, pr.per_node.frees_per_sec / 1e6,
            pr.batched.frees_per_sec / 1e6, pr.speedup,
            static_cast<unsigned long long>(pr.batched.remote_frees),
            static_cast<unsigned long long>(pr.batched.remote_splices));
        std::fclose(f);
      }
    }
  }
  return 0;
}
