// Appendix Figures 5-9: for every data structure, update-heavy and
// read-heavy mixes with the full memory metrics the appendix plots —
// throughput, max resident memory (VmHWM) and total unreclaimed nodes.
//
// Scaled to this container; override with POPSMR_BENCH_* (see fig1).
// Note VmHWM is a process-lifetime high-watermark: compare rows within
// one scheme sweep qualitatively, or run single cells via the env knobs
// for exact numbers.
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  struct DsCase {
    const char* ds;
    uint64_t range;
    const char* fig;
  };
  const DsCase cases[] = {{"ABT", 65536, "Figure 5"},
                          {"DGT", 8192, "Figure 6"},
                          {"HMHT", 16384, "Figure 7"},
                          {"HML", 2048, "Figure 8"},
                          {"LL", 2048, "Figure 9"}};
  struct Mix {
    const char* name;
    uint32_t ins, del;
  };
  const Mix mixes[] = {{"update-heavy 50i/50d", 50, 50},
                       {"read-heavy 5i/5d/90c", 5, 5}};
  const auto threads = bench_thread_list("2,4");
  const auto smrs = bench_smr_list();
  const uint64_t dur = bench_duration_ms(150);

  for (const auto& c : cases) {
    for (const auto& m : mixes) {
      print_table_header(std::string(c.fig) + ": " + c.ds + ", " + m.name +
                         " (throughput / VmHWM / unreclaimed)");
      for (int t : threads) {
        for (const auto& smr : smrs) {
          WorkloadConfig cfg;
          cfg.ds = c.ds;
          cfg.smr = smr;
          cfg.threads = t;
          cfg.key_range = c.range;
          cfg.pct_insert = m.ins;
          cfg.pct_erase = m.del;
          cfg.duration_ms = dur;
          cfg.smr_cfg.retire_threshold = 512;
          print_row(cfg, run_workload(cfg));
        }
      }
    }
  }
  return 0;
}
