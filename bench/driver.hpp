// Benchmark driver: re-implementation of the NBR(+) benchmark methodology
// the paper uses (§5.0.2): prefill the structure to half its key range,
// then run a timed phase of randomly chosen insert/delete/contains
// operations with uniformly random keys, reporting throughput and memory
// metrics per (data structure, scheme, thread count) cell.
//
// run_workload is a thin wrapper over the scenario engine in
// src/workload/ (a WorkloadConfig is a one-phase ScenarioSpec): the
// engine owns the worker loop, and also runs the skewed / phased /
// churning / stalling workloads bench_scenarios sweeps — see
// workload/scenario.hpp for the axes and workload/scenarios.hpp for the
// named matrix. bench/cli.hpp layers shared --flags over the
// POPSMR_BENCH_* environment knobs listed at the bottom of this header.
#pragma once

#include <cstdint>
#include <string>

#include "ds/iset.hpp"
#include "obs/latency_histo.hpp"
#include "smr/smr_config.hpp"
#include "workload/op_mix.hpp"

namespace pop::bench {

// The op mix (pct_insert / pct_erase / pct_put, remainder get) is the
// shared workload::OpMix base — the same vocabulary PhaseSpec uses, so
// the driver and the scenario engine cannot drift apart again.
struct WorkloadConfig : workload::OpMix {
  std::string ds = "HML";
  std::string smr = "NR";
  int threads = 2;
  uint64_t key_range = 2048;
  // Keys prefilled before the timed phase (default: key_range / 2).
  uint64_t prefill = UINT64_MAX;
  uint64_t duration_ms = 200;
  double load_factor = 6.0;  // hash table only
  smr::SmrConfig smr_cfg;

  // Long-running-reads mode (Figure 4): half the threads only run
  // contains() over the full key range; the other half update keys near
  // the head of the structure, in [0, writer_key_range).
  bool split_readers_writers = false;
  uint64_t writer_key_range = 64;
};

// Per-op counters (ops/reads/updates + the KV breakdown) come from the
// shared workload::OpCounts base; `ops` is the old ops_total.
struct WorkloadResult : workload::OpCounts {
  double mops = 0;        // total million ops/second
  double read_mops = 0;   // get()/contains() throughput only
  double seconds = 0;
  smr::StatsSnapshot smr;
  uint64_t vm_hwm_kib = 0;
  uint64_t final_size = 0;
  // Merged point-op latency percentiles (count == 0 unless the latency
  // channel was on: POPSMR_OBS_LATENCY / --latency).
  obs::LatencySummary latency_all;
};

// Builds the set, prefills, runs the timed phase, joins, snapshots stats.
WorkloadResult run_workload(const WorkloadConfig& cfg);

// ---- table printing -------------------------------------------------------

// Prints "# <title>" followed by the standard column header.
void print_table_header(const std::string& title);

// Prints one row for `cfg`/`r` in the standard column layout.
void print_row(const WorkloadConfig& cfg, const WorkloadResult& r);

// Shared environment knobs (every figure binary honours these; the
// bench/cli.hpp flags seed them only when unset, so exported env wins):
//   POPSMR_BENCH_DURATION_MS  per-cell duration    (default per figure)
//   POPSMR_BENCH_THREADS      comma list, e.g. "1,2,4"
//   POPSMR_BENCH_SMRS         comma list of scheme names
//   POPSMR_BENCH_DS           comma list of data structures (bench_scenarios)
//   POPSMR_BENCH_PCT_PUT      comma list of put ratios (bench_kv)
//   POPSMR_BENCH_JSON         path; print_row also appends one JSON object
//                             per cell (JSON Lines: run_id, ts, ds, smr,
//                             threads, mops, read_mops, vm_hwm_kib, freed,
//                             signals_sent, lat_* percentiles) — the
//                             BENCH_*.json perf-trajectory rail.
//                             bench_scenarios appends kind-tagged phase and
//                             mem_sample rows to the same file
//   POPSMR_OBS_LATENCY        1 = record per-op latency histograms (--latency)
//   POPSMR_OBS_HW             1 = per-phase perf counters (--hw-counters)
//   POPSMR_TRACE              path; arm the event tracer and dump a Chrome
//                             trace-event JSON at exit (--trace PATH)
//   POPSMR_TRACE_RING         per-thread ring capacity in events (def. 8192)
std::vector<int> bench_thread_list(const std::string& fallback);
std::vector<std::string> bench_smr_list();
std::vector<std::string> bench_ds_list(const std::string& fallback);
// POPSMR_BENCH_SHARDS comma list (bench_sharded's sweep axis).
std::vector<int> bench_shard_list(const std::string& fallback);
// POPSMR_BENCH_PCT_PUT comma list of put ratios (bench_kv's sweep axis);
// values are clamped to [0, 100].
std::vector<int> bench_pct_put_list(const std::string& fallback);
uint64_t bench_duration_ms(uint64_t fallback);

// ---- networked front-end knobs (bench_loadgen / popsmr_server) ------------
// POPSMR_BENCH_HOST / POPSMR_BENCH_PORT: where the loadgen connects (and
// where popsmr_server binds). Env wins over the --host/--port flags like
// every other knob; a malformed env value (bad charset, port out of
// [0, 65535]) is diagnosed on one stderr line and replaced by `fallback`
// — it must not leak into connect() or a JSONL label. An empty-string
// host fallback means "no remote server" (the loadgen spawns in-process).
std::string bench_host(const std::string& fallback);
int bench_port(int fallback);
// POPSMR_BENCH_CONNECTIONS / POPSMR_BENCH_PIPELINE / POPSMR_NET_WORKERS:
// loadgen connection count, pipelined batch depth, and server epoll
// worker count. Non-numeric or non-positive values fall back.
int bench_connections(int fallback);
int bench_pipeline(int fallback);
int bench_net_workers(int fallback);

}  // namespace pop::bench
