// §4.1.2: the cost of a publish-on-ping round. Measures the latency of
// ping_all_and_wait() — collect counters, pthread_kill every thread, wait
// for all publishes — against the number of (busy) peer threads,
// including oversubscription beyond the core count. This is the cost a
// POP reclaimer pays once per reclamation pass, amortized over
// retire_threshold retirements.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "core/pop_engine.hpp"
#include "runtime/env.hpp"
#include "runtime/thread_registry.hpp"

int main(int argc, char** argv) {
  using namespace pop;
  bench::apply_bench_cli(argc, argv);
  const uint64_t rounds = runtime::env_u64("POPSMR_BENCH_ROUNDS", 200);
  std::printf("# ping_all_and_wait latency vs peer threads (%llu rounds)\n",
              static_cast<unsigned long long>(rounds));
  std::printf("%8s %14s %14s\n", "peers", "mean_us", "max_us");

  for (int peers : {0, 1, 2, 4, 8, 16}) {
    core::PopEngine engine(4);
    std::atomic<bool> stop{false};
    std::atomic<int> up{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < peers; ++i) {
      ts.emplace_back([&] {
        const int tid = runtime::my_tid();
        engine.attach(tid);
        up.fetch_add(1);
        // Busy loop with changing local reservations, like a traversal.
        uintptr_t v = 0x1000;
        while (!stop.load(std::memory_order_relaxed)) {
          engine.reserve_local(tid, 0, v);
          v += 16;
        }
        engine.detach(tid);
      });
    }
    while (up.load() < peers) std::this_thread::yield();

    const int self = runtime::my_tid();
    engine.attach(self);
    double total_us = 0, max_us = 0;
    for (uint64_t r = 0; r < rounds; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      engine.ping_all_and_wait(self);
      const auto t1 = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      total_us += us;
      if (us > max_us) max_us = us;
    }
    engine.detach(self);
    stop.store(true);
    for (auto& t : ts) t.join();
    std::printf("%8d %14.2f %14.2f\n", peers, total_us / rounds, max_us);
    std::fflush(stdout);
  }
  return 0;
}
