// Figure 1 (a,b,c): update-heavy workload (50% insert / 50% delete) on
// DGT, HMHT and ABT — throughput and max retire-list size per scheme and
// thread count.
//
// Paper setup: DGT 200K, HMHT 6M, ABT 20M keys, 1..288 threads, 5 s runs,
// retire threshold 24K, on a 144-thread Cascade Lake. This container has
// one core, so the defaults are scaled (sizes /~25, threads {1,2,4},
// 200 ms cells, threshold 512); shapes — who wins, who pays fences, whose
// retire lists stay small — are what to compare. Override with
// POPSMR_BENCH_{THREADS,SMRS,DURATION_MS}.
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  struct DsCase {
    const char* ds;
    uint64_t range;
  };
  const DsCase cases[] = {{"DGT", 8192}, {"HMHT", 16384}, {"ABT", 65536}};
  const auto threads = bench_thread_list("1,2,4");
  const auto smrs = bench_smr_list();
  const uint64_t dur = bench_duration_ms(200);

  for (const auto& c : cases) {
    print_table_header(std::string("Figure 1: update-heavy 50i/50d, ") +
                       c.ds + " size " + std::to_string(c.range / 2));
    for (int t : threads) {
      for (const auto& smr : smrs) {
        WorkloadConfig cfg;
        cfg.ds = c.ds;
        cfg.smr = smr;
        cfg.threads = t;
        cfg.key_range = c.range;
        cfg.pct_insert = 50;
        cfg.pct_erase = 50;
        cfg.duration_ms = dur;
        cfg.smr_cfg.retire_threshold = 512;
        print_row(cfg, run_workload(cfg));
      }
    }
  }
  return 0;
}
