// bench_sharded: the service-layer scale sweep. Runs a named scenario
// (default sharded-uniform; sharded-hotspot shows a hot shard under
// Zipfian keys) per (ds, smr, threads) cell at every shard count in the
// sweep — throughput should rise with shard count once a single domain's
// contention (retire lists, wave membership, epoch advances) saturates,
// and the per-shard ops spread shows how evenly the hash spreads load.
//
//   bench_sharded                                  # sharded-uniform sweep
//   bench_sharded --scenario sharded-hotspot --smr EpochPOP --threads 8
//   bench_sharded --shards 1,2,4,8 --shard-hash modulo
//   bench_sharded --short                          # CI smoke cell
//
// With POPSMR_BENCH_JSON (or --json) set, every cell appends one
// kind-tagged "sharded" JSONL summary row plus one "shard" row per shard
// (per-shard routed ops / retired / freed / unreclaimed).
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"
#include "workload/scenarios.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

void print_header(const std::string& scenario, const std::string& hash) {
  std::printf("\n# scenario %s (shard hash %s): %s\n", scenario.c_str(),
              hash.c_str(), scenario_description(scenario).c_str());
  std::printf("%-5s %-13s %3s %6s %8s %9s %10s %9s %10s %10s\n", "ds", "smr",
              "thr", "shards", "Mops", "readMops", "unreclaimed", "signals",
              "maxShardOp", "minShardOp");
  std::fflush(stdout);
}

void print_cell(const ScenarioSpec& spec, const ScenarioResult& r) {
  std::printf("%-5s %-13s %3d %6d %8.3f %9.3f %10llu %9llu %10llu %10llu\n",
              spec.ds.c_str(), spec.smr.c_str(), spec.threads, spec.shards,
              r.mops, r.read_mops,
              static_cast<unsigned long long>(r.final_unreclaimed),
              static_cast<unsigned long long>(r.smr.signals_sent),
              static_cast<unsigned long long>(r.service.ops_max_shard()),
              static_cast<unsigned long long>(r.service.ops_min_shard()));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);

  if (cli.list) {
    for (const auto& name : scenario_names()) {
      std::printf("%-22s %s\n", name.c_str(),
                  scenario_description(name).c_str());
    }
    return 0;
  }

  std::vector<std::string> selected;
  if (cli.scenario.empty()) {
    selected = {"sharded-uniform"};
  } else if (cli.scenario == "all") {
    selected = {"sharded-uniform", "sharded-hotspot"};
  } else {
    if (!make_scenario(cli.scenario, {})) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   cli.scenario.c_str());
      return 2;
    }
    selected.push_back(cli.scenario);
  }

  const auto ds_list = bench_ds_list("HML");
  const auto smrs = bench_smr_list();
  const auto threads = bench_thread_list("8");
  const auto shard_counts = bench_shard_list("1,2,4,8");
  const std::string hash = runtime::env_str("POPSMR_SHARD_HASH", "splitmix");
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");

  for (const auto& scenario : selected) {
    print_header(scenario, hash);
    for (const auto& ds : ds_list) {
      for (int t : threads) {
        for (const auto& smr : smrs) {
          for (int shards : shard_counts) {
            ScenarioBuild b;
            b.ds = ds;
            b.smr = smr;
            b.threads = t;
            b.shards = shards;
            if (cli.short_mode) {
              // ~50 ms phases over a small universe: the CI smoke cell.
              b.time_scale = 0.25;
              b.key_range = 512;
            }
            auto spec = make_scenario(scenario, b);
            spec->shard_hash = hash;
            // This binary emits no mem_sample rows, so don't pay for the
            // background sampler (its per-cadence stats sweeps would also
            // perturb the throughput-vs-shard-count comparison).
            spec->mem_sample_every_ms = 0;
            // Normalize BEFORE reporting: run_scenario clamps a private
            // copy, so printing the raw spec would attribute results to a
            // configuration (e.g. --shards beyond the key range, a typo'd
            // --shard-hash) that never actually ran.
            for (const auto& w : normalize(*spec)) {
              std::fprintf(stderr, "bench_sharded %s: %s\n", scenario.c_str(),
                           w.c_str());
            }
            const auto r = run_scenario(*spec);
            print_cell(*spec, r);
            emit_sharded_jsonl(json, *spec, r);
          }
        }
      }
    }
  }
  return 0;
}
