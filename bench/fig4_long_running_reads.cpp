// Figure 4: long-running reads on HML. Half the threads run full-range
// searches (long traversals), half update keys near the head; the retire
// threshold is deliberately tiny so reclamation — and therefore NBR's
// neutralization signals — fire constantly.
//
// The paper's result: NBR+'s read throughput collapses (readers restart
// from the head on every reclaim) while the POP algorithms keep reading,
// since a pinged POP reader just publishes and continues. We report the
// read-throughput *ratio to NR* per list size, plus the restart count.
//
// Paper setup: sizes 10K..800K, 96+96 threads, threshold 2K. Scaled here
// to sizes {10K,50K,100K}, 2+2 threads, threshold 64 (override with
// POPSMR_BENCH_RETIRE_THRESHOLD): with 2 updaters instead of 96 the
// threshold must shrink proportionally for reclaim rounds to hit each
// long-running read more than once, which is the effect Figure 4 shows.
//
// Reading the ratio column on a 1-core host: NR's unbounded garbage
// pollutes the cache and its updaters never pause to reclaim, so NR's
// *reader* throughput is not the fastest here; the paper's comparison to
// take away is POP-family vs NBR as reads get longer, and NBR's restart
// count.
#include "cli.hpp"
#include "driver.hpp"

#include <map>

#include "runtime/env.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  std::vector<uint64_t> sizes = {10'000, 50'000, 100'000};
  if (const uint64_t s = pop::runtime::env_u64("POPSMR_BENCH_LIST_SIZE", 0);
      s != 0) {
    sizes = {s};
  }
  const auto smrs = bench_smr_list();
  const uint64_t dur = bench_duration_ms(300);
  const uint64_t threshold =
      pop::runtime::env_u64("POPSMR_BENCH_RETIRE_THRESHOLD", 64);
  const int threads = static_cast<int>(bench_thread_list("4").front());

  print_table_header(
      "Figure 4: long-running reads, HML; half readers (full-range "
      "contains), half head-updaters; tiny retire threshold");
  std::printf("%-8s %-13s %10s %12s %11s\n", "size", "smr", "readMops",
              "ratio-to-NR", "neutralized");

  for (uint64_t size : sizes) {
    // NR first: the denominator for the ratio column.
    std::map<std::string, WorkloadResult> results;
    double nr_read_mops = 0;
    for (const auto& smr : smrs) {
      WorkloadConfig cfg;
      cfg.ds = "HML";
      cfg.smr = smr;
      cfg.threads = threads;
      cfg.key_range = size;
      cfg.split_readers_writers = true;
      cfg.writer_key_range = 64;  // updates near the head
      cfg.duration_ms = dur;
      cfg.smr_cfg.retire_threshold = threshold;  // paper: 2K (scaled)
      results[smr] = run_workload(cfg);
      if (smr == "NR") nr_read_mops = results[smr].read_mops;
    }
    if (nr_read_mops <= 0) nr_read_mops = 1e-9;
    for (const auto& smr : smrs) {
      const auto& r = results[smr];
      std::printf("%-8llu %-13s %10.4f %12.3f %11llu\n",
                  static_cast<unsigned long long>(size), smr.c_str(),
                  r.read_mops, r.read_mops / nr_read_mops,
                  static_cast<unsigned long long>(r.smr.neutralized));
      std::fflush(stdout);
    }
  }
  return 0;
}
