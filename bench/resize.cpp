// bench_resize: the initial-capacity-deficit sweep for the resizable
// hash table. Every cell runs the same two-phase spec — a "storm" phase
// (insert/put heavy, filling the key range from a cold, under-provisioned
// table) followed by a "steady" phase (mixed traffic over the now-full
// range) — and the sweep varies how badly the table was provisioned:
// deficit D means initial_capacity = key_range / D, so D = 1 is a
// correctly provisioned table and D = 64 forces ~6 doublings mid-storm.
//
// The reference cell per (smr, threads) is a correctly-provisioned fixed
// HMHT: its steady-phase throughput is the bar, and every RHHT row
// reports recovery_pct = steady / reference — the claim under test being
// that after the grow storm the resizable table recovers to within ~10%
// of a table that was sized right from the start.
//
//   bench_resize                                  # deficits 1,16,64
//   bench_resize --smr EBR,EpochPOP --threads 4
//   bench_resize --short                          # CI smoke cell
//
// With POPSMR_BENCH_JSON (or --json) set, every cell appends one
// kind-tagged "resize" JSONL row (deficit, grows/shrinks/buckets_final,
// storm/steady split, recovery_pct, retired/freed).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "driver.hpp"
#include "runtime/env.hpp"
#include "workload/jsonl.hpp"
#include "workload/scenario_engine.hpp"

namespace {

using namespace pop;
using namespace pop::bench;
using namespace pop::workload;

// POPSMR_BENCH_DEFICITS comma list; values below 1 are dropped.
std::vector<uint64_t> deficit_list() {
  const std::string raw = runtime::env_str("POPSMR_BENCH_DEFICITS", "1,16,64");
  std::vector<uint64_t> out;
  uint64_t v = 0;
  bool have = false;
  for (const char c : raw + ",") {
    if (c >= '0' && c <= '9') {
      v = v * 10 + static_cast<uint64_t>(c - '0');
      have = true;
    } else {
      if (have && v >= 1) out.push_back(v);
      v = 0;
      have = false;
    }
  }
  return out.empty() ? std::vector<uint64_t>{1, 16, 64} : out;
}

ScenarioSpec make_spec(const std::string& ds, const std::string& smr,
                       int threads, uint64_t key_range, uint64_t deficit,
                       uint64_t duration_ms) {
  ScenarioSpec spec;
  spec.name = "grow-storm";
  spec.ds = ds;
  spec.smr = smr;
  spec.threads = threads;
  spec.key_range = key_range;
  spec.prefill = 0;  // the storm IS the fill: growth happens under load
  spec.initial_capacity = std::max<uint64_t>(2, key_range / deficit);
  PhaseSpec storm;
  storm.name = "storm";
  storm.duration_ms = duration_ms;
  storm.pct_insert = 70;
  storm.pct_erase = 0;
  storm.pct_put = 20;
  PhaseSpec steady;
  steady.name = "steady";
  steady.duration_ms = duration_ms;
  steady.pct_insert = 10;
  steady.pct_erase = 10;
  steady.pct_put = 20;
  spec.phases.push_back(storm);
  spec.phases.push_back(steady);
  return spec;
}

void print_header() {
  std::printf("\n# resize sweep: deficit D provisions the table for "
              "key_range/D keys; recovery%% compares steady-phase Mops to "
              "a correctly-provisioned fixed HMHT\n");
  std::printf("%-5s %-13s %3s %7s %6s %7s %8s %9s %10s %9s %9s\n", "ds",
              "smr", "thr", "deficit", "grows", "shrinks", "buckets",
              "stormMops", "steadyMops", "recov%", "unreclaim");
  std::fflush(stdout);
}

void print_cell(const ScenarioSpec& spec, uint64_t deficit, double storm,
                double steady, double recovery, const ScenarioResult& r) {
  std::printf("%-5s %-13s %3d %7llu %6llu %7llu %8llu %9.3f %10.3f %9.1f "
              "%9llu\n",
              spec.ds.c_str(), spec.smr.c_str(), spec.threads,
              static_cast<unsigned long long>(deficit),
              static_cast<unsigned long long>(r.grows),
              static_cast<unsigned long long>(r.shrinks),
              static_cast<unsigned long long>(r.buckets_final), storm, steady,
              recovery, static_cast<unsigned long long>(r.final_unreclaimed));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = apply_bench_cli(argc, argv);
  if (cli.list) {
    std::printf("bench_resize sweeps POPSMR_BENCH_DEFICITS (default "
                "1,16,64) against a fixed-HMHT reference; it has no named "
                "scenarios\n");
    return 0;
  }

  const auto smrs = bench_smr_list();
  const auto threads = bench_thread_list("4");
  const auto deficits = deficit_list();
  const std::string json = runtime::env_str("POPSMR_BENCH_JSON", "");
  const uint64_t duration = bench_duration_ms(cli.short_mode ? 50 : 200);
  const uint64_t key_range = cli.short_mode ? 2048 : 16384;

  print_header();
  for (int t : threads) {
    for (const auto& smr : smrs) {
      // Reference: a fixed table provisioned for the full key range.
      ScenarioSpec ref = make_spec("HMHT", smr, t, key_range, 1, duration);
      for (const auto& w : normalize(ref)) {
        std::fprintf(stderr, "bench_resize: %s\n", w.c_str());
      }
      const ScenarioResult rr = run_scenario(ref);
      const double ref_steady = rr.phases.size() > 1 ? rr.phases[1].mops : 0;
      print_cell(ref, 1, rr.phases[0].mops, ref_steady, 100.0, rr);
      emit_resize_jsonl(json, ref, 1, rr.phases[0].mops, ref_steady, 100.0,
                        rr);

      for (const uint64_t d : deficits) {
        ScenarioSpec spec = make_spec("RHHT", smr, t, key_range, d, duration);
        for (const auto& w : normalize(spec)) {
          std::fprintf(stderr, "bench_resize: %s\n", w.c_str());
        }
        const ScenarioResult r = run_scenario(spec);
        const double steady = r.phases.size() > 1 ? r.phases[1].mops : 0;
        const double recovery =
            ref_steady > 0 ? 100.0 * steady / ref_steady : 0;
        print_cell(spec, d, r.phases[0].mops, steady, recovery, r);
        emit_resize_jsonl(json, spec, d, r.phases[0].mops, steady, recovery,
                          r);
      }
    }
  }
  return 0;
}
