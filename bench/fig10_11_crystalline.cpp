// Appendix Figures 10-11: HML (2K) and HMHT, update-heavy and read-heavy,
// comparing the POP algorithms against the Crystalline family.
//
// Substitution (DESIGN.md §5): Crystalline itself is replaced by BRC, a
// batched reference-counting scheme with the same reader profile (no
// per-read work, one announcement per op, batch frees after grace
// periods). The comparison of interest — POP vs a fast low-memory
// non-reservation scheme — is preserved.
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  struct DsCase {
    const char* ds;
    uint64_t range;
    const char* fig;
  };
  const DsCase cases[] = {{"HML", 2048, "Figure 10"},
                          {"HMHT", 16384, "Figure 11"}};
  struct Mix {
    const char* name;
    uint32_t ins, del;
  };
  const Mix mixes[] = {{"update-heavy 50i/50d", 50, 50},
                       {"read-heavy 5i/5d/90c", 5, 5}};
  const char* smrs[] = {"NR",           "BRC",          "EBR",
                        "HazardPtrPOP", "HazardEraPOP", "EpochPOP"};
  const auto threads = bench_thread_list("1,2,4");
  const uint64_t dur = bench_duration_ms(200);

  for (const auto& c : cases) {
    for (const auto& m : mixes) {
      print_table_header(std::string(c.fig) + ": " + c.ds + ", " + m.name +
                         " — POP vs BRC (Crystalline substitute)");
      for (int t : threads) {
        for (const char* smr : smrs) {
          WorkloadConfig cfg;
          cfg.ds = c.ds;
          cfg.smr = smr;
          cfg.threads = t;
          cfg.key_range = c.range;
          cfg.pct_insert = m.ins;
          cfg.pct_erase = m.del;
          cfg.duration_ms = dur;
          cfg.smr_cfg.retire_threshold = 512;
          print_row(cfg, run_workload(cfg));
        }
      }
    }
  }
  return 0;
}
