// Figure 2 (a,b): update-heavy workload (50% insert / 50% delete) on the
// Harris-Michael list and the lazy list, size 2K — the paper's
// list-traversal stress where per-read fences dominate.
//
// Scaled to this container (see fig1 header comment); override with
// POPSMR_BENCH_{THREADS,SMRS,DURATION_MS}.
#include "cli.hpp"
#include "driver.hpp"

int main(int argc, char** argv) {
  pop::bench::apply_bench_cli(argc, argv);
  using namespace pop::bench;
  const char* dss[] = {"HML", "LL"};
  const auto threads = bench_thread_list("1,2,4");
  const auto smrs = bench_smr_list();
  const uint64_t dur = bench_duration_ms(200);

  for (const char* ds : dss) {
    print_table_header(std::string("Figure 2: update-heavy 50i/50d, ") + ds +
                       " size 1K (range 2K)");
    for (int t : threads) {
      for (const auto& smr : smrs) {
        WorkloadConfig cfg;
        cfg.ds = ds;
        cfg.smr = smr;
        cfg.threads = t;
        cfg.key_range = 2048;  // paper's list size
        cfg.pct_insert = 50;
        cfg.pct_erase = 50;
        cfg.duration_ms = dur;
        cfg.smr_cfg.retire_threshold = 512;
        print_row(cfg, run_workload(cfg));
      }
    }
  }
  return 0;
}
