// The drop-in-replacement claim, as a compile+runtime matrix: every DS
// instantiates under every scheme through the public factory, reports the
// right names, and performs basic operations.
#include <gtest/gtest.h>

#include "ds/iset.hpp"

namespace pop::ds {
namespace {

TEST(FactoryMatrix, AllCombinationsConstructAndOperate) {
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) {
      SetConfig cfg;
      cfg.capacity = 128;
      auto s = make_set(ds, smr, cfg);
      ASSERT_NE(s, nullptr) << ds << "/" << smr;
      EXPECT_EQ(s->ds_name(), ds);
      EXPECT_EQ(s->smr_name(), smr);
      EXPECT_TRUE(s->insert(1)) << ds << "/" << smr;
      EXPECT_TRUE(s->contains(1)) << ds << "/" << smr;
      EXPECT_TRUE(s->erase(1)) << ds << "/" << smr;
      EXPECT_FALSE(s->contains(1)) << ds << "/" << smr;
      EXPECT_EQ(s->size_slow(), 0u) << ds << "/" << smr;
      s->detach_thread();
    }
  }
}

TEST(FactoryMatrix, UnknownNamesReturnNull) {
  SetConfig cfg;
  EXPECT_EQ(make_set("NOPE", "HP", cfg), nullptr);
  EXPECT_EQ(make_set("HML", "NOPE", cfg), nullptr);
}

TEST(FactoryMatrix, ExpectedCatalogue) {
  EXPECT_EQ(all_ds_names().size(), 5u);
  EXPECT_EQ(all_smr_names().size(), 11u);
}

TEST(FactoryMatrix, StatsStartClean) {
  SetConfig cfg;
  auto s = make_set("HML", "HazardPtrPOP", cfg);
  const auto st = s->smr_stats();
  EXPECT_EQ(st.retired, 0u);
  EXPECT_EQ(st.freed, 0u);
  EXPECT_EQ(st.signals_sent, 0u);
}

}  // namespace
}  // namespace pop::ds
