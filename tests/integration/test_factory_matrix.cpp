// The drop-in-replacement claim, as a compile+runtime matrix: every DS
// instantiates under every scheme through the public factory, reports the
// right names, and performs basic operations.
#include <gtest/gtest.h>

#include "ds/iset.hpp"

namespace pop::ds {
namespace {

TEST(FactoryMatrix, AllCombinationsConstructAndOperate) {
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) {
      SetConfig cfg;
      cfg.capacity = 128;
      auto s = make_set(ds, smr, cfg);
      ASSERT_NE(s, nullptr) << ds << "/" << smr;
      EXPECT_EQ(s->ds_name(), ds);
      EXPECT_EQ(s->smr_name(), smr);
      EXPECT_TRUE(s->insert(1)) << ds << "/" << smr;
      EXPECT_TRUE(s->contains(1)) << ds << "/" << smr;
      EXPECT_TRUE(s->erase(1)) << ds << "/" << smr;
      EXPECT_FALSE(s->contains(1)) << ds << "/" << smr;
      EXPECT_EQ(s->size_slow(), 0u) << ds << "/" << smr;
      s->detach_thread();
    }
  }
}

TEST(FactoryMatrix, UnknownNamesReturnNullAndSayWhichNameWasBad) {
  SetConfig cfg;
  // A typo'd name must not fail as a bare nullptr: the factory prints one
  // stderr line naming the offender (and the known catalogue).
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(make_set("NOPE", "HP", cfg), nullptr);
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown data structure 'NOPE'"), std::string::npos)
      << "stderr was: " << err;

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(make_set("HML", "NOPE2", cfg), nullptr);
  err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown SMR scheme 'NOPE2'"), std::string::npos)
      << "stderr was: " << err;
}

TEST(FactoryMatrix, KvSurfaceRoundTripsThroughEveryCombination) {
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) {
      SetConfig cfg;
      cfg.capacity = 128;
      auto m = make_kv(ds, smr, cfg);
      ASSERT_NE(m, nullptr) << ds << "/" << smr;
      uint64_t v = 0;
      EXPECT_EQ(m->put(7, 70), PutResult::kInserted) << ds << "/" << smr;
      ASSERT_TRUE(m->get(7, &v)) << ds << "/" << smr;
      EXPECT_EQ(v, 70u);
      EXPECT_EQ(m->put(7, 71), PutResult::kReplaced) << ds << "/" << smr;
      ASSERT_TRUE(m->get(7, &v)) << ds << "/" << smr;
      EXPECT_EQ(v, 71u);
      // The set shims ride on the same surface: insert-if-absent refuses
      // (without retiring anything), contains sees the key.
      EXPECT_FALSE(m->insert(7)) << ds << "/" << smr;
      EXPECT_TRUE(m->contains(7)) << ds << "/" << smr;
      EXPECT_TRUE(m->remove(7)) << ds << "/" << smr;
      EXPECT_FALSE(m->get(7, &v)) << ds << "/" << smr;
      m->detach_thread();
    }
  }
}

TEST(FactoryMatrix, ExpectedCatalogue) {
  EXPECT_EQ(all_ds_names().size(), 6u);
  EXPECT_EQ(all_smr_names().size(), 11u);
}

TEST(FactoryMatrix, StatsStartClean) {
  SetConfig cfg;
  auto s = make_set("HML", "HazardPtrPOP", cfg);
  const auto st = s->smr_stats();
  EXPECT_EQ(st.retired, 0u);
  EXPECT_EQ(st.freed, 0u);
  EXPECT_EQ(st.signals_sent, 0u);
}

}  // namespace
}  // namespace pop::ds
