// Signal multiplexing: the same threads drive two data structures with
// *different* signal-based reclaimers at once. The single process-wide
// SIGUSR1 handler must dispatch to both domains without cross-talk —
// a ping for one domain publishing/neutralizing the other must be benign.
#include <gtest/gtest.h>

#include <atomic>

#include "core/epoch_pop.hpp"
#include "core/hazard_ptr_pop.hpp"
#include "ds/dgt_bst.hpp"
#include "ds/hm_list.hpp"
#include "runtime/rng.hpp"
#include "smr/nbr.hpp"
#include "../support/test_util.hpp"

namespace pop {
namespace {

TEST(MixedDomains, TwoPopDomainsInterleaved) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 8;
  ds::HmList<core::HazardPtrPopDomain> list(cfg);
  ds::DgtBst<core::EpochPopDomain> tree(cfg);
  std::atomic<int64_t> lnet{0}, tnet{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(42 + w);
    for (int i = 0; i < 4000; ++i) {
      const uint64_t k = rng.next_below(128);
      if (rng.percent(50)) {
        if (rng.percent(50)) {
          if (list.insert(k)) lnet.fetch_add(1);
        } else {
          if (list.erase(k)) lnet.fetch_sub(1);
        }
      } else {
        if (rng.percent(50)) {
          if (tree.insert(k)) tnet.fetch_add(1);
        } else {
          if (tree.erase(k)) tnet.fetch_sub(1);
        }
      }
    }
    list.domain().detach();
    tree.domain().detach();
  });
  EXPECT_EQ(list.size_slow(), static_cast<uint64_t>(lnet.load()));
  EXPECT_EQ(tree.size_slow(), static_cast<uint64_t>(tnet.load()));
}

TEST(MixedDomains, PopAndNbrCoexist) {
  // NBR neutralizes on pings; HazardPtrPOP publishes on pings. A thread
  // inside an NBR op must not be corrupted by a POP reclaimer's signal
  // and vice versa (the bus notifies both clients on every ping).
  smr::SmrConfig cfg;
  cfg.retire_threshold = 8;
  ds::HmList<core::HazardPtrPopDomain> list(cfg);
  ds::HmList<smr::NbrDomain> nlist(cfg);
  std::atomic<int64_t> lnet{0}, nnet{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(7 + w);
    for (int i = 0; i < 4000; ++i) {
      const uint64_t k = rng.next_below(64);
      if (rng.percent(50)) {
        if (rng.percent(50)) {
          if (list.insert(k)) lnet.fetch_add(1);
        } else {
          if (list.erase(k)) lnet.fetch_sub(1);
        }
      } else {
        if (rng.percent(50)) {
          if (nlist.insert(k)) nnet.fetch_add(1);
        } else {
          if (nlist.erase(k)) nnet.fetch_sub(1);
        }
      }
    }
    list.domain().detach();
    nlist.domain().detach();
  });
  EXPECT_EQ(list.size_slow(), static_cast<uint64_t>(lnet.load()));
  EXPECT_EQ(nlist.size_slow(), static_cast<uint64_t>(nnet.load()));
  EXPECT_TRUE(list.sorted_unique_slow());
  EXPECT_TRUE(nlist.sorted_unique_slow());
}

TEST(MixedDomains, SequentialDomainLifetimes) {
  // Create/destroy many domains in sequence on one thread: attach state,
  // the signal bus slots, and tids must all be recycled cleanly.
  for (int round = 0; round < 20; ++round) {
    smr::SmrConfig cfg;
    cfg.retire_threshold = 4;
    ds::HmList<core::HazardPtrPopDomain> list(cfg);
    for (uint64_t k = 0; k < 32; ++k) list.insert(k);
    for (uint64_t k = 0; k < 32; ++k) list.erase(k);
    list.domain().detach();
  }
  SUCCEED();
}

}  // namespace
}  // namespace pop
