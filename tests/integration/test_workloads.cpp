// End-to-end runs of the benchmark driver itself: short timed workloads
// across representative configurations, checking the metrics the figures
// are built from (throughput > 0, retire-list bounds, signal counts).
#include <gtest/gtest.h>

#include "../../bench/driver.hpp"

namespace pop::bench {
namespace {

WorkloadConfig base(const std::string& ds, const std::string& smr) {
  WorkloadConfig c;
  c.ds = ds;
  c.smr = smr;
  c.threads = 2;
  c.key_range = 256;
  c.duration_ms = 60;
  c.smr_cfg.retire_threshold = 32;
  return c;
}

TEST(Workloads, UpdateHeavyRunsForEveryScheme) {
  for (const auto& smr : ds::all_smr_names()) {
    WorkloadConfig c = base("HML", smr);
    c.pct_insert = 50;
    c.pct_erase = 50;
    const auto r = run_workload(c);
    EXPECT_GT(r.ops, 0u) << smr;
    EXPECT_GT(r.mops, 0.0) << smr;
    EXPECT_LE(r.final_size, c.key_range) << smr;
  }
}

TEST(Workloads, ReadHeavyMixRespectsRatios) {
  WorkloadConfig c = base("HMHT", "EpochPOP");
  c.pct_insert = 5;
  c.pct_erase = 5;
  c.duration_ms = 100;
  const auto r = run_workload(c);
  ASSERT_GT(r.ops, 1000u);
  const double read_frac =
      static_cast<double>(r.reads) / static_cast<double>(r.ops);
  EXPECT_NEAR(read_frac, 0.90, 0.05);
}

TEST(Workloads, SplitReadersWritersReportsReadThroughput) {
  WorkloadConfig c = base("HML", "HazardPtrPOP");
  c.split_readers_writers = true;
  c.threads = 4;
  c.key_range = 512;
  c.writer_key_range = 32;
  const auto r = run_workload(c);
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.updates, 0u);
  EXPECT_GT(r.read_mops, 0.0);
}

TEST(Workloads, RetireThresholdBoundsRetireList) {
  WorkloadConfig c = base("DGT", "HazardPtrPOP");
  c.pct_insert = 50;
  c.pct_erase = 50;
  c.smr_cfg.retire_threshold = 64;
  const auto r = run_workload(c);
  // A delete retires 2 nodes, so the high-watermark may exceed the
  // threshold by the per-op retire count but not run away.
  EXPECT_LE(r.smr.max_retire_len, c.smr_cfg.retire_threshold + 8);
}

TEST(Workloads, PopSchemesSendSignalsOnlyWhenReclaiming) {
  WorkloadConfig c = base("HML", "HazardPtrPOP");
  c.pct_insert = 0;
  c.pct_erase = 0;  // read-only: nothing retired, nobody pings
  const auto r = run_workload(c);
  EXPECT_EQ(r.smr.signals_sent, 0u);
  EXPECT_EQ(r.smr.retired, 0u);
}

TEST(Workloads, UpdateHeavyPopSchemesDoSignal) {
  WorkloadConfig c = base("HML", "HazardPtrPOP");
  c.pct_insert = 50;
  c.pct_erase = 50;
  c.smr_cfg.retire_threshold = 16;
  const auto r = run_workload(c);
  EXPECT_GT(r.smr.signals_sent, 0u);
  EXPECT_GT(r.smr.freed, 0u);
}

TEST(Workloads, NbrNeutralizesUnderChurn) {
  WorkloadConfig c = base("HML", "NBR");
  c.split_readers_writers = true;
  c.threads = 4;
  c.key_range = 4096;  // long traversals for the readers
  c.writer_key_range = 16;
  c.smr_cfg.retire_threshold = 16;  // constant reclaims => constant pings
  c.duration_ms = 150;
  const auto r = run_workload(c);
  EXPECT_GT(r.smr.neutralized, 0u)
      << "long readers must get restarted by NBR reclaimers";
}

TEST(Workloads, PutMixFlowsThroughTheDriverWrapper) {
  // The driver's WorkloadConfig shares OpMix with PhaseSpec, so pct_put
  // set on the legacy surface must reach the engine and report the KV
  // breakdown back through the shared OpCounts base.
  WorkloadConfig c = base("HMHT", "EpochPOP");
  c.pct_insert = 5;
  c.pct_erase = 5;
  c.pct_put = 50;
  const auto r = run_workload(c);
  ASSERT_GT(r.ops, 0u);
  EXPECT_GT(r.puts, 0u);
  EXPECT_GT(r.put_replaced, 0u);
  EXPECT_EQ(r.updates, r.inserts + r.erases + r.puts);
  EXPECT_EQ(r.reads, r.gets);
  EXPECT_GE(r.smr.retired, r.put_replaced);
}

TEST(Workloads, PctPutListHelperParses) {
  setenv("POPSMR_BENCH_PCT_PUT", "0,10,50,90,150", 1);
  const auto ratios = bench_pct_put_list("50");
  ASSERT_EQ(ratios.size(), 5u);
  EXPECT_EQ(ratios[0], 0);
  EXPECT_EQ(ratios[3], 90);
  EXPECT_EQ(ratios[4], 100);  // clamped
  unsetenv("POPSMR_BENCH_PCT_PUT");
  const auto fallback = bench_pct_put_list("0,90");
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[1], 90);
}

TEST(Workloads, EnvListHelpersParse) {
  setenv("POPSMR_BENCH_THREADS", "1,3,5", 1);
  const auto ts = bench_thread_list("2,4");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0], 1);
  EXPECT_EQ(ts[2], 5);
  unsetenv("POPSMR_BENCH_THREADS");
  const auto ts2 = bench_thread_list("2,4");
  ASSERT_EQ(ts2.size(), 2u);
  EXPECT_EQ(ts2[1], 4);
  EXPECT_FALSE(bench_smr_list().empty());
}

}  // namespace
}  // namespace pop::bench
