// The sharded service layer: routing is deterministic and total, a
// 1-shard map is operation-for-operation equivalent to the plain ISet it
// wraps, cross-shard concurrent histories stay linearizable per key,
// every scheme's per-shard domains balance the pool on teardown, and
// churned threads migrating between shards (attach/detach on many
// domains, recycled tids) stay safe.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_registry.hpp"
#include "service/sharded_map.hpp"
#include "../support/test_util.hpp"

namespace pop::service {
namespace {

ShardedMapConfig small_cfg(int shards, ShardHash hash = ShardHash::kSplitMix64) {
  ShardedMapConfig cfg;
  cfg.shards = shards;
  cfg.hash = hash;
  cfg.set.capacity = 512;
  cfg.set.smr.retire_threshold = 16;
  cfg.set.smr.epoch_freq = 4;
  return cfg;
}

TEST(ShardedMap, ModuloHashRoutesByRemainder) {
  auto m = ShardedMap::create("HML", "EBR", small_cfg(4, ShardHash::kModulo));
  ASSERT_NE(m, nullptr);
  for (uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(m->shard_of(k), static_cast<int>(k % 4));
  }
  m->detach_thread();
}

TEST(ShardedMap, SplitMixHashCoversEveryShard) {
  auto m = ShardedMap::create("HML", "EBR", small_cfg(8));
  ASSERT_NE(m, nullptr);
  std::set<int> hit;
  for (uint64_t k = 0; k < 4096; ++k) hit.insert(m->shard_of(k));
  EXPECT_EQ(hit.size(), 8u) << "some shard unreachable by the hash";
  // Determinism: the same key always routes to the same shard.
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(m->shard_of(k), m->shard_of(k));
  }
  m->detach_thread();
}

TEST(ShardedMap, UnknownNamesReturnNullAndSayWhichNameWasBad) {
  // The underlying factory's one-line diagnosis must surface through the
  // service-layer constructors too.
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(ShardedMap::create("NOPE", "EBR", small_cfg(2)), nullptr);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                "unknown data structure 'NOPE'"),
            std::string::npos);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(ShardedMap::create("HML", "NOPE", small_cfg(2)), nullptr);
  EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                "unknown SMR scheme 'NOPE'"),
            std::string::npos);
  EXPECT_EQ(make_service_set("NOPE", "EBR", ds::SetConfig{}, 4), nullptr);
  EXPECT_EQ(make_service_set("HML", "NOPE", ds::SetConfig{}, 1), nullptr);
}

TEST(ShardedMap, FactoryReturnsPlainSetForOneShard) {
  ds::SetConfig cfg;
  cfg.capacity = 128;
  auto one = make_service_set("HML", "EBR", cfg, 1);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(dynamic_cast<ShardedMap*>(one.get()), nullptr)
      << "shards=1 must take the zero-overhead monolithic path";
  auto four = make_service_set("HML", "EBR", cfg, 4);
  ASSERT_NE(four, nullptr);
  EXPECT_NE(dynamic_cast<ShardedMap*>(four.get()), nullptr);
  one->detach_thread();
  four->detach_thread();
}

TEST(ShardedMap, OneShardMatchesPlainSetOperationForOperation) {
  // The same pseudo-random operation tape must produce identical return
  // values and an identical final set through a 1-shard map and the plain
  // structure it wraps.
  ds::SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = 16;
  auto plain = ds::make_set("HML", "EBR", cfg);
  ShardedMapConfig scfg = small_cfg(1);
  scfg.set = cfg;
  auto sharded = ShardedMap::create("HML", "EBR", scfg);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(sharded, nullptr);

  runtime::Xoshiro256 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.next_below(128);
    const uint64_t dice = rng.next_below(100);
    if (dice < 40) {
      EXPECT_EQ(plain->insert(k), sharded->insert(k)) << "op " << i;
    } else if (dice < 80) {
      EXPECT_EQ(plain->erase(k), sharded->erase(k)) << "op " << i;
    } else {
      EXPECT_EQ(plain->contains(k), sharded->contains(k)) << "op " << i;
    }
  }
  EXPECT_EQ(plain->size_slow(), sharded->size_slow());
  for (uint64_t k = 0; k < 128; ++k) {
    EXPECT_EQ(plain->contains(k), sharded->contains(k)) << "key " << k;
  }
  plain->detach_thread();
  sharded->detach_thread();
}

TEST(ShardedMap, CrossShardConcurrentHistoryIsLinearizablePerKey) {
  // Concurrent mixed ops spanning every shard: successful inserts minus
  // successful erases must equal the final size (per-key linearizability
  // composed over shards — sharding must not lose or duplicate keys).
  auto m = ShardedMap::create("HMHT", "EpochPOP", small_cfg(4));
  ASSERT_NE(m, nullptr);
  std::atomic<int64_t> net{0};
  constexpr int kThreads = 4;
  constexpr int kOps = 6000;
  test::run_threads(kThreads, [&](int w) {
    runtime::Xoshiro256 rng(91 + w);
    for (int i = 0; i < kOps; ++i) {
      const uint64_t k = rng.next_below(256);
      if (rng.percent(50)) {
        if (m->insert(k)) net.fetch_add(1);
      } else if (rng.percent(50)) {
        if (m->erase(k)) net.fetch_sub(1);
      } else {
        (void)m->contains(k);
      }
    }
    m->detach_thread();
  });
  EXPECT_EQ(m->size_slow(), static_cast<uint64_t>(net.load()));

  const auto stats = m->service_stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.ops_total, static_cast<uint64_t>(kThreads) * kOps);
  uint64_t ops_sum = 0, retired_sum = 0;
  for (const auto& s : stats.shards) {
    ops_sum += s.ops;
    retired_sum += s.smr.retired;
    EXPECT_GT(s.ops, 0u) << "shard " << s.shard << " saw no traffic";
  }
  EXPECT_EQ(ops_sum, stats.ops_total);
  EXPECT_EQ(retired_sum, stats.smr.retired) << "roll-up != sum of shards";
  m->detach_thread();
}

class ShardedLeakBalance : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedLeakBalance, PoolBalancesAfterShardedTeardown) {
  // Per-shard leak accounting: after a sharded map (N independent
  // domains) is destroyed, every pool block any shard allocated is back
  // on a free list — for every scheme, including the signal-driven ones.
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    auto m = ShardedMap::create("HML", GetParam(), small_cfg(3));
    ASSERT_NE(m, nullptr);
    std::atomic<int> arrived{0};
    test::run_threads(3, [&](int w) {
      (void)runtime::my_tid();
      arrived.fetch_add(1);
      while (arrived.load() < 3) std::this_thread::yield();
      runtime::Xoshiro256 rng(57 + w);
      for (int i = 0; i < 2000; ++i) {
        const uint64_t k = rng.next_below(128);
        const uint64_t dice = rng.next_below(100);
        if (dice < 40) {
          m->insert(k);
        } else if (dice < 80) {
          m->erase(k);
        } else {
          (void)m->contains(k);
        }
      }
      m->detach_thread();
    });
    // Before teardown the per-shard unreclaimed counts must sum to the
    // roll-up (the snapshot is consistent shard by shard).
    const auto stats = m->service_stats();
    uint64_t unreclaimed_sum = 0;
    for (const auto& s : stats.shards) unreclaimed_sum += s.smr.unreclaimed();
    EXPECT_EQ(unreclaimed_sum, stats.unreclaimed());
    m->detach_thread();
  }  // all shards (and their domains) destroyed here
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance across sharded teardown for HML/" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ShardedLeakBalance,
                         ::testing::ValuesIn(ds::all_smr_names()),
                         [](const auto& info) { return info.param; });

TEST(ShardedMap, ChurningThreadsMigrateBetweenShards) {
  // Thread churn across a sharded map: waves of short-lived workers run
  // mixed ops spanning all shards, detach from every shard's domain, and
  // exit; fresh threads recycle their registry tids against the same
  // shards. No wave may wedge a ping handshake or corrupt a shard.
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    auto m = ShardedMap::create("HML", "HazardPtrPOP", small_cfg(4));
    ASSERT_NE(m, nullptr);
    std::atomic<int64_t> net{0};
    for (int wave = 0; wave < 6; ++wave) {
      test::run_threads(3, [&](int w) {
        runtime::Xoshiro256 rng(1000 * wave + w);
        for (int i = 0; i < 1500; ++i) {
          const uint64_t k = rng.next_below(192);
          if (rng.percent(50)) {
            if (m->insert(k)) net.fetch_add(1);
          } else {
            if (m->erase(k)) net.fetch_sub(1);
          }
        }
        m->detach_thread();  // all four domains; exit recycles the tid
      });
    }
    EXPECT_EQ(m->size_slow(), static_cast<uint64_t>(net.load()));
    m->detach_thread();
  }
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks);
}

TEST(ShardedMap, KvCountersTrackOutcomesPerShard) {
  auto m = ShardedMap::create("HML", "EBR", small_cfg(4));
  ASSERT_NE(m, nullptr);
  // 64 fresh puts, 32 replacing puts, then 32 hits + 32 misses.
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(m->put(k, k + 1), ds::PutResult::kInserted);
  }
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(m->put(k, k + 100), ds::PutResult::kReplaced);
  }
  for (uint64_t k = 0; k < 32; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(m->get(k, &v));
    EXPECT_EQ(v, k + 100) << "get must return the latest completed put";
  }
  for (uint64_t k = 1000; k < 1032; ++k) {
    EXPECT_FALSE(m->get(k, nullptr));
  }
  const auto stats = m->service_stats();
  EXPECT_EQ(stats.put_inserts_total, 64u);
  EXPECT_EQ(stats.put_replaces_total, 32u);
  EXPECT_EQ(stats.get_hits_total, 32u);
  EXPECT_EQ(stats.get_misses_total, 32u);
  EXPECT_EQ(stats.ops_total, 64u + 32u + 32u + 32u);
  // The per-shard breakdown must sum to the roll-up.
  uint64_t hits = 0, misses = 0, pins = 0, prepl = 0;
  for (const auto& s : stats.shards) {
    hits += s.get_hits;
    misses += s.get_misses;
    pins += s.put_inserts;
    prepl += s.put_replaces;
  }
  EXPECT_EQ(hits, stats.get_hits_total);
  EXPECT_EQ(misses, stats.get_misses_total);
  EXPECT_EQ(pins, stats.put_inserts_total);
  EXPECT_EQ(prepl, stats.put_replaces_total);
  // Replaces retire through the shard's own domain.
  EXPECT_GE(stats.smr.retired, 32u);
  m->detach_thread();
}

TEST(ShardedMap, PressureCountersSurfacePerShardAndRollUp) {
  // The fault-recovery counters (pressure_events, forced_handshakes, and
  // friends) must surface per shard through ServiceStats, not just on the
  // monolithic roll-up — a hot shard hitting the pressure backstop should
  // be attributable. Route every mutation to shard 2 via the modulo hash,
  // disable the cadence sweep (huge retire_threshold), and set a tiny
  // pressure bound so the backstop is the only reclamation trigger.
  ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.hash = ShardHash::kModulo;
  cfg.set.capacity = 512;
  cfg.set.smr.retire_threshold = uint64_t{1} << 20;
  cfg.set.smr.pressure_bound = 48;
  auto m = ShardedMap::create("HML", "EBR", cfg);
  ASSERT_NE(m, nullptr);
  const int target = 2;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = static_cast<uint64_t>(4 * (i % 97) + target);
    m->insert(k);
    m->remove(k);  // each removal retires a node on shard 2 only
  }
  const auto stats = m->service_stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_GT(stats.shards[target].smr.pressure_events, 0u)
      << "the backstop never fired on the hot shard";
  EXPECT_GT(stats.shards[target].smr.forced_handshakes, 0u);
  for (int s = 0; s < 4; ++s) {
    if (s == target) continue;
    EXPECT_EQ(stats.shards[s].smr.pressure_events, 0u)
        << "idle shard " << s << " reported pressure";
  }
  uint64_t sum_pressure = 0, sum_forced = 0, sum_waves = 0, sum_reaped = 0;
  for (const auto& s : stats.shards) {
    sum_pressure += s.smr.pressure_events;
    sum_forced += s.smr.forced_handshakes;
    sum_waves += s.smr.waves_timed_out;
    sum_reaped += s.smr.tids_reaped;
  }
  EXPECT_EQ(stats.smr.pressure_events, sum_pressure);
  EXPECT_EQ(stats.smr.forced_handshakes, sum_forced);
  EXPECT_EQ(stats.smr.waves_timed_out, sum_waves);
  EXPECT_EQ(stats.smr.tids_reaped, sum_reaped);
  m->detach_thread();
}

TEST(ShardedMap, OneShardMatchesPlainMapOperationForOperation) {
  // The KV surface through a 1-shard map must be op-for-op identical to
  // the plain structure (same returns, same values) — the sharded layer
  // adds routing and counters, never semantics.
  ds::SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = 16;
  auto plain = ds::make_kv("HML", "EBR", cfg);
  ShardedMapConfig scfg = small_cfg(1);
  scfg.set = cfg;
  auto sharded = ShardedMap::create("HML", "EBR", scfg);
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(sharded, nullptr);
  runtime::Xoshiro256 rng(4242);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.next_below(128);
    const uint64_t dice = rng.next_below(100);
    if (dice < 40) {
      const uint64_t v = rng.next();
      EXPECT_EQ(plain->put(k, v), sharded->put(k, v)) << "op " << i;
    } else if (dice < 70) {
      EXPECT_EQ(plain->remove(k), sharded->remove(k)) << "op " << i;
    } else {
      uint64_t pv = 0, sv = 0;
      const bool ph = plain->get(k, &pv);
      const bool sh = sharded->get(k, &sv);
      EXPECT_EQ(ph, sh) << "op " << i;
      if (ph && sh) {
        EXPECT_EQ(pv, sv) << "op " << i;
      }
    }
  }
  EXPECT_EQ(plain->size_slow(), sharded->size_slow());
  plain->detach_thread();
  sharded->detach_thread();
}

TEST(ShardedMap, CapacitySplitsAcrossShards) {
  // The per-shard capacity divides the configured total so a sharded
  // hash table's footprint tracks the monolithic one's.
  ShardedMapConfig cfg = small_cfg(4);
  cfg.set.capacity = 1 << 12;
  auto m = ShardedMap::create("HMHT", "EBR", cfg);
  ASSERT_NE(m, nullptr);
  for (uint64_t k = 0; k < 2048; ++k) EXPECT_TRUE(m->insert(k));
  EXPECT_EQ(m->size_slow(), 2048u);
  for (uint64_t k = 0; k < 2048; ++k) EXPECT_TRUE(m->contains(k));
  m->detach_thread();
}

}  // namespace
}  // namespace pop::service
