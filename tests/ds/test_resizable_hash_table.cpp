// Resizable hash table (RHHT) semantics: the split-ordered table must
// behave exactly like a map while its bucket array is being replaced
// underneath the operations — grow on load-factor breach, shrink after
// a sustained drain, items never moving (only the shortcut array does).
// The differential tests force both directions and compare against
// std::map under every scheme; the concurrent tests make the growth
// happen *during* the insert storm rather than between operations.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"
#include "service/sharded_map.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

// Tiny capacity + small load factor: the table starts at the 2-bucket
// floor and every few dozen inserts breach the watermark, so a short
// test sees several doublings (and halvings on the way back down).
SetConfig tiny_config() {
  SetConfig cfg;
  cfg.capacity = 4;
  cfg.load_factor = 2.0;
  cfg.smr.retire_threshold = 8;
  cfg.smr.epoch_freq = 2;
  return cfg;
}

TEST(ResizableHashTable, GrowsFromUnderProvisionedStart) {
  auto s = make_kv("RHHT", "EBR", tiny_config());
  ASSERT_NE(s, nullptr);
  const uint64_t initial_buckets = s->resize_stats().buckets;
  for (uint64_t k = 0; k < 2000; ++k) EXPECT_TRUE(s->insert(k));
  const ResizeStats rs = s->resize_stats();
  EXPECT_GT(rs.grows, 0u) << "2000 keys into a capacity-4 table must grow";
  EXPECT_GT(rs.buckets, initial_buckets);
  for (uint64_t k = 0; k < 2000; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(s->get(k, &v)) << "key " << k << " lost across grows";
    EXPECT_EQ(v, k);
  }
  EXPECT_EQ(s->size_slow(), 2000u);
  s->detach_thread();
}

TEST(ResizableHashTable, ShrinksAfterSustainedDrain) {
  auto s = make_kv("RHHT", "EBR", tiny_config());
  ASSERT_NE(s, nullptr);
  for (uint64_t k = 0; k < 2000; ++k) s->insert(k);
  const uint64_t grown_buckets = s->resize_stats().buckets;
  ASSERT_GT(grown_buckets, 2u);
  // The drain itself ticks the update counter, so the underflow check
  // runs repeatedly while the population falls; the shrink policy wants
  // a sustained streak, which 2000 erases comfortably provide.
  for (uint64_t k = 0; k < 2000; ++k) EXPECT_TRUE(s->erase(k));
  const ResizeStats rs = s->resize_stats();
  EXPECT_GT(rs.shrinks, 0u) << "a fully drained table must shrink back";
  EXPECT_LT(rs.buckets, grown_buckets);
  EXPECT_EQ(s->size_slow(), 0u);
  // The table must still be fully usable after shrinking.
  EXPECT_TRUE(s->insert(42));
  EXPECT_TRUE(s->contains(42));
  s->detach_thread();
}

TEST(ResizableHashTable, GrowShrinkGrowOscillationKeepsMembershipExact) {
  // Dummy nodes installed during a grow are never removed; a later
  // shrink must leave them harmless and a re-grow must reuse them
  // without duplicating or losing items.
  auto s = make_kv("RHHT", "IBR", tiny_config());
  ASSERT_NE(s, nullptr);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(s->insert(k));
    EXPECT_EQ(s->size_slow(), 1024u);
    for (uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(s->erase(k));
    EXPECT_EQ(s->size_slow(), 0u);
  }
  const ResizeStats rs = s->resize_stats();
  EXPECT_GT(rs.grows, 0u);
  EXPECT_GT(rs.shrinks, 0u);
  s->detach_thread();
}

class RhhtDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(RhhtDifferential, MatchesStdMapThroughForcedGrowAndShrink) {
  // Single-threaded differential against std::map, driven through a
  // fill-heavy phase (forcing grows) then a drain-heavy phase (forcing
  // shrinks): every return value — insert/put outcome, remove hit, get
  // hit + value — must match the reference at every step, under every
  // scheme (descriptor retirement rides the scheme's own reclaim path).
  auto s = make_kv("RHHT", GetParam(), tiny_config());
  ASSERT_NE(s, nullptr);
  std::map<uint64_t, uint64_t> ref;
  runtime::Xoshiro256 rng(1234);
  for (int phase = 0; phase < 2; ++phase) {
    const uint64_t ins_pct = phase == 0 ? 70 : 10;
    for (int i = 0; i < 6000; ++i) {
      const uint64_t k = rng.next_below(512);
      const uint64_t dice = rng.next_below(100);
      if (dice < ins_pct) {
        EXPECT_EQ(s->insert(k), ref.emplace(k, k).second);
      } else if (dice < ins_pct + 15) {
        const uint64_t v = rng.next();
        const bool replaced = ref.count(k) > 0;
        EXPECT_EQ(s->put(k, v) == PutResult::kReplaced, replaced);
        ref[k] = v;
      } else if (dice < 85) {
        EXPECT_EQ(s->remove(k), ref.erase(k) > 0);
      } else {
        uint64_t v = 0;
        const bool hit = s->get(k, &v);
        const auto it = ref.find(k);
        ASSERT_EQ(hit, it != ref.end());
        if (hit) {
          EXPECT_EQ(v, it->second);
        }
      }
    }
  }
  EXPECT_EQ(s->size_slow(), ref.size());
  for (const auto& [k, v] : ref) {
    uint64_t got = 0;
    ASSERT_TRUE(s->get(k, &got));
    EXPECT_EQ(got, v);
  }
  // The fill phase over 512 keys from a capacity-4 start must have grown.
  EXPECT_GT(s->resize_stats().grows, 0u);
  s->detach_thread();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RhhtDifferential,
                         ::testing::ValuesIn(all_smr_names()),
                         [](const auto& info) { return info.param; });

TEST(ResizableHashTable, ConcurrentGrowStormKeepsAllInserts) {
  // Four threads insert disjoint key stripes while the table doubles
  // repeatedly under them: a lost insert here means a migration window
  // dropped a concurrently-published node.
  auto s = make_kv("RHHT", "EpochPOP", tiny_config());
  ASSERT_NE(s, nullptr);
  constexpr uint64_t kPerThread = 2048;
  test::run_threads(4, [&](int w) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(s->insert(static_cast<uint64_t>(w) * kPerThread + i));
    }
    s->detach_thread();
  });
  EXPECT_EQ(s->size_slow(), 4 * kPerThread);
  for (uint64_t k = 0; k < 4 * kPerThread; ++k) {
    ASSERT_TRUE(s->contains(k)) << "key " << k << " lost in the grow storm";
  }
  EXPECT_GT(s->resize_stats().grows, 0u);
  s->detach_thread();
}

TEST(ResizableHashTable, ShardsResizeIndependentlyThroughServiceStats) {
  // Modulo routing concentrates a contiguous key range on known shards:
  // shard k holds keys with key % 4 == k, and only the shards that is
  // actually loaded should grow. The ServiceStats surface must carry the
  // per-shard resize counts the JSONL shard rows report.
  service::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.hash = service::ShardHash::kModulo;
  cfg.set = tiny_config();
  auto m = service::ShardedMap::create("RHHT", "EBR", cfg);
  ASSERT_NE(m, nullptr);
  // Load shards 0 and 1 only (keys = 0,1 mod 4), ~1500 keys each: far
  // past the 64-key per-shard floor, so both must grow; 2 and 3 stay at
  // their initial shape.
  for (uint64_t i = 0; i < 1500; ++i) {
    ASSERT_TRUE(m->insert(4 * i));
    ASSERT_TRUE(m->insert(4 * i + 1));
  }
  const service::ServiceStats ss = m->service_stats();
  ASSERT_EQ(ss.shards.size(), 4u);
  EXPECT_GT(ss.shards[0].resizes, 0u);
  EXPECT_GT(ss.shards[1].resizes, 0u);
  EXPECT_EQ(ss.shards[2].resizes, 0u);
  EXPECT_EQ(ss.shards[3].resizes, 0u);
  EXPECT_GT(ss.shards[0].buckets_final, ss.shards[2].buckets_final);
  EXPECT_GT(ss.resizes_total, 0u);
  EXPECT_EQ(ss.resizes_total, m->resize_stats().resizes());
  m->detach_thread();
}

}  // namespace
}  // namespace pop::ds
