// Michael-Scott queue: FIFO semantics under every reclamation scheme
// (typed tests), plus concurrent producer/consumer invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "ds/ms_queue.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/all.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

template <class Smr>
class MsQueueTyped : public ::testing::Test {
 protected:
  smr::SmrConfig tiny() const {
    smr::SmrConfig c;
    c.retire_threshold = 8;
    c.epoch_freq = 2;
    return c;
  }
};

using AllSchemes =
    ::testing::Types<smr::NrDomain, smr::HpDomain, smr::HpAsymDomain,
                     smr::HeDomain, smr::EbrDomain, smr::IbrDomain,
                     smr::NbrDomain, smr::BrcDomain, core::HazardPtrPopDomain,
                     core::HazardEraPopDomain, core::EpochPopDomain>;
TYPED_TEST_SUITE(MsQueueTyped, AllSchemes);

TYPED_TEST(MsQueueTyped, StartsEmpty) {
  MsQueue<TypeParam> q;
  EXPECT_TRUE(q.empty_slow());
  EXPECT_EQ(q.dequeue(), std::nullopt);
}

TYPED_TEST(MsQueueTyped, FifoOrderSingleThread) {
  MsQueue<TypeParam> q(this->tiny());
  for (uint64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_EQ(q.size_slow(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty_slow());
}

TYPED_TEST(MsQueueTyped, InterleavedEnqueueDequeue) {
  MsQueue<TypeParam> q(this->tiny());
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 200; ++round) {
    q.enqueue(next_in++);
    q.enqueue(next_in++);
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_out++);
  }
  EXPECT_EQ(q.size_slow(), next_in - next_out);
}

TYPED_TEST(MsQueueTyped, DequeueRetiresNodes) {
  MsQueue<TypeParam> q(this->tiny());
  for (uint64_t i = 0; i < 64; ++i) q.enqueue(i);
  for (uint64_t i = 0; i < 64; ++i) (void)q.dequeue();
  EXPECT_EQ(q.domain().stats().retired, 64u);  // one dummy per dequeue
}

TYPED_TEST(MsQueueTyped, ConcurrentProducersConsumersConserveItems) {
  MsQueue<TypeParam> q(this->tiny());
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPer = 3000;
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<uint64_t> consumed_n{0};

  test::run_threads(kProducers + kConsumers, [&](int w) {
    if (w < kProducers) {
      for (uint64_t i = 0; i < kPer; ++i) {
        q.enqueue(static_cast<uint64_t>(w) * kPer + i + 1);
      }
    } else {
      uint64_t got = 0;
      while (got < kPer) {
        if (auto v = q.dequeue()) {
          consumed_sum.fetch_add(*v, std::memory_order_relaxed);
          consumed_n.fetch_add(1, std::memory_order_relaxed);
          ++got;
        }
      }
    }
    q.domain().detach();
  });

  EXPECT_EQ(consumed_n.load(), kProducers * kPer);
  EXPECT_TRUE(q.empty_slow());
  // Sum of 1..kPer plus kPer..2kPer: item conservation, no dup/loss.
  uint64_t expect = 0;
  for (uint64_t w = 0; w < kProducers; ++w) {
    for (uint64_t i = 0; i < kPer; ++i) expect += w * kPer + i + 1;
  }
  EXPECT_EQ(consumed_sum.load(), expect);
}

TYPED_TEST(MsQueueTyped, PerProducerOrderPreserved) {
  // FIFO per producer: a consumer must see each producer's items in
  // increasing order even under concurrency.
  MsQueue<TypeParam> q(this->tiny());
  constexpr uint64_t kPer = 4000;
  std::atomic<bool> fail{false};
  test::run_threads(2, [&](int w) {
    if (w == 0) {
      for (uint64_t i = 1; i <= kPer; ++i) q.enqueue(i);
    } else {
      uint64_t last = 0, got = 0;
      while (got < kPer) {
        if (auto v = q.dequeue()) {
          if (*v <= last) fail.store(true);
          last = *v;
          ++got;
        }
      }
    }
    q.domain().detach();
  });
  EXPECT_FALSE(fail.load());
}

// Leak balance: after MPMC churn plus queue/domain teardown, every pool
// block the queue allocated must be back on a free list. Run explicitly
// for the schemes the paper centres on (HazardPtrPOP) and its EBR
// substrate; the typed suite above covers functional behaviour for the
// rest.
template <class Smr>
void expect_pool_balance_after_churn() {
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    smr::SmrConfig cfg;
    cfg.retire_threshold = 8;
    cfg.epoch_freq = 2;
    MsQueue<Smr> q(cfg);
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr uint64_t kPer = 2000;
    test::run_threads(kProducers + kConsumers, [&](int w) {
      (void)runtime::my_tid();
      if (w < kProducers) {
        for (uint64_t i = 0; i < kPer; ++i) q.enqueue(i);
      } else {
        uint64_t got = 0;
        while (got < kPer) {
          if (q.dequeue()) ++got;
        }
      }
      q.domain().detach();
    });
    EXPECT_TRUE(q.empty_slow());
  }  // queue destroyed: dummy freed by the DS, retired nodes by the domain
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance: some queue node was never freed under "
      << Smr::kName;
}

TEST(MsQueueLeakBalance, HazardPtrPop) {
  expect_pool_balance_after_churn<core::HazardPtrPopDomain>();
}

TEST(MsQueueLeakBalance, Ebr) {
  expect_pool_balance_after_churn<smr::EbrDomain>();
}

}  // namespace
}  // namespace pop::ds
