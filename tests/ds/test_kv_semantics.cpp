// The value-carrying map contract, across every (data structure x SMR
// scheme) combination:
//
//  * differential testing against std::map under random get/put/remove
//    sequences (single thread);
//  * read-your-writes: get returns the value written by the latest
//    completed put, on private key stripes under real concurrency;
//  * the put-replace retirement contract: a replace never updates in
//    place — it retires exactly one displaced node per replace through
//    the owning SMR domain.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class KvSemantics
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  std::unique_ptr<IKV> make(uint64_t key_range) {
    SetConfig cfg;
    cfg.capacity = key_range;
    cfg.smr.retire_threshold = 8;  // reclaim constantly: stress frees
    cfg.smr.epoch_freq = 2;
    auto s = make_kv(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
    EXPECT_NE(s, nullptr);
    return s;
  }
};

TEST_P(KvSemantics, MatchesStdMapUnderRandomOps) {
  constexpr uint64_t kRange = 64;  // small range: heavy key collisions
  auto m = make(kRange);
  std::map<uint64_t, uint64_t> ref;
  runtime::Xoshiro256 rng(7777);
  for (int i = 0; i < 6000; ++i) {
    const uint64_t k = rng.next_below(kRange);
    switch (rng.next_below(4)) {
      case 0: {
        const uint64_t v = rng.next();
        const auto [it, inserted] = ref.insert_or_assign(k, v);
        (void)it;
        EXPECT_EQ(m->put(k, v),
                  inserted ? PutResult::kInserted : PutResult::kReplaced)
            << "put " << k;
        break;
      }
      case 1:
        EXPECT_EQ(m->remove(k), ref.erase(k) == 1) << "remove " << k;
        break;
      case 2: {
        // Set-surface insert-if-absent stores value == key.
        const bool inserted = m->insert(k);
        EXPECT_EQ(inserted, ref.emplace(k, k).second) << "insert " << k;
        break;
      }
      default: {
        uint64_t got = 0;
        const auto it = ref.find(k);
        EXPECT_EQ(m->get(k, &got), it != ref.end()) << "get " << k;
        if (it != ref.end()) {
          EXPECT_EQ(got, it->second) << "get " << k;
        }
      }
    }
  }
  EXPECT_EQ(m->size_slow(), ref.size());
  m->detach_thread();
}

TEST_P(KvSemantics, ReadYourWritesRoundTrip) {
  auto m = make(1024);
  for (uint64_t k = 0; k < 128; ++k) {
    uint64_t got = 0;
    EXPECT_FALSE(m->get(k, &got));
    EXPECT_EQ(m->put(k, k * 3 + 1), PutResult::kInserted);
    ASSERT_TRUE(m->get(k, &got));
    EXPECT_EQ(got, k * 3 + 1);
    EXPECT_EQ(m->put(k, k * 5 + 2), PutResult::kReplaced);
    ASSERT_TRUE(m->get(k, &got));
    EXPECT_EQ(got, k * 5 + 2) << "get must see the latest completed put";
    EXPECT_TRUE(m->remove(k));
    EXPECT_FALSE(m->get(k, &got));
    EXPECT_FALSE(m->remove(k));
  }
  EXPECT_EQ(m->size_slow(), 0u);
  m->detach_thread();
}

TEST_P(KvSemantics, PutReplaceRetiresExactlyOncePerReplace) {
  auto m = make(256);
  ASSERT_EQ(m->put(42, 0), PutResult::kInserted);
  const uint64_t before = m->smr_stats().retired;
  const uint64_t resizes_before = m->resize_stats().resizes();
  constexpr uint64_t kReplaces = 500;
  for (uint64_t i = 1; i <= kReplaces; ++i) {
    ASSERT_EQ(m->put(42, i), PutResult::kReplaced);
  }
  const uint64_t after = m->smr_stats().retired;
  // A resizable table holding one key legitimately shrinks during the
  // run, and each resize retires exactly one displaced descriptor
  // through the same domain; everything else retires nothing here.
  const uint64_t descriptors = m->resize_stats().resizes() - resizes_before;
  // Single-threaded: nothing else retires, and every replace must retire
  // the one displaced node — no more (double retire) and no less (leak).
  EXPECT_EQ(after - before, kReplaces + descriptors);
  uint64_t got = 0;
  ASSERT_TRUE(m->get(42, &got));
  EXPECT_EQ(got, kReplaces);
  m->detach_thread();
}

TEST_P(KvSemantics, ConcurrentReadYourWritesOnPrivateStripes) {
  // Each worker owns the keys congruent to its slot, so its local ledger
  // is the full truth for them: any get disagreeing with the latest
  // completed local write is a genuine linearizability violation (the
  // put-replace path serving a stale or lost value).
  constexpr int kThreads = 4;
  constexpr uint64_t kRange = 256;
  auto m = make(kRange);
  std::atomic<uint64_t> violations{0};
  test::run_threads(kThreads, [&](int w) {
    runtime::Xoshiro256 rng(555 + w);
    constexpr uint64_t kUnknown = UINT64_MAX;
    constexpr uint64_t kAbsent = UINT64_MAX - 1;
    std::vector<uint64_t> expect(kRange, kUnknown);
    const uint64_t salt = static_cast<uint64_t>(w + 1) << 48;
    uint64_t seq = 0;
    uint64_t bad = 0;
    for (int i = 0; i < 4000; ++i) {
      uint64_t k = rng.next_below(kRange);
      k = k - k % kThreads + static_cast<uint64_t>(w);
      if (k >= kRange) k -= kThreads;
      const uint64_t dice = rng.next_below(100);
      uint64_t got = 0;
      if (dice < 50) {
        const uint64_t v = salt | ++seq;
        const PutResult pr = m->put(k, v);
        // Outcome must match the ledger: put over a known-present key
        // replaces, over a known-absent key inserts.
        if ((expect[k] == kAbsent && pr != PutResult::kInserted) ||
            (expect[k] != kAbsent && expect[k] != kUnknown &&
             pr != PutResult::kReplaced)) {
          ++bad;
        }
        expect[k] = v;
        if (!m->get(k, &got) || got != v) ++bad;
      } else if (dice < 70) {
        const bool removed = m->remove(k);
        if ((expect[k] == kAbsent && removed) ||
            (expect[k] != kAbsent && expect[k] != kUnknown && !removed)) {
          ++bad;
        }
        expect[k] = kAbsent;
        if (m->get(k, &got)) ++bad;
      } else {
        const bool hit = m->get(k, &got);
        const uint64_t e = expect[k];
        if (hit && (e == kAbsent || (e != kUnknown && got != e))) ++bad;
        if (!hit && e != kAbsent && e != kUnknown) ++bad;
      }
    }
    violations.fetch_add(bad);
    m->detach_thread();
  });
  EXPECT_EQ(violations.load(), 0u)
      << "read-your-writes violated for " << std::get<0>(GetParam()) << "/"
      << std::get<1>(GetParam());
  m->detach_thread();
}

std::vector<std::tuple<std::string, std::string>> full_matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) v.emplace_back(ds, smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KvSemantics, ::testing::ValuesIn(full_matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
