// Lazy list structure tests.
#include <gtest/gtest.h>

#include "core/epoch_pop.hpp"
#include "ds/lazy_list.hpp"
#include "runtime/rng.hpp"
#include "smr/hp.hpp"
#include "smr/nbr.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

TEST(LazyList, StartsEmpty) {
  LazyList<smr::HpDomain> l;
  EXPECT_EQ(l.size_slow(), 0u);
  EXPECT_FALSE(l.contains(7));
  EXPECT_FALSE(l.erase(7));
}

TEST(LazyList, SortedAfterShuffledInserts) {
  LazyList<smr::HpDomain> l;
  const uint64_t keys[] = {13, 2, 99, 41, 7, 55, 23, 1};
  for (uint64_t k : keys) EXPECT_TRUE(l.insert(k));
  EXPECT_TRUE(l.sorted_unique_slow());
  EXPECT_EQ(l.size_slow(), 8u);
}

TEST(LazyList, EraseMakesKeyInvisibleImmediately) {
  LazyList<smr::HpDomain> l;
  l.insert(10);
  l.insert(20);
  EXPECT_TRUE(l.erase(10));
  EXPECT_FALSE(l.contains(10));
  EXPECT_TRUE(l.contains(20));
}

TEST(LazyList, ValidationRetriesUnderContention) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 8;
  LazyList<core::EpochPopDomain> l(cfg);
  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int t) {
    runtime::Xoshiro256 rng(7 + t);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t k = rng.next_below(64);
      if (rng.percent(50)) {
        if (l.insert(k)) net.fetch_add(1);
      } else {
        if (l.erase(k)) net.fetch_sub(1);
      }
    }
    l.domain().detach();
  });
  EXPECT_EQ(l.size_slow(), static_cast<uint64_t>(net.load()));
  EXPECT_TRUE(l.sorted_unique_slow());
}

TEST(LazyList, WorksUnderNbrNeutralization) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 4;  // constant reclaiming => constant signals
  LazyList<smr::NbrDomain> l(cfg);
  std::atomic<int64_t> net{0};
  std::atomic<int> arrived{0};
  test::run_threads(4, [&](int t) {
    // Start barrier: on a single-core box tiny workloads otherwise run
    // serially and reclaimers find nobody to ping. Reclaimers signal only
    // *attached* threads, so the barrier must come after attach().
    l.domain().attach();
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
    runtime::Xoshiro256 rng(91 + t);
    for (int i = 0; i < 3000; ++i) {
      const uint64_t k = rng.next_below(32);
      if (rng.percent(50)) {
        if (l.insert(k)) net.fetch_add(1);
      } else {
        if (l.erase(k)) net.fetch_sub(1);
      }
    }
    l.domain().detach();
  });
  EXPECT_EQ(l.size_slow(), static_cast<uint64_t>(net.load()));
  EXPECT_TRUE(l.sorted_unique_slow());
  // With such a low threshold some reclaim ran while peers were live.
  EXPECT_GT(l.domain().stats().signals_sent, 0u);
}

}  // namespace
}  // namespace pop::ds
