// DGT external BST structure tests.
#include <gtest/gtest.h>

#include "core/epoch_pop.hpp"
#include "ds/dgt_bst.hpp"
#include "runtime/rng.hpp"
#include "smr/hp.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

TEST(DgtBst, StartsEmpty) {
  DgtBst<smr::HpDomain> t;
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.erase(5));
}

TEST(DgtBst, InsertContainsEraseSequence) {
  DgtBst<smr::HpDomain> t;
  const uint64_t keys[] = {50, 25, 75, 10, 30, 60, 90, 5, 15, 27, 35};
  for (uint64_t k : keys) EXPECT_TRUE(t.insert(k));
  for (uint64_t k : keys) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.size_slow(), std::size(keys));
  for (uint64_t k : keys) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 0u);
  for (uint64_t k : keys) EXPECT_FALSE(t.contains(k));
}

TEST(DgtBst, DeleteRetiresLeafAndParent) {
  DgtBst<smr::HpDomain> t;
  t.insert(10);
  t.insert(20);
  const auto before = t.domain().stats().retired;
  EXPECT_TRUE(t.erase(10));
  const auto after = t.domain().stats().retired;
  EXPECT_EQ(after - before, 2u) << "external BST must retire leaf + parent";
}

TEST(DgtBst, AscendingAndDescendingInsertions) {
  DgtBst<smr::HpDomain> t;  // degenerate shapes must still work
  for (uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), 200u);
  DgtBst<smr::HpDomain> t2;
  for (uint64_t k = 200; k > 0; --k) EXPECT_TRUE(t2.insert(k));
  EXPECT_EQ(t2.size_slow(), 200u);
}

TEST(DgtBst, EmptyThenRefill) {
  DgtBst<core::EpochPopDomain> t;
  for (int round = 0; round < 20; ++round) {
    for (uint64_t k = 0; k < 32; ++k) EXPECT_TRUE(t.insert(k));
    for (uint64_t k = 0; k < 32; ++k) EXPECT_TRUE(t.erase(k));
    EXPECT_EQ(t.size_slow(), 0u);
  }
  t.domain().detach();
}

TEST(DgtBst, ConcurrentMixedOpsKeepCount) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 16;
  DgtBst<core::EpochPopDomain> t(cfg);
  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(11 + w);
    for (int i = 0; i < 6000; ++i) {
      const uint64_t k = rng.next_below(512);
      if (rng.percent(50)) {
        if (t.insert(k)) net.fetch_add(1);
      } else {
        if (t.erase(k)) net.fetch_sub(1);
      }
    }
    t.domain().detach();
  });
  EXPECT_EQ(t.size_slow(), static_cast<uint64_t>(net.load()));
}

TEST(DgtBst, ConcurrentSingleKeyHammer) {
  DgtBst<smr::HpDomain> t;
  std::atomic<uint64_t> ins{0}, del{0};
  test::run_threads(4, [&](int w) {
    for (int i = 0; i < 3000; ++i) {
      if (w % 2 == 0) {
        if (t.insert(7)) ins.fetch_add(1);
      } else {
        if (t.erase(7)) del.fetch_add(1);
      }
    }
    t.domain().detach();
  });
  const uint64_t net = ins.load() - del.load();
  EXPECT_LE(net, 1u);
  EXPECT_EQ(t.size_slow(), net);
}

}  // namespace
}  // namespace pop::ds
