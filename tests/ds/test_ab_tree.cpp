// (a,b)-tree structure tests: splits, root growth, COW leaves.
#include <gtest/gtest.h>

#include "core/hazard_ptr_pop.hpp"
#include "ds/ab_tree.hpp"
#include "runtime/rng.hpp"
#include "smr/ebr.hpp"
#include "smr/hp.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

TEST(AbTree, StartsEmpty) {
  AbTree<smr::HpDomain> t;
  EXPECT_EQ(t.size_slow(), 0u);
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
}

TEST(AbTree, FillsOneLeafWithoutSplit) {
  AbTree<smr::HpDomain> t;
  for (uint64_t k = 0; k < AbTree<smr::HpDomain>::kMaxKeys; ++k) {
    EXPECT_TRUE(t.insert(k));
  }
  EXPECT_EQ(t.size_slow(),
            static_cast<uint64_t>(AbTree<smr::HpDomain>::kMaxKeys));
}

TEST(AbTree, LeafSplitPreservesAllKeys) {
  AbTree<smr::HpDomain> t;
  constexpr uint64_t kN = 3 * AbTree<smr::HpDomain>::kMaxKeys;
  for (uint64_t k = 0; k < kN; ++k) EXPECT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), kN);
  for (uint64_t k = 0; k < kN; ++k) EXPECT_TRUE(t.contains(k));
}

TEST(AbTree, DeepTreeFromSequentialInserts) {
  AbTree<smr::HpDomain> t;
  constexpr uint64_t kN = 5000;  // forces multiple levels of splits
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), kN);
  for (uint64_t k = 0; k < kN; k += 97) EXPECT_TRUE(t.contains(k));
  EXPECT_FALSE(t.contains(kN + 1));
}

TEST(AbTree, RandomOrderInsertsAndLookups) {
  AbTree<smr::HpDomain> t;
  runtime::Xoshiro256 rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.next();
    if (t.insert(k)) keys.push_back(k);
  }
  EXPECT_EQ(t.size_slow(), keys.size());
  for (uint64_t k : keys) EXPECT_TRUE(t.contains(k));
}

TEST(AbTree, EraseShrinksLeaves) {
  AbTree<smr::HpDomain> t;
  for (uint64_t k = 0; k < 100; ++k) t.insert(k);
  for (uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 50u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(t.contains(k), k % 2 == 1);
  }
}

TEST(AbTree, EveryUpdateRetiresAtLeastOneNode) {
  AbTree<smr::HpDomain> t;
  t.insert(1);
  const auto before = t.domain().stats().retired;
  t.insert(2);
  t.erase(1);
  const auto after = t.domain().stats().retired;
  EXPECT_GE(after - before, 2u) << "COW leaves must retire per update";
}

TEST(AbTree, EmptyLeavesAreTolerated) {
  AbTree<smr::HpDomain> t;
  for (uint64_t k = 0; k < 64; ++k) t.insert(k);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size_slow(), 0u);
  // Reinsert into the (now sparse) structure.
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(t.insert(k));
  EXPECT_EQ(t.size_slow(), 64u);
}

TEST(AbTree, ConcurrentDisjointRangesKeepAllKeys) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 32;
  AbTree<smr::EbrDomain> t(cfg);
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 800;
  test::run_threads(kThreads, [&](int w) {
    for (uint64_t i = 0; i < kPer; ++i) {
      ASSERT_TRUE(t.insert(static_cast<uint64_t>(w) * kPer + i));
    }
    t.domain().detach();
  });
  EXPECT_EQ(t.size_slow(), kThreads * kPer);
  for (uint64_t k = 0; k < kThreads * kPer; k += 13) {
    EXPECT_TRUE(t.contains(k));
  }
}

TEST(AbTree, ConcurrentMixedOpsKeepCount) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 32;
  AbTree<core::HazardPtrPopDomain> t(cfg);
  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(17 + w);
    for (int i = 0; i < 6000; ++i) {
      const uint64_t k = rng.next_below(1024);
      if (rng.percent(50)) {
        if (t.insert(k)) net.fetch_add(1);
      } else {
        if (t.erase(k)) net.fetch_sub(1);
      }
    }
    t.domain().detach();
  });
  EXPECT_EQ(t.size_slow(), static_cast<uint64_t>(net.load()));
}

}  // namespace
}  // namespace pop::ds
