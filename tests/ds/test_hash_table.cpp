// HMHT structure tests.
#include <gtest/gtest.h>

#include "core/hazard_ptr_pop.hpp"
#include "ds/hash_table.hpp"
#include "runtime/rng.hpp"
#include "smr/ebr.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

TEST(HashTable, BucketCountFollowsLoadFactor) {
  HashTable<smr::EbrDomain> h(600, 6.0);
  EXPECT_EQ(h.bucket_count(), 100u);
  HashTable<smr::EbrDomain> h1(5, 6.0);
  EXPECT_EQ(h1.bucket_count(), 1u);  // never zero buckets
}

TEST(HashTable, BucketCountRoundsUpNotDown) {
  // Regression: capacity / load_factor used to truncate, so capacity 7
  // at load factor 6 got ONE bucket (a list) instead of two, and any
  // non-multiple capacity ran systematically over its load factor.
  HashTable<smr::EbrDomain> h7(7, 6.0);
  EXPECT_EQ(h7.bucket_count(), 2u);
  HashTable<smr::EbrDomain> h64(64, 6.0);
  EXPECT_EQ(h64.bucket_count(), 11u);  // ceil(64/6), not 10
}

TEST(HashTable, BasicSetSemantics) {
  HashTable<core::HazardPtrPopDomain> h(1024);
  for (uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(h.insert(k));
  for (uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(h.contains(k));
  for (uint64_t k = 500; k < 600; ++k) EXPECT_FALSE(h.contains(k));
  EXPECT_EQ(h.size_slow(), 500u);
  for (uint64_t k = 0; k < 500; k += 2) EXPECT_TRUE(h.erase(k));
  EXPECT_EQ(h.size_slow(), 250u);
}

TEST(HashTable, CollidingKeysShareBucketCorrectly) {
  HashTable<smr::EbrDomain> h(6, 6.0);  // exactly one bucket: all collide
  ASSERT_EQ(h.bucket_count(), 1u);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(h.insert(k));
  EXPECT_EQ(h.size_slow(), 64u);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(h.contains(k));
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(h.erase(k));
  EXPECT_EQ(h.size_slow(), 0u);
}

TEST(HashTable, SingleSharedDomainAcrossBuckets) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 8;
  HashTable<core::HazardPtrPopDomain> h(4096, 6.0, cfg);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t k = 0; k < 256; ++k) h.insert(k);
    for (uint64_t k = 0; k < 256; ++k) h.erase(k);
  }
  const auto st = h.domain().stats();
  // Retires from all buckets funnel into one domain.
  EXPECT_GE(st.retired, 2560u);
  EXPECT_GT(st.freed, 0u);
  h.domain().detach();
}

TEST(HashTable, ConcurrentMixedOps) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 16;
  HashTable<core::HazardPtrPopDomain> h(2048, 6.0, cfg);
  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int t) {
    runtime::Xoshiro256 rng(55 + t);
    for (int i = 0; i < 8000; ++i) {
      const uint64_t k = rng.next_below(2048);
      if (rng.percent(50)) {
        if (h.insert(k)) net.fetch_add(1);
      } else {
        if (h.erase(k)) net.fetch_sub(1);
      }
    }
    h.domain().detach();
  });
  EXPECT_EQ(h.size_slow(), static_cast<uint64_t>(net.load()));
}

}  // namespace
}  // namespace pop::ds
