// Use-after-free detection: the pool allocator's poison mode fills freed
// payloads with a canary and aborts on double frees / corrupt headers.
// Running hot mixed workloads under every scheme with reclamation forced
// to be constant turns any premature free into a deterministic crash or a
// poisoned-read assertion — this is the safety net behind the paper's
// Property 2/4/6 claims.
//
// These tests set the process-global poison flag; gtest_discover_tests
// runs each test in its own process, so other suites are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class PoisonedWorkload
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  void SetUp() override { runtime::PoolAllocator::set_poison(true); }
  void TearDown() override { runtime::PoolAllocator::set_poison(false); }
};

TEST_P(PoisonedWorkload, HotReclamationNeverServesPoisonedNodes) {
  SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = 4;  // reclaim as often as possible
  cfg.smr.epoch_freq = 1;
  cfg.smr.pop_multiplier = 2;
  auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
  ASSERT_NE(s, nullptr);

  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(777 + w);
    for (int i = 0; i < 3000; ++i) {
      const uint64_t k = rng.next_below(128);
      const uint64_t dice = rng.next_below(100);
      if (dice < 35) {
        if (s->insert(k)) net.fetch_add(1);
      } else if (dice < 70) {
        if (s->erase(k)) net.fetch_sub(1);
      } else {
        (void)s->contains(k);
      }
    }
    s->detach_thread();
  });
  // Reaching here without the allocator aborting means no double free or
  // header corruption; the final count check catches value corruption
  // from reads of recycled nodes.
  ASSERT_GE(net.load(), 0);  // erases only succeed on inserted keys
  EXPECT_EQ(s->size_slow(), static_cast<uint64_t>(net.load()));
  s->detach_thread();
}

// The poisoned matrix focuses on the schemes that actually free memory
// during the run (NR never frees, so poison proves nothing for it).
std::vector<std::tuple<std::string, std::string>> poison_matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) {
      if (smr == "NR") continue;
      v.emplace_back(ds, smr);
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PoisonedWorkload, ::testing::ValuesIn(poison_matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
