// Use-after-free detection: the pool allocator's poison mode fills freed
// payloads with a canary and aborts on double frees / corrupt headers.
// Running hot mixed workloads under every scheme with reclamation forced
// to be constant turns any premature free into a deterministic crash or a
// poisoned-read assertion — this is the safety net behind the paper's
// Property 2/4/6 claims.
//
// These tests set the process-global poison flag; gtest_discover_tests
// runs each test in its own process, so other suites are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class PoisonedWorkload
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  void SetUp() override { runtime::PoolAllocator::set_poison(true); }
  void TearDown() override { runtime::PoolAllocator::set_poison(false); }
};

TEST_P(PoisonedWorkload, HotReclamationNeverServesPoisonedNodes) {
  SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = 4;  // reclaim as often as possible
  cfg.smr.epoch_freq = 1;
  cfg.smr.pop_multiplier = 2;
  auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
  ASSERT_NE(s, nullptr);

  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(777 + w);
    for (int i = 0; i < 3000; ++i) {
      const uint64_t k = rng.next_below(128);
      const uint64_t dice = rng.next_below(100);
      if (dice < 30) {
        (void)s->insert(k);
      } else if (dice < 60) {
        (void)s->erase(k);
      } else if (dice < 80) {
        // put-replace: displaced nodes are freed while other threads may
        // still hold them — the KV-specific premature-free hazard.
        (void)s->put(k, rng.next());
      } else {
        uint64_t v = 0;
        (void)s->get(k, &v);
      }
    }
    s->detach_thread();
  });
  // Reaching here without the allocator aborting means no double free or
  // header corruption. Structural consistency check: the node count must
  // equal the distinct-key membership recounted through the read path
  // (no duplicates, no lost unlinks). Op-return accounting is NOT an
  // invariant here: HML's lock-free put linearizes as delete+insert
  // under same-key contention, so put outcomes can hide a deletion.
  uint64_t present = 0;
  for (uint64_t k = 0; k < 128; ++k) present += s->contains(k);
  EXPECT_EQ(s->size_slow(), present);
  s->detach_thread();
}

TEST_P(PoisonedWorkload, PutReplaceSafeAroundParkedVictim) {
  // A victim thread parks inside an operation bracket (its entry-time
  // reservation live) while the others hammer put-replace on a tiny hot
  // key set: every replace retires a node some reader may hold, and the
  // parked reservation forces the scheme to either defer or publish-on-
  // ping around it. Poison mode turns any premature free into an abort.
  SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = 4;
  cfg.smr.epoch_freq = 1;
  cfg.smr.pop_multiplier = 2;
  auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
  ASSERT_NE(s, nullptr);

  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  std::thread victim([&] {
    parked.store(true);
    s->park_in_operation(release);
    s->detach_thread();
  });
  while (!parked.load()) std::this_thread::yield();
  // The victim is released on a timer, never by worker progress: schemes
  // whose reclaim path blocks on in-flight readers (BRC's grace periods)
  // legitimately stall the workers until the victim resumes.
  std::thread timer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    release.store(true);
  });
  test::run_threads(3, [&](int w) {
    runtime::Xoshiro256 rng(99 + w);
    for (int i = 0; i < 2500; ++i) {
      const uint64_t k = rng.next_below(16);  // hot: constant displacement
      const uint64_t dice = rng.next_below(100);
      if (dice < 60) {
        (void)s->put(k, rng.next());
      } else if (dice < 75) {
        (void)s->erase(k);
      } else {
        uint64_t v = 0;
        (void)s->get(k, &v);
      }
    }
    s->detach_thread();
  });
  timer.join();
  victim.join();
  EXPECT_LE(s->size_slow(), 16u);
  s->detach_thread();
}

// Poisoned resize storm, RHHT only: bucket arrays are retired as single
// large Reclaimables while readers may still be walking shortcut cells
// of the displaced generation, and dummy nodes installed by cooperative
// bucket splits are reachable from two descriptors at once. Poison mode
// turns a premature array or dummy free into an abort; the parked victim
// forces the scheme to reclaim around a pinned reservation. (NR is
// excluded below with the rest of the poison matrix: it never frees.)
class PoisonedResizeStorm : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { runtime::PoolAllocator::set_poison(true); }
  void TearDown() override { runtime::PoolAllocator::set_poison(false); }
};

TEST_P(PoisonedResizeStorm, DisplacedBucketArraysNeverServePoison) {
  SetConfig cfg;
  cfg.capacity = 4;  // start at the bucket floor: every wave resizes
  cfg.load_factor = 2.0;
  cfg.smr.retire_threshold = 4;
  cfg.smr.epoch_freq = 1;
  cfg.smr.pop_multiplier = 2;
  auto s = make_set("RHHT", GetParam(), cfg);
  ASSERT_NE(s, nullptr);

  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  std::thread victim([&] {
    parked.store(true);
    s->park_in_operation(release);
    s->detach_thread();
  });
  while (!parked.load()) std::this_thread::yield();
  std::thread timer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    release.store(true);
  });
  test::run_threads(3, [&](int w) {
    runtime::Xoshiro256 rng(321 + w);
    for (int wave = 0; wave < 2; ++wave) {
      // Put-heavy fill then erase-heavy drain: grows and shrinks both
      // happen while other workers traverse the (old or new) table.
      for (int i = 0; i < 1500; ++i) {
        const uint64_t k = rng.next_below(768);
        if (rng.next_below(100) < 75) {
          (void)s->put(k, rng.next());
        } else {
          uint64_t v = 0;
          (void)s->get(k, &v);
        }
      }
      for (int i = 0; i < 1500; ++i) {
        const uint64_t k = rng.next_below(768);
        if (rng.next_below(100) < 75) {
          (void)s->erase(k);
        } else {
          (void)s->contains(k);
        }
      }
    }
    s->detach_thread();
  });
  timer.join();
  victim.join();
  // Surviving without an allocator abort is the verdict; the membership
  // recount cross-checks that no migration window duplicated or lost a
  // node.
  uint64_t present = 0;
  for (uint64_t k = 0; k < 768; ++k) present += s->contains(k);
  EXPECT_EQ(s->size_slow(), present);
  EXPECT_GT(s->resize_stats().resizes(), 0u)
      << "the storm never resized; the test lost its point";
  s->detach_thread();
}

std::vector<std::string> poison_scheme_list() {
  std::vector<std::string> v;
  for (const auto& smr : all_smr_names()) {
    if (smr != "NR") v.push_back(smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PoisonedResizeStorm,
                         ::testing::ValuesIn(poison_scheme_list()),
                         [](const auto& info) { return info.param; });

// The poisoned matrix focuses on the schemes that actually free memory
// during the run (NR never frees, so poison proves nothing for it).
std::vector<std::tuple<std::string, std::string>> poison_matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) {
      if (smr == "NR") continue;
      v.emplace_back(ds, smr);
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PoisonedWorkload, ::testing::ValuesIn(poison_matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
