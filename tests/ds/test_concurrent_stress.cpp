// Concurrent stress across the full (ds x smr) matrix via the factory:
// mixed random operations from several threads, then global invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class ConcurrentStress
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(ConcurrentStress, MixedOpsPreserveNetCount) {
  SetConfig cfg;
  cfg.capacity = 512;
  cfg.smr.retire_threshold = 16;  // aggressive reclamation
  cfg.smr.epoch_freq = 4;
  auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
  ASSERT_NE(s, nullptr);

  // Prefill half the range.
  uint64_t prefilled = 0;
  for (uint64_t k = 0; k < 512; k += 2) prefilled += s->insert(k);

  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int w) {
    runtime::Xoshiro256 rng(1234 + w);
    for (int i = 0; i < 4000; ++i) {
      const uint64_t k = rng.next_below(512);
      const uint64_t dice = rng.next_below(100);
      if (dice < 40) {
        if (s->insert(k)) net.fetch_add(1);
      } else if (dice < 80) {
        if (s->erase(k)) net.fetch_sub(1);
      } else {
        (void)s->contains(k);
      }
    }
    s->detach_thread();
  });

  const int64_t expect =
      static_cast<int64_t>(prefilled) + net.load();
  ASSERT_GE(expect, 0);
  EXPECT_EQ(s->size_slow(), static_cast<uint64_t>(expect));

  const auto st = s->smr_stats();
  EXPECT_GE(st.retired, st.freed);
  s->detach_thread();
}

std::vector<std::tuple<std::string, std::string>> full_matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) v.emplace_back(ds, smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConcurrentStress, ::testing::ValuesIn(full_matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
