// Randomized differential testing: every (data structure x SMR scheme)
// combination must behave exactly like std::set under a random single-
// threaded operation sequence. This catches both data-structure logic
// bugs and reclamation bugs that corrupt structure (premature frees
// manifest as wrong answers under the poisoning allocator elsewhere).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"

namespace pop::ds {
namespace {

class SetSemantics
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  std::unique_ptr<ISet> make(uint64_t key_range) {
    SetConfig cfg;
    cfg.capacity = key_range;
    cfg.smr.retire_threshold = 8;  // reclaim constantly: stress frees
    cfg.smr.epoch_freq = 2;
    auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
    EXPECT_NE(s, nullptr);
    return s;
  }
};

TEST_P(SetSemantics, MatchesStdSetUnderRandomOps) {
  constexpr uint64_t kRange = 64;  // small range: heavy key collisions
  auto s = make(kRange);
  std::set<uint64_t> ref;
  runtime::Xoshiro256 rng(2024);
  for (int i = 0; i < 6000; ++i) {
    const uint64_t k = rng.next_below(kRange);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(s->insert(k), ref.insert(k).second) << "insert " << k;
        break;
      case 1:
        EXPECT_EQ(s->erase(k), ref.erase(k) == 1) << "erase " << k;
        break;
      default:
        EXPECT_EQ(s->contains(k), ref.count(k) == 1) << "contains " << k;
    }
  }
  EXPECT_EQ(s->size_slow(), ref.size());
  s->detach_thread();
}

TEST_P(SetSemantics, InsertEraseRoundTrip) {
  auto s = make(1024);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(s->contains(k));
    EXPECT_TRUE(s->insert(k));
    EXPECT_TRUE(s->contains(k));
    EXPECT_FALSE(s->insert(k)) << "duplicate insert must fail";
  }
  EXPECT_EQ(s->size_slow(), 200u);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(s->erase(k));
    EXPECT_FALSE(s->contains(k));
    EXPECT_FALSE(s->erase(k)) << "double erase must fail";
  }
  EXPECT_EQ(s->size_slow(), 0u);
  s->detach_thread();
}

TEST_P(SetSemantics, ReinsertAfterEraseWorks) {
  auto s = make(64);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t k = 0; k < 16; ++k) EXPECT_TRUE(s->insert(k));
    for (uint64_t k = 0; k < 16; ++k) EXPECT_TRUE(s->erase(k));
  }
  EXPECT_EQ(s->size_slow(), 0u);
  s->detach_thread();
}

TEST_P(SetSemantics, StatsAccountRetires) {
  auto s = make(64);
  for (int round = 0; round < 20; ++round) {
    for (uint64_t k = 0; k < 16; ++k) s->insert(k);
    for (uint64_t k = 0; k < 16; ++k) s->erase(k);
  }
  const auto st = s->smr_stats();
  EXPECT_GT(st.retired, 0u);
  EXPECT_GE(st.retired, st.freed);
  s->detach_thread();
}

std::vector<std::tuple<std::string, std::string>> full_matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) v.emplace_back(ds, smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SetSemantics, ::testing::ValuesIn(full_matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
