// Thread-lifecycle churn across every scheme: workers repeatedly
// deregister and fresh threads re-register (recycling dense tids with a
// bumped slot_epoch) while a long-lived reclaimer keeps retiring — so
// ping waves and handshake waits are constantly aimed at tids whose
// owner just changed. Afterwards the pool must balance: a reservation
// slot left pinned by a stale (pre-recycle) observation would leak
// blocks, and a handshake that failed to notice the epoch bump would
// hang the reclaimer outright.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class ThreadChurn : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadChurn, RecycledTidsLeaveNoSlotPinned) {
  const std::string smr = GetParam();
  const auto before = runtime::PoolAllocator::instance().stats();
  std::map<int, std::set<uint64_t>> tid_epochs;  // tid -> epochs observed
  std::mutex mu;
  {
    SetConfig cfg;
    cfg.capacity = 256;
    cfg.smr.retire_threshold = 16;
    cfg.smr.epoch_freq = 2;
    auto s = make_set("HML", smr, cfg);
    ASSERT_NE(s, nullptr);

    // Long-lived reclaimer: constant retires keep reclamation passes (and
    // for the signal-based schemes, ping waves) in flight for the whole
    // churn sequence.
    std::atomic<bool> stop{false};
    std::thread reclaimer([&] {
      runtime::Xoshiro256 rng(7);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t k = rng.next_below(128);
        s->insert(k);
        s->erase(k);
      }
      s->detach_thread();
    });

    auto& reg = runtime::ThreadRegistry::instance();
    constexpr int kRounds = 8;
    constexpr int kWorkers = 3;
    for (int round = 0; round < kRounds; ++round) {
      test::run_threads(kWorkers, [&](int w) {
        const int tid = runtime::my_tid();
        {
          std::lock_guard<std::mutex> g(mu);
          tid_epochs[tid].insert(reg.slot_epoch(tid));
        }
        runtime::Xoshiro256 rng(1000 * round + w);
        for (int i = 0; i < 400; ++i) {
          const uint64_t k = rng.next_below(128);
          const uint64_t dice = rng.next_below(100);
          if (dice < 40) {
            s->insert(k);
          } else if (dice < 80) {
            s->erase(k);
          } else {
            (void)s->contains(k);
          }
        }
        s->detach_thread();
      });  // threads exit here: tids deregister, epochs bump
    }

    stop.store(true, std::memory_order_release);
    reclaimer.join();
    s->detach_thread();

    // Registration epochs: at least one dense tid must have been recycled
    // across rounds (same slot, different epoch) — the exact condition
    // in-flight ping waves have to survive.
    bool recycled = false;
    for (const auto& [tid, epochs] : tid_epochs) {
      if (epochs.size() >= 2) recycled = true;
    }
    EXPECT_TRUE(recycled)
        << "churn rounds never recycled a tid; the test lost its point";
  }  // set + domain destroyed: all retire lists drained
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance after tid churn for " << smr
      << ": a recycled slot left a reservation pinned";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ThreadChurn,
                         ::testing::ValuesIn(all_smr_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pop::ds
