// Leak accounting: after a data structure (and its domain) is destroyed,
// every pool block it allocated must be back on a free list — the pool's
// global allocated/freed counters balance. This catches nodes lost
// outside any retire list (e.g. an unlink whose retire was skipped) for
// every scheme, including the signal-driven ones.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class LeakBalance
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(LeakBalance, PoolBalancesAfterTeardown) {
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    SetConfig cfg;
    cfg.capacity = 256;
    cfg.smr.retire_threshold = 8;
    cfg.smr.epoch_freq = 2;
    auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
    ASSERT_NE(s, nullptr);
    std::atomic<int> arrived{0};
    test::run_threads(3, [&](int w) {
      (void)runtime::my_tid();
      arrived.fetch_add(1);
      while (arrived.load() < 3) std::this_thread::yield();
      runtime::Xoshiro256 rng(31 + w);
      for (int i = 0; i < 2500; ++i) {
        const uint64_t k = rng.next_below(128);
        const uint64_t dice = rng.next_below(100);
        if (dice < 30) {
          s->insert(k);
        } else if (dice < 60) {
          s->erase(k);
        } else if (dice < 80) {
          // Replaced nodes must be retired exactly once: a double retire
          // or a skipped retire both break the balance below.
          (void)s->put(k, rng.next());
        } else {
          (void)s->contains(k);
        }
      }
      s->detach_thread();
    });
    s->detach_thread();
  }  // IKV destroyed: live nodes freed by the DS, retired by the domain
  const auto after = runtime::PoolAllocator::instance().stats();
  // Quiescence: every block allocated under this scheme was freed (the
  // batched sweep path included).
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance: some node was never freed (leak) for "
      << std::get<0>(GetParam()) << "/" << std::get<1>(GetParam());
  // (The strict batching claim — splices < blocks on a batched remote
  // free — is asserted by PoolAlloc.FreeBatchRemoteSpliceCountsBlocksNot-
  // Operations, where the workload guarantees a multi-block group.)
}

TEST_P(LeakBalance, PutReplaceBalancesUnderChurnAndStall) {
  // The put-replace retire path under the two lifecycle hazards the
  // scenario engine injects: thread churn (waves of short-lived workers
  // recycling registry tids mid-run) and a victim parked inside an
  // operation bracket pinning its entry-time reservation. Every displaced
  // node must still be retired exactly once and freed by teardown.
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    SetConfig cfg;
    cfg.capacity = 256;
    cfg.smr.retire_threshold = 8;
    cfg.smr.epoch_freq = 2;
    auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
    ASSERT_NE(s, nullptr);

    std::atomic<bool> release{false};
    std::atomic<bool> parked{false};
    std::thread victim([&] {
      parked.store(true);
      s->park_in_operation(release);
      s->detach_thread();
    });
    while (!parked.load()) std::this_thread::yield();
    // Timer-released (not released by worker progress): schemes whose
    // reclaim blocks on in-flight readers (BRC) stall the workers until
    // the victim resumes, so tying release to completion would deadlock.
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      release.store(true);
    });

    // Churn: three waves of workers; each wave's threads exit (recycling
    // their tids for the next wave) while the victim stays parked for the
    // early part of the run.
    for (int wave = 0; wave < 3; ++wave) {
      test::run_threads(3, [&](int w) {
        runtime::Xoshiro256 rng(1000 * wave + w);
        for (int i = 0; i < 1200; ++i) {
          const uint64_t k = rng.next_below(64);
          const uint64_t dice = rng.next_below(100);
          if (dice < 55) {
            (void)s->put(k, rng.next());
          } else if (dice < 75) {
            s->erase(k);
          } else {
            uint64_t v = 0;
            (void)s->get(k, &v);
          }
        }
        s->detach_thread();
      });
    }
    timer.join();
    victim.join();
    s->detach_thread();
  }
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance on the put-replace path under churn+stall for "
      << std::get<0>(GetParam()) << "/" << std::get<1>(GetParam());
}

TEST_P(LeakBalance, ZombieKilledMidOperationIsReapedAndBalanced) {
  // The crash-fault lifecycle end to end: a worker dies *inside* an
  // operation bracket with its registry slot leaked (the hard zombie —
  // the TLS deregister never runs, so only the reaper's tgkill
  // certification can reclaim the tid). Survivor traffic must certify the
  // corpse, neutralize its reservations per scheme, adopt its orphaned
  // retire list, and by teardown the pool must balance: allocated ==
  // freed, i.e. the kill leaked nothing.
  const auto& ds = std::get<0>(GetParam());
  const auto& smr = std::get<1>(GetParam());
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    SetConfig cfg;
    cfg.capacity = 256;
    cfg.smr.retire_threshold = 8;
    cfg.smr.epoch_freq = 2;
    auto s = make_set(ds, smr, cfg);
    ASSERT_NE(s, nullptr);

    // The corpse: accumulates a private retire backlog (puts displace
    // nodes), then dies mid-operation.
    std::thread corpse([&] {
      runtime::Xoshiro256 rng(97);
      for (int i = 0; i < 800; ++i) {
        const uint64_t k = rng.next_below(64);
        const uint64_t dice = rng.next_below(100);
        if (dice < 40) {
          (void)s->put(k, rng.next());
        } else if (dice < 70) {
          s->erase(k);
        } else {
          s->insert(k);
        }
      }
      s->abandon_in_operation();
      runtime::ThreadRegistry::instance().detail_abandon_registration();
    });
    corpse.join();  // the kernel thread is gone; the slot still reads alive

    // Survivors churn enough reclaim passes for the staleness gate to
    // open and the certification to land, then detach cleanly.
    test::run_threads(3, [&](int w) {
      runtime::Xoshiro256 rng(500 + w);
      for (int i = 0; i < 2500; ++i) {
        const uint64_t k = rng.next_below(64);
        const uint64_t dice = rng.next_below(100);
        if (dice < 40) {
          (void)s->put(k, rng.next());
        } else if (dice < 70) {
          s->erase(k);
        } else {
          s->insert(k);
        }
      }
      s->detach_thread();
    });
    if (smr != "NR") {
      // NR has no reclaim pass, hence no reap site: its teardown drain
      // alone restores the balance, which the EXPECT below still checks.
      EXPECT_GE(s->smr_stats().tids_reaped, 1u)
          << "no survivor ever certified the corpse for " << ds << "/" << smr;
    }
    s->detach_thread();
  }
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance after a mid-operation kill for " << ds << "/" << smr
      << ": the corpse's garbage was never adopted or its reservations "
         "never neutralized";
}

// Resize-storm leak balance, RHHT under every scheme: an under-
// provisioned table (capacity 4, load factor 2) grows repeatedly under
// put-heavy traffic while a victim sits parked inside an operation
// bracket, so displaced bucket arrays — each one large pool block
// retired as a single Reclaimable — queue up behind a live reservation.
// Teardown must still return every block: node, dummy-backing list
// cells, and every generation of bucket array.
class ResizeStormLeakBalance
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ResizeStormLeakBalance, BucketArraysBalanceUnderStormAndStall) {
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    SetConfig cfg;
    cfg.capacity = 4;
    cfg.load_factor = 2.0;
    cfg.smr.retire_threshold = 8;
    cfg.smr.epoch_freq = 2;
    auto s = make_set("RHHT", GetParam(), cfg);
    ASSERT_NE(s, nullptr);

    std::atomic<bool> release{false};
    std::atomic<bool> parked{false};
    std::thread victim([&] {
      parked.store(true);
      s->park_in_operation(release);
      s->detach_thread();
    });
    while (!parked.load()) std::this_thread::yield();
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      release.store(true);
    });

    // Two fill/drain waves per worker: the population swings force grows
    // on the way up and shrinks on the way down, so descriptors of both
    // polarities are retired while the victim is (initially) parked.
    test::run_threads(3, [&](int w) {
      runtime::Xoshiro256 rng(5000 + w);
      for (int wave = 0; wave < 2; ++wave) {
        for (int i = 0; i < 1500; ++i) {
          (void)s->put(rng.next_below(1024), rng.next());
        }
        for (int i = 0; i < 1500; ++i) {
          (void)s->erase(rng.next_below(1024));
        }
      }
      s->detach_thread();
    });
    timer.join();
    victim.join();
    EXPECT_GT(s->resize_stats().grows, 0u)
        << "the storm never grew the table; the test lost its point";
    s->detach_thread();
  }
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance after a resize storm under RHHT/" << GetParam()
      << ": a bucket array or node generation was never freed";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ResizeStormLeakBalance,
                         ::testing::ValuesIn(all_smr_names()),
                         [](const auto& info) { return info.param; });

std::vector<std::tuple<std::string, std::string>> matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) v.emplace_back(ds, smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LeakBalance, ::testing::ValuesIn(matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
