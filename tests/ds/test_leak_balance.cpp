// Leak accounting: after a data structure (and its domain) is destroyed,
// every pool block it allocated must be back on a free list — the pool's
// global allocated/freed counters balance. This catches nodes lost
// outside any retire list (e.g. an unlink whose retire was skipped) for
// every scheme, including the signal-driven ones.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

class LeakBalance
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(LeakBalance, PoolBalancesAfterTeardown) {
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    SetConfig cfg;
    cfg.capacity = 256;
    cfg.smr.retire_threshold = 8;
    cfg.smr.epoch_freq = 2;
    auto s = make_set(std::get<0>(GetParam()), std::get<1>(GetParam()), cfg);
    ASSERT_NE(s, nullptr);
    std::atomic<int> arrived{0};
    test::run_threads(3, [&](int w) {
      (void)runtime::my_tid();
      arrived.fetch_add(1);
      while (arrived.load() < 3) std::this_thread::yield();
      runtime::Xoshiro256 rng(31 + w);
      for (int i = 0; i < 2500; ++i) {
        const uint64_t k = rng.next_below(128);
        const uint64_t dice = rng.next_below(100);
        if (dice < 40) {
          s->insert(k);
        } else if (dice < 80) {
          s->erase(k);
        } else {
          (void)s->contains(k);
        }
      }
      s->detach_thread();
    });
    s->detach_thread();
  }  // ISet destroyed: live nodes freed by the DS, retired by the domain
  const auto after = runtime::PoolAllocator::instance().stats();
  // Quiescence: every block allocated under this scheme was freed (the
  // batched sweep path included).
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks,
            after.freed_blocks - before.freed_blocks)
      << "pool imbalance: some node was never freed (leak) for "
      << std::get<0>(GetParam()) << "/" << std::get<1>(GetParam());
  // (The strict batching claim — splices < blocks on a batched remote
  // free — is asserted by PoolAlloc.FreeBatchRemoteSpliceCountsBlocksNot-
  // Operations, where the workload guarantees a multi-block group.)
}

std::vector<std::tuple<std::string, std::string>> matrix() {
  std::vector<std::tuple<std::string, std::string>> v;
  for (const auto& ds : all_ds_names()) {
    for (const auto& smr : all_smr_names()) v.emplace_back(ds, smr);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LeakBalance, ::testing::ValuesIn(matrix()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace pop::ds
