// HML-specific structure tests (direct template use, no factory).
#include <gtest/gtest.h>

#include "core/hazard_ptr_pop.hpp"
#include "ds/hm_list.hpp"
#include "runtime/rng.hpp"
#include "smr/ebr.hpp"
#include "smr/hp.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

TEST(HmList, StartsEmpty) {
  HmList<smr::HpDomain> l;
  EXPECT_EQ(l.size_slow(), 0u);
  EXPECT_FALSE(l.contains(1));
  EXPECT_FALSE(l.erase(1));
}

TEST(HmList, KeysStaySortedAndUnique) {
  HmList<smr::HpDomain> l;
  const uint64_t keys[] = {5, 3, 9, 1, 7, 2, 8, 4, 6, 0};
  for (uint64_t k : keys) EXPECT_TRUE(l.insert(k));
  EXPECT_TRUE(l.sorted_unique_slow());
  EXPECT_EQ(l.size_slow(), 10u);
  EXPECT_TRUE(l.erase(5));
  EXPECT_TRUE(l.erase(0));
  EXPECT_TRUE(l.erase(9));
  EXPECT_TRUE(l.sorted_unique_slow());
  EXPECT_EQ(l.size_slow(), 7u);
}

TEST(HmList, BoundaryKeys) {
  HmList<core::HazardPtrPopDomain> l;
  EXPECT_TRUE(l.insert(0));
  EXPECT_TRUE(l.insert(UINT64_MAX - 1));
  EXPECT_TRUE(l.contains(0));
  EXPECT_TRUE(l.contains(UINT64_MAX - 1));
  EXPECT_TRUE(l.erase(0));
  EXPECT_TRUE(l.erase(UINT64_MAX - 1));
}

TEST(HmList, HelpingUnlinksMarkedNodes) {
  // After an erase, a traversal must not observe the key even if the
  // eraser's unlink CAS lost; exercised by hammering a single key.
  smr::SmrConfig cfg;
  cfg.retire_threshold = 4;
  HmList<smr::HpDomain> l(cfg);
  std::atomic<uint64_t> inserted{0}, erased{0};
  test::run_threads(4, [&](int t) {
    for (int i = 0; i < 4000; ++i) {
      if (t % 2 == 0) {
        if (l.insert(42)) inserted.fetch_add(1);
      } else {
        if (l.erase(42)) erased.fetch_add(1);
      }
    }
    l.domain().detach();
  });
  const uint64_t net = inserted.load() - erased.load();
  EXPECT_LE(net, 1u);
  EXPECT_EQ(l.size_slow() > 0 ? 1u : 0u, net);
  EXPECT_TRUE(l.sorted_unique_slow());
}

TEST(HmList, ConcurrentDisjointInserts) {
  HmList<smr::EbrDomain> l;
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 300;
  test::run_threads(kThreads, [&](int t) {
    for (uint64_t i = 0; i < kPer; ++i) {
      EXPECT_TRUE(l.insert(static_cast<uint64_t>(t) * kPer + i));
    }
    l.domain().detach();
  });
  EXPECT_EQ(l.size_slow(), kThreads * kPer);
  EXPECT_TRUE(l.sorted_unique_slow());
  for (uint64_t k = 0; k < kThreads * kPer; ++k) EXPECT_TRUE(l.contains(k));
}

TEST(HmList, ConcurrentInsertEraseKeepsInvariants) {
  smr::SmrConfig cfg;
  cfg.retire_threshold = 8;
  HmList<core::HazardPtrPopDomain> l(cfg);
  constexpr uint64_t kRange = 128;
  std::atomic<int64_t> net{0};
  test::run_threads(4, [&](int t) {
    runtime::Xoshiro256 rng(1000 + t);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t k = rng.next_below(kRange);
      if (rng.percent(50)) {
        if (l.insert(k)) net.fetch_add(1);
      } else {
        if (l.erase(k)) net.fetch_sub(1);
      }
    }
    l.domain().detach();
  });
  EXPECT_EQ(l.size_slow(), static_cast<uint64_t>(net.load()));
  EXPECT_TRUE(l.sorted_unique_slow());
}

}  // namespace
}  // namespace pop::ds
