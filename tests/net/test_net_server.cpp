// NetServer end-to-end semantics. The anchor is the differential test:
// the same op sequence replayed through a socketpair-adopted connection
// and directly against an identically-configured make_service_set map
// must produce op-for-op identical outcomes (hit/miss, inserted/
// replaced, removed/absent, returned values) — the wire, the framing,
// and the batch bracket must be a transparent transport around the map.
// Also covered: pipelined batches over TCP from many connections (stats
// roll-up matches the client's view), protocol-error close, PING, and
// graceful stop with live connections.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include "ds/iset.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "runtime/rng.hpp"
#include "service/sharded_map.hpp"
#include "../support/test_util.hpp"

namespace pop::net {
namespace {

NetServerConfig base_cfg(const std::string& ds, const std::string& smr,
                         int shards, bool listen) {
  NetServerConfig cfg;
  cfg.ds = ds;
  cfg.smr = smr;
  cfg.shards = shards;
  cfg.workers = 2;
  cfg.listen = listen;
  cfg.set.capacity = 512;
  cfg.set.smr.retire_threshold = 16;
  cfg.set.smr.epoch_freq = 4;
  return cfg;
}

// Connects a NetClient to `srv` over a socketpair (no TCP, hermetic).
bool pair_up(NetServer& srv, NetClient& client) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  if (!srv.adopt(fds[0])) {
    close(fds[1]);
    return false;
  }
  client.adopt(fds[1]);
  return true;
}

// One deterministic mixed op: same distribution for both sides.
Request nth_op(runtime::Xoshiro256& rng) {
  const uint64_t k = rng.next_below(96);
  switch (rng.next_below(4)) {
    case 0:
      return {Op::kPut, k, rng.next()};
    case 1:
      return {Op::kDel, k, 0};
    default:
      return {Op::kGet, k, 0};
  }
}

// The differential core: replay `ops` through the wire and against the
// reference map, asserting identical outcomes op-for-op.
void replay_and_compare(NetClient& client, ds::IKV& ref,
                        const std::vector<Request>& ops, int pipeline) {
  std::vector<Request> batch;
  std::vector<Response> resps;
  for (size_t i = 0; i < ops.size();) {
    batch.clear();
    for (int p = 0; p < pipeline && i < ops.size(); ++p, ++i) {
      batch.push_back(ops[i]);
    }
    ASSERT_TRUE(client.exec_batch(batch, &resps));
    ASSERT_EQ(resps.size(), batch.size());
    for (size_t j = 0; j < batch.size(); ++j) {
      const Request& req = batch[j];
      const Response& got = resps[j];
      switch (req.op) {
        case Op::kPing:
          EXPECT_EQ(got.status, Status::kPong);
          break;
        case Op::kGet: {
          uint64_t want_val = 0;
          const bool want_hit = ref.get(req.key, &want_val);
          EXPECT_EQ(got.status == Status::kHit, want_hit) << "op " << j;
          if (want_hit) {
            EXPECT_EQ(got.val, want_val) << "op " << j;
          }
          break;
        }
        case Op::kPut: {
          const auto want = ref.put(req.key, req.val);
          EXPECT_EQ(got.status, want == ds::PutResult::kReplaced
                                    ? Status::kReplaced
                                    : Status::kInserted)
              << "op " << j;
          break;
        }
        case Op::kDel: {
          const bool want = ref.remove(req.key);
          EXPECT_EQ(got.status == Status::kHit, want) << "op " << j;
          break;
        }
      }
    }
  }
}

// Differential across the cell matrix the CI smoke sweeps, plus a
// sharded cell (routing must not break transport transparency).
TEST(NetServer, DifferentialAgainstDirectMap) {
  struct Cell {
    const char* ds;
    const char* smr;
    int shards;
  };
  const Cell cells[] = {{"HMHT", "EBR", 1},
                        {"HMHT", "EpochPOP", 1},
                        {"RHHT", "EBR", 1},
                        {"RHHT", "EpochPOP", 1},
                        {"HMHT", "EBR", 2}};
  for (const Cell& c : cells) {
    SCOPED_TRACE(std::string(c.ds) + "/" + c.smr + "/shards=" +
                 std::to_string(c.shards));
    auto cfg = base_cfg(c.ds, c.smr, c.shards, /*listen=*/false);
    auto srv = NetServer::create(cfg);
    ASSERT_NE(srv, nullptr);
    srv->start();
    auto ref = service::make_service_set(c.ds, c.smr, cfg.set, c.shards);
    ASSERT_NE(ref, nullptr);

    NetClient client;
    ASSERT_TRUE(pair_up(*srv, client));

    runtime::Xoshiro256 rng(42);
    std::vector<Request> ops;
    ops.push_back({Op::kPing, 0, 0});
    for (int i = 0; i < 2000; ++i) ops.push_back(nth_op(rng));
    replay_and_compare(client, *ref, ops, /*pipeline=*/8);

    // Both sides must agree on the final population too.
    EXPECT_EQ(srv->map().size_slow(), ref->size_slow());
    client.close_fd();
    srv->stop();
    ref->detach_thread();
  }
}

TEST(NetServer, SingleOpConveniencesOverSocketpair) {
  auto srv = NetServer::create(base_cfg("HMHT", "EBR", 1, /*listen=*/false));
  ASSERT_NE(srv, nullptr);
  srv->start();
  NetClient client;
  ASSERT_TRUE(pair_up(*srv, client));

  EXPECT_TRUE(client.ping());
  bool hit = true, replaced = true, removed = true;
  uint64_t val = 0;
  ASSERT_TRUE(client.get(1, &val, &hit));
  EXPECT_FALSE(hit);
  ASSERT_TRUE(client.put(1, 77, &replaced));
  EXPECT_FALSE(replaced);
  ASSERT_TRUE(client.put(1, 78, &replaced));
  EXPECT_TRUE(replaced);
  ASSERT_TRUE(client.get(1, &val, &hit));
  EXPECT_TRUE(hit);
  EXPECT_EQ(val, 78u);
  ASSERT_TRUE(client.del(1, &removed));
  EXPECT_TRUE(removed);
  ASSERT_TRUE(client.del(1, &removed));
  EXPECT_FALSE(removed);

  const auto s = srv->total_stats();
  EXPECT_EQ(s.pings, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.get_hits, 1u);
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.put_replaced, 1u);
  EXPECT_EQ(s.dels, 2u);
  EXPECT_EQ(s.del_hits, 1u);
  srv->stop();
}

// Multi-connection pipelined TCP: per-connection counters roll up to
// exactly what the clients sent, and deep pipelines exercise the
// batch-drain path (server max_batch should reflect pipelining).
TEST(NetServer, MultiConnectionTcpPipelines) {
  auto cfg = base_cfg("HMHT", "EpochPOP", 2, /*listen=*/true);
  cfg.port = 0;  // ephemeral
  auto srv = NetServer::create(cfg);
  ASSERT_NE(srv, nullptr);
  srv->start();
  ASSERT_NE(srv->port(), 0);

  constexpr int kConns = 4;
  constexpr int kBatches = 40;
  constexpr int kDepth = 16;
  test::run_threads(kConns, [&](int t) {
    NetClient client;
    ASSERT_TRUE(client.connect_tcp("127.0.0.1", srv->port()));
    runtime::Xoshiro256 rng(static_cast<uint64_t>(t) + 1);
    std::vector<Request> batch;
    std::vector<Response> resps;
    std::vector<uint64_t> lats;
    for (int b = 0; b < kBatches; ++b) {
      batch.clear();
      for (int p = 0; p < kDepth; ++p) batch.push_back(nth_op(rng));
      ASSERT_TRUE(client.exec_batch(batch, &resps, &lats));
      ASSERT_EQ(lats.size(), batch.size());
      for (const uint64_t ns : lats) EXPECT_GT(ns, 0u);
    }
  });

  const auto s = srv->total_stats();
  EXPECT_EQ(s.ops, uint64_t{kConns} * kBatches * kDepth);
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_GE(s.batches, uint64_t{kConns});  // ET may coalesce client batches
  EXPECT_GT(s.max_batch, 1u);              // pipelining actually batched
  EXPECT_EQ(srv->connections_accepted(), uint64_t{kConns});
  srv->stop();
}

TEST(NetServer, ProtocolErrorClosesConnection) {
  auto srv = NetServer::create(base_cfg("HMHT", "EBR", 1, /*listen=*/false));
  ASSERT_NE(srv, nullptr);
  srv->start();

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(srv->adopt(fds[0]));
  // An oversized length prefix: the server must close, not buffer.
  const uint8_t evil[] = {0xff, 0xff, 0xff, 0x7f, 0x01};
  ASSERT_EQ(write(fds[1], evil, sizeof(evil)),
            static_cast<ssize_t>(sizeof(evil)));
  // The close surfaces as EOF on our side.
  uint8_t buf[8];
  ssize_t r;
  do {
    r = read(fds[1], buf, sizeof(buf));
  } while (r < 0 && errno == EINTR);
  EXPECT_EQ(r, 0);
  close(fds[1]);

  const auto s = srv->total_stats();
  EXPECT_EQ(s.protocol_errors, 1u);
  EXPECT_EQ(s.ops, 0u);  // nothing executed from the poisoned stream
  srv->stop();
}

// Stopping with live connections must not hang or leak: workers close
// adopted fds on the way out (peer sees EOF).
TEST(NetServer, StopWithLiveConnections) {
  auto srv = NetServer::create(base_cfg("HMHT", "EBR", 1, /*listen=*/false));
  ASSERT_NE(srv, nullptr);
  srv->start();
  NetClient a, b;
  ASSERT_TRUE(pair_up(*srv, a));
  ASSERT_TRUE(pair_up(*srv, b));
  EXPECT_TRUE(a.ping());
  srv->stop();
  // The server side is gone: the next exchange fails instead of hanging.
  EXPECT_FALSE(b.ping());
}

}  // namespace
}  // namespace pop::net
