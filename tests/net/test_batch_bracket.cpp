// The SMR batch bracket (IKV::batch_begin/batch_end): ops inside a
// bracket must behave exactly like un-bracketed ops — the bracket is an
// amortization, never a semantics change. Covered: per-key equivalence
// against a sequential reference across the scheme matrix (including
// NBR, whose guards never skip and degrade to per-op brackets),
// reclamation continuing across repeated batches, concurrent bracketed
// pipelines on a ShardedMap, and nesting discipline.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"
#include "service/sharded_map.hpp"
#include "smr/domain_base.hpp"
#include "../support/test_util.hpp"

namespace pop {
namespace {

ds::SetConfig small_cfg() {
  ds::SetConfig cfg;
  cfg.capacity = 512;
  cfg.smr.retire_threshold = 16;
  cfg.smr.epoch_freq = 4;
  return cfg;
}

// Every scheme a batched server cell can run, including the one that
// opts out of skipping (NBR) and the no-reclamation baseline.
const char* kSchemes[] = {"NR",  "EBR", "IBR",          "HE",
                          "HP",  "NBR", "HazardEraPOP", "EpochPOP"};

TEST(BatchBracket, MatchesSequentialReferenceAcrossSchemes) {
  for (const char* smr : kSchemes) {
    for (const char* dsn : {"HMHT", "RHHT", "HML"}) {
      auto m = ds::make_kv(dsn, smr, small_cfg());
      ASSERT_NE(m, nullptr) << dsn << "/" << smr;
      std::map<uint64_t, uint64_t> ref;
      runtime::Xoshiro256 rng(0xba7c4ull ^ std::hash<std::string>{}(smr));
      // 64 batches x 32 ops, every op checked against the reference map
      // while the bracket is open (gets inside a batch must see the
      // batch's own writes).
      for (int b = 0; b < 64; ++b) {
        m->batch_begin();
        for (int i = 0; i < 32; ++i) {
          const uint64_t k = rng.next_below(128);
          switch (rng.next_below(3)) {
            case 0: {  // put
              const uint64_t v = rng.next();
              const auto r = m->put(k, v);
              const bool existed = ref.count(k) > 0;
              EXPECT_EQ(r == ds::PutResult::kReplaced, existed)
                  << dsn << "/" << smr;
              ref[k] = v;
              break;
            }
            case 1: {  // del
              EXPECT_EQ(m->remove(k), ref.erase(k) > 0) << dsn << "/" << smr;
              break;
            }
            default: {  // get
              uint64_t v = 0;
              const auto it = ref.find(k);
              ASSERT_EQ(m->get(k, &v), it != ref.end()) << dsn << "/" << smr;
              if (it != ref.end()) {
                EXPECT_EQ(v, it->second);
              }
            }
          }
        }
        m->batch_end();
      }
      EXPECT_EQ(m->size_slow(), ref.size()) << dsn << "/" << smr;
      m->detach_thread();
    }
  }
}

// Replace-heavy batches must still reclaim: the bracket amortizes the
// op entry, it must not suppress retire/sweep progress indefinitely.
TEST(BatchBracket, ReclamationProgressesAcrossBatches) {
  auto m = ds::make_kv("HMHT", "EBR", small_cfg());
  ASSERT_NE(m, nullptr);
  for (int b = 0; b < 200; ++b) {
    m->batch_begin();
    for (uint64_t k = 0; k < 32; ++k) m->put(k, static_cast<uint64_t>(b));
    m->batch_end();
  }
  const auto s = m->smr_stats();
  EXPECT_GT(s.retired, 0u);
  EXPECT_GT(s.freed, 0u);  // sweeps ran even though ops were bracketed
  m->detach_thread();
}

// The thread-local batch depth survives nesting (ShardedMap's bracket
// opens every shard's scope; a depth counter, not a flag, is what makes
// that unwind correctly).
TEST(BatchBracket, ScopeDepthNests) {
  EXPECT_FALSE(smr::in_batch_scope());
  smr::batch_scope_enter();
  smr::batch_scope_enter();
  EXPECT_TRUE(smr::in_batch_scope());
  smr::batch_scope_exit();
  EXPECT_TRUE(smr::in_batch_scope());
  smr::batch_scope_exit();
  EXPECT_FALSE(smr::in_batch_scope());
}

TEST(BatchBracket, ShardedMapConcurrentBatches) {
  for (const char* smr : {"EBR", "EpochPOP"}) {
    service::ShardedMapConfig cfg;
    cfg.shards = 4;
    cfg.set = small_cfg();
    auto m = service::ShardedMap::create("HMHT", smr, cfg);
    ASSERT_NE(m, nullptr);
    constexpr int kThreads = 4;
    constexpr uint64_t kStripe = 1024;
    test::run_threads(kThreads, [&](int t) {
      // Worker-private key stripes: each thread read-checks its own
      // writes inside open brackets while other threads batch on other
      // stripes of the same shards concurrently.
      const uint64_t base = static_cast<uint64_t>(t) * kStripe;
      for (int b = 0; b < 50; ++b) {
        m->batch_begin();
        for (uint64_t i = 0; i < 24; ++i) {
          const uint64_t k = base + (i * 7 + static_cast<uint64_t>(b)) % kStripe;
          m->put(k, k ^ static_cast<uint64_t>(b));
          uint64_t v = 0;
          EXPECT_TRUE(m->get(k, &v));
          EXPECT_EQ(v, k ^ static_cast<uint64_t>(b));
          if (i % 3 == 0) m->remove(k);
        }
        m->batch_end();
      }
      m->detach_thread();
    });
    // Cross-check the routing layer stayed consistent: every op landed.
    const auto stats = m->service_stats();
    EXPECT_GT(stats.ops_total, 0u);
  }
}

}  // namespace
}  // namespace pop
