// Framing torture suite for the networked front end's wire format:
// every encode/decode round-trips, torn delivery at EVERY byte boundary
// reassembles identically, pipelined mixed batches split cleanly, and
// each malformed-input class (zero length, oversized length, unknown
// opcode, op/length mismatch) is rejected — never parsed into garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/frame.hpp"

namespace pop::net {
namespace {

std::vector<Request> sample_pipeline() {
  return {
      {Op::kPing, 0, 0},
      {Op::kPut, 7, 0xdeadbeefcafef00dull},
      {Op::kGet, 7, 0},
      {Op::kDel, 7, 0},
      {Op::kGet, UINT64_MAX, 0},
      {Op::kPut, 0, 0},
      {Op::kDel, UINT64_MAX, 0},
  };
}

// Splits `wire` at every position into (prefix, suffix), feeds the two
// halves separately, and expects the identical decoded sequence.
std::vector<Request> parse_all(const std::vector<uint8_t>& wire,
                               size_t split_at) {
  FrameSplitter fs;
  std::vector<Request> out;
  auto drain = [&] {
    for (;;) {
      const uint8_t* body = nullptr;
      uint32_t len = 0;
      const auto res = fs.next(&body, &len);
      if (res != FrameSplitter::Result::kFrame) {
        EXPECT_EQ(res, FrameSplitter::Result::kNeedMore);
        return;
      }
      Request r;
      ASSERT_TRUE(decode_request(body, len, &r));
      out.push_back(r);
    }
  };
  fs.feed(wire.data(), split_at);
  drain();
  fs.feed(wire.data() + split_at, wire.size() - split_at);
  drain();
  EXPECT_EQ(fs.pending(), 0u);
  return out;
}

TEST(Frame, RequestRoundTrip) {
  for (const Request& r : sample_pipeline()) {
    std::vector<uint8_t> wire;
    encode_request(r, wire);
    FrameSplitter fs;
    fs.feed(wire.data(), wire.size());
    const uint8_t* body = nullptr;
    uint32_t len = 0;
    ASSERT_EQ(fs.next(&body, &len), FrameSplitter::Result::kFrame);
    Request back;
    ASSERT_TRUE(decode_request(body, len, &back));
    EXPECT_EQ(back.op, r.op);
    if (r.op != Op::kPing) {
      EXPECT_EQ(back.key, r.key);
    }
    if (r.op == Op::kPut) {
      EXPECT_EQ(back.val, r.val);
    }
    EXPECT_EQ(fs.pending(), 0u);
  }
}

TEST(Frame, ResponseRoundTrip) {
  std::vector<uint8_t> wire;
  encode_response(Response{Status::kHit, 0x1122334455667788ull}, wire);
  encode_response(Response{Status::kMiss, 0}, wire);
  encode_response(Response{Status::kInserted, 0}, wire);
  encode_response(Response{Status::kReplaced, 0}, wire);
  encode_response(Response{Status::kPong, 0}, wire);
  encode_response_removed(wire);

  FrameSplitter fs;
  fs.feed(wire.data(), wire.size());
  const uint8_t* body = nullptr;
  uint32_t len = 0;

  Response r;
  ASSERT_EQ(fs.next(&body, &len), FrameSplitter::Result::kFrame);
  ASSERT_TRUE(decode_response(body, len, &r));
  EXPECT_EQ(r.status, Status::kHit);
  EXPECT_EQ(r.val, 0x1122334455667788ull);

  const Status rest[] = {Status::kMiss, Status::kInserted, Status::kReplaced,
                         Status::kPong, Status::kHit /* removed: no val */};
  for (const Status want : rest) {
    ASSERT_EQ(fs.next(&body, &len), FrameSplitter::Result::kFrame);
    ASSERT_TRUE(decode_response(body, len, &r));
    EXPECT_EQ(r.status, want);
    if (want != rest[0] || len == 1) {
      EXPECT_EQ(r.val, 0u);
    }
  }
  EXPECT_EQ(fs.pending(), 0u);
}

// The core torture: a 7-op mixed pipeline torn at every byte boundary.
TEST(Frame, TornAtEveryByteBoundary) {
  const auto pipeline = sample_pipeline();
  std::vector<uint8_t> wire;
  for (const Request& r : pipeline) encode_request(r, wire);

  for (size_t split = 0; split <= wire.size(); ++split) {
    const auto parsed = parse_all(wire, split);
    ASSERT_EQ(parsed.size(), pipeline.size()) << "split at " << split;
    for (size_t i = 0; i < pipeline.size(); ++i) {
      EXPECT_EQ(parsed[i].op, pipeline[i].op) << "split " << split;
      EXPECT_EQ(parsed[i].key, pipeline[i].key) << "split " << split;
      EXPECT_EQ(parsed[i].val, pipeline[i].val) << "split " << split;
    }
  }
}

// Byte-at-a-time delivery: the most fragmented stream TCP can produce.
TEST(Frame, ByteAtATimeDelivery) {
  const auto pipeline = sample_pipeline();
  std::vector<uint8_t> wire;
  for (const Request& r : pipeline) encode_request(r, wire);

  FrameSplitter fs;
  std::vector<Request> parsed;
  for (const uint8_t b : wire) {
    fs.feed(&b, 1);
    for (;;) {
      const uint8_t* body = nullptr;
      uint32_t len = 0;
      if (fs.next(&body, &len) != FrameSplitter::Result::kFrame) break;
      Request r;
      ASSERT_TRUE(decode_request(body, len, &r));
      parsed.push_back(r);
    }
  }
  ASSERT_EQ(parsed.size(), pipeline.size());
  EXPECT_EQ(fs.pending(), 0u);
}

TEST(Frame, ZeroLengthRejected) {
  const uint8_t wire[] = {0, 0, 0, 0};
  FrameSplitter fs;
  fs.feed(wire, sizeof(wire));
  const uint8_t* body = nullptr;
  uint32_t len = 0;
  EXPECT_EQ(fs.next(&body, &len), FrameSplitter::Result::kError);
}

TEST(Frame, OversizedLengthRejected) {
  // Length 2^31: a hostile prefix must be rejected before any allocation
  // or wait-for-more-bytes, not buffered toward.
  const uint8_t wire[] = {0, 0, 0, 0x80};
  FrameSplitter fs;
  fs.feed(wire, sizeof(wire));
  const uint8_t* body = nullptr;
  uint32_t len = 0;
  EXPECT_EQ(fs.next(&body, &len), FrameSplitter::Result::kError);

  // One past the cap too.
  FrameSplitter fs2;
  const uint32_t over = kMaxFrameBody + 1;
  const uint8_t wire2[] = {static_cast<uint8_t>(over), 0, 0, 0};
  fs2.feed(wire2, sizeof(wire2));
  EXPECT_EQ(fs2.next(&body, &len), FrameSplitter::Result::kError);
}

TEST(Frame, UnknownOpcodeRejected) {
  for (const uint8_t op : {uint8_t{0x00}, uint8_t{0x05}, uint8_t{0xff}}) {
    const uint8_t body[] = {op, 0, 0, 0, 0, 0, 0, 0, 0};
    Request r;
    EXPECT_FALSE(decode_request(body, sizeof(body), &r)) << unsigned{op};
    EXPECT_FALSE(decode_request(body, 1, &r)) << unsigned{op};
  }
}

TEST(Frame, OpLengthMismatchRejected) {
  Request r;
  // PING with a payload, GET too short / PUT-sized, PUT truncated.
  const uint8_t ping9[] = {0x01, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_request(ping9, 9, &r));
  const uint8_t get8[] = {0x02, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_request(get8, 8, &r));
  const uint8_t get17[17] = {0x02};
  EXPECT_FALSE(decode_request(get17, 17, &r));
  const uint8_t put9[] = {0x03, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_request(put9, 9, &r));
  Response resp;
  // Responses: status-only shapes must not carry a value payload.
  const uint8_t pong9[] = {0x04, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode_response(pong9, 9, &resp));
  const uint8_t unknown[] = {0x09};
  EXPECT_FALSE(decode_response(unknown, 1, &resp));
}

// A torn tail (truncated final frame) is visible through pending().
TEST(Frame, TruncatedTailIsPending) {
  std::vector<uint8_t> wire;
  encode_request({Op::kPut, 1, 2}, wire);
  FrameSplitter fs;
  fs.feed(wire.data(), wire.size() - 3);
  const uint8_t* body = nullptr;
  uint32_t len = 0;
  EXPECT_EQ(fs.next(&body, &len), FrameSplitter::Result::kNeedMore);
  EXPECT_GT(fs.pending(), 0u);
}

}  // namespace
}  // namespace pop::net
