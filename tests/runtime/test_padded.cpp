#include "runtime/padded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

namespace pop::runtime {
namespace {

TEST(Padded, EachElementOnOwnCacheLine) {
  Padded<std::atomic<uint64_t>> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<uintptr_t>(&arr[i]);
    const auto b = reinterpret_cast<uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLine);
    EXPECT_EQ(a % kCacheLine, 0u);
  }
}

TEST(Padded, ForwardsConstructorArguments) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.v, 42);
}

TEST(Padded, ArrowOperatorReachesMember) {
  struct S {
    int x = 9;
  };
  Padded<S> p;
  EXPECT_EQ(p->x, 9);
}

}  // namespace
}  // namespace pop::runtime
