#include "runtime/spinlock.hpp"

#include <gtest/gtest.h>

#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

TEST(Spinlock, BasicAcquireRelease) {
  Spinlock l;
  EXPECT_FALSE(l.is_locked());
  l.lock();
  EXPECT_TRUE(l.is_locked());
  l.unlock();
  EXPECT_FALSE(l.is_locked());
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  Spinlock l;
  ASSERT_TRUE(l.try_lock());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock l;
  int64_t counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  test::run_threads(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      l.lock();
      ++counter;
      l.unlock();
    }
  });
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace pop::runtime
