#include "runtime/thread_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

TEST(ThreadRegistry, MainThreadGetsStableTid) {
  const int a = my_tid();
  const int b = my_tid();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_TRUE(ThreadRegistry::instance().alive(a));
}

TEST(ThreadRegistry, DistinctLiveThreadsGetDistinctTids) {
  const int main_tid = my_tid();  // register main before the workers
  std::mutex mu;
  std::set<int> tids;
  std::atomic<int> arrived{0};
  // Hold every worker alive until all 8 registered: ids must be distinct
  // only among *simultaneously live* threads (slots recycle on exit).
  test::run_threads(8, [&](int) {
    const int t = my_tid();
    {
      std::lock_guard<std::mutex> lk(mu);
      tids.insert(t);
    }
    arrived.fetch_add(1);
    while (arrived.load() < 8) std::this_thread::yield();
  });
  EXPECT_EQ(tids.size(), 8u);
  EXPECT_EQ(tids.count(main_tid), 0u);  // none equals the main thread's
}

TEST(ThreadRegistry, TidsAreRecycledAfterThreadExit) {
  std::set<int> first, second;
  std::mutex mu;
  test::run_threads(4, [&](int) {
    std::lock_guard<std::mutex> lk(mu);
    first.insert(my_tid());
  });
  test::run_threads(4, [&](int) {
    std::lock_guard<std::mutex> lk(mu);
    second.insert(my_tid());
  });
  // All four slots freed by join, so the second wave reuses them.
  EXPECT_EQ(first, second);
}

TEST(ThreadRegistry, SlotEpochBumpsOnRecycle) {
  auto& reg = ThreadRegistry::instance();
  int tid = -1;
  uint64_t epoch1 = 0;
  test::run_threads(1, [&](int) {
    tid = my_tid();
    epoch1 = reg.slot_epoch(tid);
  });
  EXPECT_FALSE(reg.alive(tid));
  uint64_t epoch2 = 0;
  test::run_threads(1, [&](int) {
    EXPECT_EQ(my_tid(), tid);  // recycled
    epoch2 = reg.slot_epoch(tid);
  });
  EXPECT_GT(epoch2, epoch1);
}

TEST(ThreadRegistry, LiveCountTracksRegistration) {
  const int base = ThreadRegistry::instance().live_count();
  std::atomic<bool> hold{true};
  std::atomic<int> ready{0};
  std::thread t([&] {
    (void)my_tid();
    ready.store(1);
    while (hold.load()) std::this_thread::yield();
  });
  while (ready.load() == 0) std::this_thread::yield();
  EXPECT_EQ(ThreadRegistry::instance().live_count(), base + 1);
  hold.store(false);
  t.join();
  EXPECT_EQ(ThreadRegistry::instance().live_count(), base);
}

TEST(ThreadRegistry, PingOthersSkipsSelfAndCountsTargets) {
  // Signal disposition for kPingSignal may not be installed yet; use
  // signal 0 semantics via a harmless real signal: install SIG_IGN.
  struct sigaction sa = {};
  sa.sa_handler = SIG_IGN;
  sigaction(SIGUSR2, &sa, nullptr);

  (void)my_tid();  // ensure the main thread is registered before counting
  std::atomic<bool> hold{true};
  std::atomic<int> up{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i) {
    ts.emplace_back([&] {
      (void)my_tid();
      up.fetch_add(1);
      while (hold.load()) std::this_thread::yield();
    });
  }
  while (up.load() < 3) std::this_thread::yield();
  const int base = ThreadRegistry::instance().live_count();
  EXPECT_GE(base, 4);
  int called = 0;
  const int sent = ThreadRegistry::instance().ping_others(
      SIGUSR2, [](int) { return true; },
      [&](int tid, uint64_t) {
        EXPECT_NE(tid, my_tid());
        ++called;
      });
  EXPECT_EQ(sent, called);
  EXPECT_EQ(sent, base - 1);
  hold.store(false);
  for (auto& t : ts) t.join();
}

}  // namespace
}  // namespace pop::runtime
