#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pop::runtime {
namespace {

TEST(Rng, SplitmixAdvancesState) {
  uint64_t s = 42;
  const uint64_t a = splitmix64(s);
  const uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 42u);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256 r(123);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Xoshiro256 r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversSmallRange) {
  Xoshiro256 r(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit in 1000 draws
}

TEST(Rng, PercentRespectsExtremes) {
  Xoshiro256 r(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(r.percent(0));
    EXPECT_TRUE(r.percent(100));
  }
}

TEST(Rng, PercentRoughlyCalibrated) {
  Xoshiro256 r(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.percent(30);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.30, 0.02);
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  Xoshiro256 r(71);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.next_unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Zipf, CdfIsMonotoneAndNormalized) {
  ZipfTable z(1000, 0.99);
  EXPECT_EQ(z.n(), 1000u);
  double prev = 0;
  double mass = 0;
  for (uint64_t i = 0; i < z.n(); ++i) {
    const double p = z.pmf(i);
    EXPECT_GT(p, 0.0);
    mass += p;
    EXPECT_GE(z.pmf(0), p);  // rank 0 is the mode
    prev = p;
  }
  (void)prev;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfTable z(64, 0.0);
  for (uint64_t i = 0; i < z.n(); ++i) EXPECT_NEAR(z.pmf(i), 1.0 / 64, 1e-12);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfTable z(37, 1.2);
  Xoshiro256 r(5);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(r), 37u);
}

// The satellite's statistical acceptance check: empirical frequencies by
// rank must match the analytic Zipf mass within tolerance.
TEST(Zipf, FrequencyRanksMatchExpectedMass) {
  const uint64_t n = 1024;
  const double theta = 0.99;
  ZipfTable z(n, theta);
  Xoshiro256 r(12345);
  std::vector<uint64_t> counts(n, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[z.sample(r)];

  // Head ranks individually: within 10% relative error.
  for (uint64_t rank : {0ull, 1ull, 2ull, 9ull}) {
    const double expect = z.pmf(rank);
    const double got = static_cast<double>(counts[rank]) / draws;
    EXPECT_NEAR(got, expect, expect * 0.10) << "rank " << rank;
  }
  // Aggregate head mass (top 10 / top 100) within one percentage point.
  auto head_mass = [&](uint64_t k) {
    double e = 0, g = 0;
    for (uint64_t i = 0; i < k; ++i) {
      e += z.pmf(i);
      g += static_cast<double>(counts[i]) / draws;
    }
    EXPECT_NEAR(g, e, 0.01) << "top-" << k;
  };
  head_mass(10);
  head_mass(100);
  // Rank ordering is respected where the mass gaps are distinguishable.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[63]);
  EXPECT_GT(counts[63], counts[1023]);
}

TEST(Hotspot, HotWindowReceivesConfiguredMass) {
  const uint64_t range = 10000;
  HotspotDist h(range, 0.05, 90);
  EXPECT_EQ(h.hot_size(), 500u);
  Xoshiro256 r(99);
  const int draws = 100000;
  int hot = 0;
  for (int i = 0; i < draws; ++i) hot += h.sample(r) < h.hot_size();
  // 90% targeted + 5% of the uniform remainder lands in the window too.
  EXPECT_NEAR(static_cast<double>(hot) / draws, 0.90 + 0.10 * 0.05, 0.01);
}

TEST(Hotspot, MovingWindowWrapsAndStaysInRange) {
  const uint64_t range = 1000;
  HotspotDist h(range, 0.10, 100);  // every draw is in the window
  Xoshiro256 r(3);
  for (uint64_t start : {0ull, 950ull, 2500ull}) {
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = h.sample(r, start);
      ASSERT_LT(k, range);
      // In-window: distance from start (mod range) under hot_size.
      ASSERT_LT((k + range - start % range) % range, h.hot_size());
    }
  }
}

TEST(Hotspot, DegenerateParamsClampSafely) {
  HotspotDist tiny(0, 0.0, 200);
  Xoshiro256 r(8);
  EXPECT_EQ(tiny.range(), 1u);
  EXPECT_EQ(tiny.hot_size(), 1u);
  EXPECT_EQ(tiny.hot_pct(), 100u);
  EXPECT_EQ(tiny.sample(r), 0u);
  HotspotDist full(16, 2.0, 50);
  EXPECT_EQ(full.hot_size(), 16u);
}

}  // namespace
}  // namespace pop::runtime
