#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pop::runtime {
namespace {

TEST(Rng, SplitmixAdvancesState) {
  uint64_t s = 42;
  const uint64_t a = splitmix64(s);
  const uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 42u);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256 r(123);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Xoshiro256 r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversSmallRange) {
  Xoshiro256 r(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all residues hit in 1000 draws
}

TEST(Rng, PercentRespectsExtremes) {
  Xoshiro256 r(17);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(r.percent(0));
    EXPECT_TRUE(r.percent(100));
  }
}

TEST(Rng, PercentRoughlyCalibrated) {
  Xoshiro256 r(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.percent(30);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.30, 0.02);
}

}  // namespace
}  // namespace pop::runtime
