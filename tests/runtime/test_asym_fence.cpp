#include "runtime/asym_fence.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/signal_bus.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

TEST(AsymFence, BackendIsProbedOnce) {
  auto& f = AsymFence::instance();
  const AsymBackend b1 = f.backend();
  const AsymBackend b2 = AsymFence::instance().backend();
  EXPECT_EQ(static_cast<int>(b1), static_cast<int>(b2));
}

TEST(AsymFence, LightFenceIsCallable) {
  AsymFence::light_fence();  // compiler barrier only; must not crash
  SUCCEED();
}

TEST(AsymFence, HeavyFenceCompletesWithNoOtherThreads) {
  AsymFence::instance().heavy_fence();
  SUCCEED();
}

TEST(AsymFence, HeavyFenceCompletesWithBusyThreads) {
  std::atomic<bool> stop{false};
  std::atomic<int> up{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      (void)my_tid();
      detail::attach_barrier_client_for_current_thread();
      up.fetch_add(1);
      volatile uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) sink = sink + 1;
    });
  }
  while (up.load() < 4) std::this_thread::yield();
  for (int i = 0; i < 16; ++i) AsymFence::instance().heavy_fence();
  stop.store(true);
  for (auto& t : ts) t.join();
  SUCCEED();
}

// Message-passing smoke test: store, heavy fence, then every reader that
// subsequently acknowledges must see the store.
TEST(AsymFence, StoreVisibleAfterHeavyFence) {
  std::atomic<int> data{0};
  std::atomic<int> seen{-1};
  std::atomic<bool> go{false};
  std::thread reader([&] {
    (void)my_tid();
    detail::attach_barrier_client_for_current_thread();
    while (!go.load(std::memory_order_relaxed)) std::this_thread::yield();
    seen.store(data.load(std::memory_order_relaxed));
  });
  data.store(42, std::memory_order_relaxed);
  AsymFence::instance().heavy_fence();
  go.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(seen.load(), 42);
}

}  // namespace
}  // namespace pop::runtime
