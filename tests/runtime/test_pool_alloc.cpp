#include "runtime/pool_alloc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

TEST(PoolAlloc, AllocateReturnsWritableMemory) {
  void* p = pool_alloc(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 64);
  pool_free(p);
}

TEST(PoolAlloc, SameSizeClassReusesBlocks) {
  void* a = pool_alloc(48);
  pool_free(a);
  void* b = pool_alloc(48);  // LIFO free list: should hand back `a`
  EXPECT_EQ(a, b);
  pool_free(b);
}

TEST(PoolAlloc, DistinctLiveBlocksDoNotOverlap) {
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    blocks.push_back(static_cast<char*>(pool_alloc(96)));
    std::memset(blocks.back(), i, 96);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(blocks[i][0]), i);
    EXPECT_EQ(static_cast<unsigned char>(blocks[i][95]), i);
  }
  for (char* b : blocks) pool_free(b);
}

TEST(PoolAlloc, OversizedAllocationsFallThrough) {
  void* p = pool_alloc(PoolAllocator::kMaxBlockSize + 1000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, PoolAllocator::kMaxBlockSize + 1000);
  pool_free(p);
}

TEST(PoolAlloc, CreateDestroyRunsConstructorsAndDestructors) {
  static int dtor_calls;
  dtor_calls = 0;
  struct Obj {
    explicit Obj(int v) : val(v) {}
    ~Obj() { ++dtor_calls; }
    int val;
  };
  Obj* o = PoolAllocator::instance().create<Obj>(7);
  EXPECT_EQ(o->val, 7);
  PoolAllocator::instance().destroy(o);
  EXPECT_EQ(dtor_calls, 1);
}

TEST(PoolAlloc, RemoteFreeReturnsBlockToOwner) {
  void* p = pool_alloc(256);
  test::run_threads(1, [&](int) { pool_free(p); });  // freed remotely
  // The owner drains its remote stack on the next same-class allocation.
  void* q = pool_alloc(256);
  EXPECT_EQ(p, q);
  pool_free(q);
}

TEST(PoolAlloc, StatsCountAllocAndFree) {
  const auto before = PoolAllocator::instance().stats();
  void* p = pool_alloc(64);
  void* q = pool_alloc(64);
  pool_free(p);
  pool_free(q);
  const auto after = PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks, 2u);
  EXPECT_EQ(after.freed_blocks - before.freed_blocks, 2u);
}

TEST(PoolAlloc, ConcurrentAllocFreeStress) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  test::run_threads(kThreads, [&](int t) {
    std::vector<void*> mine;
    for (int i = 0; i < kIters; ++i) {
      void* p = pool_alloc(32 + 16 * (i % 4));
      std::memset(p, t, 32);
      mine.push_back(p);
      if (mine.size() > 64) {
        pool_free(mine.front());
        mine.erase(mine.begin());
      }
    }
    for (void* p : mine) pool_free(p);
  });
  SUCCEED();
}

TEST(PoolAlloc, CrossThreadProducerConsumer) {
  // One producer allocates, one consumer frees: every block crosses
  // threads, exercising the MPSC remote-free stacks like a reclaimer does.
  std::atomic<void*> channel{nullptr};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int freed = 0;
    while (freed < 2000) {
      void* p = channel.exchange(nullptr, std::memory_order_acq_rel);
      if (p != nullptr) {
        pool_free(p);
        ++freed;
      }
    }
    done.store(true);
  });
  int sent = 0;
  while (sent < 2000) {
    void* p = pool_alloc(128);
    void* expected = nullptr;
    while (!channel.compare_exchange_weak(expected, p,
                                          std::memory_order_acq_rel)) {
      expected = nullptr;
      std::this_thread::yield();
    }
    ++sent;
  }
  consumer.join();
  EXPECT_TRUE(done.load());
}

using PoolAllocDeathTest = ::testing::Test;

TEST(PoolAllocDeathTest, PoisonModeCatchesDoubleFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PoolAllocator::set_poison(true);
        void* p = pool_alloc(64);
        pool_free(p);
        pool_free(p);  // double free: must abort
      },
      "double free");
}

TEST(PoolAllocDeathTest, PoisonModeFillsFreedPayload) {
  PoolAllocator::set_poison(true);
  char* p = static_cast<char*>(pool_alloc(64));
  std::memset(p, 0x11, 64);
  pool_free(p);
  // The payload beyond the free-list link must carry the canary.
  bool poisoned = true;
  for (int i = 8; i < 64; ++i) {
    poisoned = poisoned &&
               (static_cast<unsigned char>(p[i]) == PoolAllocator::kPoisonByte);
  }
  EXPECT_TRUE(poisoned);
  EXPECT_TRUE(PoolAllocator::is_poisoned(p));
  void* q = pool_alloc(64);  // reuse is legal again
  EXPECT_EQ(q, p);
  EXPECT_FALSE(PoolAllocator::is_poisoned(q));
  pool_free(q);
  PoolAllocator::set_poison(false);
}

}  // namespace
}  // namespace pop::runtime
