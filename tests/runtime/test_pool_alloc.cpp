#include "runtime/pool_alloc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

TEST(PoolAlloc, AllocateReturnsWritableMemory) {
  void* p = pool_alloc(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 64);
  pool_free(p);
}

TEST(PoolAlloc, SameSizeClassReusesBlocks) {
  void* a = pool_alloc(48);
  pool_free(a);
  void* b = pool_alloc(48);  // LIFO free list: should hand back `a`
  EXPECT_EQ(a, b);
  pool_free(b);
}

TEST(PoolAlloc, DistinctLiveBlocksDoNotOverlap) {
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    blocks.push_back(static_cast<char*>(pool_alloc(96)));
    std::memset(blocks.back(), i, 96);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(blocks[i][0]), i);
    EXPECT_EQ(static_cast<unsigned char>(blocks[i][95]), i);
  }
  for (char* b : blocks) pool_free(b);
}

TEST(PoolAlloc, OversizedAllocationsFallThrough) {
  void* p = pool_alloc(PoolAllocator::kMaxBlockSize + 1000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, PoolAllocator::kMaxBlockSize + 1000);
  pool_free(p);
}

TEST(PoolAlloc, CreateDestroyRunsConstructorsAndDestructors) {
  static int dtor_calls;
  dtor_calls = 0;
  struct Obj {
    explicit Obj(int v) : val(v) {}
    ~Obj() { ++dtor_calls; }
    int val;
  };
  Obj* o = PoolAllocator::instance().create<Obj>(7);
  EXPECT_EQ(o->val, 7);
  PoolAllocator::instance().destroy(o);
  EXPECT_EQ(dtor_calls, 1);
}

TEST(PoolAlloc, RemoteFreeReturnsBlockToOwner) {
  void* p = pool_alloc(256);
  test::run_threads(1, [&](int) { pool_free(p); });  // freed remotely
  // The owner drains its remote stack on the next same-class allocation.
  void* q = pool_alloc(256);
  EXPECT_EQ(p, q);
  pool_free(q);
}

TEST(PoolAlloc, StatsCountAllocAndFree) {
  const auto before = PoolAllocator::instance().stats();
  void* p = pool_alloc(64);
  void* q = pool_alloc(64);
  pool_free(p);
  pool_free(q);
  const auto after = PoolAllocator::instance().stats();
  EXPECT_EQ(after.allocated_blocks - before.allocated_blocks, 2u);
  EXPECT_EQ(after.freed_blocks - before.freed_blocks, 2u);
}

TEST(PoolAlloc, ConcurrentAllocFreeStress) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  test::run_threads(kThreads, [&](int t) {
    std::vector<void*> mine;
    for (int i = 0; i < kIters; ++i) {
      void* p = pool_alloc(32 + 16 * (i % 4));
      std::memset(p, t, 32);
      mine.push_back(p);
      if (mine.size() > 64) {
        pool_free(mine.front());
        mine.erase(mine.begin());
      }
    }
    for (void* p : mine) pool_free(p);
  });
  SUCCEED();
}

TEST(PoolAlloc, CrossThreadProducerConsumer) {
  // One producer allocates, one consumer frees: every block crosses
  // threads, exercising the MPSC remote-free stacks like a reclaimer does.
  std::atomic<void*> channel{nullptr};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    int freed = 0;
    while (freed < 2000) {
      void* p = channel.exchange(nullptr, std::memory_order_acq_rel);
      if (p != nullptr) {
        pool_free(p);
        ++freed;
      }
    }
    done.store(true);
  });
  int sent = 0;
  while (sent < 2000) {
    void* p = pool_alloc(128);
    void* expected = nullptr;
    while (!channel.compare_exchange_weak(expected, p,
                                          std::memory_order_acq_rel)) {
      expected = nullptr;
      std::this_thread::yield();
    }
    ++sent;
  }
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(PoolAlloc, FreeBatchReturnsBlocksForReuse) {
  constexpr int kBlocks = 64;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool_alloc(48));
  {
    PoolAllocator::FreeBatch batch;
    for (void* p : blocks) batch.add(p);
    EXPECT_EQ(batch.blocks_added(), static_cast<uint64_t>(kBlocks));
  }  // flush on destruction: local splice onto this thread's free list
  // Every freed block must be reusable by the owning thread.
  std::vector<void*> again;
  for (int i = 0; i < kBlocks; ++i) again.push_back(pool_alloc(48));
  for (void* p : again) {
    EXPECT_NE(std::find(blocks.begin(), blocks.end(), p), blocks.end());
  }
  for (void* p : again) pool_free(p);
}

TEST(PoolAlloc, FreeBatchGroupsAcrossSizeClasses) {
  std::vector<void*> blocks;
  for (int i = 0; i < 40; ++i) blocks.push_back(pool_alloc(32 + 48 * (i % 4)));
  const auto before = PoolAllocator::instance().stats();
  {
    PoolAllocator::FreeBatch batch;
    for (void* p : blocks) batch.add(p);
  }
  const auto after = PoolAllocator::instance().stats();
  EXPECT_EQ(after.freed_blocks - before.freed_blocks, 40u);
  // Same-thread frees: nothing crossed heaps.
  EXPECT_EQ(after.remote_frees - before.remote_frees, 0u);
}

TEST(PoolAlloc, FreeBatchRemoteSpliceCountsBlocksNotOperations) {
  constexpr int kBlocks = 100;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool_alloc(256));
  const auto before = PoolAllocator::instance().stats();
  test::run_threads(1, [&](int) {
    PoolAllocator::FreeBatch batch;
    for (void* p : blocks) batch.add(p);
  });
  const auto after = PoolAllocator::instance().stats();
  // remote_frees counts blocks; the whole single-class group travelled in
  // one splice (one CAS), not one per block.
  EXPECT_EQ(after.remote_frees - before.remote_frees,
            static_cast<uint64_t>(kBlocks));
  EXPECT_EQ(after.remote_splices - before.remote_splices, 1u);
  // The owner drains the spliced chain on its next same-class allocation.
  std::vector<void*> again;
  for (int i = 0; i < kBlocks; ++i) again.push_back(pool_alloc(256));
  for (void* p : again) {
    EXPECT_NE(std::find(blocks.begin(), blocks.end(), p), blocks.end());
  }
  for (void* p : again) pool_free(p);
}

TEST(PoolAlloc, SingleRemoteFreeIsSpliceOfOne) {
  void* p = pool_alloc(512);
  const auto before = PoolAllocator::instance().stats();
  test::run_threads(1, [&](int) { pool_free(p); });
  const auto after = PoolAllocator::instance().stats();
  EXPECT_EQ(after.remote_frees - before.remote_frees, 1u);
  EXPECT_EQ(after.remote_splices - before.remote_splices, 1u);
  void* q = pool_alloc(512);
  EXPECT_EQ(p, q);
  pool_free(q);
}

TEST(PoolAlloc, FreeBatchOversizedFallsThrough) {
  void* p = pool_alloc(PoolAllocator::kMaxBlockSize + 4096);
  const auto before = PoolAllocator::instance().stats();
  {
    PoolAllocator::FreeBatch batch;
    batch.add(p);
  }
  const auto after = PoolAllocator::instance().stats();
  EXPECT_EQ(after.freed_blocks - before.freed_blocks, 1u);
}

using PoolAllocDeathTest = ::testing::Test;

TEST(PoolAllocDeathTest, PoisonModeCatchesDoubleFree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PoolAllocator::set_poison(true);
        void* p = pool_alloc(64);
        pool_free(p);
        pool_free(p);  // double free: must abort
      },
      "double free");
}

TEST(PoolAllocDeathTest, PoisonModeCatchesDoubleFreeViaBatch) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        PoolAllocator::set_poison(true);
        void* p = pool_alloc(64);
        pool_free(p);
        PoolAllocator::FreeBatch batch;
        batch.add(p);  // double free through the batch path: must abort
      },
      "double free");
}

TEST(PoolAllocDeathTest, PoisonModeFillsBatchFreedPayload) {
  // The batched path must preserve UAF detection: canary fill on add(),
  // poisoned-state query, and clean reuse.
  PoolAllocator::set_poison(true);
  char* p = static_cast<char*>(pool_alloc(64));
  std::memset(p, 0x22, 64);
  {
    PoolAllocator::FreeBatch batch;
    batch.add(p);
    // Poisoned as soon as it enters the batch, before the splice.
    EXPECT_TRUE(PoolAllocator::is_poisoned(p));
  }
  bool poisoned = true;
  for (int i = 8; i < 64; ++i) {
    poisoned = poisoned &&
               (static_cast<unsigned char>(p[i]) == PoolAllocator::kPoisonByte);
  }
  EXPECT_TRUE(poisoned);
  void* q = pool_alloc(64);
  EXPECT_EQ(q, p);
  EXPECT_FALSE(PoolAllocator::is_poisoned(q));
  pool_free(q);
  PoolAllocator::set_poison(false);
}

TEST(PoolAllocDeathTest, PoisonEnableAfterBatchFreeIsSafe) {
  // Blocks batch-freed before poison mode was enabled must still carry
  // free magic: reuse after enabling must not trip the corruption check.
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(pool_alloc(96));
  {
    PoolAllocator::FreeBatch batch;
    for (void* p : blocks) batch.add(p);
  }
  PoolAllocator::set_poison(true);
  std::vector<void*> again;
  for (int i = 0; i < 16; ++i) again.push_back(pool_alloc(96));
  for (void* p : again) pool_free(p);
  PoolAllocator::set_poison(false);
  SUCCEED();
}

TEST(PoolAllocDeathTest, PoisonModeFillsFreedPayload) {
  PoolAllocator::set_poison(true);
  char* p = static_cast<char*>(pool_alloc(64));
  std::memset(p, 0x11, 64);
  pool_free(p);
  // The payload beyond the free-list link must carry the canary.
  bool poisoned = true;
  for (int i = 8; i < 64; ++i) {
    poisoned = poisoned &&
               (static_cast<unsigned char>(p[i]) == PoolAllocator::kPoisonByte);
  }
  EXPECT_TRUE(poisoned);
  EXPECT_TRUE(PoolAllocator::is_poisoned(p));
  void* q = pool_alloc(64);  // reuse is legal again
  EXPECT_EQ(q, p);
  EXPECT_FALSE(PoolAllocator::is_poisoned(q));
  pool_free(q);
  PoolAllocator::set_poison(false);
}

}  // namespace
}  // namespace pop::runtime
