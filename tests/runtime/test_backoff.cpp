// Backoff: exponential growth bounded by the configured cap, reset
// semantics, and the spin-then-yield waiter used by the ack handshakes.
#include "runtime/backoff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace pop::runtime {
namespace {

TEST(Backoff, GrowthIsExponentialUntilTheCap) {
  Backoff b(64);
  EXPECT_EQ(b.spins(), 1u);
  uint32_t expected = 1;
  for (int i = 0; i < 6; ++i) {
    b.pause();
    expected *= 2;
    EXPECT_EQ(b.spins(), expected);
  }
  EXPECT_EQ(b.spins(), 64u);
}

TEST(Backoff, NeverExceedsMaxEvenWhenCapIsNotAPowerOfTwo) {
  Backoff b(100);
  for (int i = 0; i < 64; ++i) {
    b.pause();
    EXPECT_LE(b.spins(), b.max_spins());
  }
  EXPECT_EQ(b.spins(), 100u);  // saturated exactly at the cap
}

TEST(Backoff, StaysSaturatedOncePaused) {
  Backoff b(8);
  for (int i = 0; i < 32; ++i) b.pause();
  EXPECT_EQ(b.spins(), 8u);
  b.pause();
  EXPECT_EQ(b.spins(), 8u);
}

TEST(Backoff, ResetReturnsToOneAndRegrows) {
  Backoff b(1024);
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_EQ(b.spins(), 1024u);
  b.reset();
  EXPECT_EQ(b.spins(), 1u);
  b.pause();
  EXPECT_EQ(b.spins(), 2u);
}

TEST(Backoff, DefaultCapIs1024) {
  Backoff b;
  EXPECT_EQ(b.max_spins(), 1024u);
}

TEST(SpinThenYield, MakesProgressPastTheSpinLimit) {
  // After the spin budget is exhausted every wait() must yield rather
  // than burn the timeslice; observable here as simple termination of a
  // wait loop against a slow-to-flip flag.
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flag.store(true, std::memory_order_release);
  });
  SpinThenYield waiter;
  while (!flag.load(std::memory_order_acquire)) waiter.wait();
  setter.join();
  SUCCEED();
}

TEST(CpuRelax, IsCallable) {
  for (int i = 0; i < 1000; ++i) cpu_relax();
  SUCCEED();
}

}  // namespace
}  // namespace pop::runtime
