#include "runtime/proc_stats.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

namespace pop::runtime {
namespace {

TEST(ProcStats, ReportsNonZeroResidentMemory) {
  EXPECT_GT(vm_rss_kib(), 0u);
  EXPECT_GT(vm_hwm_kib(), 0u);
}

TEST(ProcStats, HwmIsAtLeastRss) { EXPECT_GE(vm_hwm_kib(), vm_rss_kib()); }

TEST(ProcStats, HwmGrowsAfterLargeTouchedAllocation) {
  const uint64_t before = vm_hwm_kib();
  constexpr size_t kBytes = 64 * 1024 * 1024;
  auto buf = std::make_unique<char[]>(kBytes);
  std::memset(buf.get(), 1, kBytes);  // touch every page
  const uint64_t after = vm_hwm_kib();
  EXPECT_GE(after, before + kBytes / 1024 / 2);  // at least half accounted
}

}  // namespace
}  // namespace pop::runtime
