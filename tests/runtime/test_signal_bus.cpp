#include "runtime/signal_bus.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

class CountingClient final : public SignalClient {
 public:
  void on_ping(int tid) noexcept override {
    pings.fetch_add(1, std::memory_order_relaxed);
    last_tid.store(tid, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> pings{0};
  std::atomic<int> last_tid{-1};
};

TEST(SignalBus, AttachDetachIsPerThread) {
  CountingClient c;
  auto& bus = SignalBus::instance();
  bus.attach(&c);
  EXPECT_TRUE(bus.attached(&c));
  bus.attach(&c);  // idempotent
  EXPECT_TRUE(bus.attached(&c));
  bus.detach(&c);
  EXPECT_FALSE(bus.attached(&c));
  bus.detach(&c);  // idempotent
}

TEST(SignalBus, AttachmentInOneThreadNotVisibleInAnother) {
  CountingClient c;
  SignalBus::instance().attach(&c);
  test::run_threads(1, [&](int) {
    EXPECT_FALSE(SignalBus::instance().attached(&c));
  });
  SignalBus::instance().detach(&c);
}

TEST(SignalBus, PingRunsHandlerOnTargetThread) {
  CountingClient c;
  std::atomic<bool> hold{true};
  std::atomic<int> worker_tid{-1};
  std::thread t([&] {
    SignalBus::instance().attach(&c);
    worker_tid.store(my_tid());
    while (hold.load()) std::this_thread::yield();
    SignalBus::instance().detach(&c);
  });
  while (worker_tid.load() < 0) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  // The signal is asynchronous; wait for the handler.
  for (int i = 0; i < 10000 && c.pings.load() == 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_GE(c.pings.load(), 1u);
  EXPECT_EQ(c.last_tid.load(), worker_tid.load());
  hold.store(false);
  t.join();
}

TEST(SignalBus, MultipleClientsAllNotified) {
  CountingClient c1, c2;
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread t([&] {
    SignalBus::instance().attach(&c1);
    SignalBus::instance().attach(&c2);
    ready.store(true);
    while (hold.load()) std::this_thread::yield();
    SignalBus::instance().detach(&c1);
    SignalBus::instance().detach(&c2);
  });
  while (!ready.load()) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  for (int i = 0; i < 10000 && (c1.pings.load() == 0 || c2.pings.load() == 0);
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_GE(c1.pings.load(), 1u);
  EXPECT_GE(c2.pings.load(), 1u);
  hold.store(false);
  t.join();
}

TEST(SignalBus, DetachedClientNotNotified) {
  CountingClient c;
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread t([&] {
    SignalBus::instance().attach(&c);
    SignalBus::instance().detach(&c);
    ready.store(true);
    while (hold.load()) std::this_thread::yield();
  });
  while (!ready.load()) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(c.pings.load(), 0u);
  hold.store(false);
  t.join();
}

// A client that records deliveries landing while it was not supposed to
// be reachable. on_ping runs in signal-handler context: atomics only.
class ArmedClient final : public SignalClient {
 public:
  void on_ping(int) noexcept override {
    if (!armed.load(std::memory_order_relaxed)) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    pings.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> pings{0};
  std::atomic<uint64_t> violations{0};
};

// Regression for the delivery/detach race: a ping that interrupts (or is
// pending across) detach() must never run the detaching client after
// detach returned. The worker flips `armed` off immediately after each
// detach and re-attaches in a tight loop while this thread storms pings
// at it — any delivery observed with armed == false means the handler
// walked a slot detach() had already logically removed.
TEST(SignalBus, DetachClosesInFlightDeliveryWindow) {
  ArmedClient c;
  std::atomic<bool> stop{false};
  std::atomic<bool> ready{false};
  std::thread worker([&] {
    (void)my_tid();
    auto& bus = SignalBus::instance();
    ready.store(true);
    while (!stop.load(std::memory_order_acquire)) {
      c.armed.store(true, std::memory_order_relaxed);
      bus.attach(&c);
      for (int i = 0; i < 32; ++i) std::this_thread::yield();
      bus.detach(&c);
      // From here until the next attach, a delivery through `c` is the
      // bug this test exists for (same-thread program order: the handler
      // cannot observe armed == false before detach() returned).
      c.armed.store(false, std::memory_order_relaxed);
      for (int i = 0; i < 32; ++i) std::this_thread::yield();
    }
  });
  while (!ready.load()) std::this_thread::yield();
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < until) {
    ThreadRegistry::instance().ping_others(
        kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_EQ(c.violations.load(), 0u)
      << "a ping ran the client after detach() returned";
  EXPECT_GT(c.pings.load(), 0u) << "the storm never landed; test is vacuous";
}

// Same race, lifetime edition: after detach() returns the client object
// may be destroyed immediately. A handler holding a stale slot pointer
// turns the next ping into a use-after-free — the storm plus a fresh
// heap client per cycle makes ASan the referee.
TEST(SignalBus, DetachedClientCanBeDestroyedImmediately) {
  std::atomic<bool> stop{false};
  std::atomic<bool> ready{false};
  std::atomic<uint64_t> cycles{0};
  std::thread worker([&] {
    (void)my_tid();
    auto& bus = SignalBus::instance();
    ready.store(true);
    while (!stop.load(std::memory_order_acquire)) {
      auto* c = new CountingClient;
      bus.attach(c);
      std::this_thread::yield();
      bus.detach(c);
      delete c;  // any later delivery through this slot is a UAF
      cycles.fetch_add(1, std::memory_order_relaxed);
    }
  });
  while (!ready.load()) std::this_thread::yield();
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < until) {
    ThreadRegistry::instance().ping_others(
        kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_GT(cycles.load(), 0u);
}

}  // namespace
}  // namespace pop::runtime
