#include "runtime/signal_bus.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::runtime {
namespace {

class CountingClient final : public SignalClient {
 public:
  void on_ping(int tid) noexcept override {
    pings.fetch_add(1, std::memory_order_relaxed);
    last_tid.store(tid, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> pings{0};
  std::atomic<int> last_tid{-1};
};

TEST(SignalBus, AttachDetachIsPerThread) {
  CountingClient c;
  auto& bus = SignalBus::instance();
  bus.attach(&c);
  EXPECT_TRUE(bus.attached(&c));
  bus.attach(&c);  // idempotent
  EXPECT_TRUE(bus.attached(&c));
  bus.detach(&c);
  EXPECT_FALSE(bus.attached(&c));
  bus.detach(&c);  // idempotent
}

TEST(SignalBus, AttachmentInOneThreadNotVisibleInAnother) {
  CountingClient c;
  SignalBus::instance().attach(&c);
  test::run_threads(1, [&](int) {
    EXPECT_FALSE(SignalBus::instance().attached(&c));
  });
  SignalBus::instance().detach(&c);
}

TEST(SignalBus, PingRunsHandlerOnTargetThread) {
  CountingClient c;
  std::atomic<bool> hold{true};
  std::atomic<int> worker_tid{-1};
  std::thread t([&] {
    SignalBus::instance().attach(&c);
    worker_tid.store(my_tid());
    while (hold.load()) std::this_thread::yield();
    SignalBus::instance().detach(&c);
  });
  while (worker_tid.load() < 0) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  // The signal is asynchronous; wait for the handler.
  for (int i = 0; i < 10000 && c.pings.load() == 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_GE(c.pings.load(), 1u);
  EXPECT_EQ(c.last_tid.load(), worker_tid.load());
  hold.store(false);
  t.join();
}

TEST(SignalBus, MultipleClientsAllNotified) {
  CountingClient c1, c2;
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread t([&] {
    SignalBus::instance().attach(&c1);
    SignalBus::instance().attach(&c2);
    ready.store(true);
    while (hold.load()) std::this_thread::yield();
    SignalBus::instance().detach(&c1);
    SignalBus::instance().detach(&c2);
  });
  while (!ready.load()) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  for (int i = 0; i < 10000 && (c1.pings.load() == 0 || c2.pings.load() == 0);
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_GE(c1.pings.load(), 1u);
  EXPECT_GE(c2.pings.load(), 1u);
  hold.store(false);
  t.join();
}

TEST(SignalBus, DetachedClientNotNotified) {
  CountingClient c;
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread t([&] {
    SignalBus::instance().attach(&c);
    SignalBus::instance().detach(&c);
    ready.store(true);
    while (hold.load()) std::this_thread::yield();
  });
  while (!ready.load()) std::this_thread::yield();
  ThreadRegistry::instance().ping_others(kPingSignal, [](int) { return true; }, [](int, uint64_t) {});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(c.pings.load(), 0u);
  hold.store(false);
  t.join();
}

}  // namespace
}  // namespace pop::runtime
