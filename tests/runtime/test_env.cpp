#include "runtime/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pop::runtime {
namespace {

TEST(Env, FallbackWhenUnset) {
  unsetenv("POPSMR_TEST_ENV_X");
  EXPECT_EQ(env_u64("POPSMR_TEST_ENV_X", 17), 17u);
  EXPECT_EQ(env_str("POPSMR_TEST_ENV_X", "dflt"), "dflt");
}

TEST(Env, ParsesNumbers) {
  setenv("POPSMR_TEST_ENV_X", "12345", 1);
  EXPECT_EQ(env_u64("POPSMR_TEST_ENV_X", 0), 12345u);
  unsetenv("POPSMR_TEST_ENV_X");
}

TEST(Env, FallbackOnGarbage) {
  setenv("POPSMR_TEST_ENV_X", "notanumber", 1);
  EXPECT_EQ(env_u64("POPSMR_TEST_ENV_X", 9), 9u);
  unsetenv("POPSMR_TEST_ENV_X");
}

TEST(Env, ReadsStrings) {
  setenv("POPSMR_TEST_ENV_X", "hello", 1);
  EXPECT_EQ(env_str("POPSMR_TEST_ENV_X", ""), "hello");
  unsetenv("POPSMR_TEST_ENV_X");
}

TEST(Env, EmptyStringTreatedAsUnset) {
  setenv("POPSMR_TEST_ENV_X", "", 1);
  EXPECT_EQ(env_u64("POPSMR_TEST_ENV_X", 3), 3u);
  EXPECT_EQ(env_str("POPSMR_TEST_ENV_X", "d"), "d");
  unsetenv("POPSMR_TEST_ENV_X");
}

}  // namespace
}  // namespace pop::runtime
