// HwCounters: the perf_event_open wrapper must degrade to zero-filled,
// valid=false samples on any kernel refusal (EACCES from
// perf_event_paranoid, ENOSYS, seccomp EPERM) instead of erroring — CI
// containers routinely refuse the PMU — and the HwSample arithmetic the
// phase roll-up relies on (saturating delta, accumulate, derived rates)
// must be exact.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/hw_counters.hpp"

namespace pop::obs {
namespace {

TEST(HwSample, DerivedRatesGuardDivisionByZero) {
  HwSample z;
  EXPECT_EQ(z.ipc(), 0.0);
  EXPECT_EQ(z.llc_miss_rate(), 0.0);

  HwSample s;
  s.cycles = 1000;
  s.instructions = 2500;
  s.llc_misses = 5;
  EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(s.llc_miss_rate(), 2.0);  // misses per kilo-instruction
}

TEST(HwSample, DeltaSaturatesInsteadOfWrapping) {
  HwSample later, earlier;
  later.cycles = 100;
  earlier.cycles = 250;  // e.g. a counter reset under multiplexing
  later.instructions = 500;
  earlier.instructions = 200;
  later.valid = true;
  const HwSample d = later.delta(earlier);
  EXPECT_EQ(d.cycles, 0u) << "must saturate, not wrap to ~2^64";
  EXPECT_EQ(d.instructions, 300u);
  EXPECT_TRUE(d.valid);
}

TEST(HwSample, AccumulateSumsAndOrsValidity) {
  HwSample total, a, b;
  a.cycles = 10;
  a.instructions = 20;
  a.valid = false;
  b.cycles = 5;
  b.llc_misses = 7;
  b.ctx_switches = 3;
  b.valid = true;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.cycles, 15u);
  EXPECT_EQ(total.instructions, 20u);
  EXPECT_EQ(total.llc_misses, 7u);
  EXPECT_EQ(total.ctx_switches, 3u);
  EXPECT_TRUE(total.valid);
}

TEST(HwCounters, GracefulOnRefusalAndMonotoneWhenGranted) {
  // Constructing must never throw or abort, whatever the kernel says.
  HwCounters c;
  const HwSample first = c.read();
  EXPECT_EQ(first.valid, c.any_valid());

  if (!c.any_valid()) {
    // Refused (paranoid sysctl, seccomp, no PMU): zero-fill contract.
    EXPECT_EQ(first.cycles, 0u);
    EXPECT_EQ(first.instructions, 0u);
    EXPECT_EQ(first.llc_misses, 0u);
    return;
  }
  // Granted: do some work, then counters must be monotone non-decreasing.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 200000; ++i) sink = sink * 6364136223846793005ull + i;
  const HwSample second = c.read();
  EXPECT_GE(second.cycles, first.cycles);
  EXPECT_GE(second.instructions, first.instructions);
  const HwSample d = second.delta(first);
  EXPECT_GT(d.instructions + d.cycles, 0u)
      << "a granted counter set should observe the spin loop";
}

TEST(HwCounters, AvailabilityProbeIsStable) {
  // Pure consistency: the probe must not flap between calls and must not
  // leak fds (ASan/LSan in CI would catch the latter across the suite).
  const bool a = HwCounters::available();
  const bool b = HwCounters::available();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pop::obs
