// LatencyHisto accuracy contract: the log-bucketed histogram keeps two
// significant digits (relative quantization error <= 1/64), snapshots
// merge associatively (so per-thread merges and phase-boundary diffs
// commute), and diff keeps the later max high-watermark.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/latency_histo.hpp"

namespace pop::obs {
namespace {

uint64_t splitmix64(uint64_t& s) {
  uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Log-uniform over [1, 2^40): every octave equally likely, the shape
// real latency distributions stress the bucket math with.
uint64_t log_uniform(uint64_t& s) {
  const int shift = static_cast<int>(splitmix64(s) % 40);
  return (uint64_t{1} << shift) | (splitmix64(s) & ((uint64_t{1} << shift) - 1));
}

TEST(LatencyHisto, BucketIndexIsMonotoneAndExactBelow128) {
  for (uint64_t v = 0; v < 128; ++v) {
    EXPECT_EQ(histo_bucket_index(v), v);
    EXPECT_EQ(histo_bucket_value(static_cast<uint32_t>(v)), v);
  }
  uint32_t prev = 0;
  for (uint64_t v = 0; v < (uint64_t{1} << 20); v += 37) {
    const uint32_t idx = histo_bucket_index(v);
    EXPECT_GE(idx, prev) << "index not monotone at v=" << v;
    EXPECT_LT(idx, kHistoBuckets);
    prev = idx;
  }
}

TEST(LatencyHisto, BucketMidpointWithinTwoSignificantDigits) {
  uint64_t seed = 42;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t v = log_uniform(seed) % kHistoCapNs + 1;
    const uint64_t mid = histo_bucket_value(histo_bucket_index(v));
    const double rel = std::fabs(static_cast<double>(mid) -
                                 static_cast<double>(v)) /
                       static_cast<double>(v);
    ASSERT_LE(rel, 1.0 / 64.0) << "v=" << v << " mid=" << mid;
  }
}

TEST(LatencyHisto, ValuesAboveCapSaturateButMaxStaysExact) {
  HistoSnapshot s;
  const uint64_t huge = kHistoCapNs * 3;
  s.add(huge);
  EXPECT_EQ(s.total, 1u);
  EXPECT_EQ(s.max_ns, huge);            // exact, not quantized
  EXPECT_EQ(s.percentile(100.0), huge);
  // p<100 reports the top bucket's midpoint (within 1/64 of the cap),
  // never something past max_ns.
  EXPECT_LE(s.percentile(50.0), huge);
  EXPECT_GE(s.percentile(50.0), kHistoCapNs - (kHistoCapNs >> 6));
}

TEST(LatencyHisto, MergeIsAssociativeAndCommutative) {
  uint64_t seed = 7;
  HistoSnapshot a, b, c;
  for (int i = 0; i < 5000; ++i) a.add(log_uniform(seed));
  for (int i = 0; i < 3000; ++i) b.add(log_uniform(seed));
  for (int i = 0; i < 1000; ++i) c.add(log_uniform(seed));

  HistoSnapshot ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistoSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  HistoSnapshot a_bc = a;
  a_bc.merge(bc);
  HistoSnapshot ba = b;     // b + a
  ba.merge(a);
  ba.merge(c);

  EXPECT_EQ(ab_c.total, a_bc.total);
  EXPECT_EQ(ab_c.max_ns, a_bc.max_ns);
  EXPECT_EQ(ab_c.counts, a_bc.counts);
  EXPECT_EQ(ab_c.counts, ba.counts);
}

TEST(LatencyHisto, PercentilesMatchExactSortedReference) {
  uint64_t seed = 1234;
  HistoSnapshot h;
  std::vector<uint64_t> exact;
  const int n = 100000;
  exact.reserve(n);
  for (int i = 0; i < n; ++i) {
    const uint64_t v = log_uniform(seed);
    h.add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());

  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    // Same rank convention as HistoSnapshot::percentile.
    const auto rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    const uint64_t truth = exact[rank - 1];
    const uint64_t approx = h.percentile(p);
    const double rel = std::fabs(static_cast<double>(approx) -
                                 static_cast<double>(truth)) /
                       static_cast<double>(truth);
    EXPECT_LE(rel, 1.0 / 64.0)
        << "p" << p << ": approx=" << approx << " exact=" << truth;
  }
  EXPECT_EQ(h.percentile(100.0), exact.back());
  EXPECT_EQ(HistoSnapshot{}.percentile(50.0), 0u);
}

TEST(LatencyHisto, DiffYieldsIntervalCountsAndLaterMax) {
  uint64_t seed = 9;
  HistoSnapshot before;
  for (int i = 0; i < 1000; ++i) before.add(log_uniform(seed) % 1000);
  HistoSnapshot after = before;
  for (int i = 0; i < 500; ++i) after.add(1000000 + i);

  const HistoSnapshot d = after.diff(before);
  EXPECT_EQ(d.total, 500u);
  EXPECT_EQ(d.max_ns, after.max_ns);  // high-watermark semantics
  // Every diffed sample is from the second batch: p50 well above 1 ms.
  EXPECT_GE(d.percentile(50.0), 900000u);
}

TEST(LatencyHisto, DiffOfMergesEqualsMergeOfDiffs) {
  // The linearity the engine relies on: one merged snapshot per phase
  // boundary, diffed, equals per-thread diffs merged.
  uint64_t seed = 77;
  HistoSnapshot t0_a, t0_b;
  for (int i = 0; i < 400; ++i) t0_a.add(log_uniform(seed));
  for (int i = 0; i < 300; ++i) t0_b.add(log_uniform(seed));
  HistoSnapshot t1_a = t0_a, t1_b = t0_b;
  for (int i = 0; i < 200; ++i) t1_a.add(log_uniform(seed));
  for (int i = 0; i < 100; ++i) t1_b.add(log_uniform(seed));

  HistoSnapshot m0 = t0_a, m1 = t1_a;
  m0.merge(t0_b);
  m1.merge(t1_b);
  const HistoSnapshot diff_of_merge = m1.diff(m0);

  HistoSnapshot merge_of_diff = t1_a.diff(t0_a);
  merge_of_diff.merge(t1_b.diff(t0_b));

  EXPECT_EQ(diff_of_merge.total, merge_of_diff.total);
  EXPECT_EQ(diff_of_merge.counts, merge_of_diff.counts);
}

TEST(LatencyHisto, RecordSnapshotResetRoundtrip) {
  LatencyHisto h;
  uint64_t seed = 3;
  HistoSnapshot ref;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = log_uniform(seed);
    h.record(v);
    ref.add(v);
  }
  const HistoSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, ref.total);
  EXPECT_EQ(s.max_ns, ref.max_ns);
  EXPECT_EQ(s.counts, ref.counts);

  h.reset();
  const HistoSnapshot z = h.snapshot();
  EXPECT_EQ(z.total, 0u);
  EXPECT_EQ(z.max_ns, 0u);
}

}  // namespace
}  // namespace pop::obs
