// TraceRing: wraparound keeps the newest events and accounts for the
// dropped ones; collect() running against a concurrent writer never
// observes a torn event; the process-wide Chrome trace dump is
// structurally valid trace-event JSON (CI additionally json.loads a real
// scenario trace).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace_ring.hpp"

namespace pop::obs {
namespace {

TEST(TraceRing, CapacityRoundsUpToPowerOfTwoFlooredAtEight) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(16);
  const uint64_t n = 100;
  for (uint64_t i = 0; i < n; ++i) {
    ring.record(TraceKind::kRetire, /*t_ns=*/i, /*dur_ns=*/0,
                static_cast<uint32_t>(i));
  }
  EXPECT_EQ(ring.recorded(), n);
  EXPECT_EQ(ring.dropped(), n - ring.capacity());

  std::vector<TraceEvent> out;
  ring.collect(/*tid=*/3, out);
  ASSERT_EQ(out.size(), ring.capacity());
  for (const auto& e : out) {
    // Only the newest capacity() events survive overwriting.
    EXPECT_GE(e.t_ns, n - ring.capacity());
    EXPECT_LT(e.t_ns, n);
    EXPECT_EQ(e.arg, static_cast<uint32_t>(e.t_ns));
    EXPECT_EQ(e.tid, 3);
  }
}

TEST(TraceRing, ConcurrentCollectNeverSeesTornEvents) {
  // Writer stamps a checkable invariant into every field (arg mirrors
  // t_ns, dur_ns is 3*t_ns, kind alternates); any mix of two different
  // writes would break it. Readers hammer collect() the whole time.
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::thread writer([&] {
    uint64_t i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const TraceKind k =
          (i & 1) ? TraceKind::kRetire : TraceKind::kSweep;
      ring.record(k, i, 3 * i, static_cast<uint32_t>(i));
      ++i;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<TraceEvent> out;
      for (int iter = 0; iter < 2000; ++iter) {
        out.clear();
        ring.collect(0, out);
        for (const auto& e : out) {
          const bool consistent =
              e.dur_ns == 3 * e.t_ns &&
              e.arg == static_cast<uint32_t>(e.t_ns) &&
              e.kind == static_cast<uint32_t>(
                            (e.t_ns & 1) ? TraceKind::kRetire
                                         : TraceKind::kSweep);
          if (!consistent) torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(torn.load(), 0u);
}

// Structural validation of the Chrome trace-event dump: balanced JSON
// with the traceEvents array, both event phases, and the truncation
// disclosure. Perfetto accepts exactly this shape; CI parses a real
// scenario trace with python as the end-to-end check.
TEST(TraceDump, ChromeTraceJsonShape) {
  const std::string path =
      ::testing::TempDir() + "trace_ring_dump_test.json";
  arm_trace(path, /*ring_capacity=*/64);
  ASSERT_TRUE(trace_on());

  const uint64_t t0 = now_ns();
  trace_event(TraceKind::kScenarioBegin, t0, 0, 2);
  trace_event(TraceKind::kSweep, t0 + 1000, 5000, 17);         // span "X"
  trace_event(TraceKind::kPingWaveLead, t0 + 7000, 2000, 3);   // span "X"
  trace_event(TraceKind::kZombieCertified, t0 + 9000, 0, 11);  // instant
  trace_event(TraceKind::kScenarioEnd, t0 + 10000, 0, 0);

  const auto events = trace_collect();
  ASSERT_GE(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_ns, events[i - 1].t_ns) << "not sorted";
  }

  ASSERT_TRUE(dump_trace_to(path));
  disarm_trace();

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u)
      << "dump must open with the traceEvents array";
  EXPECT_NE(body.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(body.find("\"dropped_events\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos) << "no span events";
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos)
      << "no instant events";
  EXPECT_NE(body.find("\"name\":\"sweep\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"zombie_certified\""), std::string::npos);
  // No string value the dumper emits contains a brace, so balanced braces
  // and brackets are a real (if coarse) well-formedness check.
  long braces = 0, brackets = 0;
  for (const char c : body) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceDump, DumpWithNothingArmedFails) {
  disarm_trace();
  EXPECT_FALSE(dump_trace());
}

}  // namespace
}  // namespace pop::obs
