// The disabled-path cost contract: with every observability channel off,
// the per-op hook (one relaxed load + predictable branch inside
// record_latency) must add under 2% to a ~100 ns operation.
//
// Methodology: time many rounds of the same synthetic op loop with and
// without the hook and compare the MINIMUM round times. Scheduler noise,
// IRQs, and frequency excursions only ever inflate a round, so the min
// over rounds converges to the intrinsic cost and the ratio of minima
// bounds the intrinsic overhead — unlike means, which a single noisy
// round on a busy CI box can swing past any threshold.
//
// POPSMR_TEST_OVERHEAD_PCT overrides the threshold. Sanitizer builds
// instrument the atomic load into a runtime call, so the production "<2%"
// bound is only asserted in uninstrumented builds; under ASan/TSan the
// test still runs but with a loose sanity bound.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "obs/obs.hpp"

namespace pop::obs {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kDefaultMaxPct = 75.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kDefaultMaxPct = 75.0;
#else
constexpr double kDefaultMaxPct = 2.0;
#endif
#else
constexpr double kDefaultMaxPct = 2.0;
#endif

// ~100 ns of dependent integer work: 48 chained splitmix rounds whose
// result feeds the next, so the compiler can neither vectorize nor
// shorten the chain.
inline uint64_t synthetic_op(uint64_t x) {
  for (int i = 0; i < 48; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

inline void keep(uint64_t& v) { asm volatile("" : "+r"(v)); }

uint64_t time_loop_ns(int ops, bool hooked, uint64_t& state) {
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t x = state;
  for (int i = 0; i < ops; ++i) {
    x = synthetic_op(x);
    if (hooked) {
      // The exact per-op hook the scenario engine's hot loop compiles
      // against; latency is off, so this is the disabled path.
      record_latency(LatOp::kGet, x & 0xff);
    }
    keep(x);
  }
  state = x;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

TEST(ObsOverhead, DisabledHookCostsUnderThreshold) {
  set_latency(false);
  disarm_trace();
  ASSERT_FALSE(latency_on());

  double max_pct = kDefaultMaxPct;
  if (const char* env = std::getenv("POPSMR_TEST_OVERHEAD_PCT")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) max_pct = v;
  }

  const int kOps = 1 << 13;
  const int kRounds = 40;
  uint64_t state = 12345;

  // Warm up both paths (branch predictors, frequency) before measuring.
  time_loop_ns(kOps, false, state);
  time_loop_ns(kOps, true, state);

  uint64_t min_plain = UINT64_MAX, min_hooked = UINT64_MAX;
  for (int r = 0; r < kRounds; ++r) {
    // Interleave so slow phases of the machine hit both paths equally.
    const uint64_t p = time_loop_ns(kOps, false, state);
    const uint64_t h = time_loop_ns(kOps, true, state);
    if (p < min_plain) min_plain = p;
    if (h < min_hooked) min_hooked = h;
  }
  ASSERT_GT(min_plain, 0u);

  const double overhead_pct =
      100.0 * (static_cast<double>(min_hooked) / static_cast<double>(min_plain) -
               1.0);
  EXPECT_LE(overhead_pct, max_pct)
      << "disabled-path hook overhead " << overhead_pct << "% (plain min "
      << min_plain << " ns, hooked min " << min_hooked << " ns over " << kOps
      << " ops)";
}

}  // namespace
}  // namespace pop::obs
