// POPSMR_CHECKPOINT semantics: a no-op for non-neutralizing schemes, a
// sigsetjmp restart target for NBR. The interesting case is a signal
// landing mid read-phase: the handler must longjmp back to the *latest*
// checkpoint, the restarted pass must observe cleared reservations, and
// the checkpoint must re-arm so a second ping restarts the pass again.
#include "smr/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "smr/all.hpp"
#include "../support/test_util.hpp"

namespace pop::smr {
namespace {

struct TNode : Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

SmrConfig tiny() {
  SmrConfig c;
  c.retire_threshold = 2;
  return c;
}

// Churn retires from the calling thread until the domain reports at least
// `target` neutralizations or the attempt budget runs out.
void churn_until_neutralized(NbrDomain& d, uint64_t target) {
  for (int i = 0; i < 2000 && d.stats().neutralized < target; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
    if (i % 16 == 15) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

template <class Smr>
void run_checkpoint_as_noop() {
  Smr d(tiny());
  {
    typename Smr::Guard g(d);
    POPSMR_CHECKPOINT(d);  // must compile away: no jmp_env on these types
    d.retire(d.template create<TNode>(1));
  }
  d.detach();
}

TEST(Checkpoint, CompilesToNothingForNonNeutralizingSchemes) {
  run_checkpoint_as_noop<NrDomain>();
  run_checkpoint_as_noop<HpDomain>();
  run_checkpoint_as_noop<EbrDomain>();
  run_checkpoint_as_noop<core::HazardPtrPopDomain>();
  run_checkpoint_as_noop<core::EpochPopDomain>();
}

TEST(Checkpoint, SignalInterruptedReadPhaseRestartsFromCheckpoint) {
  NbrDomain d(tiny());
  std::atomic<int> passes{0};
  std::atomic<bool> parked{false};
  std::atomic<bool> escape{false};

  std::thread reader([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    // Every arrival here is one execution of the read phase: the first
    // pass plus one per neutralization longjmp.
    const int pass = passes.fetch_add(1) + 1;
    if (pass > 1) return;  // restarted: the checkpoint worked
    parked.store(true);
    while (!escape.load(std::memory_order_acquire)) {
    }
  });

  while (!parked.load()) std::this_thread::yield();
  churn_until_neutralized(d, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  escape.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(passes.load(), 2);
  EXPECT_GT(d.stats().neutralized, 0u);
  d.detach();
}

TEST(Checkpoint, RearmsAfterEveryRestart) {
  // Two consecutive neutralizations must both land on the same (re-armed)
  // checkpoint: the read phase re-executes once per ping it absorbs.
  NbrDomain d(tiny());
  std::atomic<int> passes{0};
  std::atomic<bool> escape{false};

  std::thread reader([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    passes.fetch_add(1);
    if (passes.load() > 2) return;  // survived two restarts
    while (!escape.load(std::memory_order_acquire)) {
    }
  });

  while (passes.load() < 1) std::this_thread::yield();
  churn_until_neutralized(d, 1);
  churn_until_neutralized(d, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  escape.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(passes.load(), 3);
  EXPECT_GE(d.stats().neutralized, 2u);
  d.detach();
}

TEST(Checkpoint, RestartedPassObservesClearedState) {
  // Locals recomputed after the checkpoint must be rebuilt from scratch on
  // restart (the documented contract), and on_restart must have dropped
  // any published reservations so the restarted traversal cannot rely on
  // them. We model "traversal progress" as a cursor the read phase
  // advances before parking: after the restart it must be re-derived from
  // the initial value, not the parked one.
  NbrDomain d(tiny());
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint64_t> cursor_after_restart{0};
  std::atomic<bool> parked{false};
  std::atomic<bool> escape{false};
  std::atomic<bool> restarted{false};

  std::thread reader([&] {
    NbrDomain::Guard g(d);
    uint64_t local = 0;  // re-initialized on every pass through here
    POPSMR_CHECKPOINT(d);
    local = 1;  // first hop of the traversal
    if (restarted.exchange(true)) {
      // Second pass: the traversal restarted from its first hop.
      cursor_after_restart.store(local);
      return;
    }
    local = 42;  // deep in the traversal
    cursor.store(local);
    parked.store(true);
    while (!escape.load(std::memory_order_acquire)) {
    }
  });

  while (!parked.load()) std::this_thread::yield();
  EXPECT_EQ(cursor.load(), 42u);
  churn_until_neutralized(d, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  escape.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(d.stats().neutralized, 0u);
  EXPECT_EQ(cursor_after_restart.load(), 1u);
  d.detach();
}

TEST(Checkpoint, WritePhaseSuppressesRestartButStillAcks) {
  // A thread pinged inside its write phase must NOT come back through the
  // checkpoint — it acknowledges and keeps going — yet the reclaimer's
  // handshake still completes (reclaim() returns and frees).
  NbrDomain d(tiny());
  std::atomic<int> passes{0};
  std::atomic<bool> in_write{false};
  std::atomic<bool> release{false};

  std::thread writer([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    passes.fetch_add(1);
    d.enter_write_phase({});
    in_write.store(true);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    d.exit_write_phase();
  });

  while (!in_write.load()) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.stats().freed, 0u);  // handshake completed without a restart
  release.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(passes.load(), 1);
  EXPECT_EQ(d.stats().neutralized, 0u);
  d.detach();
}

}  // namespace
}  // namespace pop::smr
