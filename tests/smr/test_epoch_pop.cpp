// EpochPOP behaviour (paper Algorithm 3): EBR-mode frees in the common
// case (no signals), POP-mode frees when a stalled thread pins the epoch
// — the paper's dual-mode claim, testable end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/epoch_pop.hpp"

namespace pop::core {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

smr::SmrConfig tiny() {
  smr::SmrConfig c;
  c.retire_threshold = 4;
  c.epoch_freq = 1;
  c.pop_multiplier = 2;
  return c;
}

TEST(EpochPop, CommonCaseFreesViaEpochsWithoutSignals) {
  EpochPopDomain d(tiny());
  for (int i = 0; i < 64; ++i) {
    EpochPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  const auto s = d.stats();
  EXPECT_GT(s.ebr_frees, 0u);
  EXPECT_EQ(s.signals_sent, 0u) << "no delay: POP must not activate";
  EXPECT_EQ(s.pop_frees, 0u);
}

TEST(EpochPop, StalledReaderActivatesPopFallback) {
  EpochPopDomain d(tiny());
  std::atomic<bool> stalled{false}, release{false};
  std::thread sleeper([&] {
    d.begin_op();  // announces an epoch and never advances: pins EBR
    stalled.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!stalled.load()) std::this_thread::yield();
  for (int i = 0; i < 64; ++i) {
    EpochPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  const auto s = d.stats();
  EXPECT_GT(s.pop_frees, 0u) << "POP fallback must reclaim past the stall";
  EXPECT_GT(s.signals_sent, 0u);
  release.store(true);
  sleeper.join();
}

TEST(EpochPop, StalledReaderReservationIsStillRespected) {
  EpochPopDomain d(tiny());
  TNode* victim = d.create<TNode>(77);
  std::atomic<TNode*> src{victim};
  std::atomic<bool> stalled{false}, release{false};
  std::thread sleeper([&] {
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);  // local reservation
    stalled.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!stalled.load()) std::this_thread::yield();
  {
    EpochPopDomain::Guard g(d);
    d.retire(victim);
  }
  for (int i = 0; i < 64; ++i) {
    EpochPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  const auto s = d.stats();
  EXPECT_GT(s.pop_frees, 0u);
  EXPECT_EQ(victim->key, 77u) << "published reservation must protect victim";
  EXPECT_GE(s.unreclaimed(), 1u);
  release.store(true);
  sleeper.join();
}

TEST(EpochPop, EpochAdvancesWithOperations) {
  EpochPopDomain d(tiny());
  const uint64_t e0 = d.current_epoch();
  for (int i = 0; i < 16; ++i) {
    EpochPopDomain::Guard g(d);
  }
  EXPECT_GT(d.current_epoch(), e0);
}

TEST(EpochPop, NoGlobalModeSwitch_TwoReclaimersDifferentModes) {
  // One reclaimer is stalled-blind (epoch mode suffices for it) while
  // another must ping — both run concurrently without coordination.
  EpochPopDomain d(tiny());
  std::atomic<bool> stalled{false}, release{false};
  std::thread sleeper([&] {
    d.begin_op();
    stalled.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!stalled.load()) std::this_thread::yield();
  std::atomic<bool> ok{true};
  std::thread r1([&] {
    for (int i = 0; i < 32; ++i) {
      EpochPopDomain::Guard g(d);
      d.retire(d.create<TNode>(i));
    }
    d.detach();
  });
  std::thread r2([&] {
    for (int i = 0; i < 32; ++i) {
      EpochPopDomain::Guard g(d);
      d.retire(d.create<TNode>(1000 + i));
    }
    d.detach();
  });
  r1.join();
  r2.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GT(d.stats().pop_frees, 0u);
  release.store(true);
  sleeper.join();
}

}  // namespace
}  // namespace pop::core
