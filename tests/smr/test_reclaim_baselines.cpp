// Behavioural tests of the baseline schemes' reclamation conditions:
// who may free what, while which reservation is held.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/pool_alloc.hpp"
#include "smr/all.hpp"
#include "../support/test_util.hpp"

namespace pop {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

smr::SmrConfig tiny() {
  smr::SmrConfig c;
  c.retire_threshold = 2;
  c.epoch_freq = 1;
  return c;
}

// Retire enough dummies from the main thread to force a scan.
template <class D>
void force_scans(D& d, int n = 16) {
  for (int i = 0; i < n; ++i) {
    typename D::Guard g(d);
    d.retire(d.template create<TNode>(1000 + i));
  }
}

TEST(HpBaseline, ReservedNodeSurvivesScan) {
  smr::HpDomain d(tiny());
  TNode* victim = d.create<TNode>(1);
  std::atomic<TNode*> src{victim};

  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    d.attach();
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!reserved.load()) std::this_thread::yield();

  {
    typename smr::HpDomain::Guard g(d);
    d.retire(victim);
  }
  force_scans(d);
  // victim retired but reserved: must not be freed.
  EXPECT_EQ(d.stats().unreclaimed() >= 1, true);
  EXPECT_EQ(victim->key, 1u);  // still readable

  release.store(true);
  reader.join();
  // After the reader cleared, scans are free to reclaim the victim (no
  // read of victim past this point); teardown drains the rest.
  force_scans(d);
}

TEST(HpAsymBaseline, ReservedNodeSurvivesScan) {
  smr::HpAsymDomain d(tiny());
  TNode* victim = d.create<TNode>(2);
  std::atomic<TNode*> src{victim};
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!reserved.load()) std::this_thread::yield();
  {
    typename smr::HpAsymDomain::Guard g(d);
    d.retire(victim);
  }
  force_scans(d);
  EXPECT_GE(d.stats().unreclaimed(), 1u);
  release.store(true);
  reader.join();
}

TEST(HeBaseline, EraReservationPinsLifespanIntersectingNodes) {
  smr::HeDomain d(tiny());
  TNode* victim = d.create<TNode>(3);  // birth era = current
  std::atomic<TNode*> src{victim};
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);  // reserves current era
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!reserved.load()) std::this_thread::yield();
  {
    typename smr::HeDomain::Guard g(d);
    d.retire(victim);  // lifespan intersects the reader's reserved era
  }
  force_scans(d);
  EXPECT_GE(d.stats().unreclaimed(), 1u);
  release.store(true);
  reader.join();
}

TEST(HeBaseline, NodesBornAfterReservedEraAreFreeable) {
  smr::HeDomain d(tiny());
  // Main thread holds no reservation; all retired nodes freeable.
  force_scans(d, 32);
  const auto s = d.stats();
  EXPECT_GT(s.freed, 0u);
}

TEST(EbrBaseline, QuiescentThreadsAllowReclamation) {
  smr::EbrDomain d(tiny());
  force_scans(d, 32);
  EXPECT_GT(d.stats().freed, 0u);
}

TEST(EbrBaseline, InCriticalSectionReaderBlocksFrees) {
  smr::EbrDomain d(tiny());
  std::atomic<bool> entered{false}, release{false};
  std::thread reader([&] {
    d.begin_op();  // announces current epoch and stays
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!entered.load()) std::this_thread::yield();
  const auto before = d.stats();
  force_scans(d, 32);  // retires 32 nodes *after* the reader's epoch
  const auto after = d.stats();
  // Nodes retired at epochs >= the reader's announced epoch stay pinned.
  EXPECT_GT(after.unreclaimed(), before.unreclaimed());
  release.store(true);
  reader.join();
}

TEST(IbrBaseline, IntervalPinsOnlyIntersectingLifespans) {
  smr::IbrDomain d(tiny());
  std::atomic<bool> entered{false}, release{false};
  std::thread reader([&] {
    d.begin_op();  // reserves [e,e]
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!entered.load()) std::this_thread::yield();
  // Nodes born after the reader's interval upper bound are freeable even
  // though the reader never quiesces: this is IBR's point vs EBR.
  for (int i = 0; i < 64; ++i) {
    typename smr::IbrDomain::Guard g(d);
    d.retire(d.create<TNode>(static_cast<uint64_t>(i)));
  }
  EXPECT_GT(d.stats().freed, 0u);
  release.store(true);
  reader.join();
}

TEST(NrBaseline, NeverFreesDuringRun) {
  smr::NrDomain d(tiny());
  force_scans(d, 32);
  const auto s = d.stats();
  EXPECT_EQ(s.freed, 0u);
  EXPECT_EQ(s.retired, 32u);
}

TEST(BrcBaseline, FreesAfterGracePeriods) {
  smr::BrcDomain d(tiny());
  force_scans(d, 16);
  EXPECT_GT(d.stats().freed, 0u);
}

TEST(BrcBaseline, ActiveReaderBlocksGracePeriodUntilExit) {
  smr::BrcDomain d(tiny());
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> reclaimed{false};
  std::thread reader([&] {
    d.begin_op();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!entered.load()) std::this_thread::yield();
  std::thread reclaimer([&] {
    force_scans(d, 8);  // grace period must wait for the reader
    reclaimed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(reclaimed.load());  // still blocked on the reader
  release.store(true);
  reader.join();
  reclaimer.join();
  EXPECT_TRUE(reclaimed.load());
  EXPECT_GT(d.stats().freed, 0u);
}

}  // namespace
}  // namespace pop
