// HazardEraPOP behaviour (paper Algorithm 5 / Appendix B.2): privately
// reserved eras pin exactly the nodes whose lifespan intersects them.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/hazard_era_pop.hpp"

namespace pop::core {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

smr::SmrConfig tiny() {
  smr::SmrConfig c;
  c.retire_threshold = 2;
  return c;
}

TEST(HazardEraPop, EraAdvancesOnReclaim) {
  HazardEraPopDomain d(tiny());
  const uint64_t e0 = d.current_era();
  for (int i = 0; i < 8; ++i) {
    HazardEraPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.current_era(), e0);
}

TEST(HazardEraPop, ReservedEraPinsIntersectingLifespan) {
  HazardEraPopDomain d(tiny());
  TNode* victim = d.create<TNode>(42);
  std::atomic<TNode*> src{victim};
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);  // reserves the current era
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!reserved.load()) std::this_thread::yield();
  {
    HazardEraPopDomain::Guard g(d);
    d.retire(victim);  // lifespan [birth, now] intersects reader's era
  }
  for (int i = 0; i < 16; ++i) {
    HazardEraPopDomain::Guard g(d);
    d.retire(d.create<TNode>(100 + i));
  }
  EXPECT_GE(d.stats().unreclaimed(), 1u);
  EXPECT_EQ(victim->key, 42u);
  release.store(true);
  reader.join();
}

TEST(HazardEraPop, NodesBornAfterReservedEraAreFreed) {
  HazardEraPopDomain d(tiny());
  std::atomic<bool> entered{false}, release{false};
  std::thread reader([&] {
    d.begin_op();
    // Reserve the current era by protecting some node.
    TNode* n = d.create<TNode>(0);
    std::atomic<TNode*> src{n};
    d.protect(0, src);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
    smr::destroy_unpublished(n);
  });
  while (!entered.load()) std::this_thread::yield();
  // Every reclaim bumps the era, so later nodes are born past the
  // reader's reservation and must still be freeable (HE's robustness).
  for (int i = 0; i < 64; ++i) {
    HazardEraPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.stats().freed, 0u);
  release.store(true);
  reader.join();
}

TEST(HazardEraPop, EraReuseAvoidsRepublishing) {
  // Reading many pointers within one era reserves once (the HE selling
  // point, kept in the POP variant): just exercise the path.
  HazardEraPopDomain d;
  TNode* a = d.create<TNode>(1);
  TNode* b = d.create<TNode>(2);
  std::atomic<TNode*> sa{a}, sb{b};
  HazardEraPopDomain::Guard g(d);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.protect(0, sa), a);
    EXPECT_EQ(d.protect(1, sb), b);
  }
  EXPECT_EQ(d.stats().signals_sent, 0u);
  smr::destroy_unpublished(a);
  smr::destroy_unpublished(b);
}

}  // namespace
}  // namespace pop::core
