// The paper's robustness story, as executable tests:
//  * EBR is NOT robust: one stalled reader stops reclamation entirely
//    (unbounded garbage — §2.2.2).
//  * EpochPOP IS robust: the same stall leaves garbage bounded (§4.2.3,
//    Property 5) because reclaimers fall back to publish-on-ping.
//  * HazardPtrPOP/HazardEraPOP bound garbage like HP/HE (Property 3/7).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "runtime/fault_inject.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/all.hpp"

namespace pop {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

constexpr int kChurn = 600;

smr::SmrConfig cfg() {
  smr::SmrConfig c;
  c.retire_threshold = 16;
  c.epoch_freq = 1;
  c.pop_multiplier = 2;
  return c;
}

// Parks a thread inside an operation of `d`, then churns retires from the
// main thread; returns the final unreclaimed count.
template <class D>
uint64_t churn_with_stalled_reader(D& d) {
  std::atomic<bool> stalled{false}, release{false};
  std::thread sleeper([&] {
    d.begin_op();
    stalled.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!stalled.load()) std::this_thread::yield();
  for (int i = 0; i < kChurn; ++i) {
    typename D::Guard g(d);
    d.retire(d.template create<TNode>(i));
  }
  const uint64_t unreclaimed = d.stats().unreclaimed();
  release.store(true);
  sleeper.join();
  return unreclaimed;
}

TEST(Robustness, EbrGarbageGrowsUnboundedUnderStall) {
  smr::EbrDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  // Everything retired after the stall is pinned: growth is linear in the
  // churn — the non-robustness the paper motivates EpochPOP with.
  EXPECT_GE(unreclaimed, static_cast<uint64_t>(kChurn) * 9 / 10);
}

TEST(Robustness, EpochPopGarbageStaysBoundedUnderStall) {
  core::EpochPopDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  const auto c = cfg();
  // Property 5: bounded by the POP trigger plus reserved slots.
  EXPECT_LE(unreclaimed, c.pop_multiplier * c.retire_threshold +
                             2 * static_cast<uint64_t>(c.num_slots));
  EXPECT_GT(d.stats().pop_frees, 0u);
}

TEST(Robustness, HazardPtrPopGarbageStaysBoundedUnderStall) {
  core::HazardPtrPopDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  const auto c = cfg();
  EXPECT_LE(unreclaimed,
            c.retire_threshold + 2 * static_cast<uint64_t>(c.num_slots));
}

TEST(Robustness, HazardEraPopGarbageStaysBoundedUnderStall) {
  core::HazardEraPopDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  // A stalled thread with no reservation pins nothing (eras cleared at
  // op start happen to be empty here since begin_op reserves lazily).
  const auto c = cfg();
  EXPECT_LE(unreclaimed,
            c.retire_threshold + 2 * static_cast<uint64_t>(c.num_slots));
}

TEST(Robustness, HpGarbageStaysBoundedUnderStall) {
  smr::HpDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  const auto c = cfg();
  EXPECT_LE(unreclaimed,
            c.retire_threshold + 2 * static_cast<uint64_t>(c.num_slots));
}

TEST(Robustness, IbrGarbageStaysBoundedUnderStall) {
  smr::IbrDomain d(cfg());
  const uint64_t unreclaimed = churn_with_stalled_reader(d);
  // The stalled reader's interval [e,e] pins only nodes alive at e.
  EXPECT_LE(unreclaimed, cfg().retire_threshold * 4);
}

TEST(Robustness, EpochPopDegradesGracefullyUnderSignalLoss) {
  // The watchdog's reason to exist: a parked reader whose pings are all
  // dropped. The POP fallback's wave genuinely cannot complete, so every
  // retire must still RETURN (waves time out and defer — memory degrades,
  // liveness never does), and once delivery is restored and the victim
  // departs, reclamation must pull unreclaimed back under the robust
  // stall bound.
  setenv("POPSMR_PING_TIMEOUT_MS", "20", /*overwrite=*/1);
  auto& faults = runtime::FaultInjection::instance();
  const uint64_t dropped_before = faults.dropped();
  {
    core::EpochPopDomain d(cfg());
    std::atomic<bool> stalled{false}, release{false};
    std::atomic<int> victim_tid{-1};
    std::thread sleeper([&] {
      d.begin_op();
      victim_tid.store(runtime::my_tid());
      stalled.store(true);
      while (!release.load()) std::this_thread::yield();
      d.end_op();
      d.detach();
    });
    while (!stalled.load()) std::this_thread::yield();
    faults.arm_signal_loss(100, victim_tid.load());

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChurn; ++i) {
      core::EpochPopDomain::Guard g(d);
      d.retire(d.create<TNode>(i));
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    // Liveness under total signal loss: the churn loop finished, and it
    // finished because waves timed out rather than by luck.
    EXPECT_LT(
        std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 60);
    EXPECT_GT(d.stats().waves_timed_out, 0u)
        << "no wave ever hit the watchdog; the fault was not exercised";
    EXPECT_GT(faults.dropped(), dropped_before);

    faults.disarm();
    release.store(true);
    sleeper.join();
    // Delivery restored and the victim gone: the next passes must drain
    // the deferred backlog back under the robust bound.
    for (int i = 0; i < kChurn; ++i) {
      core::EpochPopDomain::Guard g(d);
      d.retire(d.create<TNode>(1000 + i));
    }
    const auto c = cfg();
    EXPECT_LE(d.stats().unreclaimed(),
              c.pop_multiplier * c.retire_threshold +
                  2 * static_cast<uint64_t>(c.num_slots))
        << "unreclaimed never recovered after the loss window closed";
    d.detach();
  }
  faults.disarm();
  unsetenv("POPSMR_PING_TIMEOUT_MS");
}

TEST(Robustness, StalledThreadDoesNotBlockPopForever) {
  // Liveness: a reclaim pass with a stalled (but signal-responsive)
  // thread completes — Assumption 1 in practice.
  core::HazardPtrPopDomain d(cfg());
  std::atomic<bool> stalled{false}, release{false};
  std::thread sleeper([&] {
    d.begin_op();
    stalled.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!stalled.load()) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 64; ++i) {
    core::HazardPtrPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  EXPECT_GT(d.stats().freed, 0u);
  release.store(true);
  sleeper.join();
}

}  // namespace
}  // namespace pop
