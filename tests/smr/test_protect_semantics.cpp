// Typed tests of the uniform SMR policy interface over every scheme:
// protect() value semantics, create/retire/drain accounting, clear(),
// copy_slot(), and the operation brackets. These are the "drop-in
// replacement" contract tests — every scheme must pass identically.
#include <gtest/gtest.h>

#include <atomic>

#include "smr/all.hpp"

namespace pop {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

template <class Smr>
class ProtectSemantics : public ::testing::Test {
 protected:
  smr::SmrConfig small_cfg() const {
    smr::SmrConfig c;
    c.retire_threshold = 4;
    c.epoch_freq = 2;
    return c;
  }
};

using AllSchemes =
    ::testing::Types<smr::NrDomain, smr::HpDomain, smr::HpAsymDomain,
                     smr::HeDomain, smr::EbrDomain, smr::IbrDomain,
                     smr::NbrDomain, smr::BrcDomain, core::HazardPtrPopDomain,
                     core::HazardEraPopDomain, core::EpochPopDomain>;
TYPED_TEST_SUITE(ProtectSemantics, AllSchemes);

TYPED_TEST(ProtectSemantics, ProtectReturnsCurrentValue) {
  TypeParam d;
  typename TypeParam::Guard g(d);
  TNode* n = d.template create<TNode>(7);
  std::atomic<TNode*> src{n};
  TNode* got = d.protect(0, src);
  EXPECT_EQ(got, n);
  EXPECT_EQ(got->key, 7u);
  src.store(nullptr);
  smr::destroy_unpublished(n);
}

TYPED_TEST(ProtectSemantics, ProtectReturnsNullForNullSource) {
  TypeParam d;
  typename TypeParam::Guard g(d);
  std::atomic<TNode*> src{nullptr};
  EXPECT_EQ(d.protect(0, src), nullptr);
}

TYPED_TEST(ProtectSemantics, ProtectTracksLatestValueAcrossChanges) {
  TypeParam d;
  typename TypeParam::Guard g(d);
  TNode* a = d.template create<TNode>(1);
  TNode* b = d.template create<TNode>(2);
  std::atomic<TNode*> src{a};
  EXPECT_EQ(d.protect(0, src), a);
  src.store(b);
  EXPECT_EQ(d.protect(1, src), b);
  smr::destroy_unpublished(a);
  smr::destroy_unpublished(b);
}

TYPED_TEST(ProtectSemantics, CreateStampsDeleter) {
  TypeParam d;
  TNode* n = d.template create<TNode>(3);
  ASSERT_NE(n->deleter, nullptr);
  smr::destroy_unpublished(n);
}

TYPED_TEST(ProtectSemantics, RetiredNodesAreCountedAndDrainedAtTeardown) {
  smr::StatsSnapshot snap;
  {
    TypeParam d(this->small_cfg());
    typename TypeParam::Guard g(d);
    for (int i = 0; i < 3; ++i) {
      d.retire(d.template create<TNode>(i));
    }
    snap = d.stats();
    EXPECT_EQ(snap.retired, 3u);
  }
  // Destructor drains: valgrind/ASan builds catch leaks here.
}

TYPED_TEST(ProtectSemantics, ManyRetiresEventuallyFree) {
  TypeParam d(this->small_cfg());
  for (int i = 0; i < 64; ++i) {
    typename TypeParam::Guard g(d);
    d.retire(d.template create<TNode>(i));
  }
  const auto s = d.stats();
  EXPECT_EQ(s.retired, 64u);
  if constexpr (std::is_same_v<TypeParam, smr::NrDomain>) {
    EXPECT_EQ(s.freed, 0u);  // leaky by design
  } else {
    EXPECT_GT(s.freed, 0u);
    EXPECT_LE(s.freed, s.retired);
  }
}

TYPED_TEST(ProtectSemantics, MaxRetireLenIsTracked) {
  TypeParam d(this->small_cfg());
  for (int i = 0; i < 10; ++i) {
    typename TypeParam::Guard g(d);
    d.retire(d.template create<TNode>(i));
  }
  EXPECT_GE(d.stats().max_retire_len, 1u);
  EXPECT_LE(d.stats().max_retire_len, 10u);
}

TYPED_TEST(ProtectSemantics, ClearAndCopySlotAreCallable) {
  TypeParam d;
  typename TypeParam::Guard g(d);
  TNode* n = d.template create<TNode>(1);
  std::atomic<TNode*> src{n};
  d.protect(0, src);
  d.copy_slot(1, 0);
  d.clear();
  smr::destroy_unpublished(n);
}

TYPED_TEST(ProtectSemantics, GuardBracketsNest) {
  TypeParam d;
  for (int i = 0; i < 100; ++i) {
    typename TypeParam::Guard g(d);
    std::atomic<TNode*> src{nullptr};
    (void)d.protect(0, src);
  }
  SUCCEED();
}

TYPED_TEST(ProtectSemantics, StatsSnapshotAggregates) {
  TypeParam d(this->small_cfg());
  {
    typename TypeParam::Guard g(d);
    d.retire(d.template create<TNode>(0));
  }
  const auto s = d.stats();
  EXPECT_EQ(s.retired, 1u);
  EXPECT_EQ(s.unreclaimed(), s.retired - s.freed);
}

TYPED_TEST(ProtectSemantics, DetachClearsThreadState) {
  TypeParam d;
  {
    typename TypeParam::Guard g(d);
    std::atomic<TNode*> src{nullptr};
    (void)d.protect(0, src);
  }
  d.detach();
  // Re-attach transparently on the next op.
  typename TypeParam::Guard g(d);
  SUCCEED();
}

}  // namespace
}  // namespace pop
