// NBR+ behaviour: neutralization restarts read-phase operations, write
// phases are immune and their reservations protect the published nodes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "smr/checkpoint.hpp"
#include "smr/nbr.hpp"

namespace pop::smr {
namespace {

struct TNode : Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

SmrConfig tiny() {
  SmrConfig c;
  c.retire_threshold = 2;
  return c;
}

TEST(Nbr, ReadPhaseIsNeutralizedByReclaim) {
  NbrDomain d(tiny());
  std::atomic<bool> in_read{false};
  std::atomic<bool> escape{false};
  std::atomic<bool> was_restarted{false};

  std::thread reader([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    if (d.stats().neutralized > 0) {
      // We are re-executing after a longjmp from the signal handler.
      was_restarted.store(true);
      return;
    }
    in_read.store(true);
    // Park in the read phase; the only ways out are neutralization (which
    // re-runs from the checkpoint above) or the escape hatch.
    while (!escape.load(std::memory_order_acquire)) {
    }
  });

  while (!in_read.load()) std::this_thread::yield();
  // Reclaim from the main thread: pings the reader, which must longjmp.
  for (int i = 0; i < 4; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  // Give the signal a moment, then open the escape hatch regardless.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  escape.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(was_restarted.load());
  EXPECT_GT(d.stats().neutralized, 0u);
  d.detach();
}

TEST(Nbr, WritePhaseIsNotNeutralized) {
  NbrDomain d(tiny());
  TNode* protected_node = d.create<TNode>(9);
  std::atomic<bool> in_write{false}, release{false};

  std::thread writer([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    d.enter_write_phase({protected_node});
    in_write.store(true);
    while (!release.load()) std::this_thread::yield();
    // Reached without a restart: neutralization was masked.
    EXPECT_EQ(d.stats().neutralized, 0u);
  });

  while (!in_write.load()) std::this_thread::yield();
  {
    NbrDomain::Guard g(d);
    d.retire(protected_node);
  }
  for (int i = 0; i < 8; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  // protected_node is reserved by the writer's write phase.
  EXPECT_GE(d.stats().unreclaimed(), 1u);
  EXPECT_EQ(protected_node->key, 9u);
  release.store(true);
  writer.join();
  d.detach();
}

TEST(Nbr, ReclaimFreesUnreservedNodes) {
  NbrDomain d(tiny());
  for (int i = 0; i < 16; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.stats().freed, 0u);
  d.detach();
}

TEST(Nbr, ExitWritePhaseReturnsToNeutralizableState) {
  NbrDomain d(tiny());
  std::atomic<bool> armed{false};
  std::atomic<bool> escape{false};
  std::atomic<bool> was_restarted{false};
  std::thread reader([&] {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    if (d.stats().neutralized > 0) {
      was_restarted.store(true);
      return;
    }
    d.enter_write_phase({});
    d.exit_write_phase();  // back in read phase: neutralizable again
    armed.store(true);
    while (!escape.load(std::memory_order_acquire)) {
    }
  });
  while (!armed.load() && !was_restarted.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  escape.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(was_restarted.load());
  EXPECT_GT(d.stats().neutralized, 0u);
  d.detach();
}

TEST(Nbr, ThresholdCrossedInWritePhaseReclaimsInline) {
  NbrDomain d(tiny());
  {
    NbrDomain::Guard g(d);
    POPSMR_CHECKPOINT(d);
    d.enter_write_phase({});
    for (int i = 0; i < 8; ++i) d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.stats().freed, 0u);
  d.detach();
}

TEST(Nbr, AckHandshakeCountsSignals) {
  NbrDomain d(tiny());
  std::atomic<bool> up{false}, release{false};
  std::thread bystander([&] {
    d.attach();
    up.store(true);
    while (!release.load()) std::this_thread::yield();
    d.detach();
  });
  while (!up.load()) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) {
    NbrDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  EXPECT_GT(d.stats().signals_sent, 0u);
  release.store(true);
  bystander.join();
  d.detach();
}

}  // namespace
}  // namespace pop::smr
