#include "smr/tagged.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace pop::smr {
namespace {

TEST(Tagged, MarkRoundTrip) {
  alignas(8) int x = 0;
  int* p = &x;
  EXPECT_FALSE(is_marked(p));
  int* m = with_mark(p);
  EXPECT_TRUE(is_marked(m));
  EXPECT_EQ(strip_mark(m), p);
  EXPECT_EQ(strip_mark(p), p);
}

TEST(Tagged, NullPointerHandling) {
  int* null = nullptr;
  EXPECT_FALSE(is_marked(null));
  int* marked_null = with_mark(null);
  EXPECT_TRUE(is_marked(marked_null));
  EXPECT_EQ(strip_mark(marked_null), nullptr);
}

TEST(Tagged, MarkIsIdempotent) {
  alignas(8) int x = 0;
  int* m = with_mark(&x);
  EXPECT_EQ(with_mark(m), m);
}

TEST(Tagged, StripClearsAllLowBits) {
  alignas(8) int x = 0;
  auto raw = reinterpret_cast<uintptr_t>(&x) | 0x7;
  EXPECT_EQ(strip_mark(reinterpret_cast<int*>(raw)), &x);
}

}  // namespace
}  // namespace pop::smr
