// The SMR contract sanitizer (smr/audit.hpp), exercised both ways:
// seeded violations must trip the right detector, and clean runs across
// every scheme must stay silent. The disabled-path hook cost is bounded
// with the same min-of-rounds methodology as tests/obs/test_obs_overhead.
//
// Seeding notes:
//  - double retire is seeded under ABORT mode via death tests: the audit
//    fires inside retire_push BEFORE the node is pushed, so the child
//    process dies before the intrusive retire list can self-link. Warn
//    mode would let the corrupting push proceed — deliberately not
//    tested that way.
//  - retire-outside-bracket and unbalanced-bracket are benign to the
//    heap, so warn mode + counters cover them (and keep this process
//    alive across schemes).
//  - the bracket-leak seed runs in its own std::thread so the leaked
//    thread-local batch scope dies with the thread instead of making
//    later tests skip their OpGuards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "ds/iset.hpp"
#include "smr/all.hpp"

namespace pop::smr {
namespace {

struct TNode : Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

SmrConfig tiny() {
  SmrConfig c;
  c.retire_threshold = 2;
  c.epoch_freq = 1;
  return c;
}

// Warn mode so the process survives the seeded violation and the test
// can read the counters. Callers pair with audit_off().
void audit_warn_mode() {
  audit::set_enabled(true);
  audit::set_abort_on_violation(false);
  audit::reset();
}

void audit_off() {
  audit::set_enabled(false);
  audit::reset();
}

template <class D>
void seed_double_retire() {
  audit::set_enabled(true);
  audit::set_abort_on_violation(true);
  D d(tiny());
  TNode* n = d.template create<TNode>(7);
  typename D::Guard g(d);
  d.retire(n);
  d.retire(n);  // aborts here, before the retire list can self-link
}

TEST(AuditSeededDeath, DoubleRetireAbortsWithSchemeTag) {
  if (!audit::kCompiled) GTEST_SKIP() << "audit compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seed_double_retire<EbrDomain>(), "double_retire.*EBR");
  EXPECT_DEATH(seed_double_retire<core::EpochPopDomain>(),
               "double_retire.*EpochPOP");
  EXPECT_DEATH(seed_double_retire<HpDomain>(), "double_retire.*HP");
}

template <class D>
void seed_retire_outside_bracket() {
  D d(tiny());
  d.attach();
  TNode* n = d.template create<TNode>(1);
  d.retire(n);  // no OpGuard, no batch bracket: contract violation
  d.detach();
}

TEST(AuditSeeded, RetireOutsideBracketCountsPerScheme) {
  if (!audit::kCompiled) GTEST_SKIP() << "audit compiled out";
  audit_warn_mode();
  seed_retire_outside_bracket<EbrDomain>();
  EXPECT_EQ(audit::violations(audit::Violation::kRetireOutsideOp), 1u);
  seed_retire_outside_bracket<core::EpochPopDomain>();
  EXPECT_EQ(audit::violations(audit::Violation::kRetireOutsideOp), 2u);
  seed_retire_outside_bracket<HpDomain>();
  EXPECT_EQ(audit::violations(audit::Violation::kRetireOutsideOp), 3u);
  EXPECT_EQ(audit::violations(audit::Violation::kDoubleRetire), 0u);
  audit_off();
}

// A batch bracket opened and never closed must be caught when the thread
// detaches. Runs through the public IKV surface (batch_begin with no
// batch_end), in a throwaway thread so the leaked thread-local batch
// scope cannot leak into later tests on this thread.
void seed_unbalanced_batch(const std::string& smr_name) {
  ds::SetConfig cfg;
  cfg.capacity = 64;
  auto m = ds::make_kv("HML", smr_name, cfg);
  ASSERT_NE(m, nullptr) << smr_name;
  std::thread t([&] {
    m->batch_begin();
    m->put(1, 10);
    m->detach_thread();  // bracket still open: unbalanced_bracket fires
  });
  t.join();
}

TEST(AuditSeeded, UnbalancedBatchBracketAtDetach) {
  if (!audit::kCompiled) GTEST_SKIP() << "audit compiled out";
  audit_warn_mode();
  uint64_t expected = 0;
  for (const char* smr_name : {"EBR", "EpochPOP", "HP"}) {
    seed_unbalanced_batch(smr_name);
    ++expected;
    EXPECT_EQ(audit::violations(audit::Violation::kUnbalancedBracket),
              expected)
        << smr_name;
  }
  EXPECT_EQ(audit::violations(), expected) << "only unbalanced_bracket";
  audit_off();
}

// With the auditor armed, a well-behaved workload over every scheme and
// both bracket styles (per-op OpGuards and a pipelined batch) must stay
// completely silent.
TEST(AuditClean, AllSchemesSilentUnderAudit) {
  if (!audit::kCompiled) GTEST_SKIP() << "audit compiled out";
  audit_warn_mode();
  for (const auto& smr_name : ds::all_smr_names()) {
    ds::SetConfig cfg;
    cfg.capacity = 128;
    auto m = ds::make_kv("HML", smr_name, cfg);
    ASSERT_NE(m, nullptr) << smr_name;
    for (uint64_t k = 0; k < 64; ++k) m->put(k, k * 10);
    m->batch_begin();
    for (uint64_t k = 0; k < 64; ++k) {
      uint64_t v = 0;
      EXPECT_TRUE(m->get(k, &v)) << smr_name;
      m->put(k, v + 1);
    }
    m->batch_end();
    for (uint64_t k = 0; k < 64; ++k) m->remove(k);
    m->detach_thread();
    EXPECT_EQ(audit::violations(), 0u) << smr_name;
  }
  EXPECT_EQ(audit::bracket_depth(), 0u);
  audit_off();
}

// ---- disabled-path overhead ------------------------------------------------
// Same min-of-rounds methodology and thresholds as test_obs_overhead: the
// minimum over many rounds converges to the intrinsic cost, so the ratio
// of minima bounds the hook overhead without scheduler-noise flakiness.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kDefaultMaxPct = 75.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kDefaultMaxPct = 75.0;
#else
constexpr double kDefaultMaxPct = 2.0;
#endif
#else
constexpr double kDefaultMaxPct = 2.0;
#endif

// ~100 ns of dependent integer work (chained splitmix rounds).
inline uint64_t synthetic_op(uint64_t x) {
  for (int i = 0; i < 48; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

inline void keep(uint64_t& v) { asm volatile("" : "+r"(v)); }

uint64_t time_loop_ns(int ops, bool hooked, uint64_t& state) {
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t x = state;
  for (int i = 0; i < ops; ++i) {
    x = synthetic_op(x);
    if (hooked) {
      // The exact gate retire_push/OpGuard compile against: one relaxed
      // load plus a predictable branch when the auditor is off.
      if (audit::on()) x += 1;
    }
    keep(x);
  }
  state = x;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

TEST(AuditOverhead, DisabledHookCostsUnderThreshold) {
  audit::set_enabled(false);
  ASSERT_FALSE(audit::on());

  double max_pct = kDefaultMaxPct;
  if (const char* env = std::getenv("POPSMR_TEST_OVERHEAD_PCT")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) max_pct = v;
  }

  const int kOps = 1 << 13;
  const int kRounds = 40;
  uint64_t state = 54321;

  time_loop_ns(kOps, false, state);  // warm both paths before measuring
  time_loop_ns(kOps, true, state);

  uint64_t min_plain = UINT64_MAX, min_hooked = UINT64_MAX;
  for (int r = 0; r < kRounds; ++r) {
    const uint64_t p = time_loop_ns(kOps, false, state);
    const uint64_t h = time_loop_ns(kOps, true, state);
    if (p < min_plain) min_plain = p;
    if (h < min_hooked) min_hooked = h;
  }
  ASSERT_GT(min_plain, 0u);

  const double overhead_pct =
      100.0 *
      (static_cast<double>(min_hooked) / static_cast<double>(min_plain) - 1.0);
  EXPECT_LE(overhead_pct, max_pct)
      << "disabled-path audit hook overhead " << overhead_pct
      << "% (plain min " << min_plain << " ns, hooked min " << min_hooked
      << " ns over " << kOps << " ops)";
}

}  // namespace
}  // namespace pop::smr
