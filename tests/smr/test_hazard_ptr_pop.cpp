// HazardPtrPOP-specific behaviour (paper Algorithms 1+2): fence-free
// private reservations protect nodes across the ping handshake exactly
// like eagerly-published hazard pointers would.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/hazard_ptr_pop.hpp"
#include "../support/test_util.hpp"

namespace pop::core {
namespace {

struct TNode : smr::Reclaimable {
  explicit TNode(uint64_t k = 0) : key(k) {}
  uint64_t key;
};

smr::SmrConfig tiny() {
  smr::SmrConfig c;
  c.retire_threshold = 2;
  return c;
}

TEST(HazardPtrPop, PrivatelyReservedNodeSurvivesReclaim) {
  HazardPtrPopDomain d(tiny());
  TNode* victim = d.create<TNode>(11);
  std::atomic<TNode*> src{victim};
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    d.begin_op();
    EXPECT_EQ(d.protect(0, src), victim);  // private, no fence
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    d.end_op();
    d.detach();
  });
  while (!reserved.load()) std::this_thread::yield();

  {
    HazardPtrPopDomain::Guard g(d);
    d.retire(victim);
  }
  for (int i = 0; i < 16; ++i) {  // repeated reclaims: all must skip victim
    HazardPtrPopDomain::Guard g(d);
    d.retire(d.create<TNode>(100 + i));
  }
  EXPECT_GE(d.stats().unreclaimed(), 1u);
  EXPECT_EQ(victim->key, 11u);
  EXPECT_GT(d.stats().signals_sent, 0u);

  release.store(true);
  reader.join();
}

TEST(HazardPtrPop, UnreservedNodesAreFreedByHandshake) {
  HazardPtrPopDomain d(tiny());
  for (int i = 0; i < 32; ++i) {
    HazardPtrPopDomain::Guard g(d);
    d.retire(d.create<TNode>(i));
  }
  const auto s = d.stats();
  EXPECT_GT(s.freed, 0u);
  EXPECT_GT(s.scans, 0u);
}

TEST(HazardPtrPop, ClearedReservationAllowsFree) {
  HazardPtrPopDomain d(tiny());
  TNode* victim = d.create<TNode>(5);
  std::atomic<TNode*> src{victim};
  std::atomic<int> stage{0};
  std::thread reader([&] {
    d.begin_op();
    d.protect(0, src);
    stage.store(1);
    while (stage.load() < 2) std::this_thread::yield();
    d.end_op();  // drops the reservation
    stage.store(3);
    while (stage.load() < 4) std::this_thread::yield();
    d.detach();
  });
  while (stage.load() < 1) std::this_thread::yield();
  {
    HazardPtrPopDomain::Guard g(d);
    d.retire(victim);
  }
  stage.store(2);
  while (stage.load() < 3) std::this_thread::yield();
  const auto before = d.stats().freed;
  for (int i = 0; i < 8; ++i) {
    HazardPtrPopDomain::Guard g(d);
    d.retire(d.create<TNode>(200 + i));
  }
  EXPECT_GT(d.stats().freed, before);
  stage.store(4);
  reader.join();
}

TEST(HazardPtrPop, ReadPathSendsNoSignals) {
  HazardPtrPopDomain d;  // large threshold: no reclaim triggered
  TNode* n = d.create<TNode>(1);
  std::atomic<TNode*> src{n};
  for (int i = 0; i < 10000; ++i) {
    HazardPtrPopDomain::Guard g(d);
    (void)d.protect(0, src);
  }
  EXPECT_EQ(d.stats().signals_sent, 0u);  // the paper's point: signal cost
  smr::destroy_unpublished(n);            // only when reclaiming
}

TEST(HazardPtrPop, GarbageBoundHolds) {
  // Property 3: unreclaimed <= threshold + N*H (here N=2 threads, H=slots).
  smr::SmrConfig c;
  c.retire_threshold = 8;
  c.num_slots = 4;
  HazardPtrPopDomain d(c);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      HazardPtrPopDomain::Guard g(d);
      d.retire(d.create<TNode>(0));
    }
    d.detach();
  });
  for (int i = 0; i < 5000; ++i) {
    HazardPtrPopDomain::Guard g(d);
    d.retire(d.create<TNode>(1));
  }
  stop.store(true);
  churn.join();
  const auto s = d.stats();
  // Generous bound: per-thread threshold + N*H slack, for 2 retire lists.
  EXPECT_LE(s.unreclaimed(), 2 * (c.retire_threshold + 2 * c.num_slots));
}

}  // namespace
}  // namespace pop::core
