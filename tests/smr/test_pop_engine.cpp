// Tests of the publish-on-ping handshake machinery (paper Algorithm 2):
// private reservations stay private until a ping, the publish counter
// advances exactly when the handler runs, and ping_all_and_wait returns
// only after every attached thread has published.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/pop_engine.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::core {
namespace {

TEST(PopEngine, LocalReservationIsPrivateUntilPing) {
  PopEngine e(4);
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.reserve_local(tid, 0, 0xABCD0);
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!reserved.load()) std::this_thread::yield();

  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  int n = e.collect_shared(shared);
  bool found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0xABCD0;
  EXPECT_FALSE(found) << "reservation leaked to shared slots without a ping";

  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);

  n = e.collect_shared(shared);
  found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0xABCD0;
  EXPECT_TRUE(found) << "reservation not published after the handshake";

  release.store(true);
  reader.join();
  e.detach(self);
}

TEST(PopEngine, PublishCounterAdvancesOnPing) {
  PopEngine e(4);
  std::atomic<bool> up{false}, release{false};
  std::atomic<int> reader_tid{-1};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    reader_tid.store(tid);
    up.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!up.load()) std::this_thread::yield();
  const uint64_t before = e.publish_count(reader_tid.load());
  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);
  EXPECT_GT(e.publish_count(reader_tid.load()), before);
  release.store(true);
  reader.join();
  e.detach(self);
}

TEST(PopEngine, HandshakeCompletesWithNoOtherThreads) {
  PopEngine e(4);
  const int self = runtime::my_tid();
  e.attach(self);
  e.reserve_local(self, 0, 0x1234560);
  e.ping_all_and_wait(self);  // must self-publish and return promptly
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  bool found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0x1234560;
  EXPECT_TRUE(found);
  e.detach(self);
}

TEST(PopEngine, DetachedThreadDoesNotBlockHandshake) {
  PopEngine e(4);
  // Reader attaches and then detaches before the reclaimer pings.
  test::run_threads(1, [&](int) {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.reserve_local(tid, 0, 0xF00D0);
    e.detach(tid);
  });
  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);  // must not spin on the departed thread
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  for (int i = 0; i < n; ++i) EXPECT_NE(shared[i], 0xF00D0u);
  e.detach(self);
}

TEST(PopEngine, ClearLocalDropsReservations) {
  PopEngine e(4);
  const int self = runtime::my_tid();
  e.attach(self);
  e.reserve_local(self, 0, 0xBEEF0);
  e.clear_local(self);
  e.ping_all_and_wait(self);
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  for (int i = 0; i < n; ++i) EXPECT_NE(shared[i], 0xBEEF0u);
  e.detach(self);
}

TEST(PopEngine, ConcurrentReclaimersCoalesce) {
  PopEngine e(4);
  std::atomic<bool> release{false};
  std::atomic<int> up{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      const int tid = runtime::my_tid();
      e.attach(tid);
      e.reserve_local(tid, 0, 0x5150 + 16 * static_cast<uintptr_t>(tid));
      up.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      e.detach(tid);
    });
  }
  while (up.load() < 3) std::this_thread::yield();
  // Two reclaimers handshake simultaneously; both must terminate.
  test::run_threads(2, [&](int) {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.ping_all_and_wait(tid);
    e.detach(tid);
  });
  release.store(true);
  for (auto& t : readers) t.join();
  SUCCEED();
}

TEST(PopEngine, PingsReceivedCounterTracksHandlers) {
  PopEngine e(4);
  std::atomic<bool> up{false}, release{false};
  std::atomic<int> rtid{-1};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    rtid.store(tid);
    up.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!up.load()) std::this_thread::yield();
  const int self = runtime::my_tid();
  e.attach(self);
  const uint64_t before = e.pings_received(rtid.load());
  e.ping_all_and_wait(self);
  e.ping_all_and_wait(self);
  EXPECT_GE(e.pings_received(rtid.load()), before + 2);
  release.store(true);
  reader.join();
  e.detach(self);
}

}  // namespace
}  // namespace pop::core
