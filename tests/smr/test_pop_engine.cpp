// Tests of the publish-on-ping handshake machinery (paper Algorithm 2):
// private reservations stay private until a ping, the publish counter
// advances exactly when the handler runs, and ping_all_and_wait returns
// only after every attached thread has published.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/pop_engine.hpp"
#include "runtime/thread_registry.hpp"
#include "../support/test_util.hpp"

namespace pop::core {
namespace {

TEST(PopEngine, LocalReservationIsPrivateUntilPing) {
  PopEngine e(4);
  std::atomic<bool> reserved{false}, release{false};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.reserve_local(tid, 0, 0xABCD0);
    reserved.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!reserved.load()) std::this_thread::yield();

  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  int n = e.collect_shared(shared);
  bool found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0xABCD0;
  EXPECT_FALSE(found) << "reservation leaked to shared slots without a ping";

  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);

  n = e.collect_shared(shared);
  found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0xABCD0;
  EXPECT_TRUE(found) << "reservation not published after the handshake";

  release.store(true);
  reader.join();
  e.detach(self);
}

TEST(PopEngine, PublishCounterAdvancesOnPing) {
  PopEngine e(4);
  std::atomic<bool> up{false}, release{false};
  std::atomic<int> reader_tid{-1};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    reader_tid.store(tid);
    up.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!up.load()) std::this_thread::yield();
  const uint64_t before = e.publish_count(reader_tid.load());
  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);
  EXPECT_GT(e.publish_count(reader_tid.load()), before);
  release.store(true);
  reader.join();
  e.detach(self);
}

TEST(PopEngine, HandshakeCompletesWithNoOtherThreads) {
  PopEngine e(4);
  const int self = runtime::my_tid();
  e.attach(self);
  e.reserve_local(self, 0, 0x1234560);
  e.ping_all_and_wait(self);  // must self-publish and return promptly
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  bool found = false;
  for (int i = 0; i < n; ++i) found = found || shared[i] == 0x1234560;
  EXPECT_TRUE(found);
  e.detach(self);
}

TEST(PopEngine, DetachedThreadDoesNotBlockHandshake) {
  PopEngine e(4);
  // Reader attaches and then detaches before the reclaimer pings.
  test::run_threads(1, [&](int) {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.reserve_local(tid, 0, 0xF00D0);
    e.detach(tid);
  });
  const int self = runtime::my_tid();
  e.attach(self);
  e.ping_all_and_wait(self);  // must not spin on the departed thread
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  for (int i = 0; i < n; ++i) EXPECT_NE(shared[i], 0xF00D0u);
  e.detach(self);
}

TEST(PopEngine, ClearLocalDropsReservations) {
  PopEngine e(4);
  const int self = runtime::my_tid();
  e.attach(self);
  e.reserve_local(self, 0, 0xBEEF0);
  e.clear_local(self);
  e.ping_all_and_wait(self);
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int n = e.collect_shared(shared);
  for (int i = 0; i < n; ++i) EXPECT_NE(shared[i], 0xBEEF0u);
  e.detach(self);
}

TEST(PopEngine, ConcurrentReclaimersCoalesce) {
  PopEngine e(4);
  std::atomic<bool> release{false};
  std::atomic<int> up{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      const int tid = runtime::my_tid();
      e.attach(tid);
      e.reserve_local(tid, 0, 0x5150 + 16 * static_cast<uintptr_t>(tid));
      up.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      e.detach(tid);
    });
  }
  while (up.load() < 3) std::this_thread::yield();
  // Two reclaimers handshake simultaneously; both must terminate.
  test::run_threads(2, [&](int) {
    const int tid = runtime::my_tid();
    e.attach(tid);
    e.ping_all_and_wait(tid);
    e.detach(tid);
  });
  release.store(true);
  for (auto& t : readers) t.join();
  SUCCEED();
}

TEST(PopEngine, ConcurrentReclaimersShareOnePingWave) {
  // Handshake coalescing: two reclaimers whose handshakes overlap should
  // share a single ping wave (one leads, the other piggybacks on the
  // wave's publishes) — strictly fewer signals than the same number of
  // strictly sequential handshakes, where every reclaimer pings everyone.
  PopEngine e(4);
  constexpr int kReaders = 6;
  constexpr int kRounds = 25;
  std::atomic<bool> release{false};
  std::atomic<int> up{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      const int tid = runtime::my_tid();
      e.attach(tid);
      up.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      e.detach(tid);
    });
  }
  while (up.load() < kReaders) std::this_thread::yield();

  std::atomic<uint64_t> sequential_signals{0};
  std::atomic<uint64_t> concurrent_signals{0};
  std::atomic<uint64_t> waves_before_concurrent{0};
  std::atomic<int> attached_reclaimers{0};
  std::atomic<int> turn{0};
  std::atomic<int> arrived{0};
  test::run_threads(2, [&](int w) {
    const int tid = runtime::my_tid();
    e.attach(tid);
    attached_reclaimers.fetch_add(1);
    while (attached_reclaimers.load() < 2) std::this_thread::yield();

    // Phase 1 — sequential baseline: strict alternation, no overlap, so
    // every handshake leads its own wave.
    for (int r = 0; r < kRounds; ++r) {
      while (turn.load() != 2 * r + w) std::this_thread::yield();
      sequential_signals.fetch_add(
          static_cast<uint64_t>(e.ping_all_and_wait(tid).sent));
      turn.fetch_add(1);
    }

    // Phase 2 — concurrent: a barrier per round releases both reclaimers
    // into the handshake together. Reclaimer 1 owns the last sequential
    // turn, so its snapshot of the wave count is taken at quiescence.
    if (w == 1) waves_before_concurrent.store(e.handshake_rounds());
    for (int r = 0; r < kRounds; ++r) {
      arrived.fetch_add(1);
      while (arrived.load() < 2 * (r + 1)) std::this_thread::yield();
      concurrent_signals.fetch_add(
          static_cast<uint64_t>(e.ping_all_and_wait(tid).sent));
    }
    e.detach(tid);
  });

  // Each sequential handshake pings all 7 other attached threads (targeted
  // re-pings can only add to this on a very slow machine).
  EXPECT_GE(sequential_signals.load(),
            static_cast<uint64_t>(2 * kRounds * (kReaders + 1)));
  EXPECT_LT(concurrent_signals.load(), sequential_signals.load());
  // The mechanism: in at least one concurrent round the second reclaimer
  // joined the first's open wave instead of broadcasting its own.
  EXPECT_LT(e.handshake_rounds() - waves_before_concurrent.load(),
            static_cast<uint64_t>(2 * kRounds));

  release.store(true);
  for (auto& t : readers) t.join();
}

TEST(PopEngine, CrossEngineWavesCoalesce) {
  // The handshake round is process-wide: with two co-resident domains
  // (the sharded service layer's shape), a reclaimer in engine B that
  // observes a wave led by a reclaimer in engine A rides it — one ping
  // publishes every domain's reservations on the receiving thread, so
  // A's broadcast advances B's publish counters too. Both handshakes
  // must terminate, and overlapping rounds must share waves (fewer
  // completed waves than handshakes).
  PopEngine ea(4), eb(4);
  constexpr int kReaders = 5;
  // Barrier-released handshake pairs until one coalesces; the cap only
  // bounds a pathological scheduler (each round overlaps with high
  // probability, so the loop normally exits within a few rounds).
  constexpr int kMaxRounds = 200;
  std::atomic<bool> release{false};
  std::atomic<int> up{0};
  std::atomic<uintptr_t> expect_a[kReaders];
  std::atomic<uintptr_t> expect_b[kReaders];
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      const int tid = runtime::my_tid();
      ea.attach(tid);
      eb.attach(tid);
      const auto va = 0xA0000 + 16 * static_cast<uintptr_t>(tid);
      const auto vb = 0xB0000 + 16 * static_cast<uintptr_t>(tid);
      ea.reserve_local(tid, 0, va);
      eb.reserve_local(tid, 0, vb);
      expect_a[i].store(va);
      expect_b[i].store(vb);
      up.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      eb.detach(tid);
      ea.detach(tid);
    });
  }
  while (up.load() < kReaders) std::this_thread::yield();

  std::atomic<int> attached{0};
  std::atomic<int> arrived{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> handshakes{0};
  // Worker 0 reclaims in engine A, worker 1 in engine B; a barrier per
  // round releases both handshakes together so they overlap. Rounds
  // repeat until some handshake joined the other engine's wave (checked
  // after the barrier so both workers always agree on the round count).
  test::run_threads(2, [&](int w) {
    PopEngine& mine = w == 0 ? ea : eb;
    const int tid = runtime::my_tid();
    mine.attach(tid);
    attached.fetch_add(1);
    while (attached.load() < 2) std::this_thread::yield();
    for (int r = 0; r < kMaxRounds; ++r) {
      arrived.fetch_add(1);
      while (arrived.load() < 2 * (r + 1)) std::this_thread::yield();
      // A worker sets `stop` only before its barrier arrival, so both
      // observe the same value here and exit on the same round.
      if (stop.load()) break;
      mine.ping_all_and_wait(tid);
      handshakes.fetch_add(1);
      if (ea.waves_joined() + eb.waves_joined() > 0) stop.store(true);
    }
    mine.detach(tid);
  });

  // Every handshake completed (we got here), and the reservations of
  // both domains are visible after the storm.
  uintptr_t shared[runtime::kMaxThreads * smr::kMaxSlots];
  const int self = runtime::my_tid();
  ea.attach(self);
  eb.attach(self);
  ea.ping_all_and_wait(self);
  int n = ea.collect_shared(shared);
  for (int i = 0; i < kReaders; ++i) {
    bool found = false;
    for (int j = 0; j < n; ++j) found = found || shared[j] == expect_a[i].load();
    EXPECT_TRUE(found) << "engine A reservation of reader " << i << " missing";
  }
  eb.ping_all_and_wait(self);
  n = eb.collect_shared(shared);
  for (int i = 0; i < kReaders; ++i) {
    bool found = false;
    for (int j = 0; j < n; ++j) found = found || shared[j] == expect_b[i].load();
    EXPECT_TRUE(found) << "engine B reservation of reader " << i << " missing";
  }
  ea.detach(self);
  eb.detach(self);

  // Coalescing across engines: some handshake rode a wave the *other*
  // domain's reclaimer led (the loop above ran until it happened).
  EXPECT_GT(ea.waves_joined() + eb.waves_joined(), 0u)
      << "no cross-domain wave coalesced in " << kMaxRounds << " rounds";
  // Accounting: led + joined covers every handshake the engines ran
  // (the workers' rounds plus the two verification handshakes above).
  EXPECT_EQ(ea.waves_led() + ea.waves_joined() + eb.waves_led() +
                eb.waves_joined(),
            handshakes.load() + 2);

  release.store(true);
  for (auto& t : readers) t.join();
}

TEST(PopEngine, PingsReceivedCounterTracksHandlers) {
  PopEngine e(4);
  std::atomic<bool> up{false}, release{false};
  std::atomic<int> rtid{-1};
  std::thread reader([&] {
    const int tid = runtime::my_tid();
    e.attach(tid);
    rtid.store(tid);
    up.store(true);
    while (!release.load()) std::this_thread::yield();
    e.detach(tid);
  });
  while (!up.load()) std::this_thread::yield();
  const int self = runtime::my_tid();
  e.attach(self);
  const uint64_t before = e.pings_received(rtid.load());
  e.ping_all_and_wait(self);
  e.ping_all_and_wait(self);
  EXPECT_GE(e.pings_received(rtid.load()), before + 2);
  release.store(true);
  reader.join();
  e.detach(self);
}

}  // namespace
}  // namespace pop::core
