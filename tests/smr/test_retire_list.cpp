#include "smr/retire_list.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/pool_alloc.hpp"

namespace pop::smr {
namespace {

struct TestNode : Reclaimable {
  static int live;
  TestNode() { ++live; }
};
int TestNode::live = 0;

void test_deleter(Reclaimable* r) {
  --TestNode::live;
  delete static_cast<TestNode*>(r);
}

TestNode* make_node(uint64_t retire_era = 0) {
  auto* n = new TestNode();
  n->deleter = &test_deleter;
  n->retire_era = retire_era;
  return n;
}

TEST(RetireList, StartsEmpty) {
  RetireList rl;
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(rl.length(), 0u);
}

TEST(RetireList, PushIncreasesLength) {
  RetireList rl;
  rl.push(make_node());
  rl.push(make_node());
  EXPECT_EQ(rl.length(), 2u);
  EXPECT_FALSE(rl.empty());
  rl.drain();
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepFreesOnlyMatching) {
  RetireList rl;
  for (uint64_t e = 0; e < 10; ++e) rl.push(make_node(e));
  const uint64_t freed =
      rl.sweep([](Reclaimable* n) { return n->retire_era < 5; });
  EXPECT_EQ(freed, 5u);
  EXPECT_EQ(rl.length(), 5u);
  EXPECT_EQ(TestNode::live, 5);
  rl.drain();
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepKeepsSurvivorsForLaterSweep) {
  RetireList rl;
  for (uint64_t e = 0; e < 6; ++e) rl.push(make_node(e));
  rl.sweep([](Reclaimable* n) { return n->retire_era % 2 == 0; });
  EXPECT_EQ(rl.length(), 3u);
  const uint64_t freed = rl.sweep([](Reclaimable*) { return true; });
  EXPECT_EQ(freed, 3u);
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, DrainFreesEverything) {
  RetireList rl;
  for (int i = 0; i < 100; ++i) rl.push(make_node());
  EXPECT_EQ(rl.drain(), 100u);
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepOnEmptyListIsNoop) {
  RetireList rl;
  EXPECT_EQ(rl.sweep([](Reclaimable*) { return true; }), 0u);
}

// ---- batched sweep --------------------------------------------------------

// Pool-backed node mirroring what DomainCore::create_node produces for a
// trivially destructible type: the identity hook, no per-node dispatch.
struct PoolNode : Reclaimable {
  uint64_t payload = 0;
};

PoolNode* make_pool_node(uint64_t retire_era) {
  auto* n = runtime::PoolAllocator::instance().create<PoolNode>();
  n->retire_era = retire_era;
  n->deleter = [](Reclaimable* r) {
    runtime::PoolAllocator::instance().destroy(static_cast<PoolNode*>(r));
  };
  n->batch_prep = &batch_prep_identity;
  return n;
}

TEST(RetireList, SweepBatchFreesOnlyMatchingAndKeepsRest) {
  RetireList rl;
  for (uint64_t e = 0; e < 10; ++e) rl.push(make_pool_node(e));
  const auto before = runtime::PoolAllocator::instance().stats();
  {
    runtime::PoolAllocator::FreeBatch batch;
    const uint64_t freed = rl.sweep_batch(
        [](Reclaimable* n) { return n->retire_era < 4; }, batch);
    EXPECT_EQ(freed, 4u);
  }
  EXPECT_EQ(rl.length(), 6u);
  const auto mid = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(mid.freed_blocks - before.freed_blocks, 4u);
  EXPECT_EQ(rl.drain(), 6u);
  const auto after = runtime::PoolAllocator::instance().stats();
  EXPECT_EQ(after.freed_blocks - before.freed_blocks, 10u);
  EXPECT_TRUE(rl.empty());
}

TEST(RetireList, SweepBatchRunsNonTrivialDestructors) {
  static int dtors;
  dtors = 0;
  struct DtorNode : Reclaimable {
    ~DtorNode() { ++dtors; }
  };
  RetireList rl;
  for (int i = 0; i < 8; ++i) {
    auto* n = runtime::PoolAllocator::instance().create<DtorNode>();
    n->deleter = [](Reclaimable* r) {
      runtime::PoolAllocator::instance().destroy(static_cast<DtorNode*>(r));
    };
    // What DomainCore stamps for a non-trivially-destructible type:
    // destroy in place, hand the block to the batch.
    n->batch_prep = [](Reclaimable* r) noexcept -> void* {
      auto* p = static_cast<DtorNode*>(r);
      p->~DtorNode();
      return p;
    };
    rl.push(n);
  }
  {
    runtime::PoolAllocator::FreeBatch batch;
    EXPECT_EQ(rl.sweep_batch([](Reclaimable*) { return true; }, batch), 8u);
  }
  EXPECT_EQ(dtors, 8);
}

TEST(RetireList, SweepBatchFallsBackToDeleterWithoutHook) {
  // Nodes outside the pool allocator (batch_prep == nullptr) must still be
  // freed through their per-node deleter on the batched path.
  RetireList rl;
  for (int i = 0; i < 5; ++i) rl.push(make_node());
  EXPECT_EQ(TestNode::live, 5);
  {
    runtime::PoolAllocator::FreeBatch batch;
    EXPECT_EQ(rl.sweep_batch([](Reclaimable*) { return true; }, batch), 5u);
    EXPECT_EQ(batch.blocks_added(), 0u);  // nothing entered the pool batch
  }
  EXPECT_EQ(TestNode::live, 0);
}

}  // namespace
}  // namespace pop::smr
