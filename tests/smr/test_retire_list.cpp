#include "smr/retire_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pop::smr {
namespace {

struct TestNode : Reclaimable {
  static int live;
  TestNode() { ++live; }
};
int TestNode::live = 0;

void test_deleter(Reclaimable* r) {
  --TestNode::live;
  delete static_cast<TestNode*>(r);
}

TestNode* make_node(uint64_t retire_era = 0) {
  auto* n = new TestNode();
  n->deleter = &test_deleter;
  n->retire_era = retire_era;
  return n;
}

TEST(RetireList, StartsEmpty) {
  RetireList rl;
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(rl.length(), 0u);
}

TEST(RetireList, PushIncreasesLength) {
  RetireList rl;
  rl.push(make_node());
  rl.push(make_node());
  EXPECT_EQ(rl.length(), 2u);
  EXPECT_FALSE(rl.empty());
  rl.drain();
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepFreesOnlyMatching) {
  RetireList rl;
  for (uint64_t e = 0; e < 10; ++e) rl.push(make_node(e));
  const uint64_t freed =
      rl.sweep([](Reclaimable* n) { return n->retire_era < 5; });
  EXPECT_EQ(freed, 5u);
  EXPECT_EQ(rl.length(), 5u);
  EXPECT_EQ(TestNode::live, 5);
  rl.drain();
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepKeepsSurvivorsForLaterSweep) {
  RetireList rl;
  for (uint64_t e = 0; e < 6; ++e) rl.push(make_node(e));
  rl.sweep([](Reclaimable* n) { return n->retire_era % 2 == 0; });
  EXPECT_EQ(rl.length(), 3u);
  const uint64_t freed = rl.sweep([](Reclaimable*) { return true; });
  EXPECT_EQ(freed, 3u);
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, DrainFreesEverything) {
  RetireList rl;
  for (int i = 0; i < 100; ++i) rl.push(make_node());
  EXPECT_EQ(rl.drain(), 100u);
  EXPECT_TRUE(rl.empty());
  EXPECT_EQ(TestNode::live, 0);
}

TEST(RetireList, SweepOnEmptyListIsNoop) {
  RetireList rl;
  EXPECT_EQ(rl.sweep([](Reclaimable*) { return true; }), 0u);
}

}  // namespace
}  // namespace pop::smr
