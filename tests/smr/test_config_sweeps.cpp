// Property sweeps over the configuration space: the reclamation
// invariants must hold for every scheme at every retire threshold / slot
// count / epoch frequency, not just the defaults.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ds/iset.hpp"
#include "runtime/rng.hpp"
#include "../support/test_util.hpp"

namespace pop::ds {
namespace {

// (scheme, retire_threshold, epoch_freq)
using Param = std::tuple<std::string, uint64_t, uint64_t>;

class ConfigSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ConfigSweep, RetireListHighWatermarkTracksThreshold) {
  const auto& [smr, threshold, epoch_freq] = GetParam();
  SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = threshold;
  cfg.smr.epoch_freq = epoch_freq;
  auto s = make_set("HML", smr, cfg);
  ASSERT_NE(s, nullptr);
  runtime::Xoshiro256 rng(99);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.next_below(128);
    if (rng.percent(50)) {
      s->insert(k);
    } else {
      s->erase(k);
    }
  }
  const auto st = s->smr_stats();
  if (smr == "NR") {
    // Leaky: the list just grows.
    EXPECT_EQ(st.freed, 0u);
  } else if (smr == "EpochPOP") {
    // The POP fallback fires at C*threshold; the watermark respects that.
    EXPECT_LE(st.max_retire_len,
              cfg.smr.pop_multiplier * threshold + 8);
  } else if (smr == "IBR" || smr == "EBR") {
    // Epoch/interval schemes cannot free nodes retired in the epoch the
    // reclaimer itself still announces, so their bound grows with the
    // epoch advance period (operations/allocations per epoch).
    EXPECT_LE(st.max_retire_len, threshold + 2 * epoch_freq + 16);
  } else if (smr == "HE" || smr == "HazardEraPOP") {
    // Era schemes keep nodes whose lifespan intersects a reserved era —
    // with reclamation every `threshold` retires that carry-over is up to
    // one more threshold's worth (nodes retired in the current era).
    EXPECT_LE(st.max_retire_len, 2 * threshold + 32);
  } else {
    EXPECT_LE(st.max_retire_len, threshold + 8);
  }
  s->detach_thread();
}

TEST_P(ConfigSweep, SingleThreadGarbageIsBoundedAfterQuiescence) {
  const auto& [smr, threshold, epoch_freq] = GetParam();
  if (smr == "NR") GTEST_SKIP() << "leaky by design";
  SetConfig cfg;
  cfg.capacity = 256;
  cfg.smr.retire_threshold = threshold;
  cfg.smr.epoch_freq = epoch_freq;
  auto s = make_set("HML", smr, cfg);
  runtime::Xoshiro256 rng(7);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.next_below(64);
    if (rng.percent(50)) {
      s->insert(k);
    } else {
      s->erase(k);
    }
  }
  const auto st = s->smr_stats();
  // With no concurrent readers, everything below the last threshold
  // crossing is freed; a couple of epochs of slack for the epoch schemes.
  EXPECT_LE(st.unreclaimed(),
            cfg.smr.pop_multiplier * threshold + 2 * epoch_freq + 16);
  s->detach_thread();
}

std::vector<Param> sweep() {
  std::vector<Param> v;
  for (const auto& smr : all_smr_names()) {
    for (uint64_t threshold : {2ull, 16ull, 128ull, 1024ull}) {
      v.emplace_back(smr, threshold, 4);
    }
    v.emplace_back(smr, 64, 1);    // epoch every op
    v.emplace_back(smr, 64, 512);  // epoch almost never
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweep, ::testing::ValuesIn(sweep()), [](const auto& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

class SlotCountSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SlotCountSweep, TreesWorkWithMinimalSlotBudget) {
  // DGT needs 4 rotating slots, ABT 3: both must work at exactly that
  // budget and with the full default.
  const auto& [smr, slots] = GetParam();
  SetConfig cfg;
  cfg.capacity = 512;
  cfg.smr.num_slots = slots;
  cfg.smr.retire_threshold = 16;
  for (const char* ds : {"DGT", "ABT"}) {
    auto s = make_set(ds, smr, cfg);
    ASSERT_NE(s, nullptr);
    runtime::Xoshiro256 rng(5);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = rng.next_below(256);
      if (rng.percent(50)) {
        s->insert(k);
      } else {
        s->erase(k);
      }
    }
    EXPECT_GE(s->smr_stats().retired, 1u) << ds << "/" << smr;
    s->detach_thread();
  }
}

std::vector<std::tuple<std::string, int>> slot_sweep() {
  std::vector<std::tuple<std::string, int>> v;
  for (const auto& smr : all_smr_names()) {
    v.emplace_back(smr, 4);
    v.emplace_back(smr, 8);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlotCountSweep,
                         ::testing::ValuesIn(slot_sweep()),
                         [](const auto& info) {
                           return std::get<0>(info.param) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace pop::ds
