// The named scenario registry: every name builds a valid spec for every
// (ds, smr) pairing the matrix sweeps, descriptions exist, and a
// representative cell of each scenario actually executes in smoke mode.
#include <gtest/gtest.h>

#include <algorithm>

#include "ds/iset.hpp"
#include "workload/scenario_engine.hpp"
#include "workload/scenarios.hpp"

namespace pop::workload {
namespace {

// TSan slows every operation ~10x but not the wall clock, so the smoke
// runs' ~30 ms phases can elapse before a slowed worker completes one op
// in each phase. Give sanitized builds full-length phases.
#if defined(__SANITIZE_THREAD__)
constexpr double kSmokeTimeScale = 1.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kSmokeTimeScale = 1.0;
#else
constexpr double kSmokeTimeScale = 0.2;
#endif
#else
constexpr double kSmokeTimeScale = 0.2;
#endif

TEST(Scenarios, RegistryListsAndDescribesEveryScenario) {
  const auto& names = scenario_names();
  ASSERT_GE(names.size(), 5u);
  for (const auto& n : names) {
    EXPECT_FALSE(scenario_description(n).empty()) << n;
    ASSERT_TRUE(make_scenario(n, {}).has_value()) << n;
  }
}

TEST(Scenarios, UnknownNameIsRejected) {
  EXPECT_FALSE(make_scenario("no-such-scenario", {}).has_value());
  EXPECT_TRUE(scenario_description("no-such-scenario").empty());
}

TEST(Scenarios, BuiltSpecsAreAlreadyNormalized) {
  // The registry's contract: normalize() would change nothing, for any
  // cell of the full (ds, smr) matrix at several thread counts.
  for (const auto& name : scenario_names()) {
    for (const auto& ds : ds::all_ds_names()) {
      for (int threads : {1, 2, 8}) {
        ScenarioBuild b;
        b.ds = ds;
        b.smr = "EpochPOP";
        b.threads = threads;
        auto spec = make_scenario(name, b);
        ASSERT_TRUE(spec.has_value());
        const auto warnings = normalize(*spec);
        EXPECT_TRUE(warnings.empty())
            << name << "/" << ds << "/t" << threads << ": " << warnings[0];
        EXPECT_FALSE(spec->phases.empty());
      }
    }
  }
}

TEST(Scenarios, BuildKnobsPropagate) {
  ScenarioBuild b;
  b.ds = "HMHT";
  b.smr = "NBR";
  b.threads = 6;
  b.key_range = 1024;
  b.time_scale = 0.5;
  auto full = make_scenario("stall-recovery", ScenarioBuild{});
  auto spec = make_scenario("stall-recovery", b);
  ASSERT_TRUE(spec.has_value() && full.has_value());
  EXPECT_EQ(spec->ds, "HMHT");
  EXPECT_EQ(spec->smr, "NBR");
  EXPECT_EQ(spec->threads, 6);
  EXPECT_EQ(spec->key_range, 1024u);
  EXPECT_TRUE(spec->stall.enabled);
  EXPECT_GT(spec->mem_sample_every_ms, 0u);
  // Half time scale shrinks the schedule.
  EXPECT_LT(spec->phases[0].duration_ms, full->phases[0].duration_ms);
}

TEST(Scenarios, HotspotChurnSmokeRunCycles) {
  ScenarioBuild b;
  b.ds = "HML";
  b.smr = "HazardPtrPOP";
  b.threads = 2;
  b.time_scale = kSmokeTimeScale;
  b.key_range = 256;
  auto spec = make_scenario("hotspot-churn", b);
  ASSERT_TRUE(spec.has_value());
  spec->smr_cfg.retire_threshold = 32;
  const auto r = run_scenario(*spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.churn_cycles, 0u);
  EXPECT_FALSE(r.samples.empty());
}

TEST(Scenarios, OversubscribedBurstSmokeRunsAllPhases) {
  ScenarioBuild b;
  b.ds = "HMHT";
  b.smr = "EpochPOP";
  b.threads = 2;
  // Longer phases than the other smokes: with an 8-thread burst past the
  // core count, a ~30 ms phase can starve a worker of its first op when
  // another suite shares the machine (ctest -j), reading as 0 phase ops.
  b.time_scale = kSmokeTimeScale * 3.0;
  b.key_range = 512;
  auto spec = make_scenario("oversubscribed-burst", b);
  ASSERT_TRUE(spec.has_value());
  spec->smr_cfg.retire_threshold = 32;
  const auto r = run_scenario(*spec);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].threads, 8);  // 4x burst
  for (const auto& p : r.phases) EXPECT_GT(p.ops, 0u) << p.name;
}

TEST(Scenarios, KvUpdateHeavySmokeDrivesReplaceTraffic) {
  ScenarioBuild b;
  b.ds = "HML";
  b.smr = "EpochPOP";
  b.threads = 2;
  b.time_scale = kSmokeTimeScale;
  b.key_range = 256;
  auto spec = make_scenario("kv-update-heavy", b);
  ASSERT_TRUE(spec.has_value());
  spec->smr_cfg.retire_threshold = 32;
  const auto r = run_scenario(*spec);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_GT(r.phases[0].puts, 0u) << "put-heavy phase records put traffic";
  EXPECT_GT(r.phases[0].put_replaced, 0u)
      << "a prefilled range makes most puts replaces";
  EXPECT_GT(r.phases[1].gets, 0u) << "get-heavy phase reads values back";
  // Displaced nodes flow through the domain: at least one per replace.
  EXPECT_GE(r.smr.retired, r.put_replaced);
  EXPECT_EQ(r.rw_violations, 0u);
}

TEST(Scenarios, ZombieStormSmokeKillsAndReaps) {
  ScenarioBuild b;
  b.ds = "HML";
  b.smr = "EpochPOP";
  b.threads = 3;
  b.time_scale = kSmokeTimeScale;
  b.key_range = 256;
  auto spec = make_scenario("zombie-storm", b);
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->faults.thread_kill);
  ASSERT_TRUE(spec->faults.kill_zombie);
  // A low threshold keeps reclaim passes (the reaper's only vehicle)
  // frequent inside the short smoke window.
  spec->smr_cfg.retire_threshold = 16;
  const auto r = run_scenario(*spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GE(r.kills, 1u) << "the injector never fired";
  EXPECT_GE(r.smr.tids_reaped, 1u)
      << "no corpse was ever certified: the reaper never ran";
}

TEST(Scenarios, PressureBackstopSmokeForcesPasses) {
  ScenarioBuild b;
  b.ds = "HML";
  b.smr = "EBR";  // the non-robust scheme: a parked victim pins everything
  b.threads = 3;
  b.time_scale = kSmokeTimeScale;
  b.key_range = 256;
  auto spec = make_scenario("pressure-backstop", b);
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->stall.enabled);
  ASSERT_GT(spec->smr_cfg.pressure_bound, 0u);
  // Shrink threshold and bound together so the stall window reliably
  // crosses the bound even on a loaded CI machine.
  spec->smr_cfg.retire_threshold = 32;
  spec->smr_cfg.pressure_bound =
      spec->smr_cfg.retire_threshold * static_cast<uint64_t>(spec->threads) * 2;
  const auto r = run_scenario(*spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.smr.pressure_events, 0u)
      << "unreclaimed never crossed the bound; the backstop was idle";
  EXPECT_GT(r.smr.forced_handshakes, 0u);
  // Graceful degradation, not enforcement: the run finished (liveness)
  // and by teardown the backlog drained below where the stall pushed it.
  EXPECT_LT(r.final_unreclaimed, std::max<uint64_t>(r.stall_peak_unreclaimed,
                                                    1));
}

}  // namespace
}  // namespace pop::workload
