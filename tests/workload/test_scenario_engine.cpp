// Scenario engine semantics: phase partitioning of work, per-phase
// thread counts, churn cycling, the stall injector's grow-and-recover
// trajectory, spec validation/clamping, and the memory-timeline sampler.
#include <gtest/gtest.h>

#include "runtime/thread_registry.hpp"
#include "workload/scenario_engine.hpp"

namespace pop::workload {
namespace {

ScenarioSpec base(const std::string& ds, const std::string& smr) {
  ScenarioSpec s;
  s.ds = ds;
  s.smr = smr;
  s.threads = 2;
  s.key_range = 256;
  s.smr_cfg.retire_threshold = 32;
  return s;
}

TEST(ScenarioEngine, SinglePhaseAggregatesMatchPhaseRows) {
  ScenarioSpec s = base("HML", "EpochPOP");
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 60;
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_GT(r.ops_total, 0u);
  EXPECT_EQ(r.ops_total, r.phases[0].ops);
  EXPECT_EQ(r.reads_total, r.phases[0].reads);
  EXPECT_GT(r.mops, 0.0);
  EXPECT_TRUE(r.warnings.empty()) << r.warnings[0];
  EXPECT_EQ(r.churn_cycles, 0u);
  EXPECT_TRUE(r.samples.empty());  // sampler off by default
}

TEST(ScenarioEngine, PhasePartitioningIsExact) {
  // Ops are counted under the phase spec the worker actually read, so a
  // contains-only phase must record zero updates — no boundary bleed.
  ScenarioSpec s = base("HML", "EBR");
  PhaseSpec writes;
  writes.name = "writes";
  writes.duration_ms = 50;
  writes.pct_insert = 50;
  writes.pct_erase = 50;
  PhaseSpec reads;
  reads.name = "reads";
  reads.duration_ms = 50;
  reads.pct_insert = 0;
  reads.pct_erase = 0;
  s.phases = {writes, reads};
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_GT(r.phases[0].updates, 0u);
  EXPECT_EQ(r.phases[0].reads, 0u);
  EXPECT_GT(r.phases[1].reads, 0u);
  EXPECT_EQ(r.phases[1].updates, 0u);
  EXPECT_EQ(r.ops_total, r.phases[0].ops + r.phases[1].ops);
}

TEST(ScenarioEngine, PerPhaseThreadCountsApply) {
  ScenarioSpec s = base("HMHT", "HazardPtrPOP");
  s.threads = 1;
  PhaseSpec solo;
  solo.name = "solo";
  solo.duration_ms = 40;
  PhaseSpec burst;
  burst.name = "burst";
  burst.duration_ms = 40;
  burst.threads = 4;
  s.phases = {solo, burst};
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].threads, 1);
  EXPECT_EQ(r.phases[1].threads, 4);
  EXPECT_GT(r.phases[0].ops, 0u);
  EXPECT_GT(r.phases[1].ops, 0u);
}

TEST(ScenarioEngine, SkewedPhasesRunEveryDistribution) {
  ScenarioSpec s = base("HML", "HazardEraPOP");
  PhaseSpec zipf;
  zipf.name = "zipf";
  zipf.duration_ms = 40;
  zipf.keys.kind = KeyDist::kZipfian;
  zipf.keys.zipf_theta = 0.99;
  PhaseSpec hot;
  hot.name = "hot";
  hot.duration_ms = 40;
  hot.keys.kind = KeyDist::kHotspot;
  hot.keys.hot_move_every_ms = 10;
  s.phases = {zipf, hot};
  const auto r = run_scenario(s);
  EXPECT_GT(r.phases[0].ops, 0u);
  EXPECT_GT(r.phases[1].ops, 0u);
  EXPECT_LE(r.final_size, s.key_range);
}

TEST(ScenarioEngine, ChurnCyclesWorkersAndRecyclesTids) {
  auto& reg = runtime::ThreadRegistry::instance();
  const int max_tid_before = reg.max_tid();
  ScenarioSpec s = base("HML", "EpochPOP");
  s.threads = 2;
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 120;
  s.phases[0].pct_insert = 40;
  s.phases[0].pct_erase = 40;
  s.churn.enabled = true;
  s.churn.interval_ms = 10;
  const auto r = run_scenario(s);
  EXPECT_GE(r.churn_cycles, 4u);
  EXPECT_GT(r.ops_total, 0u);
  // Replacements recycle deregistered slots instead of growing the
  // registry: the high-water tid stays within the static-pool footprint.
  EXPECT_LE(reg.max_tid(), max_tid_before + s.threads + 2);
}

TEST(ScenarioEngine, StallInjectorShowsGrowthAndRecovery) {
  // The paper's robustness story as a trajectory: park a victim inside an
  // operation under EBR and garbage grows for the whole window; resume it
  // and the backlog drains back to baseline.
  ScenarioSpec s = base("HML", "EBR");
  s.threads = 3;
  s.smr_cfg.retire_threshold = 32;
  for (const char* nm : {"warmup", "stalled", "recovery"}) {
    PhaseSpec p;
    p.name = nm;
    p.duration_ms = 60;
    p.pct_insert = 40;
    p.pct_erase = 40;
    s.phases.push_back(p);
  }
  s.stall.enabled = true;
  s.stall.victim = 0;
  s.stall.park_after_ms = 60;
  s.stall.park_for_ms = 60;
  s.mem_sample_every_ms = 5;
  const auto r = run_scenario(s);
  EXPECT_GT(r.stall_peak_unreclaimed, r.baseline_unreclaimed + 200)
      << "a parked EBR reader must pin the epoch and grow garbage";
  EXPECT_LT(r.final_unreclaimed, r.stall_peak_unreclaimed / 2)
      << "after resume the backlog must drain";
  ASSERT_FALSE(r.samples.empty());
  bool saw_parked = false;
  for (const auto& m : r.samples) saw_parked |= m.victim_parked;
  EXPECT_TRUE(saw_parked) << "sampler must observe the parked window";
  EXPECT_GE(r.stall_resumed_at_ms, r.stall_parked_at_ms + 50);
}

TEST(ScenarioEngine, StallAgainstPopSchemeStaysBoundedAndPings) {
  ScenarioSpec s = base("HML", "EpochPOP");
  s.threads = 3;
  s.smr_cfg.retire_threshold = 32;
  s.smr_cfg.pop_multiplier = 2;
  PhaseSpec p;
  p.duration_ms = 150;
  p.pct_insert = 40;
  p.pct_erase = 40;
  s.phases.push_back(p);
  s.stall.enabled = true;
  s.stall.park_after_ms = 30;
  s.stall.park_for_ms = 80;
  const auto r = run_scenario(s);
  EXPECT_GT(r.smr.signals_sent, 0u)
      << "reclaimers must fall back to publish-on-ping during the stall";
  // Robustness: the POP fallback keeps garbage well under what the EBR
  // baseline accumulates in the same window (which is all of it).
  EXPECT_GT(r.smr.freed, 0u);
  EXPECT_LT(r.stall_peak_unreclaimed,
            r.phases[0].smr_delta.retired / 2)
      << "POP must reclaim around the parked thread";
}

TEST(ScenarioEngine, MemTimelineSamplesCoverPhases) {
  ScenarioSpec s = base("HMHT", "HP");
  PhaseSpec a;
  a.duration_ms = 40;
  PhaseSpec b;
  b.duration_ms = 40;
  s.phases = {a, b};
  s.mem_sample_every_ms = 5;
  const auto r = run_scenario(s);
  ASSERT_GE(r.samples.size(), 8u);
  EXPECT_EQ(r.samples.front().phase, 0);
  EXPECT_EQ(r.samples.back().phase, 1);
  uint64_t prev_ms = 0;
  for (const auto& m : r.samples) {
    // Counters are torn-read mid-run, so only saturating-derived values
    // are assertable: unreclaimed() never wraps, time moves forward.
    EXPECT_LT(m.unreclaimed(), 1u << 30);
    EXPECT_GE(m.t_ms, prev_ms);
    prev_ms = m.t_ms;
  }
}

TEST(ScenarioEngine, NormalizeClampsInvalidSpecs) {
  ScenarioSpec s = base("HML", "NR");
  s.prefill = s.key_range * 2;  // over-asks the fill loops
  PhaseSpec p;
  p.pct_insert = 80;
  p.pct_erase = 80;  // used to wrap the dice range
  p.threads = -3;
  p.duration_ms = 0;
  s.phases.push_back(p);
  s.stall.enabled = true;
  s.stall.victim = 99;  // outside the pool
  s.stall.park_for_ms = 0;
  const auto warnings = normalize(s);
  EXPECT_GE(warnings.size(), 5u);
  EXPECT_EQ(s.prefill, s.key_range);
  EXPECT_LE(s.phases[0].pct_insert + s.phases[0].pct_erase, 100u);
  EXPECT_EQ(s.phases[0].threads, 1);
  EXPECT_EQ(s.phases[0].duration_ms, 1u);
  EXPECT_EQ(s.stall.victim, 0);
  EXPECT_EQ(s.stall.park_for_ms, 1u);
}

TEST(ScenarioEngine, NormalizeFillsDefaults) {
  ScenarioSpec s;  // no phases at all
  const auto warnings = normalize(s);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].threads, s.threads);
}

TEST(ScenarioEngine, ClampedSpecStillRuns) {
  ScenarioSpec s = base("HML", "EBR");
  s.prefill = s.key_range * 4;
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 30;
  s.phases[0].pct_insert = 90;
  s.phases[0].pct_erase = 90;
  const auto r = run_scenario(s);
  EXPECT_FALSE(r.warnings.empty());
  EXPECT_GT(r.ops_total, 0u);
  // Full prefill delivered: the structure starts at key_range keys.
  EXPECT_LE(r.final_size, s.key_range);
}

}  // namespace
}  // namespace pop::workload
