// Scenario engine semantics: phase partitioning of work, per-phase
// thread counts, churn cycling, the stall injector's grow-and-recover
// trajectory, spec validation/clamping, and the memory-timeline sampler.
#include <gtest/gtest.h>

#include "runtime/thread_registry.hpp"
#include "workload/scenario_engine.hpp"

namespace pop::workload {
namespace {

ScenarioSpec base(const std::string& ds, const std::string& smr) {
  ScenarioSpec s;
  s.ds = ds;
  s.smr = smr;
  s.threads = 2;
  s.key_range = 256;
  s.smr_cfg.retire_threshold = 32;
  return s;
}

TEST(ScenarioEngine, SinglePhaseAggregatesMatchPhaseRows) {
  ScenarioSpec s = base("HML", "EpochPOP");
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 60;
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_GT(r.ops, 0u);
  EXPECT_EQ(r.ops, r.phases[0].ops);
  EXPECT_EQ(r.reads, r.phases[0].reads);
  EXPECT_GT(r.mops, 0.0);
  EXPECT_TRUE(r.warnings.empty()) << r.warnings[0];
  EXPECT_EQ(r.churn_cycles, 0u);
  EXPECT_TRUE(r.samples.empty());  // sampler off by default
}

TEST(ScenarioEngine, PhasePartitioningIsExact) {
  // Ops are counted under the phase spec the worker actually read, so a
  // contains-only phase must record zero updates — no boundary bleed.
  ScenarioSpec s = base("HML", "EBR");
  PhaseSpec writes;
  writes.name = "writes";
  writes.duration_ms = 50;
  writes.pct_insert = 50;
  writes.pct_erase = 50;
  PhaseSpec reads;
  reads.name = "reads";
  reads.duration_ms = 50;
  reads.pct_insert = 0;
  reads.pct_erase = 0;
  s.phases = {writes, reads};
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_GT(r.phases[0].updates, 0u);
  EXPECT_EQ(r.phases[0].reads, 0u);
  EXPECT_GT(r.phases[1].reads, 0u);
  EXPECT_EQ(r.phases[1].updates, 0u);
  EXPECT_EQ(r.ops, r.phases[0].ops + r.phases[1].ops);
}

TEST(ScenarioEngine, PerPhaseThreadCountsApply) {
  ScenarioSpec s = base("HMHT", "HazardPtrPOP");
  s.threads = 1;
  PhaseSpec solo;
  solo.name = "solo";
  solo.duration_ms = 40;
  PhaseSpec burst;
  burst.name = "burst";
  burst.duration_ms = 40;
  burst.threads = 4;
  s.phases = {solo, burst};
  const auto r = run_scenario(s);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].threads, 1);
  EXPECT_EQ(r.phases[1].threads, 4);
  EXPECT_GT(r.phases[0].ops, 0u);
  EXPECT_GT(r.phases[1].ops, 0u);
}

TEST(ScenarioEngine, SkewedPhasesRunEveryDistribution) {
  ScenarioSpec s = base("HML", "HazardEraPOP");
  PhaseSpec zipf;
  zipf.name = "zipf";
  zipf.duration_ms = 40;
  zipf.keys.kind = KeyDist::kZipfian;
  zipf.keys.zipf_theta = 0.99;
  PhaseSpec hot;
  hot.name = "hot";
  hot.duration_ms = 40;
  hot.keys.kind = KeyDist::kHotspot;
  hot.keys.hot_move_every_ms = 10;
  s.phases = {zipf, hot};
  const auto r = run_scenario(s);
  EXPECT_GT(r.phases[0].ops, 0u);
  EXPECT_GT(r.phases[1].ops, 0u);
  EXPECT_LE(r.final_size, s.key_range);
}

TEST(ScenarioEngine, ChurnCyclesWorkersAndRecyclesTids) {
  auto& reg = runtime::ThreadRegistry::instance();
  const int max_tid_before = reg.max_tid();
  ScenarioSpec s = base("HML", "EpochPOP");
  s.threads = 2;
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 120;
  s.phases[0].pct_insert = 40;
  s.phases[0].pct_erase = 40;
  s.churn.enabled = true;
  s.churn.interval_ms = 10;
  const auto r = run_scenario(s);
  EXPECT_GE(r.churn_cycles, 4u);
  EXPECT_GT(r.ops, 0u);
  // Replacements recycle deregistered slots instead of growing the
  // registry: the high-water tid stays within the static-pool footprint.
  EXPECT_LE(reg.max_tid(), max_tid_before + s.threads + 2);
}

TEST(ScenarioEngine, StallInjectorShowsGrowthAndRecovery) {
  // The paper's robustness story as a trajectory: park a victim inside an
  // operation under EBR and garbage grows for the whole window; resume it
  // and the backlog drains back to baseline.
  ScenarioSpec s = base("HML", "EBR");
  s.threads = 3;
  s.smr_cfg.retire_threshold = 32;
  // Frequent epoch advances so the post-resume drain tracks op progress
  // closely rather than wall time (the drain needs ops, and a loaded
  // 1-core machine running ctest -j gives this test few of them).
  s.smr_cfg.epoch_freq = 8;
  for (const char* nm : {"warmup", "stalled", "recovery"}) {
    PhaseSpec p;
    p.name = nm;
    // The recovery phase gets extra wall time for the same reason.
    p.duration_ms = std::string(nm) == "recovery" ? 200 : 60;
    p.pct_insert = 40;
    p.pct_erase = 40;
    s.phases.push_back(p);
  }
  s.stall.enabled = true;
  s.stall.victim = 0;
  s.stall.park_after_ms = 60;
  s.stall.park_for_ms = 60;
  s.mem_sample_every_ms = 5;
  // The growth-and-drain shape is deterministic given CPU time; getting
  // that CPU time under ctest -j on a one-core machine is not. An
  // attempt only counts when the coordinator actually delivered the full
  // park window (a late wakeup shrinks it: park_at and resume_at are
  // absolute); a starved recovery phase can likewise end mid-backlog.
  // Retry the scenario a few times and require one clean grow-then-drain.
  bool good = false;
  for (int attempt = 0; attempt < 3 && !good; ++attempt) {
    const auto r = run_scenario(s);
    ASSERT_FALSE(r.samples.empty());
    bool saw_parked = false;
    for (const auto& m : r.samples) saw_parked |= m.victim_parked;
    const bool full_window =
        r.stall_resumed_at_ms >= r.stall_parked_at_ms + 50;
    const bool grew =
        r.stall_peak_unreclaimed > r.baseline_unreclaimed + 200;
    const bool drained =
        r.final_unreclaimed < r.stall_peak_unreclaimed / 2;
    good = saw_parked && full_window && grew && drained;
  }
  EXPECT_TRUE(good)
      << "no attempt showed the sampler-observed park window with garbage "
         "growing while the EBR reader was parked and draining after resume";
}

TEST(ScenarioEngine, StallAgainstPopSchemeStaysBoundedAndPings) {
  ScenarioSpec s = base("HML", "EpochPOP");
  s.threads = 3;
  s.smr_cfg.retire_threshold = 32;
  s.smr_cfg.pop_multiplier = 2;
  PhaseSpec p;
  p.duration_ms = 150;
  p.pct_insert = 40;
  p.pct_erase = 40;
  s.phases.push_back(p);
  s.stall.enabled = true;
  s.stall.park_after_ms = 30;
  s.stall.park_for_ms = 80;
  const auto r = run_scenario(s);
  EXPECT_GT(r.smr.signals_sent, 0u)
      << "reclaimers must fall back to publish-on-ping during the stall";
  // Robustness: the POP fallback keeps garbage well under what the EBR
  // baseline accumulates in the same window (which is all of it).
  EXPECT_GT(r.smr.freed, 0u);
  EXPECT_LT(r.stall_peak_unreclaimed,
            r.phases[0].smr_delta.retired / 2)
      << "POP must reclaim around the parked thread";
}

TEST(ScenarioEngine, MemTimelineSamplesCoverPhases) {
  ScenarioSpec s = base("HMHT", "HP");
  PhaseSpec a;
  a.duration_ms = 40;
  PhaseSpec b;
  b.duration_ms = 40;
  s.phases = {a, b};
  s.mem_sample_every_ms = 5;
  const auto r = run_scenario(s);
  ASSERT_GE(r.samples.size(), 8u);
  EXPECT_EQ(r.samples.front().phase, 0);
  EXPECT_EQ(r.samples.back().phase, 1);
  uint64_t prev_ms = 0;
  for (const auto& m : r.samples) {
    // Counters are torn-read mid-run, so only saturating-derived values
    // are assertable: unreclaimed() never wraps, time moves forward.
    EXPECT_LT(m.unreclaimed(), 1u << 30);
    EXPECT_GE(m.t_ms, prev_ms);
    prev_ms = m.t_ms;
  }
}

TEST(ScenarioEngine, PutMixDrivesReplaceTraffic) {
  // A put-heavy phase over a prefilled range must record puts, split them
  // into insert/replace outcomes (mostly replaces on a dense range), and
  // retire the displaced nodes.
  ScenarioSpec s = base("HML", "EpochPOP");
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 60;
  s.phases[0].pct_insert = 0;
  s.phases[0].pct_erase = 0;
  s.phases[0].pct_put = 80;
  const auto r = run_scenario(s);
  EXPECT_GT(r.puts, 0u);
  EXPECT_GT(r.put_replaced, 0u);
  EXPECT_GT(r.gets, 0u);
  EXPECT_EQ(r.updates, r.puts);
  EXPECT_EQ(r.reads, r.gets);
  EXPECT_EQ(r.ops, r.reads + r.updates);
  // Every replace retired one displaced node.
  EXPECT_GE(r.smr.retired, r.put_replaced);
  EXPECT_EQ(r.rw_violations, 0u);
}

TEST(ScenarioEngine, ReadYourWritesModeValidatesCleanly) {
  // The engine's own validation rail: private key stripes + a per-worker
  // ledger. On a correct build no phase may record a violation — this is
  // the acceptance check for the put-replace path under every mix.
  for (const char* smr : {"EBR", "EpochPOP", "HazardPtrPOP", "NBR"}) {
    ScenarioSpec s = base("HML", smr);
    s.threads = 3;
    s.phases.push_back(PhaseSpec{});
    s.phases[0].duration_ms = 80;
    s.phases[0].pct_insert = 10;
    s.phases[0].pct_erase = 20;
    s.phases[0].pct_put = 40;
    s.phases[0].read_your_writes = true;
    const auto r = run_scenario(s);
    EXPECT_TRUE(r.warnings.empty()) << smr << ": " << r.warnings[0];
    EXPECT_GT(r.puts, 0u);
    EXPECT_EQ(r.rw_violations, 0u) << "read-your-writes broken under " << smr;
  }
}

TEST(ScenarioEngine, NormalizeDisablesUnsafeReadYourWrites) {
  // Stripes must not move between phases: mixed rw/non-rw schedules (or
  // differing thread counts) silently invalidate the ledger, so
  // normalize turns validation off with a warning instead.
  ScenarioSpec s = base("HML", "EBR");
  PhaseSpec a;
  a.read_your_writes = true;
  PhaseSpec b;  // not validating
  s.phases = {a, b};
  const auto warnings = normalize(s);
  EXPECT_FALSE(warnings.empty());
  EXPECT_FALSE(s.phases[0].read_your_writes);

  ScenarioSpec t = base("HML", "EBR");
  PhaseSpec c;
  c.read_your_writes = true;
  c.threads = 2;
  PhaseSpec d;
  d.read_your_writes = true;
  d.threads = 4;  // stripe map would shift
  t.phases = {c, d};
  const auto warnings2 = normalize(t);
  EXPECT_FALSE(warnings2.empty());
  EXPECT_FALSE(t.phases[0].read_your_writes);
  EXPECT_FALSE(t.phases[1].read_your_writes);
}

TEST(ScenarioEngine, NormalizeClampsPutMixOverflow) {
  ScenarioSpec s = base("HML", "NR");
  PhaseSpec p;
  p.pct_insert = 40;
  p.pct_erase = 40;
  p.pct_put = 40;  // 120% total
  s.phases.push_back(p);
  const auto warnings = normalize(s);
  EXPECT_FALSE(warnings.empty());
  EXPECT_EQ(s.phases[0].pct_put, 20u);
  EXPECT_LE(s.phases[0].pct_insert + s.phases[0].pct_erase +
                s.phases[0].pct_put,
            100u);
}

TEST(ScenarioEngine, NormalizeClampsInvalidSpecs) {
  ScenarioSpec s = base("HML", "NR");
  s.prefill = s.key_range * 2;  // over-asks the fill loops
  PhaseSpec p;
  p.pct_insert = 80;
  p.pct_erase = 80;  // used to wrap the dice range
  p.threads = -3;
  p.duration_ms = 0;
  s.phases.push_back(p);
  s.stall.enabled = true;
  s.stall.victim = 99;  // outside the pool
  s.stall.park_for_ms = 0;
  const auto warnings = normalize(s);
  EXPECT_GE(warnings.size(), 5u);
  EXPECT_EQ(s.prefill, s.key_range);
  EXPECT_LE(s.phases[0].pct_insert + s.phases[0].pct_erase, 100u);
  EXPECT_EQ(s.phases[0].threads, 1);
  EXPECT_EQ(s.phases[0].duration_ms, 1u);
  EXPECT_EQ(s.stall.victim, 0);
  EXPECT_EQ(s.stall.park_for_ms, 1u);
}

TEST(ScenarioEngine, NormalizeFillsDefaults) {
  ScenarioSpec s;  // no phases at all
  const auto warnings = normalize(s);
  EXPECT_TRUE(warnings.empty());
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].threads, s.threads);
}

TEST(ScenarioEngine, ClampedSpecStillRuns) {
  ScenarioSpec s = base("HML", "EBR");
  s.prefill = s.key_range * 4;
  s.phases.push_back(PhaseSpec{});
  s.phases[0].duration_ms = 30;
  s.phases[0].pct_insert = 90;
  s.phases[0].pct_erase = 90;
  const auto r = run_scenario(s);
  EXPECT_FALSE(r.warnings.empty());
  EXPECT_GT(r.ops, 0u);
  // Full prefill delivered: the structure starts at key_range keys.
  EXPECT_LE(r.final_size, s.key_range);
}

}  // namespace
}  // namespace pop::workload
