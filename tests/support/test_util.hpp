// Shared helpers for the popsmr test suites.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace pop::test {

// Runs fn(worker_index) on `n` fresh threads and joins them all.
inline void run_threads(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(n);
  for (int i = 0; i < n; ++i) ts.emplace_back(fn, i);
  for (auto& t : ts) t.join();
}

// Start/stop switch for timed concurrent phases.
class Phase {
 public:
  void start() { go_.store(true, std::memory_order_release); }
  void stop() { stop_.store(true, std::memory_order_release); }
  void wait_for_start() const {
    while (!go_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> go_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace pop::test
