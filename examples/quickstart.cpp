// Quickstart: a lock-free key-value map with HazardPtrPOP reclamation.
//
// Build & run:  ./examples/quickstart
//
// Shows the whole public API surface a typical user needs: construct a
// data structure over a reclamation domain, run get/put/remove from
// several threads, detach threads, read the reclamation stats. put is
// insert-or-replace — a replace swaps in a fresh node and retires the
// displaced one (values are never updated in place, because concurrent
// readers may still hold the old node), so update-heavy KV traffic is
// itself a reclamation workload.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/hazard_ptr_pop.hpp"
#include "ds/hm_list.hpp"

int main() {
  // Every data structure owns one reclamation domain; pick the scheme by
  // template parameter. HazardPtrPOP = hazard pointers without per-read
  // fences (reservations published on demand via POSIX signals).
  pop::smr::SmrConfig cfg;
  cfg.retire_threshold = 256;  // retires buffered before a reclaim pass
  pop::ds::HmList<pop::core::HazardPtrPopDomain> map(cfg);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  constexpr uint64_t kRange = 1024;

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&map, w] {
      // Every thread rewrites, reads back, and evicts keys shared with
      // everyone else; each winning rewrite retires the displaced node.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = (i * kThreads + static_cast<uint64_t>(w)) % kRange;
        map.put(key, i);                    // insert-or-replace
        uint64_t val = 0;
        (void)map.get((key * 7) % kRange, &val);
        map.erase((key * 13) % kRange);
      }
      map.domain().detach();  // let reclaimers stop waiting on this thread
    });
  }
  for (auto& t : workers) t.join();

  // Single-threaded now: read-your-writes in one picture (key 4096 is
  // outside the workers' range, so the first put is a genuine insert).
  const auto r1 = map.put(4096, 70);
  const auto r2 = map.put(4096, 71);  // displaces (and retires) the 70 node
  uint64_t val = 0;
  const bool hit = map.get(4096, &val);
  std::printf("quickstart: put#1=%s put#2=%s get=%s val=%llu\n",
              pop::ds::put_result_name(r1), pop::ds::put_result_name(r2),
              hit ? "hit" : "miss", static_cast<unsigned long long>(val));

  const auto stats = map.domain().stats();
  std::printf("quickstart: final size     = %llu\n",
              static_cast<unsigned long long>(map.size_slow()));
  std::printf("quickstart: nodes retired  = %llu\n",
              static_cast<unsigned long long>(stats.retired));
  std::printf("quickstart: nodes freed    = %llu\n",
              static_cast<unsigned long long>(stats.freed));
  std::printf("quickstart: signals sent   = %llu (only when reclaiming)\n",
              static_cast<unsigned long long>(stats.signals_sent));
  std::printf("quickstart: sorted+unique  = %s\n",
              map.sorted_unique_slow() ? "yes" : "NO (bug!)");
  return 0;
}
