// Quickstart: a lock-free set with HazardPtrPOP reclamation.
//
// Build & run:  ./examples/quickstart
//
// Shows the whole public API surface a typical user needs: construct a
// data structure over a reclamation domain, run operations from several
// threads, detach threads, read the reclamation stats.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/hazard_ptr_pop.hpp"
#include "ds/hm_list.hpp"

int main() {
  // Every data structure owns one reclamation domain; pick the scheme by
  // template parameter. HazardPtrPOP = hazard pointers without per-read
  // fences (reservations published on demand via POSIX signals).
  pop::smr::SmrConfig cfg;
  cfg.retire_threshold = 256;  // retires buffered before a reclaim pass
  pop::ds::HmList<pop::core::HazardPtrPopDomain> set(cfg);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&set, w] {
      // Interleaved key ranges: every thread inserts, checks and removes
      // its own keys while sharing list nodes with everyone else.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = i * kThreads + static_cast<uint64_t>(w);
        set.insert(key % 1024);
        set.contains((key * 7) % 1024);
        set.erase((key * 13) % 1024);
      }
      set.domain().detach();  // let reclaimers stop waiting on this thread
    });
  }
  for (auto& t : workers) t.join();

  const auto stats = set.domain().stats();
  std::printf("quickstart: final size     = %llu\n",
              static_cast<unsigned long long>(set.size_slow()));
  std::printf("quickstart: nodes retired  = %llu\n",
              static_cast<unsigned long long>(stats.retired));
  std::printf("quickstart: nodes freed    = %llu\n",
              static_cast<unsigned long long>(stats.freed));
  std::printf("quickstart: signals sent   = %llu (only when reclaiming)\n",
              static_cast<unsigned long long>(stats.signals_sent));
  std::printf("quickstart: sorted+unique  = %s\n",
              set.sorted_unique_slow() ? "yes" : "NO (bug!)");
  return 0;
}
