// long_scan: why POP beats restart-based signal schemes for long reads
// (the scenario of the paper's Figure 4).
//
// Two identical Harris-Michael lists, one reclaimed by NBR+ (signals
// restart readers) and one by HazardPtrPOP (signals just publish).
// Readers repeatedly scan for keys near the tail — a long traversal —
// while updaters churn the head, triggering constant reclamation. The
// NBR list's readers complete far fewer scans because each reclaim round
// throws them back to the head; the POP readers are undisturbed.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/hazard_ptr_pop.hpp"
#include "ds/hm_list.hpp"
#include "runtime/rng.hpp"
#include "smr/nbr.hpp"

namespace {

template <class Smr>
struct ScanStats {
  uint64_t scans = 0;
  uint64_t restarts = 0;
};

template <class Smr>
ScanStats<Smr> run_scenario(const char* name) {
  pop::smr::SmrConfig cfg;
  cfg.retire_threshold = 64;  // tiny: reclaim (and signal) constantly
  pop::ds::HmList<Smr> list(cfg);
  constexpr uint64_t kSize = 20'000;
  for (uint64_t k = 0; k < kSize; ++k) list.insert(k);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      pop::runtime::Xoshiro256 rng(7 + i);
      while (!stop.load(std::memory_order_relaxed)) {
        // Key near the tail: traverses almost the whole list.
        (void)list.contains(kSize - 1 - rng.next_below(16));
        scans.fetch_add(1, std::memory_order_relaxed);
      }
      list.domain().detach();
    });
  }
  std::vector<std::thread> updaters;
  for (int i = 0; i < 2; ++i) {
    updaters.emplace_back([&, i] {
      pop::runtime::Xoshiro256 rng(99 + i);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.next_below(64);  // churn near the head
        if (rng.percent(50)) {
          list.insert(k);
        } else {
          list.erase(k);
        }
      }
      list.domain().detach();
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  for (auto& t : readers) t.join();
  for (auto& t : updaters) t.join();

  const auto s = list.domain().stats();
  std::printf("%-14s completed scans: %8llu   reader restarts: %llu\n", name,
              static_cast<unsigned long long>(scans.load()),
              static_cast<unsigned long long>(s.neutralized));
  return {scans.load(), s.neutralized};
}

}  // namespace

int main() {
  std::printf("long_scan: 20K-node list, 2 tail-readers + 2 head-updaters, "
              "retire threshold 64\n");
  const auto nbr = run_scenario<pop::smr::NbrDomain>("NBR+");
  const auto popr = run_scenario<pop::core::HazardPtrPopDomain>("HazardPtrPOP");
  if (popr.scans > nbr.scans) {
    std::printf("HazardPtrPOP completed %.1fx more long scans than NBR+ — "
                "publishing on ping beats restarting on ping for long "
                "reads.\n",
                static_cast<double>(popr.scans) /
                    static_cast<double>(nbr.scans ? nbr.scans : 1));
  } else {
    std::printf("note: on this run NBR+ kept pace (low signal pressure); "
                "raise churn or list size to see the gap.\n");
  }
  return 0;
}
