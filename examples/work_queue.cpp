// work_queue: a producer/consumer pipeline on the Michael-Scott queue —
// the original hazard-pointer showcase — under HazardEraPOP.
//
// Every dequeue retires a node, so the queue reclaims at the full
// operation rate; eras keep the reservation footprint at two slots per
// thread regardless of queue length, and publish-on-ping keeps era
// reservations off the dequeue fast path.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/hazard_era_pop.hpp"
#include "ds/ms_queue.hpp"

int main() {
  pop::smr::SmrConfig cfg;
  cfg.retire_threshold = 256;
  pop::ds::MsQueue<pop::core::HazardEraPopDomain> queue(cfg);

  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr uint64_t kItemsPerProducer = 50'000;

  std::atomic<uint64_t> produced_sum{0}, consumed_sum{0};
  std::atomic<uint64_t> consumed_n{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      uint64_t sum = 0;
      for (uint64_t i = 1; i <= kItemsPerProducer; ++i) {
        const uint64_t item = static_cast<uint64_t>(p) * kItemsPerProducer + i;
        queue.enqueue(item);
        sum += item;
      }
      produced_sum.fetch_add(sum);
      queue.domain().detach();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t sum = 0, n = 0;
      const uint64_t target = kProducers * kItemsPerProducer;
      while (consumed_n.load(std::memory_order_relaxed) < target) {
        if (auto v = queue.dequeue()) {
          sum += *v;
          ++n;
          consumed_n.fetch_add(1, std::memory_order_relaxed);
        }
      }
      consumed_sum.fetch_add(sum);
      queue.domain().detach();
    });
  }
  for (auto& t : threads) t.join();

  const auto s = queue.domain().stats();
  std::printf("work_queue: items consumed  = %llu\n",
              static_cast<unsigned long long>(consumed_n.load()));
  std::printf("work_queue: checksum        = %s (produced %llu, consumed "
              "%llu)\n",
              produced_sum.load() == consumed_sum.load() ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(produced_sum.load()),
              static_cast<unsigned long long>(consumed_sum.load()));
  std::printf("work_queue: nodes retired   = %llu, freed = %llu, "
              "unreclaimed = %llu\n",
              static_cast<unsigned long long>(s.retired),
              static_cast<unsigned long long>(s.freed),
              static_cast<unsigned long long>(s.unreclaimed()));
  return produced_sum.load() == consumed_sum.load() ? 0 : 1;
}
