// drop_in_migration: the paper's "drop-in replacement" claim in practice.
//
// A data structure written once against the SMR policy interface runs
// unchanged under classic HP, HazardPtrPOP, HazardEraPOP and EpochPOP —
// migrating is a one-line template-argument change. This example runs the
// same workload under each scheme and prints the throughput side by side
// (single process, sequential runs).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/dgt_bst.hpp"
#include "runtime/rng.hpp"
#include "smr/all.hpp"

namespace {

template <class Smr>
double run_once() {
  pop::smr::SmrConfig cfg;
  // Amortize reclamation passes well past the update rate: the paper
  // runs a 24K threshold; tiny thresholds make the ping handshake (a
  // scheduling round-trip when cores are oversubscribed) dominate.
  cfg.retire_threshold = 8192;
  pop::ds::DgtBst<Smr> tree(cfg);  // <-- the only line that changes
  constexpr uint64_t kRange = 8192;
  // Bit-reversed insertion order yields a balanced external BST (sorted
  // order would degenerate it into a 4096-deep chain).
  constexpr int kBits = 12;  // kRange/2 = 2^12 even keys
  for (uint64_t i = 0; i < kRange / 2; ++i) {
    uint64_t r = 0;
    for (int b = 0; b < kBits; ++b) r |= ((i >> b) & 1u) << (kBits - 1 - b);
    tree.insert(r * 2);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> ts;
  for (int w = 0; w < 2; ++w) {
    ts.emplace_back([&, w] {
      pop::runtime::Xoshiro256 rng(3 + w);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.next_below(kRange);
        const uint64_t dice = rng.next_below(100);
        if (dice < 10) {
          // put = insert-or-replace: a replace retires the displaced
          // node, the same drop-in code path under every scheme.
          (void)tree.put(k, local);
        } else if (dice < 20) {
          tree.erase(k);
        } else {
          uint64_t v = 0;
          (void)tree.get(k, &v);
        }
        ++local;
      }
      ops.fetch_add(local);
      tree.domain().detach();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : ts) t.join();
  return static_cast<double>(ops.load()) / 0.3 / 1e6;
}

}  // namespace

int main() {
  std::printf("drop_in_migration: DGT tree KV mix (80%% get / 10%% put / "
              "10%% erase), 2 threads, same source — four reclaimers:\n");
  std::printf("  %-14s %8.3f Mops/s (eager publish + fence per read)\n",
              "HP", run_once<pop::smr::HpDomain>());
  std::printf("  %-14s %8.3f Mops/s (publish on ping)\n", "HazardPtrPOP",
              run_once<pop::core::HazardPtrPopDomain>());
  std::printf("  %-14s %8.3f Mops/s (eras, publish on ping)\n",
              "HazardEraPOP", run_once<pop::core::HazardEraPopDomain>());
  std::printf("  %-14s %8.3f Mops/s (epochs + POP fallback)\n", "EpochPOP",
              run_once<pop::core::EpochPopDomain>());
  return 0;
}
