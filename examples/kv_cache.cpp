// kv_cache: a concurrent key-value cache built on the hash table with
// EpochPOP — the paper's recommended default (EBR speed, HP robustness).
//
// Models a read-mostly service that actually stores payloads: lookups
// return the cached value, admissions/refreshes are put() —
// insert-or-replace, where every refresh of a hot key retires the
// displaced node while readers may still hold it — and a background
// eviction churn keeps membership moving. One deliberately slow
// "analytics" thread parks inside an operation. Under plain EBR that
// stall would pin all garbage; EpochPOP's publish-on-ping fallback keeps
// reclaiming — watch the pop_frees counter.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/epoch_pop.hpp"
#include "ds/hash_table.hpp"
#include "runtime/rng.hpp"

int main() {
  pop::smr::SmrConfig cfg;
  cfg.retire_threshold = 128;
  cfg.pop_multiplier = 2;  // POP fallback at 2x threshold
  constexpr uint64_t kCapacity = 1 << 14;
  pop::ds::HashTable<pop::core::EpochPopDomain> cache(kCapacity, 6.0, cfg);

  // Warm the cache: value = generation-0 payload for each key.
  for (uint64_t k = 0; k < kCapacity / 2; ++k) cache.put(k * 2, k * 2);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0}, misses{0}, refreshes{0}, evictions{0};

  // A slow thread parked inside an operation: the robustness scenario.
  std::atomic<bool> parked{false};
  std::thread analytics([&] {
    cache.domain().begin_op();  // enters an epoch... and stalls
    parked.store(true);
    while (!stop.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(5));
    cache.domain().end_op();
    cache.domain().detach();
  });
  while (!parked.load()) std::this_thread::yield();

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      pop::runtime::Xoshiro256 rng(100 + w);
      uint64_t generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.next_below(kCapacity);
        const uint64_t dice = rng.next_below(100);
        if (dice < 80) {  // lookup: the value rides back with the hit
          uint64_t payload = 0;
          if (cache.get(k, &payload)) {
            hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            misses.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (dice < 90) {  // admit or refresh the payload
          if (cache.put(k, ++generation) == pop::ds::PutResult::kReplaced) {
            refreshes.fetch_add(1, std::memory_order_relaxed);
          }
        } else {  // evict
          if (cache.erase(k)) evictions.fetch_add(1, std::memory_order_relaxed);
        }
      }
      cache.domain().detach();
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : workers) t.join();
  analytics.join();

  const auto s = cache.domain().stats();
  std::printf("kv_cache: hits=%llu misses=%llu refreshes=%llu "
              "evictions=%llu\n",
              static_cast<unsigned long long>(hits.load()),
              static_cast<unsigned long long>(misses.load()),
              static_cast<unsigned long long>(refreshes.load()),
              static_cast<unsigned long long>(evictions.load()));
  std::printf("kv_cache: retired=%llu freed=%llu unreclaimed=%llu\n",
              static_cast<unsigned long long>(s.retired),
              static_cast<unsigned long long>(s.freed),
              static_cast<unsigned long long>(s.unreclaimed()));
  std::printf("kv_cache: ebr_frees=%llu pop_frees=%llu signals=%llu\n",
              static_cast<unsigned long long>(s.ebr_frees),
              static_cast<unsigned long long>(s.pop_frees),
              static_cast<unsigned long long>(s.signals_sent));
  std::printf("kv_cache: with a parked reader, pop_frees > 0 shows the "
              "publish-on-ping fallback reclaiming where EBR could not — "
              "every refresh above fed it a displaced node.\n");
  return 0;
}
