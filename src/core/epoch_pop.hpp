// EpochPOP — epoch-based reclamation with a publish-on-ping fallback
// (paper Algorithm 3). The paper's headline hybrid: EBR speed in the
// common case, hazard-pointer robustness when threads stall.
//
// Threads run classic EBR (announce epoch on entry, quiesce on exit) and
// *simultaneously* track hazard-pointer-style reservations privately, via
// the fence-free read of HazardPtrPOP. Reclamation:
//
//   every retire_threshold retires  -> EBR-mode sweep (free nodes retired
//                                      before the min announced epoch);
//   list still >= C*retire_threshold -> a thread delay is suspected: run
//                                      the POP handshake and free every
//                                      node not in the published
//                                      reservations, ignoring epochs.
//
// There is no global mode switch (contrast Qsense): one thread can be
// reclaiming in EBR mode while another pings — reclaimers act
// independently, which is exactly Algorithm 3's structure.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/pop_engine.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::core {

class EpochPopDomain {
 public:
  static constexpr const char* kName = "EpochPOP";
  static constexpr bool kNeutralizes = false;
  using Guard = smr::OpGuard<EpochPopDomain>;
  static constexpr uint64_t kQuiescent = UINT64_MAX;

  explicit EpochPopDomain(const smr::SmrConfig& cfg = {})
      : core_(cfg, kName), engine_(cfg.num_slots) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      reserved_epoch_[tid]->v.store(kQuiescent, std::memory_order_release);
      engine_.attach(tid);
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    reserved_epoch_[tid]->v.store(kQuiescent, std::memory_order_release);
    engine_.detach(tid);
    core_.mark_detached(tid);
  }

  // Algorithm 3 startOp().
  void begin_op() {
    attach();
    const int tid = runtime::my_tid();
    if (++op_counter_[tid]->v % core_.config().epoch_freq == 0) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    // The reservation must be globally visible before the op's reads;
    // this store is the fence the reclaimer's ping lets a quiescent
    // reader skip re-paying on the fast path — hence seq_cst.
    reserved_epoch_[tid]->v.store(epoch_.load(std::memory_order_acquire),
                                  std::memory_order_seq_cst);
  }

  // Algorithm 3 endOp(): announce quiescence and drop local reservations.
  void end_op() {
    const int tid = runtime::my_tid();
    reserved_epoch_[tid]->v.store(kQuiescent, std::memory_order_release);
    engine_.clear_local(tid);
  }

  // Algorithm 3 read(): the fence-free private reservation of
  // HazardPtrPOP, maintained alongside the epoch announcement.
  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      engine_.reserve_local(
          tid, slot, reinterpret_cast<uintptr_t>(smr::strip_mark(p)));
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    engine_.reserve_local(tid, dst, engine_.local_value(tid, src));
  }

  void clear() { engine_.clear_local(runtime::my_tid()); }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(epoch_.load(std::memory_order_acquire),
                                std::forward<Args>(args)...);
  }

  // Algorithm 3 retire().
  void retire(smr::Reclaimable* n) {
    const int tid = runtime::my_tid();
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    const uint64_t len = core_.retire_push(tid, n, e);
    const auto& cfg = core_.config();
    if (len % cfg.retire_threshold == 0) {
      reclaim_epoch_freeable(tid);
    }
    if (core_.retire_list(tid).length() >=
        cfg.pop_multiplier * cfg.retire_threshold) {
      reclaim_pop(tid);  // a delayed thread is suspected
    } else if (core_.pressure_check(tid)) {
      reclaim_pop(tid);  // backstop goes straight to the robust path
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const smr::Reclaimable*> = {}) {
  }
  void exit_write_phase() {}

  smr::StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const smr::SmrConfig& config() const { return core_.config(); }
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  PopEngine& engine() { return engine_; }

 private:
  // Neutralizes a certified-dead tid: zero its engine slots and park its
  // announced epoch at quiescent so a corpse cannot pin the epoch sweep.
  void reap_tid(int t) {
    engine_.reap(t);
    reserved_epoch_[t]->v.store(kQuiescent, std::memory_order_release);
  }

  // Algorithm 3 reclaimEpochFreeable(): classic EBR sweep.
  void reclaim_epoch_freeable(int tid) {
    core_.reap_dead(tid, [this](int t) { reap_tid(t); });
    uint64_t min_reserved = kQuiescent;
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      const uint64_t r =
          reserved_epoch_[t]->v.load(std::memory_order_acquire);
      if (r < min_reserved) min_reserved = r;
    }
    auto& st = core_.stats(tid);
    st.scans += 1;
    const uint64_t freed =
        core_.sweep_retired(tid, [&](smr::Reclaimable* node) {
          return node->retire_era < min_reserved;
        });
    st.freed += freed;
    st.ebr_frees += freed;
  }

  // Algorithm 3 lines 27-30: the POP fallback. Frees everything not in
  // the published hazard reservations, ignoring epochs entirely — safe
  // because every access is preceded by a validated (private) reservation.
  void reclaim_pop(int tid) {
    auto& st = core_.stats(tid);
    core_.reap_dead(tid, [this](int t) { reap_tid(t); });
    const auto hs = engine_.ping_all_and_wait(tid);
    st.signals_sent += static_cast<uint64_t>(hs.sent);
    if (!hs.complete()) {
      // A live laggard never published; its private reservations could
      // name anything in the retire list. Defer the POP sweep.
      st.waves_timed_out += 1;
      st.pings_received = engine_.pings_received(tid);
      return;
    }
    uintptr_t* reserved = core_.scan_scratch(tid);
    const int n = engine_.collect_shared(reserved);
    st.scans += 1;
    const uint64_t freed =
        core_.sweep_retired(tid, [&](smr::Reclaimable* node) {
          return !smr::SlotTable::contains(reserved, n,
                                           reinterpret_cast<uintptr_t>(node));
        });
    st.freed += freed;
    st.pop_frees += freed;
    st.pings_received = engine_.pings_received(tid);
  }

  struct Counter {
    uint64_t v = 0;
  };

  // Starts quiescent: a zero-initialized slot would read as "reserved at
  // epoch 0" in reclaim_epoch_freeable() for registry tids that never
  // attached to this domain and pin every retired node forever.
  struct ReservedEpoch {
    std::atomic<uint64_t> v{kQuiescent};
  };

  smr::DomainCore core_;
  PopEngine engine_;
  std::atomic<uint64_t> epoch_{1};
  runtime::Padded<ReservedEpoch> reserved_epoch_[runtime::kMaxThreads];
  runtime::Padded<Counter> op_counter_[runtime::kMaxThreads];
};

}  // namespace pop::core
