// PopEngine — the publish-on-ping machinery shared by HazardPtrPOP,
// HazardEraPOP and EpochPOP (paper §3, Algorithms 1-3, 5).
//
// Readers record reservations in *private* per-thread slots with plain
// (relaxed-atomic) stores: no fence, no cache-line transfer on the read
// path. When a reclaimer wants to scan, it executes the handshake of
// Algorithm 2:
//
//   collectPublishedCounters();   // snapshot every thread's SWMR counter
//   pingAllToPublish();           // pthread_kill to all attached threads
//   waitForAllPublished();        // spin until every counter advances
//
// Each pinged thread's signal handler copies its private slots to shared
// SWMR slots, issues one seq_cst fence, and increments its publish
// counter. Once every attached thread's counter has advanced past the
// snapshot, all reservations that existed before the ping are visible,
// and the reclaimer may free any retired node not found in the shared
// slots (pointer mode) or whose lifespan intersects no published era (era
// mode). Concurrent reclaimers coalesce: a single publish satisfies every
// waiter whose snapshot predates it.
//
// Private slots are lock-free std::atomic<uintptr_t> accessed with relaxed
// ordering — plain machine stores, and the only data shared with the
// (same-thread, asynchronous) signal handler, which makes the handler
// async-signal-safe by [intro.execution]/support.signal rules.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "runtime/padded.hpp"
#include "runtime/signal_bus.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/hp_slots.hpp"
#include "smr/smr_config.hpp"

namespace pop::core {

class PopEngine final : public runtime::SignalClient {
 public:
  explicit PopEngine(int num_slots) : num_slots_(num_slots) {}

  ~PopEngine() {
    // Threads must have detached; defensively unhook the signal bus for
    // the calling thread (worker threads detach via domain detach()).
    runtime::SignalBus::instance().detach(this);
  }

  // ---- thread lifecycle --------------------------------------------------

  void attach(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
      shared_.at(tid, s).store(0, std::memory_order_release);
    }
    pt_[tid]->registry_epoch =
        runtime::ThreadRegistry::instance().slot_epoch(tid);
    pt_[tid]->attached.store(true, std::memory_order_seq_cst);
    runtime::SignalBus::instance().attach(this);
  }

  void detach(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
      shared_.at(tid, s).store(0, std::memory_order_release);
    }
    // Unblock any reclaimer currently waiting on this thread.
    pt_[tid]->publish_counter.fetch_add(1, std::memory_order_release);
    pt_[tid]->attached.store(false, std::memory_order_release);
    runtime::SignalBus::instance().detach(this);
  }

  bool attached(int tid) const {
    return pt_[tid]->attached.load(std::memory_order_acquire);
  }

  // ---- reader fast path ----------------------------------------------------

  // Private reservation: a plain store. The paper's read() loop lives in
  // the domain (it also revalidates the source pointer).
  void reserve_local(int tid, int slot, uintptr_t v) {
    local(tid, slot).store(v, std::memory_order_relaxed);
  }

  uintptr_t local_value(int tid, int slot) const {
    return local(tid, slot).load(std::memory_order_relaxed);
  }

  void clear_local(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
    }
  }

  // ---- signal handler (publish) -------------------------------------------

  void on_ping(int tid) noexcept override {
    if (!pt_[tid]->attached.load(std::memory_order_relaxed)) return;
    publish(tid);
    pt_[tid]->pings.fetch_add(1, std::memory_order_relaxed);
  }

  // publishReservations() of Algorithm 2; also callable synchronously by
  // the reclaimer on itself.
  void publish(int tid) noexcept {
    for (int s = 0; s < num_slots_; ++s) {
      shared_.at(tid, s).store(local(tid, s).load(std::memory_order_relaxed),
                               std::memory_order_release);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    pt_[tid]->publish_counter.fetch_add(1, std::memory_order_release);
  }

  // ---- reclaimer handshake --------------------------------------------------

  // Executes collect + ping + wait. Returns the number of signals sent.
  // On return, every pre-ping reservation of every attached thread is
  // visible in the shared table.
  int ping_all_and_wait(int self_tid) {
    publish(self_tid);  // own reservations participate in the scan

    // collectPublishedCounters()
    struct Waited {
      int tid;
      uint64_t counter_before;
      uint64_t registry_epoch;
    };
    Waited waited[runtime::kMaxThreads];
    int nwait = 0;
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      if (t == self_tid || !attached(t)) continue;
      waited[nwait++] = {t,
                         pt_[t]->publish_counter.load(std::memory_order_acquire),
                         pt_[t]->registry_epoch};
    }

    // pingAllToPublish(): signal exactly the threads attached to this
    // domain — the set whose publish counters we wait on below.
    const int sent = runtime::ThreadRegistry::instance().ping_others(
        runtime::kPingSignal, [this](int t) { return attached(t); },
        [](int, uint64_t) {});

    // waitForAllPublished()
    auto& reg = runtime::ThreadRegistry::instance();
    for (int i = 0; i < nwait; ++i) {
      const auto& w = waited[i];
      runtime::SpinThenYield waiter;
      for (;;) {
        if (pt_[w.tid]->publish_counter.load(std::memory_order_acquire) !=
            w.counter_before) {
          break;  // published since our snapshot
        }
        if (!attached(w.tid)) break;                     // detached: no refs
        if (reg.slot_epoch(w.tid) != w.registry_epoch) break;  // slot recycled
        waiter.wait();  // yields under oversubscription (§4.1.2)
      }
    }
    return sent;
  }

  // ---- shared-table queries (reclaimer side) ---------------------------------

  // Appends every non-zero published value into `out` (sorted); returns n.
  int collect_shared(uintptr_t* out) const {
    return shared_.collect(num_slots_, out);
  }

  uint64_t pings_received(int tid) const {
    return pt_[tid]->pings.load(std::memory_order_relaxed);
  }
  uint64_t publish_count(int tid) const {
    return pt_[tid]->publish_counter.load(std::memory_order_acquire);
  }

  int num_slots() const { return num_slots_; }

 private:
  std::atomic<uintptr_t>& local(int tid, int s) {
    return pt_[tid]->local_slots[s];
  }
  const std::atomic<uintptr_t>& local(int tid, int s) const {
    return pt_[tid]->local_slots[s];
  }

  struct PerThread {
    std::atomic<uintptr_t> local_slots[smr::kMaxSlots] = {};
    std::atomic<uint64_t> publish_counter{0};
    std::atomic<uint64_t> pings{0};
    std::atomic<bool> attached{false};
    uint64_t registry_epoch = 0;
  };

  int num_slots_;
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
  smr::SlotTable shared_;
};

}  // namespace pop::core
