// PopEngine — the publish-on-ping machinery shared by HazardPtrPOP,
// HazardEraPOP and EpochPOP (paper §3, Algorithms 1-3, 5).
//
// Readers record reservations in *private* per-thread slots with plain
// (relaxed-atomic) stores: no fence, no cache-line transfer on the read
// path. When a reclaimer wants to scan, it executes the handshake of
// Algorithm 2:
//
//   collectPublishedCounters();   // snapshot every thread's SWMR counter
//   pingAllToPublish();           // pthread_kill to all attached threads
//   waitForAllPublished();        // spin until every counter advances
//
// Each pinged thread's signal handler copies its private slots to shared
// SWMR slots, issues one seq_cst fence, and increments its publish
// counter. Once every attached thread's counter has advanced past the
// snapshot, all reservations that existed before the ping are visible,
// and the reclaimer may free any retired node not found in the shared
// slots (pointer mode) or whose lifespan intersects no published era (era
// mode). Concurrent reclaimers coalesce twice over: a single publish
// satisfies every waiter whose snapshot predates it, and a global round
// counter lets a reclaimer that observes an in-flight ping wave piggyback
// on that wave's publish storm instead of re-signaling every thread (see
// ping_all_and_wait).
//
// Private slots are lock-free std::atomic<uintptr_t> accessed with relaxed
// ordering — plain machine stores, and the only data shared with the
// (same-thread, asynchronous) signal handler, which makes the handler
// async-signal-safe by [intro.execution]/support.signal rules.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "obs/obs.hpp"
#include "runtime/backoff.hpp"
#include "runtime/env.hpp"
#include "runtime/padded.hpp"
#include "runtime/signal_bus.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/hp_slots.hpp"
#include "smr/smr_config.hpp"

namespace pop::core {

// Outcome of one ping_all_and_wait handshake. `timed_out` means at least
// one *live* laggard never published before the watchdog deadline — the
// caller must NOT sweep against the shared table (the laggard's private
// reservations are invisible); defer and retry on a later pass. Dead
// laggards are certified and skipped without compromising the wave.
struct HandshakeResult {
  int sent = 0;            // signals this caller issued
  int certified_dead = 0;  // laggards certified kernel-dead and skipped
  bool timed_out = false;  // a live laggard outlasted the deadline
  bool complete() const { return !timed_out; }
};

class PopEngine final : public runtime::SignalClient {
 public:
  explicit PopEngine(int num_slots) : num_slots_(num_slots) {}

  ~PopEngine() {
    // Threads must have detached; defensively unhook the signal bus for
    // the calling thread (worker threads detach via domain detach()).
    runtime::SignalBus::instance().detach(this);
  }

  // ---- thread lifecycle --------------------------------------------------

  void attach(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
      shared_.at(tid, s).store(0, std::memory_order_release);
    }
    // Relaxed atomic: a reclaimer that raced an attach on a recycled tid
    // may read either epoch — it only uses the value for staleness
    // detection against the registry, where both answers are safe.
    pt_[tid]->registry_epoch.store(
        runtime::ThreadRegistry::instance().slot_epoch(tid),
        std::memory_order_relaxed);
    // seq_cst: attached must be ordered before the SignalBus registration
    // so a reclaimer whose ping reaches this thread never reads false.
    pt_[tid]->attached.store(true, std::memory_order_seq_cst);
    runtime::SignalBus::instance().attach(this);
  }

  void detach(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
      shared_.at(tid, s).store(0, std::memory_order_release);
    }
    // Unblock any reclaimer currently waiting on this thread.
    pt_[tid]->publish_counter.fetch_add(1, std::memory_order_release);
    pt_[tid]->attached.store(false, std::memory_order_release);
    runtime::SignalBus::instance().detach(this);
  }

  bool attached(int tid) const {
    return pt_[tid]->attached.load(std::memory_order_acquire);
  }

  // ---- reader fast path ----------------------------------------------------

  // Private reservation: a plain store. The paper's read() loop lives in
  // the domain (it also revalidates the source pointer).
  void reserve_local(int tid, int slot, uintptr_t v) {
    local(tid, slot).store(v, std::memory_order_relaxed);
  }

  uintptr_t local_value(int tid, int slot) const {
    return local(tid, slot).load(std::memory_order_relaxed);
  }

  void clear_local(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
    }
  }

  // ---- signal handler (publish) -------------------------------------------

  void on_ping(int tid) noexcept override {
    if (!pt_[tid]->attached.load(std::memory_order_relaxed)) return;
    publish(tid);
    pt_[tid]->pings.fetch_add(1, std::memory_order_relaxed);
  }

  // publishReservations() of Algorithm 2; also callable synchronously by
  // the reclaimer on itself.
  void publish(int tid) noexcept {
    for (int s = 0; s < num_slots_; ++s) {
      shared_.at(tid, s).store(local(tid, s).load(std::memory_order_relaxed),
                               std::memory_order_release);
    }
    // seq_cst fence: the slot stores above must be visible before the
    // counter bump — a reclaimer that observes the new counter value must
    // also observe every published reservation.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    pt_[tid]->publish_counter.fetch_add(1, std::memory_order_release);
  }

  // ---- reclaimer handshake --------------------------------------------------

  // Executes collect + ping + wait. Returns the handshake outcome (signal
  // count + watchdog verdict). On a complete() return, every pre-ping
  // reservation of every attached thread is visible in the shared table.
  //
  // Watchdog: the wait carries a terminal deadline (POPSMR_PING_TIMEOUT_MS,
  // 0 disables) layered over the progressive per-wave patience. On expiry
  // each laggard is classified: a kernel-dead thread is certified via the
  // registry (its epoch bump then releases every other wait loop too) and
  // skipped — its private reservations died with it, and its stale shared
  // slots keep conservatively protecting whatever they name; a live
  // unresponsive thread (e.g. one whose pings are being lost) forces
  // timed_out, because freeing without its publish would be unsafe — the
  // caller defers the sweep, which degrades memory bounds, never safety.
  //
  // Concurrent handshakes coalesce on a global round counter (even = no
  // ping wave in flight, odd = a wave is open: a leader has broadcast and
  // is waiting for the publishes to land). Only a leader broadcasts; a
  // reclaimer that observes an open wave piggybacks on that wave's
  // publish storm and makes up any gap — a thread whose publish predates
  // its own counter snapshot, or one the broadcast missed — with targeted
  // per-thread re-pings after a patience interval. Safety never depends
  // on the round logic: the counter wait below is the paper's
  // waitForAllPublished() and is what actually certifies visibility.
  HandshakeResult ping_all_and_wait(int self_tid) {
    HandshakeResult result;
    // Wave round-trip timing: one clock read on entry/exit when either
    // observability channel wants it, nothing otherwise.
    const bool obs_timing = obs::latency_on() || obs::trace_on();
    const uint64_t obs_t0 = obs_timing ? obs::now_ns() : 0;
    publish(self_tid);  // own reservations participate in the scan

    // collectPublishedCounters()
    Waited waited[runtime::kMaxThreads];
    int nwait = 0;
    auto& reg = runtime::ThreadRegistry::instance();
    const int hi = reg.max_tid();
    for (int t = 0; t <= hi; ++t) {
      if (t == self_tid || !attached(t)) continue;
      waited[nwait++] = {
          t, pt_[t]->publish_counter.load(std::memory_order_acquire),
          pt_[t]->registry_epoch.load(std::memory_order_relaxed)};
    }

    // pingAllToPublish(), coalesced: lead a wave only if none is open.
    // Every publish a wave triggers lands after its leader's broadcast,
    // and our snapshot above predates anything we go on to wait for — so
    // joining an open wave is always safe, merely possibly insufficient
    // (covered by the escalation below). The round is PROCESS-WIDE, not
    // per-engine: a ping publishes the reservations of every co-resident
    // domain on the receiving thread (the SignalBus handler notifies all
    // clients), so a reclaimer in one shard's domain can ride a wave led
    // by another's. A joined wave whose leader pinged a different
    // membership may miss some of our threads — the targeted re-ping
    // below covers exactly that gap, so cross-domain coalescing trades a
    // short patience interval for ~Nx fewer signal broadcasts when N
    // domains reclaim concurrently.
    auto& round = global_round();
    bool leading = false;
    uint64_t r = round.load(std::memory_order_acquire);
    while ((r & 1) == 0) {
      if (round.compare_exchange_weak(r, r + 1,
                                      std::memory_order_acq_rel)) {
        // We lead: signal exactly the threads attached to this domain —
        // the set whose publish counters the wait below certifies.
        result.sent = reg.ping_others(
            runtime::kPingSignal, [this](int t) { return attached(t); },
            [](int, uint64_t) {});
        leading = true;
        break;
      }
    }

    // waitForAllPublished(), round-robin over the remaining threads so
    // one patience interval covers every laggard at once (a per-thread
    // serial wait would pay it once per thread a wave missed). The
    // targeted re-ping is the liveness backstop for threads no broadcast
    // covered — e.g. a joiner whose snapshot predates some publishes.
    bool done[runtime::kMaxThreads] = {};
    int remaining = nwait;
    runtime::SpinThenYield waiter;
    uint32_t stalled_sweeps = 0;
    // Progressive patience: the first re-ping fires fast — a joiner whose
    // snapshot already contained some of the wave's publishes would
    // otherwise stall a full long interval on counters that will never
    // advance again — then backs off exponentially so a genuinely slow
    // thread is not bombarded. Both the first interval (env-tunable) and
    // the backoff are per-wave state: progress resets to the fast
    // interval, and nothing leaks into the next wave. (An earlier version
    // jumped straight to the long interval on the first escalation and
    // never restored the short one — a joiner stalling twice in one wave
    // paid 16x the intended latency.)
    const uint32_t patience_first = reping_patience_first();
    uint32_t patience = patience_first;
    // Watchdog: armed lazily at the first escalation (healthy waves never
    // touch the clock or the environment), it bounds the total wait.
    bool deadline_armed = false;
    uint64_t timeout_ms = 0;
    std::chrono::steady_clock::time_point armed_at{};
    while (remaining > 0) {
      bool progress = false;
      for (int i = 0; i < nwait; ++i) {
        if (done[i]) continue;
        const auto& w = waited[i];
        if (pt_[w.tid]->publish_counter.load(std::memory_order_acquire) !=
                w.counter_before ||                       // published
            !attached(w.tid) ||                           // detached: no refs
            reg.slot_epoch(w.tid) != w.registry_epoch) {  // slot recycled
          done[i] = true;
          --remaining;
          progress = true;
        }
      }
      if (remaining == 0) break;
      if (progress) {
        stalled_sweeps = 0;
        patience = patience_first;
      } else if (++stalled_sweeps > patience) {
        stalled_sweeps = 0;
        patience = patience < kRepingPatienceMax / 2 ? patience * 2
                                                     : kRepingPatienceMax;
        if (!deadline_armed) {
          deadline_armed = true;
          // Read per wave (not a cached static) so tests and benches can
          // vary the deadline; escalations are rare enough that a getenv
          // here is noise.
          timeout_ms =
              runtime::env_u64("POPSMR_PING_TIMEOUT_MS", kPingTimeoutMsDefault);
          armed_at = std::chrono::steady_clock::now();
        } else if (timeout_ms > 0 &&
                   std::chrono::steady_clock::now() - armed_at >=
                       std::chrono::milliseconds(timeout_ms)) {
          classify_laggards(waited, done, nwait, remaining, timeout_ms,
                            result);
          continue;  // remaining is now 0
        }
        result.sent += reg.ping_others(
            runtime::kPingSignal,
            [&](int t) {
              for (int i = 0; i < nwait; ++i) {
                if (!done[i] && waited[i].tid == t) return attached(t);
              }
              return false;
            },
            [](int, uint64_t) {});
      }
      waiter.wait();  // yields under oversubscription (§4.1.2)
    }
    if (leading) {
      round.fetch_add(1, std::memory_order_release);  // close the wave
      waves_led_.fetch_add(1, std::memory_order_relaxed);
    } else {
      waves_joined_.fetch_add(1, std::memory_order_relaxed);
    }
    // Refresh our own counter: a joiner that snapshotted us after our
    // entry publish would otherwise have to escalate to unblock.
    publish(self_tid);
    if (obs_timing) {
      const uint64_t dt = obs::now_ns() - obs_t0;
      obs::record_latency(obs::LatOp::kPingWave, dt);
      obs::trace_event(result.timed_out ? obs::TraceKind::kPingWaveTimeout
                       : leading        ? obs::TraceKind::kPingWaveLead
                                        : obs::TraceKind::kPingWaveJoin,
                       obs_t0, dt, static_cast<uint32_t>(result.sent));
    }
    return result;
  }

  // Neutralizes a certified-dead thread's engine state: clears its
  // (stale) reservations, bumps its publish counter so any waiter
  // snapshotting it unblocks, and drops the attach flag so future waves
  // skip it. Only callable once the owner is certified gone (the
  // DomainCore reaper's neutralize hook) — a dead thread never
  // dereferences, so dropping its reservations frees nothing it can
  // still touch.
  void reap(int tid) {
    for (int s = 0; s < num_slots_; ++s) {
      local(tid, s).store(0, std::memory_order_relaxed);
      shared_.at(tid, s).store(0, std::memory_order_release);
    }
    pt_[tid]->publish_counter.fetch_add(1, std::memory_order_release);
    pt_[tid]->attached.store(false, std::memory_order_release);
  }

  // ---- shared-table queries (reclaimer side) ---------------------------------

  // Appends every non-zero published value into `out` (sorted); returns n.
  int collect_shared(uintptr_t* out) const {
    return shared_.collect(num_slots_, out);
  }

  uint64_t pings_received(int tid) const {
    return pt_[tid]->pings.load(std::memory_order_relaxed);
  }
  uint64_t publish_count(int tid) const {
    return pt_[tid]->publish_counter.load(std::memory_order_acquire);
  }

  int num_slots() const { return num_slots_; }

  // Completed ping waves (the round parity protocol above) — PROCESS-WIDE
  // across every PopEngine, since the round is shared; exposed for tests
  // asserting that concurrent reclaimers (same domain or co-resident
  // domains) share one wave. Compare deltas, not absolutes.
  static uint64_t handshake_rounds() {
    return global_round().load(std::memory_order_acquire) / 2;
  }

  // This engine's handshake outcomes: waves it broadcast vs waves it rode
  // (another reclaimer's — possibly another domain's — open wave).
  uint64_t waves_led() const {
    return waves_led_.load(std::memory_order_relaxed);
  }
  uint64_t waves_joined() const {
    return waves_joined_.load(std::memory_order_relaxed);
  }

 private:
  // No-progress sweeps before re-pinging the lagging threads directly.
  // The first interval is short (~128 spins + ~128 yields): it is the
  // recovery path for a joiner that can make no progress without a ping.
  // Escalation doubles the interval per re-ping up to the max, so an
  // open wave's publishes (microseconds, plus scheduling) normally land
  // before the next re-ping while a genuinely stuck thread is not
  // signal-bombed.
  static constexpr uint32_t kRepingPatienceFirst = 1u << 8;
  static constexpr uint32_t kRepingPatienceMax = 1u << 12;
  // Watchdog deadline when POPSMR_PING_TIMEOUT_MS is unset. Generous: a
  // healthy handshake completes in microseconds even under sanitizers, so
  // a second of silence means lost signals or a corpse — and a spurious
  // expiry merely defers one sweep (safe by construction).
  static constexpr uint64_t kPingTimeoutMsDefault = 1000;

  // First-interval patience, env-tunable once per process: the knob exists
  // for experiments sweeping handshake latency vs signal volume.
  static uint32_t reping_patience_first() {
    static const uint32_t v = static_cast<uint32_t>(runtime::env_u64(
        "POPSMR_PING_PATIENCE", kRepingPatienceFirst));
    return v == 0 ? 1 : v;
  }

  struct Waited {
    int tid;
    uint64_t counter_before;
    uint64_t registry_epoch;
  };

  // Deadline expiry: resolve every remaining laggard one way or the
  // other so the wave can close. Dead → certify (the registry epoch bump
  // releases every other waiter on the corpse too) and skip; live →
  // give up on this wave (timed_out) with a one-line diagnostic naming
  // the stuck tid.
  void classify_laggards(const Waited* waited, bool* done, int nwait,
                         int& remaining, uint64_t timeout_ms,
                         HandshakeResult& result) {
    auto& reg = runtime::ThreadRegistry::instance();
    for (int i = 0; i < nwait; ++i) {
      if (done[i]) continue;
      const auto& w = waited[i];
      done[i] = true;
      --remaining;
      if (reg.slot_epoch(w.tid) != w.registry_epoch ||
          reg.certify_zombie(w.tid, w.registry_epoch)) {
        ++result.certified_dead;
        continue;
      }
      result.timed_out = true;
      std::fprintf(stderr,
                   "popsmr: ping wave timed out after %llu ms: tid %d is "
                   "alive but never published (heartbeat=%llu) — deferring "
                   "this sweep\n",
                   static_cast<unsigned long long>(timeout_ms), w.tid,
                   static_cast<unsigned long long>(reg.heartbeat(w.tid)));
    }
  }

  std::atomic<uintptr_t>& local(int tid, int s) {
    return pt_[tid]->local_slots[s];
  }
  const std::atomic<uintptr_t>& local(int tid, int s) const {
    return pt_[tid]->local_slots[s];
  }

  struct PerThread {
    std::atomic<uintptr_t> local_slots[smr::kMaxSlots] = {};
    std::atomic<uint64_t> publish_counter{0};
    std::atomic<uint64_t> pings{0};
    std::atomic<bool> attached{false};
    // Atomic because a handshake may read it while a new thread attaches
    // on a recycled tid (change-detection only, so relaxed suffices).
    std::atomic<uint64_t> registry_epoch{0};
  };

  // Handshake round, shared by every engine in the process: even = idle,
  // odd = a leader (in some domain) is delivering pings. One cache line
  // touched only on the reclaim path, never by readers.
  static std::atomic<uint64_t>& global_round() {
    static runtime::Padded<std::atomic<uint64_t>> r;
    return *r;
  }

  int num_slots_;
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
  smr::SlotTable shared_;
  std::atomic<uint64_t> waves_led_{0};
  std::atomic<uint64_t> waves_joined_{0};
};

}  // namespace pop::core
