// HazardPtrPOP — hazard pointers with publish-on-ping (paper Algorithms
// 1 and 2). Drop-in replacement for HP: identical interface, identical
// per-thread reservation bound, but the read path performs no fence —
// reservations stay private until a reclaimer pings.
//
//   read():   repeat { p = *src; local[slot] = p } until p == *src
//   retire(): append; at threshold: collect counters, ping all, wait,
//             then free every retired node absent from the published
//             (shared) reservations.
//
// Safety (paper Property 2): when the reclaimer scans, every reservation
// made before the ping handshake completed is visible; a reservation made
// after must have validated its source pointer *after* the node was
// unlinked, so it cannot name a node in this reclaimer's retire list.
// Robustness (Property 3): at most threshold + N*H nodes are unreclaimed.
#pragma once

#include <atomic>

#include "core/pop_engine.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::core {

class HazardPtrPopDomain {
 public:
  static constexpr const char* kName = "HazardPtrPOP";
  static constexpr bool kNeutralizes = false;
  using Guard = smr::OpGuard<HazardPtrPopDomain>;

  explicit HazardPtrPopDomain(const smr::SmrConfig& cfg = {})
      : core_(cfg, kName), engine_(cfg.num_slots) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) engine_.attach(tid);
  }
  void detach() {
    const int tid = runtime::my_tid();
    engine_.detach(tid);
    core_.mark_detached(tid);
  }

  void begin_op() { attach(); }
  void end_op() { clear(); }

  // The paper's read(): private reservation + source revalidation, no
  // fence ("no store load fence needed", Alg. 1 line 12).
  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      engine_.reserve_local(
          tid, slot, reinterpret_cast<uintptr_t>(smr::strip_mark(p)));
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    engine_.reserve_local(tid, dst, engine_.local_value(tid, src));
  }

  void clear() { engine_.clear_local(runtime::my_tid()); }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(smr::Reclaimable* n) {
    const int tid = runtime::my_tid();
    core_.retire_push(tid, n, 0);
    // Tick-based trigger: one handshake per `retire_threshold` retires.
    // A length-based trigger would re-ping on every retire while the list
    // holds reserved (unfreeable) nodes — a signal storm.
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      reclaim(tid);
    } else if (core_.pressure_check(tid)) {
      reclaim(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const smr::Reclaimable*> = {}) {
  }
  void exit_write_phase() {}

  smr::StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const smr::SmrConfig& config() const { return core_.config(); }
  PopEngine& engine() { return engine_; }

 private:
  void reclaim(int tid) {
    auto& st = core_.stats(tid);
    core_.reap_dead(tid, [&](int t) { engine_.reap(t); });
    const auto hs = engine_.ping_all_and_wait(tid);
    st.signals_sent += static_cast<uint64_t>(hs.sent);
    if (!hs.complete()) {
      // A live thread never published: its private reservations are
      // invisible, so no subset of the retire list is provably safe.
      // Defer the sweep (bounded-memory degrades, safety does not).
      st.waves_timed_out += 1;
      sync_ping_stats(st, tid);
      return;
    }
    uintptr_t* reserved = core_.scan_scratch(tid);
    const int n = engine_.collect_shared(reserved);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](smr::Reclaimable* node) {
      return !smr::SlotTable::contains(reserved, n,
                                       reinterpret_cast<uintptr_t>(node));
    });
    sync_ping_stats(st, tid);
  }

  void sync_ping_stats(smr::ThreadStats& st, int tid) {
    st.pings_received = engine_.pings_received(tid);
  }

  smr::DomainCore core_;
  PopEngine engine_;
};

}  // namespace pop::core
