// HazardEraPOP — hazard eras with publish-on-ping (paper Algorithm 5,
// Appendix B.2). Same interface as HE; the read path reserves the current
// era *privately* (no fence even when the era changes). On a reclaimer's
// ping the handler publishes the reserved eras; the reclaimer then frees
// every retired node whose lifespan [birth_era, retire_era] intersects no
// published era.
//
// Safety is Property 6: a reader that reserved era e before the handshake
// has e published when the reclaimer scans; a reader that reserves after
// the handshake observes an era >= the victim's retire era bump, so its
// reservation cannot intersect the victim's lifespan retroactively.
#pragma once

#include <atomic>

#include "core/pop_engine.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::core {

class HazardEraPopDomain {
 public:
  static constexpr const char* kName = "HazardEraPOP";
  static constexpr bool kNeutralizes = false;
  using Guard = smr::OpGuard<HazardEraPopDomain>;

  explicit HazardEraPopDomain(const smr::SmrConfig& cfg = {})
      : core_(cfg, kName), engine_(cfg.num_slots) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) engine_.attach(tid);
  }
  void detach() {
    const int tid = runtime::my_tid();
    engine_.detach(tid);
    core_.mark_detached(tid);
  }

  void begin_op() { attach(); }
  void end_op() { clear(); }

  // Algorithm 5 read(): era reservation without the publish fence.
  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    uintptr_t prev = engine_.local_value(tid, slot);
    for (;;) {
      T* p = src.load(std::memory_order_acquire);
      const uint64_t e = era_.load(std::memory_order_acquire);
      if (e == prev) return p;
      engine_.reserve_local(tid, slot, e);  // no store-load fence needed
      prev = e;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    engine_.reserve_local(tid, dst, engine_.local_value(tid, src));
  }

  void clear() { engine_.clear_local(runtime::my_tid()); }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(era_.load(std::memory_order_acquire),
                                std::forward<Args>(args)...);
  }

  void retire(smr::Reclaimable* n) {
    const int tid = runtime::my_tid();
    const uint64_t e = era_.load(std::memory_order_acquire);
    core_.retire_push(tid, n, e);
    // Tick-based trigger (see HazardPtrPOP::retire). Essential here: a
    // reserved era pins *every* node whose lifespan intersects it — e.g.
    // all prefill-born nodes — so the list length legitimately sits above
    // the threshold and a length trigger would ping on every retire.
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      era_.fetch_add(1, std::memory_order_acq_rel);
      reclaim(tid);
    } else if (core_.pressure_check(tid)) {
      era_.fetch_add(1, std::memory_order_acq_rel);
      reclaim(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const smr::Reclaimable*> = {}) {
  }
  void exit_write_phase() {}

  smr::StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const smr::SmrConfig& config() const { return core_.config(); }
  uint64_t current_era() const { return era_.load(std::memory_order_acquire); }

 private:
  void reclaim(int tid) {
    auto& st = core_.stats(tid);
    core_.reap_dead(tid, [&](int t) { engine_.reap(t); });
    const auto hs = engine_.ping_all_and_wait(tid);
    st.signals_sent += static_cast<uint64_t>(hs.sent);
    if (!hs.complete()) {
      // Defer: a non-publishing live thread's reserved eras are unknown,
      // so no lifespan-disjointness test is sound this wave.
      st.waves_timed_out += 1;
      st.pings_received = engine_.pings_received(tid);
      return;
    }
    uintptr_t* eras = core_.scan_scratch(tid);
    const int n = engine_.collect_shared(eras);  // sorted
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](smr::Reclaimable* node) {
      const uintptr_t* lo = std::lower_bound(eras, eras + n, node->birth_era);
      return lo == eras + n || *lo > node->retire_era;
    });
    st.pings_received = engine_.pings_received(tid);
  }

  smr::DomainCore core_;
  PopEngine engine_;                 // slot values are eras
  std::atomic<uint64_t> era_{1};
};

}  // namespace pop::core
