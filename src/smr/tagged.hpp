// Low-bit pointer tagging shared by the SMR schemes and the lock-free data
// structures. Bit 0 is the "marked" (logically deleted) bit; reservations
// always store the stripped address while validation compares raw values.
#pragma once

#include <cstdint>

namespace pop::smr {

inline constexpr uintptr_t kMarkMask = 0x7;

template <class T>
T* strip_mark(T* p) noexcept {
  return reinterpret_cast<T*>(reinterpret_cast<uintptr_t>(p) & ~kMarkMask);
}

template <class T>
bool is_marked(T* p) noexcept {
  return (reinterpret_cast<uintptr_t>(p) & 0x1) != 0;
}

template <class T>
T* with_mark(T* p) noexcept {
  return reinterpret_cast<T*>(reinterpret_cast<uintptr_t>(p) | 0x1);
}

}  // namespace pop::smr
