// Base header embedded in every node managed by an SMR domain.
//
// birth_era / retire_era support the era-based schemes (HE, IBR,
// HazardEraPOP) which free a node only if no reservation intersects its
// lifespan [birth_era, retire_era]. Pointer-based schemes ignore them.
// rl_next links retired nodes into the owner's intrusive retire list so
// retiring never allocates.
//
// Two destruction hooks:
//   deleter     destroys the concrete node type AND releases its memory —
//               the per-node path, used by data-structure teardown (live,
//               never-retired nodes) and as the fallback for nodes that
//               did not come from the pool allocator.
//   batch_prep  destroys the node WITHOUT releasing memory and returns the
//               pool-allocation address, so a sweep can chain many blocks
//               and hand them to PoolAllocator::FreeBatch in one splice.
//               The sentinel &batch_prep_identity marks the common case —
//               trivially destructible node whose Reclaimable base sits at
//               offset 0 — letting the sweep skip the indirect call
//               entirely. nullptr means "not batch-eligible": the sweep
//               falls back to `deleter`.
#pragma once

#include <cstdint>

namespace pop::smr {

struct Reclaimable;
using Deleter = void (*)(Reclaimable*) /*noexcept*/;
using BatchPrep = void* (*)(Reclaimable*) /*noexcept*/;

// Sentinel for trivially destructible nodes with the base at offset 0:
// the Reclaimable pointer IS the allocation address, nothing to run.
inline void* batch_prep_identity(Reclaimable* r) noexcept { return r; }

struct Reclaimable {
  uint64_t birth_era = 0;
  uint64_t retire_era = 0;
  Reclaimable* rl_next = nullptr;
  Deleter deleter = nullptr;
  BatchPrep batch_prep = nullptr;
};

}  // namespace pop::smr
