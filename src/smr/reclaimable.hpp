// Base header embedded in every node managed by an SMR domain.
//
// birth_era / retire_era support the era-based schemes (HE, IBR,
// HazardEraPOP) which free a node only if no reservation intersects its
// lifespan [birth_era, retire_era]. Pointer-based schemes ignore them.
// rl_next links retired nodes into the owner's intrusive retire list so
// retiring never allocates. deleter destroys the concrete node type.
#pragma once

#include <cstdint>

namespace pop::smr {

struct Reclaimable;
using Deleter = void (*)(Reclaimable*) /*noexcept*/;

struct Reclaimable {
  uint64_t birth_era = 0;
  uint64_t retire_era = 0;
  Reclaimable* rl_next = nullptr;
  Deleter deleter = nullptr;
};

}  // namespace pop::smr
