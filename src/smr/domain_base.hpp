// DomainCore: bookkeeping shared by every reclamation scheme — per-thread
// retire lists, statistics, attach/detach flags, node construction with
// era stamping, and teardown draining.
//
// A *domain* is one reclamation instance; a data structure owns exactly
// one. Threads attach lazily on their first operation. All per-thread
// state is indexed by the dense runtime::my_tid().
#pragma once

#include <atomic>
#include <cassert>
#include <cstdio>
#include <memory>
#include <type_traits>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/env.hpp"
#include "runtime/padded.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/audit.hpp"
#include "smr/hp_slots.hpp"
#include "smr/retire_list.hpp"
#include "smr/smr_config.hpp"

namespace pop::smr {

class DomainCore {
 public:
  // `scheme` is the owning scheme's kName, carried only so contract-audit
  // reports can name the offender (audit.hpp).
  explicit DomainCore(const SmrConfig& cfg, const char* scheme = "?")
      : cfg_(cfg),
        scheme_(scheme),
        pressure_bound_(cfg.pressure_bound != 0
                            ? cfg.pressure_bound
                            : runtime::env_u64("POPSMR_PRESSURE_BOUND", 0)) {}

  ~DomainCore() {
    // Teardown frees everything still in flight by design; the shadow set
    // must not outlive the domain and report those drains as violations.
    if (audit::on()) shadow_.clear();
    // The owning data structure has been (or is being) destroyed: nothing
    // can still hold references, so drain every retire list. Only slots a
    // thread ever attached covers every retire list (threads attach on
    // their first operation, before any retire): a sharded service tears
    // down N short-lived domains per map, and an unconditional
    // kMaxThreads sweep per domain was the dominant teardown cost.
    const int hi = hi_tid_.load(std::memory_order_acquire);
    for (int t = 0; t <= hi; ++t) {
      auto& pt = *pt_[t];
      pt.stats.freed += pt.retire.drain();
    }
  }

  const SmrConfig& config() const { return cfg_; }

  // True exactly once per (thread, domain) *ownership*: the caller runs
  // its scheme-specific attach work when this returns true. Ownership is
  // epoch-aware: if the slot's recorded owner departed without detaching
  // (a killed worker) and the registry recycled the tid to the calling
  // thread, this returns true again — the new owner re-initializes the
  // scheme state instead of silently inheriting a corpse's reservations.
  // The fast path also feeds the reaper's heartbeat (one relaxed
  // increment on the thread's own registry line per operation bracket).
  bool attach_if_new(int tid) {
    auto& reg = runtime::ThreadRegistry::instance();
    reg.heartbeat_bump(tid);
    auto& pt = *pt_[tid];
    if (pt.attached.load(std::memory_order_relaxed) &&
        pt.owner_epoch.load(std::memory_order_relaxed) == reg.slot_epoch(tid)) {
      return false;
    }
    return attach_slow(tid);
  }

  void mark_detached(int tid) {
    // Runs on the detaching thread itself, so the thread-local bracket
    // depth it checks is the right one (the reaper clears `attached`
    // directly, never through here — a corpse's depth is unreachable).
    if (audit::on()) audit::check_detach(scheme_, tid);
    pt_[tid]->attached.store(false, std::memory_order_release);
  }

  bool attached(int tid) const {
    return pt_[tid]->attached.load(std::memory_order_acquire);
  }

  // Registry epoch recorded for the thread that owns `tid`'s state here.
  uint64_t owner_epoch(int tid) const {
    return pt_[tid]->owner_epoch.load(std::memory_order_relaxed);
  }

  // True iff `tid` is attached but its recorded owner is certified gone
  // (exited without detaching, or kernel-dead). Cheap enough for wait
  // loops: the common live-owner answer needs no syscall when the
  // heartbeat is advancing.
  bool owner_departed(int tid) {
    auto& pt = *pt_[tid];
    if (!pt.attached.load(std::memory_order_acquire)) return false;
    return runtime::ThreadRegistry::instance().owner_departed(
        tid, pt.owner_epoch.load(std::memory_order_relaxed));
  }

  // ---- zombie reaper -----------------------------------------------------
  //
  // Certifies attached tids whose owner is gone, neutralizes their
  // scheme-level reservation state via `neutralize(tid)`, and adopts
  // their orphaned retire lists into the calling thread's list so the
  // backlog rejoins normal sweeps. Certification rules, in order:
  //   1. registry slot epoch moved past the recorded owner epoch — the
  //      owner deregistered (normal exit without detach) or the slot was
  //      recycled; either way the recorded owner can never return.
  //   2. owner still registered but its heartbeat froze across
  //      kStaleScansBeforeProbe reap passes AND tgkill(sig 0) says the
  //      kernel thread is gone (TLS destructor never ran). The heartbeat
  //      gate keeps the syscall off the common path; tgkill alone
  //      certifies (a parked-but-live reader probes as alive).
  // Runs under a try-lock: reaps are rare, and skipping when another
  // thread is already reaping (or an attacher holds the lock) is always
  // safe — the next pass retries. Call from reclamation passes, before
  // computing the protected set, so neutralized state frees same-pass.
  template <class Neutralize>
  void reap_dead(int self_tid, Neutralize&& neutralize) {
    if (reap_mu_.exchange(true, std::memory_order_acquire)) return;
    const bool obs_timing = obs::latency_on() || obs::trace_on();
    const uint64_t obs_t0 = obs_timing ? obs::now_ns() : 0;
    uint64_t obs_reaped = 0;
    auto& reg = runtime::ThreadRegistry::instance();
    const int hi = hi_tid_.load(std::memory_order_acquire);
    for (int t = 0; t <= hi; ++t) {
      if (t == self_tid) continue;
      auto& pt = *pt_[t];
      if (!pt.attached.load(std::memory_order_acquire)) continue;
      const uint64_t owner = pt.owner_epoch.load(std::memory_order_relaxed);
      bool departed = reg.slot_epoch(t) != owner || !reg.alive(t);
      if (!departed) {
        // Same owner, still registered: suspicion requires a frozen
        // heartbeat across passes before the kernel probe is spent.
        const uint64_t hb = reg.heartbeat(t);
        if (hb != reap_hb_[t]) {
          reap_hb_[t] = hb;
          reap_stale_[t] = 0;
          continue;
        }
        if (++reap_stale_[t] < kStaleScansBeforeProbe) continue;
        reap_stale_[t] = 0;
        if (!reg.certify_zombie(t, owner)) continue;
        departed = true;
      }
      neutralize(t);
      const uint64_t adopted = pt_[self_tid]->retire.adopt(pt.retire);
      pt.attached.store(false, std::memory_order_release);
      auto& st = pt_[self_tid]->stats;
      st.tids_reaped += 1;
      st.orphans_adopted += adopted;
      ++obs_reaped;
      if (obs::trace_on()) {
        obs::trace_event(obs::TraceKind::kZombieCertified, obs::now_ns(), 0,
                         static_cast<uint32_t>(t));
      }
      std::fprintf(stderr,
                   "popsmr: reaped dead tid %d (adopted %llu orphaned "
                   "retires)\n",
                   t, static_cast<unsigned long long>(adopted));
    }
    reap_mu_.store(false, std::memory_order_release);
    // Reap certification duration only when the pass actually certified
    // someone — the common empty scan would otherwise drown the signal.
    if (obs_timing && obs_reaped > 0) {
      obs::record_latency(obs::LatOp::kReap, obs::now_ns() - obs_t0);
    }
  }

  // ---- memory-pressure backstop ------------------------------------------
  //
  // Returns true when the caller should run a forced reclamation pass:
  // the domain-wide unreclaimed count exceeds the configured bound. The
  // hot path pays one counter increment; the snapshot only runs every
  // kPressureCheckEvery retires. Callers follow a forced pass with
  // pressure_relieved_or_warn() — if the pass could not get back under
  // the bound (a pinned reservation legitimately holds nodes), the
  // backstop degrades to defer-and-warn rather than blocking or looping.
  bool pressure_check(int tid) {
    if (pressure_bound_ == 0) return false;
    auto& pt = *pt_[tid];
    if ((++pt.pressure_tick % kPressureCheckEvery) != 0) return false;
    if (stats_snapshot().unreclaimed() <= pressure_bound_) {
      pt.pressure_warned = false;
      return false;
    }
    pt.stats.pressure_events += 1;
    if (obs::trace_on()) {
      obs::trace_event(obs::TraceKind::kPressure, obs::now_ns(), 0,
                       static_cast<uint32_t>(tid));
    }
    return true;
  }

  void pressure_relieved_or_warn(int tid) {
    auto& pt = *pt_[tid];
    pt.stats.forced_handshakes += 1;
    const uint64_t now = stats_snapshot().unreclaimed();
    if (now <= pressure_bound_) {
      pt.pressure_warned = false;
      return;
    }
    if (!pt.pressure_warned) {
      pt.pressure_warned = true;
      std::fprintf(stderr,
                   "popsmr: memory pressure persists after forced pass "
                   "(unreclaimed=%llu > bound=%llu); deferring\n",
                   static_cast<unsigned long long>(now),
                   static_cast<unsigned long long>(pressure_bound_));
    }
  }

  uint64_t pressure_bound() const { return pressure_bound_; }

  // Allocates and constructs a node, stamping its birth era.
  template <class T, class... Args>
  T* create_node(uint64_t birth_era, Args&&... args) {
    static_assert(std::is_base_of_v<Reclaimable, T>,
                  "SMR-managed nodes must derive from smr::Reclaimable");
    T* n = runtime::PoolAllocator::instance().create<T>(
        std::forward<Args>(args)...);
    n->birth_era = birth_era;
    n->deleter = [](Reclaimable* r) {
      runtime::PoolAllocator::instance().destroy(static_cast<T*>(r));
    };
    // Batch hook: the sentinel lets sweeps free trivially destructible
    // nodes with zero per-node dispatch (the base-at-offset-0 check folds
    // to a constant); otherwise destroy in place and hand back the
    // allocation address for the batched splice.
    if (std::is_trivially_destructible_v<T> &&
        static_cast<void*>(n) == static_cast<void*>(
                                     static_cast<Reclaimable*>(n))) {
      n->batch_prep = &batch_prep_identity;
    } else {
      n->batch_prep = [](Reclaimable* r) noexcept -> void* {
        T* p = static_cast<T*>(r);
        p->~T();
        return p;
      };
    }
    return n;
  }

  // Batched reclamation pass over the caller's retire list: freeable
  // blocks are chained and returned to their heaps in grouped splices
  // (see PoolAllocator::FreeBatch) instead of one free per node.
  template <class Pred>
  uint64_t sweep_retired(int tid, Pred&& can_free) {
    const bool obs_timing = obs::latency_on() || obs::trace_on();
    const uint64_t obs_t0 = obs_timing ? obs::now_ns() : 0;
    runtime::PoolAllocator::FreeBatch batch;
    uint64_t freed;
    if (audit::on()) {
      // Audit wrapper: every block the sweep decides to free leaves the
      // shadow set here, so a recycled allocation retired again later is
      // a fresh insert, not a false double-retire.
      freed = pt_[tid]->retire.sweep_batch(
          [&](Reclaimable* node) {
            const bool f = can_free(node);
            if (f) shadow_.on_free(scheme_, tid, node);
            return f;
          },
          batch);
    } else {
      freed = pt_[tid]->retire.sweep_batch(std::forward<Pred>(can_free), batch);
    }
    if (obs_timing) {
      const uint64_t dt = obs::now_ns() - obs_t0;
      obs::record_latency(obs::LatOp::kSweep, dt);
      obs::trace_event(obs::TraceKind::kSweep, obs_t0, dt,
                       static_cast<uint32_t>(
                           freed > UINT32_MAX ? UINT32_MAX : freed));
    }
    return freed;
  }

  // Appends to the caller's retire list; returns the new length.
  uint64_t retire_push(int tid, Reclaimable* n, uint64_t retire_era) {
    auto& pt = *pt_[tid];
    if (audit::on()) shadow_.on_retire(scheme_, tid, n);
    n->retire_era = retire_era;
    pt.retire.push(n);
    pt.stats.retired += 1;
    if (obs::trace_on()) {  // guard keeps the clock read off the hot path
      obs::trace_event(obs::TraceKind::kRetire, obs::now_ns(), 0, 0);
    }
    if (pt.retire.length() > pt.stats.max_retire_len) {
      pt.stats.max_retire_len = pt.retire.length();
    }
    return pt.retire.length();
  }

  // Monotonic per-thread retire counter. Schemes whose reclamation pass
  // is expensive (the POP handshake, NBR's ack round) or whose sweeps can
  // legitimately keep nodes pinned (era schemes: any long-lived node's
  // lifespan intersects every current reservation) must trigger on this
  // — "one pass every threshold retires" — rather than on list length:
  // a length trigger re-runs the full pass on *every* retire once the
  // pinned population alone reaches the threshold, a reclamation storm
  // that degrades era-based publish-on-ping into a livelock.
  uint64_t retire_tick(int tid) { return ++pt_[tid]->retire_count; }

  RetireList& retire_list(int tid) { return pt_[tid]->retire; }
  ThreadStats& stats(int tid) { return pt_[tid]->stats; }

  // Contract-audit shadow state (tests inspect in_flight counts).
  audit::DomainShadow& audit_shadow() { return shadow_; }

  // Per-thread scratch for reservation scans (kMaxThreads * kMaxSlots
  // words ≈ 9 KiB). Owner-thread only; lazily allocated on the first
  // reclamation pass so idle (thread, domain) pairs cost nothing — and
  // every scheme's reclaim stops re-declaring it on the stack.
  uintptr_t* scan_scratch(int tid) {
    auto& pt = *pt_[tid];
    if (!pt.scan_scratch) {
      pt.scan_scratch = std::make_unique<uintptr_t[]>(
          static_cast<std::size_t>(runtime::kMaxThreads) * kMaxSlots);
    }
    return pt.scan_scratch.get();
  }

  StatsSnapshot stats_snapshot() const {
    StatsSnapshot s;
    // Same bound as teardown: slots past the attach high-water have never
    // been written (the mem-timeline sampler calls this at cadence, and a
    // sharded service multiplies it by the shard count).
    const int hi = hi_tid_.load(std::memory_order_acquire);
    for (int t = 0; t <= hi; ++t) s.absorb(pt_[t]->stats);
    return s;
  }

  // Largest tid that ever attached to this domain (-1: none); bounds
  // per-domain sweeps the way ThreadRegistry::max_tid bounds global ones.
  int max_attached_tid() const {
    return hi_tid_.load(std::memory_order_acquire);
  }

  DomainCore(const DomainCore&) = delete;
  DomainCore& operator=(const DomainCore&) = delete;

 private:
  // Heartbeat-frozen reap passes before spending a tgkill probe on a
  // same-epoch registered laggard.
  static constexpr uint8_t kStaleScansBeforeProbe = 2;
  // Retires between domain-wide unreclaimed snapshots for the pressure
  // backstop (the snapshot walks hi_tid_ slots).
  static constexpr uint64_t kPressureCheckEvery = 32;

  struct PerThread {
    RetireList retire;
    ThreadStats stats;
    uint64_t retire_count = 0;  // owner-thread only
    uint64_t pressure_tick = 0;  // owner-thread only
    bool pressure_warned = false;  // owner-thread only
    std::unique_ptr<uintptr_t[]> scan_scratch;  // owner-thread only
    std::atomic<bool> attached{false};
    // Registry epoch of the thread this slot's state belongs to; lets the
    // reaper (and a recycled-tid attacher) tell a live owner from a
    // corpse. Relaxed everywhere: change-detection only.
    std::atomic<uint64_t> owner_epoch{0};
  };

  // Slow path of attach_if_new: first attach, or takeover of a slot whose
  // previous owner departed without detaching. Serialized against
  // reap_dead by the reap lock so a reaper can never neutralize state the
  // new owner just initialized (and vice versa).
  bool attach_slow(int tid) {
    auto& reg = runtime::ThreadRegistry::instance();
    while (reap_mu_.exchange(true, std::memory_order_acquire)) {
      while (reap_mu_.load(std::memory_order_relaxed)) {
      }
    }
    auto& pt = *pt_[tid];
    // High-water mark of attached tids, raised before the attach flag so
    // teardown/snapshot sweeps bounded by it can never miss this slot.
    int hw = hi_tid_.load(std::memory_order_relaxed);
    while (hw < tid &&
           !hi_tid_.compare_exchange_weak(hw, tid, std::memory_order_acq_rel)) {
    }
    pt.owner_epoch.store(reg.slot_epoch(tid), std::memory_order_relaxed);
    pt.attached.store(true, std::memory_order_release);
    reap_mu_.store(false, std::memory_order_release);
    return true;
  }

  SmrConfig cfg_;
  const char* scheme_;
  audit::DomainShadow shadow_;
  uint64_t pressure_bound_;
  std::atomic<int> hi_tid_{-1};
  std::atomic<bool> reap_mu_{false};
  // Reaper bookkeeping, guarded by reap_mu_ (no atomics needed).
  uint64_t reap_hb_[runtime::kMaxThreads] = {};
  uint8_t reap_stale_[runtime::kMaxThreads] = {};
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
};

// Frees a node that was created but never published into the shared
// structure (e.g. a failed insert's fresh node): no reclamation protocol
// is needed because no other thread can have seen it.
template <class T>
void destroy_unpublished(T* p) noexcept {
  runtime::PoolAllocator::instance().destroy(p);
}

// ---- batch bracket ---------------------------------------------------------
//
// A pipelined front end (the networked KV server) drains a whole batch of
// point operations per wakeup. Opening and closing the scheme's operation
// bracket once per *batch* instead of once per op amortizes the per-op
// entry cost — for the epoch/era schemes that is the seq_cst announcement
// store, the exact cost axis the paper measures — at the price of holding
// the entry-time reservation for the whole batch (a strictly longer
// operation, which every scheme already supports: park_in_operation holds
// a bare bracket for an unbounded sleep).
//
// Mechanism: IKV::batch_begin() opens the domain bracket(s) and bumps the
// calling thread's batch depth; while the depth is non-zero, OpGuard
// skips its begin_op/end_op pair because the batch's bracket is already
// open. NBR is excluded (OpGuard never skips for kNeutralizes schemes):
// its neutralization longjmp targets the checkpoint armed by the current
// operation's stack frame, so the read-phase flag must be cleared by each
// op's own end_op — a skipped end_op would leave a live checkpoint
// pointing into a dead frame.
//
// Contract: between batch_begin and the matching batch_end the calling
// thread must operate only on the map whose bracket it opened (the depth
// is thread-global, not per-domain — an op on an unbracketed map would
// silently skip its guard). The bracket must never be held across a
// blocking wait (the server brackets the drain of already-buffered bytes,
// never the epoll_wait).
namespace detail {
inline thread_local uint32_t tl_batch_depth = 0;
}  // namespace detail

inline void batch_scope_enter() { ++detail::tl_batch_depth; }
inline void batch_scope_exit() { --detail::tl_batch_depth; }
inline bool in_batch_scope() { return detail::tl_batch_depth != 0; }

// RAII operation bracket used by the data structures:
//   typename Smr::Guard g(smr);
template <class Domain>
class OpGuard {
 public:
  // smr-lint: allow(R3) — OpGuard IS the begin_op/end_op bracket.
  explicit OpGuard(Domain& d)
      : d_(d), skip_(!Domain::kNeutralizes && in_batch_scope()) {
    // Audit bracket depth: a skipped guard is still inside the batch
    // bracket (which did its own audit::bracket_enter), so only count the
    // brackets this guard actually opens.
    if (!skip_) {
      d_.begin_op();
      audit::bracket_enter();
    }
  }
  ~OpGuard() {  // smr-lint: allow(R3) — closes the bracket the ctor opened
    if (!skip_) {
      audit::bracket_exit();
      d_.end_op();
    }
  }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Domain& d_;
  const bool skip_;
};

}  // namespace pop::smr
