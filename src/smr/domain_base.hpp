// DomainCore: bookkeeping shared by every reclamation scheme — per-thread
// retire lists, statistics, attach/detach flags, node construction with
// era stamping, and teardown draining.
//
// A *domain* is one reclamation instance; a data structure owns exactly
// one. Threads attach lazily on their first operation. All per-thread
// state is indexed by the dense runtime::my_tid().
#pragma once

#include <atomic>
#include <cassert>
#include <memory>
#include <type_traits>
#include <utility>

#include "runtime/padded.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/hp_slots.hpp"
#include "smr/retire_list.hpp"
#include "smr/smr_config.hpp"

namespace pop::smr {

class DomainCore {
 public:
  explicit DomainCore(const SmrConfig& cfg) : cfg_(cfg) {}

  ~DomainCore() {
    // The owning data structure has been (or is being) destroyed: nothing
    // can still hold references, so drain every retire list. Only slots a
    // thread ever attached covers every retire list (threads attach on
    // their first operation, before any retire): a sharded service tears
    // down N short-lived domains per map, and an unconditional
    // kMaxThreads sweep per domain was the dominant teardown cost.
    const int hi = hi_tid_.load(std::memory_order_acquire);
    for (int t = 0; t <= hi; ++t) {
      auto& pt = *pt_[t];
      pt.stats.freed += pt.retire.drain();
    }
  }

  const SmrConfig& config() const { return cfg_; }

  // True exactly once per (thread, domain): the caller runs its
  // scheme-specific attach work when this returns true.
  bool attach_if_new(int tid) {
    auto& pt = *pt_[tid];
    if (pt.attached.load(std::memory_order_relaxed)) return false;
    // High-water mark of attached tids, raised before the attach flag so
    // teardown/snapshot sweeps bounded by it can never miss this slot.
    int hw = hi_tid_.load(std::memory_order_relaxed);
    while (hw < tid &&
           !hi_tid_.compare_exchange_weak(hw, tid, std::memory_order_acq_rel)) {
    }
    pt.attached.store(true, std::memory_order_release);
    return true;
  }

  void mark_detached(int tid) {
    pt_[tid]->attached.store(false, std::memory_order_release);
  }

  bool attached(int tid) const {
    return pt_[tid]->attached.load(std::memory_order_acquire);
  }

  // Allocates and constructs a node, stamping its birth era.
  template <class T, class... Args>
  T* create_node(uint64_t birth_era, Args&&... args) {
    static_assert(std::is_base_of_v<Reclaimable, T>,
                  "SMR-managed nodes must derive from smr::Reclaimable");
    T* n = runtime::PoolAllocator::instance().create<T>(
        std::forward<Args>(args)...);
    n->birth_era = birth_era;
    n->deleter = [](Reclaimable* r) {
      runtime::PoolAllocator::instance().destroy(static_cast<T*>(r));
    };
    // Batch hook: the sentinel lets sweeps free trivially destructible
    // nodes with zero per-node dispatch (the base-at-offset-0 check folds
    // to a constant); otherwise destroy in place and hand back the
    // allocation address for the batched splice.
    if (std::is_trivially_destructible_v<T> &&
        static_cast<void*>(n) == static_cast<void*>(
                                     static_cast<Reclaimable*>(n))) {
      n->batch_prep = &batch_prep_identity;
    } else {
      n->batch_prep = [](Reclaimable* r) noexcept -> void* {
        T* p = static_cast<T*>(r);
        p->~T();
        return p;
      };
    }
    return n;
  }

  // Batched reclamation pass over the caller's retire list: freeable
  // blocks are chained and returned to their heaps in grouped splices
  // (see PoolAllocator::FreeBatch) instead of one free per node.
  template <class Pred>
  uint64_t sweep_retired(int tid, Pred&& can_free) {
    runtime::PoolAllocator::FreeBatch batch;
    return pt_[tid]->retire.sweep_batch(std::forward<Pred>(can_free), batch);
  }

  // Appends to the caller's retire list; returns the new length.
  uint64_t retire_push(int tid, Reclaimable* n, uint64_t retire_era) {
    auto& pt = *pt_[tid];
    n->retire_era = retire_era;
    pt.retire.push(n);
    pt.stats.retired += 1;
    if (pt.retire.length() > pt.stats.max_retire_len) {
      pt.stats.max_retire_len = pt.retire.length();
    }
    return pt.retire.length();
  }

  // Monotonic per-thread retire counter. Schemes whose reclamation pass
  // is expensive (the POP handshake, NBR's ack round) or whose sweeps can
  // legitimately keep nodes pinned (era schemes: any long-lived node's
  // lifespan intersects every current reservation) must trigger on this
  // — "one pass every threshold retires" — rather than on list length:
  // a length trigger re-runs the full pass on *every* retire once the
  // pinned population alone reaches the threshold, a reclamation storm
  // that degrades era-based publish-on-ping into a livelock.
  uint64_t retire_tick(int tid) { return ++pt_[tid]->retire_count; }

  RetireList& retire_list(int tid) { return pt_[tid]->retire; }
  ThreadStats& stats(int tid) { return pt_[tid]->stats; }

  // Per-thread scratch for reservation scans (kMaxThreads * kMaxSlots
  // words ≈ 9 KiB). Owner-thread only; lazily allocated on the first
  // reclamation pass so idle (thread, domain) pairs cost nothing — and
  // every scheme's reclaim stops re-declaring it on the stack.
  uintptr_t* scan_scratch(int tid) {
    auto& pt = *pt_[tid];
    if (!pt.scan_scratch) {
      pt.scan_scratch = std::make_unique<uintptr_t[]>(
          static_cast<std::size_t>(runtime::kMaxThreads) * kMaxSlots);
    }
    return pt.scan_scratch.get();
  }

  StatsSnapshot stats_snapshot() const {
    StatsSnapshot s;
    // Same bound as teardown: slots past the attach high-water have never
    // been written (the mem-timeline sampler calls this at cadence, and a
    // sharded service multiplies it by the shard count).
    const int hi = hi_tid_.load(std::memory_order_acquire);
    for (int t = 0; t <= hi; ++t) s.absorb(pt_[t]->stats);
    return s;
  }

  // Largest tid that ever attached to this domain (-1: none); bounds
  // per-domain sweeps the way ThreadRegistry::max_tid bounds global ones.
  int max_attached_tid() const {
    return hi_tid_.load(std::memory_order_acquire);
  }

  DomainCore(const DomainCore&) = delete;
  DomainCore& operator=(const DomainCore&) = delete;

 private:
  struct PerThread {
    RetireList retire;
    ThreadStats stats;
    uint64_t retire_count = 0;  // owner-thread only
    std::unique_ptr<uintptr_t[]> scan_scratch;  // owner-thread only
    std::atomic<bool> attached{false};
  };

  SmrConfig cfg_;
  std::atomic<int> hi_tid_{-1};
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
};

// Frees a node that was created but never published into the shared
// structure (e.g. a failed insert's fresh node): no reclamation protocol
// is needed because no other thread can have seen it.
template <class T>
void destroy_unpublished(T* p) noexcept {
  runtime::PoolAllocator::instance().destroy(p);
}

// RAII operation bracket used by the data structures:
//   typename Smr::Guard g(smr);
template <class Domain>
class OpGuard {
 public:
  explicit OpGuard(Domain& d) : d_(d) { d_.begin_op(); }
  ~OpGuard() { d_.end_op(); }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  Domain& d_;
};

}  // namespace pop::smr
