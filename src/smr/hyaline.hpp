// BRC — batched reference-counted reclamation, the repo's stand-in for
// Crystalline (appendix Figures 10-11; see DESIGN.md §5).
//
// Crystalline/Hyaline free a retired batch when the last reader that
// could reference it departs, using distributed reference counts instead
// of reservation scans. We reproduce that *shape* with an SRCU-style
// two-phase scheme: readers announce entry/exit on per-thread sharded
// counters tagged with the current phase; a reclaimer flips the phase and
// waits until both phases drain (two grace periods), after which every
// node retired before the flip is unreferenced and the whole batch is
// freed at once.
//
// Reader cost: one SWMR counter store + fence per operation (no per-read
// work) — the same fast-reader/low-memory profile the Crystalline
// comparison exhibits. Like EBR it is not robust: a parked reader delays
// grace periods (the bench harness reports this in the memory metrics).
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class BrcDomain {
 public:
  static constexpr const char* kName = "BRC";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<BrcDomain>;

  explicit BrcDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      // Takeover of a recycled tid: the dead previous owner may have died
      // inside a critical section, leaving enters > exits. Balance the
      // shard before this thread's first announcement or every future
      // drain of that phase spins forever.
      balance_corpse(tid);
    }
  }
  void detach() { core_.mark_detached(runtime::my_tid()); }

  void begin_op() {
    attach();
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    // Announce-and-revalidate (the classic SRCU entry subtlety): between
    // reading the phase and announcing, a reclaimer can flip that phase
    // and run its drain — the drain balances before our announcement
    // lands, the batch frees, and the critical section runs unprotected
    // (observed in practice as a reader traversing recycled node memory;
    // found by the TSan CI job). So announce, then re-read the phase:
    // unchanged means any later flip's drain is seq_cst-after our entry
    // store and must count us; changed means we might have been missed —
    // withdraw (rebalancing the shard for the drain that skipped us) and
    // re-announce. The comparison is on the FULL counter, not the parity:
    // one reclaim pass flips twice, so parity alone revalidates
    // spuriously when both flips (and both drains) land inside the
    // window. Flips are reclaim-rate rare, so the loop almost never
    // iterates.
    for (;;) {
      const uint64_t ph = phase_.load(std::memory_order_seq_cst);  // seq_cst
      const uint32_t p = static_cast<uint32_t>(ph) & 1u;
      // The announce is totally ordered against the drain's phase flip:
      // either the flip sees this entry or the revalidation sees the
      // flip — never neither. Hence seq_cst.
      pt.enters[p].store(pt.enters[p].load(std::memory_order_relaxed) + 1,
                         std::memory_order_seq_cst);
      // seq_cst revalidate: must not reorder before the announce above.
      if (phase_.load(std::memory_order_seq_cst) == ph) {
        pt.my_phase = p;
        break;
      }
      // seq_cst withdraw: keeps the stale shard balanced for its drain.
      pt.exits[p].store(pt.exits[p].load(std::memory_order_relaxed) + 1,
                        std::memory_order_seq_cst);
    }
  }

  void end_op() {
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    const uint32_t p = pt.my_phase;
    pt.exits[p].store(pt.exits[p].load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
    // Grace periods block, so they must run outside the critical section:
    // a reclaimer waiting for readers while itself counted as a reader
    // would deadlock against a second reclaimer doing the same.
    if (pt.reclaim_pending) {
      pt.reclaim_pending = false;
      reclaim(tid);
      if (pt.pressure_forced) {
        pt.pressure_forced = false;
        core_.pressure_relieved_or_warn(tid);
      }
    }
  }

  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    return src.load(std::memory_order_acquire);
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    if (core_.retire_push(tid, n, 0) >= core_.config().retire_threshold) {
      pt_[tid]->reclaim_pending = true;  // executed at end_op
    } else if (core_.pressure_check(tid)) {
      // Grace periods block, so even the forced pass must wait for
      // end_op; mark it so the backstop accounting runs after the pass.
      pt_[tid]->reclaim_pending = true;
      pt_[tid]->pressure_forced = true;
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  // Two grace periods: after both, every reader that was in a critical
  // section when reclaim() began has exited, so every node unlinked and
  // retired before that point is unreferenced.
  void reclaim(int tid) {
    core_.reap_dead(tid, [this](int t) { balance_corpse(t); });
    for (int round = 0; round < 2; ++round) {
      // Orders against readers' announce-and-revalidate (begin_op): a
      // reader whose entry predates the flip is always visible to the
      // drain below — hence seq_cst on the flip.
      const uint32_t old_phase = static_cast<uint32_t>(
          phase_.fetch_add(1, std::memory_order_seq_cst) & 1u);
      drain(old_phase, tid);
    }
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [](Reclaimable*) { return true; });
  }

  void drain(uint32_t p, int self) {
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      auto& pt = *pt_[t];
      runtime::SpinThenYield waiter;
      uint32_t spins = 0;
      // Late entries into phase p (threads that read the phase just before
      // the flip) still increment enters[p] and eventually exits[p]; spin
      // until the shard balances. seq_cst reads: an entry store that is
      // seq_cst-before our flip must be visible here, or the reader's
      // revalidation load would have seen the flip and withdrawn.
      while (pt.exits[p].load(std::memory_order_seq_cst) !=
             pt.enters[p].load(std::memory_order_seq_cst)) {
        // A thread that died inside its critical section never exits —
        // without this escape the grace period livelocks on the corpse.
        // Route the balancing through the reaper (never balance in place
        // here): reap_dead re-checks ownership under the lock that
        // serializes recycled-tid takeovers, so a just-attached new owner
        // cannot have its counters clobbered by a stale corpse snapshot.
        if ((++spins & 1023u) == 0 && core_.owner_departed(t)) {
          core_.reap_dead(self, [this](int z) { balance_corpse(z); });
          continue;  // certification may need further passes; re-test
        }
        waiter.wait();
      }
    }
  }

  // Balances both phase shards of a departed owner's slot: the corpse can
  // never run its exits, and a frozen enters>exits blocks every future
  // grace period. Called only under the domain reap lock (reap_dead /
  // takeover attach), where the counters cannot move concurrently.
  void balance_corpse(int t) {
    auto& pt = *pt_[t];
    for (int p = 0; p < 2; ++p) {
      pt.exits[p].store(pt.enters[p].load(std::memory_order_relaxed),
                        std::memory_order_release);
    }
  }

  struct PerThread {
    std::atomic<uint64_t> enters[2] = {};
    std::atomic<uint64_t> exits[2] = {};
    uint32_t my_phase = 0;
    bool reclaim_pending = false;
    bool pressure_forced = false;  // owner-thread only
  };

  DomainCore core_;
  // u64: the entry revalidation compares full counter values, so wrap
  // (the parity-ABA at 2^32 flips) is out of reach in practice.
  std::atomic<uint64_t> phase_{0};
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
};

}  // namespace pop::smr
