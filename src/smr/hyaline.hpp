// BRC — batched reference-counted reclamation, the repo's stand-in for
// Crystalline (appendix Figures 10-11; see DESIGN.md §5).
//
// Crystalline/Hyaline free a retired batch when the last reader that
// could reference it departs, using distributed reference counts instead
// of reservation scans. We reproduce that *shape* with an SRCU-style
// two-phase scheme: readers announce entry/exit on per-thread sharded
// counters tagged with the current phase; a reclaimer flips the phase and
// waits until both phases drain (two grace periods), after which every
// node retired before the flip is unreferenced and the whole batch is
// freed at once.
//
// Reader cost: one SWMR counter store + fence per operation (no per-read
// work) — the same fast-reader/low-memory profile the Crystalline
// comparison exhibits. Like EBR it is not robust: a parked reader delays
// grace periods (the bench harness reports this in the memory metrics).
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class BrcDomain {
 public:
  static constexpr const char* kName = "BRC";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<BrcDomain>;

  explicit BrcDomain(const SmrConfig& cfg = {}) : core_(cfg) {}

  void attach() { core_.attach_if_new(runtime::my_tid()); }
  void detach() { core_.mark_detached(runtime::my_tid()); }

  void begin_op() {
    attach();
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    const uint32_t p = phase_.load(std::memory_order_acquire) & 1u;
    pt.my_phase = p;
    // seq_cst: entry announcement ordered before the operation's reads.
    pt.enters[p].store(pt.enters[p].load(std::memory_order_relaxed) + 1,
                       std::memory_order_seq_cst);
  }

  void end_op() {
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    const uint32_t p = pt.my_phase;
    pt.exits[p].store(pt.exits[p].load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
    // Grace periods block, so they must run outside the critical section:
    // a reclaimer waiting for readers while itself counted as a reader
    // would deadlock against a second reclaimer doing the same.
    if (pt.reclaim_pending) {
      pt.reclaim_pending = false;
      reclaim(tid);
    }
  }

  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    return src.load(std::memory_order_acquire);
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    if (core_.retire_push(tid, n, 0) >= core_.config().retire_threshold) {
      pt_[tid]->reclaim_pending = true;  // executed at end_op
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  // Two grace periods: after both, every reader that was in a critical
  // section when reclaim() began has exited, so every node unlinked and
  // retired before that point is unreferenced.
  void reclaim(int tid) {
    for (int round = 0; round < 2; ++round) {
      const uint32_t old_phase = phase_.fetch_add(1, std::memory_order_acq_rel) & 1u;
      drain(old_phase, tid);
    }
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [](Reclaimable*) { return true; });
  }

  void drain(uint32_t p, int /*self*/) {
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      auto& pt = *pt_[t];
      runtime::SpinThenYield waiter;
      // Late entries into phase p (threads that read the phase just before
      // the flip) still increment enters[p] and eventually exits[p]; spin
      // until the shard balances.
      while (pt.exits[p].load(std::memory_order_acquire) !=
             pt.enters[p].load(std::memory_order_acquire)) {
        waiter.wait();
      }
    }
  }

  struct PerThread {
    std::atomic<uint64_t> enters[2] = {};
    std::atomic<uint64_t> exits[2] = {};
    uint32_t my_phase = 0;
    bool reclaim_pending = false;
  };

  DomainCore core_;
  std::atomic<uint32_t> phase_{0};
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
};

}  // namespace pop::smr
