// Slow paths and global state for the SMR contract sanitizer (audit.hpp).
#include "smr/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/env.hpp"

namespace pop::smr::audit {

namespace detail {

std::atomic<int> g_state{0};
thread_local uint32_t tl_bracket_depth = 0;

// 0 = uninitialized (consult POPSMR_AUDIT_MODE), 1 = warn, 2 = abort.
std::atomic<int> g_abort{0};

// Per-kind counters plus a warned-once latch for warn mode.
std::atomic<uint64_t> g_violations[kViolationCount] = {};
std::atomic<bool> g_warned[kViolationCount] = {};

int init_slow() {
  int want = runtime::env_u64("POPSMR_AUDIT", 0) != 0 ? 2 : 1;
  int expected = 0;
  if (!g_state.compare_exchange_strong(expected, want,
                                       std::memory_order_relaxed)) {
    want = expected;  // lost the race: someone else initialized
  }
  return want;
}

int abort_init_slow() {
  // Abort by default: a test suite wants the corpse at the violation
  // site, not a corrupted run. Benches opt into warn.
  int want = runtime::env_str("POPSMR_AUDIT_MODE", "abort") == "warn" ? 1 : 2;
  int expected = 0;
  if (!g_abort.compare_exchange_strong(expected, want,
                                       std::memory_order_relaxed)) {
    want = expected;
  }
  return want;
}

void report(Violation v, const char* scheme, int tid, const void* ptr) {
  const int i = static_cast<int>(v);
  g_violations[i].fetch_add(1, std::memory_order_relaxed);
  int mode = g_abort.load(std::memory_order_relaxed);
  if (mode == 0) mode = abort_init_slow();
  if (mode == 2) {
    std::fprintf(stderr,
                 "popsmr-audit: FATAL %s: scheme=%s tid=%d ptr=%p\n",
                 violation_name(v), scheme, tid, ptr);
    std::abort();
  }
  if (!g_warned[i].exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "popsmr-audit: %s: scheme=%s tid=%d ptr=%p "
                 "(warn mode; further %s violations counted silently)\n",
                 violation_name(v), scheme, tid, ptr, violation_name(v));
  }
}

}  // namespace detail

const char* violation_name(Violation v) {
  switch (v) {
    case Violation::kDoubleRetire:      return "double_retire";
    case Violation::kRetireOutsideOp:   return "retire_outside_op";
    case Violation::kUnbalancedBracket: return "unbalanced_bracket";
    case Violation::kFreeNeverRetired:  return "free_never_retired";
    default:                            return "unknown";
  }
}

void set_enabled(bool enabled) {
  if constexpr (!kCompiled) return;
  detail::g_state.store(enabled ? 2 : 1, std::memory_order_relaxed);
}

void set_abort_on_violation(bool abort_on_violation) {
  detail::g_abort.store(abort_on_violation ? 2 : 1,
                        std::memory_order_relaxed);
}

bool abort_on_violation() {
  int mode = detail::g_abort.load(std::memory_order_relaxed);
  if (mode == 0) mode = detail::abort_init_slow();
  return mode == 2;
}

uint64_t violations() {
  uint64_t total = 0;
  for (const auto& c : detail::g_violations) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t violations(Violation v) {
  return detail::g_violations[static_cast<int>(v)].load(
      std::memory_order_relaxed);
}

void reset() {
  for (auto& c : detail::g_violations) c.store(0, std::memory_order_relaxed);
  for (auto& w : detail::g_warned) w.store(false, std::memory_order_relaxed);
}

void check_detach(const char* scheme, int tid) {
  if constexpr (!kCompiled) return;
  if (!on()) return;
  if (detail::tl_bracket_depth != 0) {
    detail::report(Violation::kUnbalancedBracket, scheme, tid, nullptr);
    detail::tl_bracket_depth = 0;
  }
}

void DomainShadow::on_retire(const char* scheme, int tid, const void* p) {
  if (detail::tl_bracket_depth == 0) {
    detail::report(Violation::kRetireOutsideOp, scheme, tid, p);
  }
  bool fresh;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fresh = set_.insert(p).second;
  }
  if (!fresh) detail::report(Violation::kDoubleRetire, scheme, tid, p);
}

void DomainShadow::on_free(const char* scheme, int tid, const void* p) {
  bool known;
  {
    std::lock_guard<std::mutex> lock(mu_);
    known = set_.erase(p) != 0;
  }
  if (!known) detail::report(Violation::kFreeNeverRetired, scheme, tid, p);
}

void DomainShadow::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  set_.clear();
}

uint64_t DomainShadow::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return set_.size();
}

}  // namespace pop::smr::audit
