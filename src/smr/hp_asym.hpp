// HPAsym — hazard pointers with an asymmetric process-wide barrier, the
// optimized Folly-style implementation the paper adds to the NBR benchmark
// (§5: "an optimized Linux sys_membarrier-based version of HP").
//
// Readers publish reservations with a plain store and a compiler-only
// barrier; the StoreLoad ordering that classic HP buys with a per-read
// fence is supplied once per reclamation pass by a heavy process-wide
// fence (sys_membarrier, or a signal broadcast where the syscall is
// unavailable). Either the reader's reservation is visible to the scan, or
// the reader's validation re-read observes the unlink and retries.
#pragma once

#include <atomic>

#include "runtime/asym_fence.hpp"
#include "smr/domain_base.hpp"
#include "smr/hp_slots.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class HpAsymDomain {
 public:
  static constexpr const char* kName = "HPAsym";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<HpAsymDomain>;

  explicit HpAsymDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      // Drop slot values a dead previous owner of this tid may have left.
      slots_.clear_row(tid, core_.config().num_slots);
      // The signal-broadcast fallback must be able to reach this thread.
      runtime::detail::attach_barrier_client_for_current_thread();
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    slots_.clear_row(tid, core_.config().num_slots);
    core_.mark_detached(tid);
  }

  void begin_op() { attach(); }
  void end_op() { clear(); }

  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      slots_.at(tid, slot).store(
          reinterpret_cast<uintptr_t>(strip_mark(p)),
          std::memory_order_release);
      runtime::AsymFence::light_fence();  // compiler barrier only
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    slots_.at(tid, dst).store(
        slots_.at(tid, src).load(std::memory_order_relaxed),
        std::memory_order_release);
  }

  void clear() {
    slots_.clear_row(runtime::my_tid(), core_.config().num_slots);
  }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    core_.retire_push(tid, n, 0);
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      scan(tid);
    } else if (core_.pressure_check(tid)) {
      scan(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  void scan(int tid) {
    core_.reap_dead(tid, [this](int t) {
      slots_.clear_row(t, core_.config().num_slots);
    });
    // Make every reader's published-but-unfenced reservation visible.
    runtime::AsymFence::instance().heavy_fence();
    uintptr_t* reserved = core_.scan_scratch(tid);
    const int n = slots_.collect(core_.config().num_slots, reserved);
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      return !SlotTable::contains(reserved, n,
                                  reinterpret_cast<uintptr_t>(node));
    });
  }

  DomainCore core_;
  SlotTable slots_;
};

}  // namespace pop::smr
