// Convenience include: every reclamation scheme in the library.
#pragma once

#include "core/epoch_pop.hpp"      // EpochPOP        (paper Alg. 3)
#include "core/hazard_era_pop.hpp" // HazardEraPOP    (paper Alg. 5)
#include "core/hazard_ptr_pop.hpp" // HazardPtrPOP    (paper Alg. 1+2)
#include "smr/ebr.hpp"             // EBR             (paper Alg. 6)
#include "smr/he.hpp"              // HE              (paper Alg. 4)
#include "smr/hp.hpp"              // HP
#include "smr/hp_asym.hpp"         // HPAsym (Folly-style)
#include "smr/hyaline.hpp"         // BRC (Crystalline substitute)
#include "smr/ibr.hpp"             // IBR (2GE)
#include "smr/nbr.hpp"             // NBR+
#include "smr/nr.hpp"              // NR (leaky)
