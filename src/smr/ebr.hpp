// EBR — epoch-based reclamation, RCU style (the paper's Algorithm 6, the
// substrate of EpochPOP's fast path).
//
// A thread announces the global epoch on operation entry and announces
// quiescence (kQuiescent) on exit; one announcement fence per *operation*
// instead of per read. A reclaimer frees nodes retired before the minimum
// announced epoch. Not robust: a thread parked inside an operation pins
// the minimum epoch and stops all reclamation — the failure mode EpochPOP
// exists to fix (and which tests/smr_robustness demonstrates).
#pragma once

#include <atomic>
#include <cstdint>

#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class EbrDomain {
 public:
  static constexpr const char* kName = "EBR";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<EbrDomain>;
  static constexpr uint64_t kQuiescent = UINT64_MAX;

  explicit EbrDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      reserved_[tid]->v.store(kQuiescent, std::memory_order_release);
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    reserved_[tid]->v.store(kQuiescent, std::memory_order_release);
    core_.mark_detached(tid);
  }

  void begin_op() {
    attach();
    const int tid = runtime::my_tid();
    if (++op_counter_[tid]->v % core_.config().epoch_freq == 0) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    // seq_cst store: announcement ordered before the operation's reads.
    reserved_[tid]->v.store(epoch_.load(std::memory_order_acquire),
                            std::memory_order_seq_cst);
  }

  void end_op() {
    reserved_[runtime::my_tid()]->v.store(kQuiescent,
                                          std::memory_order_release);
  }

  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    return src.load(std::memory_order_acquire);  // epoch covers the read
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(epoch_.load(std::memory_order_acquire),
                                std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    if (core_.retire_push(tid, n, e) % core_.config().retire_threshold == 0) {
      scan(tid);
    } else if (core_.pressure_check(tid)) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      scan(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  void scan(int tid) {
    // A corpse that died inside an operation pins the minimum epoch
    // forever; certify and park it at quiescent before computing the min.
    core_.reap_dead(tid, [this](int t) {
      reserved_[t]->v.store(kQuiescent, std::memory_order_release);
    });
    uint64_t min_reserved = kQuiescent;
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      const uint64_t r = reserved_[t]->v.load(std::memory_order_acquire);
      if (r < min_reserved) min_reserved = r;
    }
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      return node->retire_era < min_reserved;
    });
  }

  struct Counter {
    uint64_t v = 0;
  };

  // Starts quiescent: a zero-initialized slot would read as "reserved at
  // epoch 0" in scan() for registry tids that never attached to this
  // domain and pin every retired node forever.
  struct ReservedEpoch {
    std::atomic<uint64_t> v{kQuiescent};
  };

  DomainCore core_;
  std::atomic<uint64_t> epoch_{1};
  runtime::Padded<ReservedEpoch> reserved_[runtime::kMaxThreads];
  runtime::Padded<Counter> op_counter_[runtime::kMaxThreads];
};

}  // namespace pop::smr
