// Intrusive per-thread retire list. Single-owner: only the owning thread
// pushes and scans, so no synchronization is needed.
#pragma once

#include <cstdint>

#include "runtime/pool_alloc.hpp"
#include "smr/reclaimable.hpp"

namespace pop::smr {

class RetireList {
 public:
  void push(Reclaimable* n) noexcept {
    n->rl_next = head_;
    head_ = n;
    ++len_;
  }

  uint64_t length() const noexcept { return len_; }
  bool empty() const noexcept { return head_ == nullptr; }

  // Walks the list; frees nodes where `can_free(node)` by invoking their
  // deleter, keeps the rest. Returns the number freed. Per-node path kept
  // for nodes outside the pool allocator; reclamation passes should use
  // sweep_batch below.
  template <class Pred>
  uint64_t sweep(Pred&& can_free) noexcept {
    Reclaimable* kept_head = nullptr;
    uint64_t kept = 0;
    uint64_t freed = 0;
    Reclaimable* cur = head_;
    while (cur != nullptr) {
      Reclaimable* next = cur->rl_next;
      if (can_free(cur)) {
        cur->deleter(cur);
        ++freed;
      } else {
        cur->rl_next = kept_head;
        kept_head = cur;
        ++kept;
      }
      cur = next;
    }
    head_ = kept_head;
    len_ = kept;
    return freed;
  }

  // Batched sweep: destroys freeable nodes (running non-trivial
  // destructors via batch_prep) and chains their memory into `batch`
  // instead of freeing one block at a time — the batch splices whole
  // groups back to their owning heaps with one CAS per (heap, class).
  // Trivially destructible nodes (batch_prep_identity) skip the per-node
  // indirect call entirely; nodes without a batch hook fall back to their
  // deleter. Returns the number freed.
  template <class Pred>
  uint64_t sweep_batch(Pred&& can_free,
                       runtime::PoolAllocator::FreeBatch& batch) noexcept {
    Reclaimable* kept_head = nullptr;
    uint64_t kept = 0;
    uint64_t freed = 0;
    Reclaimable* cur = head_;
    while (cur != nullptr) {
      Reclaimable* next = cur->rl_next;
      if (can_free(cur)) {
        if (cur->batch_prep == &batch_prep_identity) {
          batch.add(cur);
        } else if (cur->batch_prep != nullptr) {
          batch.add(cur->batch_prep(cur));
        } else {
          cur->deleter(cur);
        }
        ++freed;
      } else {
        cur->rl_next = kept_head;
        kept_head = cur;
        ++kept;
      }
      cur = next;
    }
    head_ = kept_head;
    len_ = kept;
    return freed;
  }

  // Frees everything unconditionally (domain teardown), batched.
  uint64_t drain() noexcept {
    runtime::PoolAllocator::FreeBatch batch;
    return sweep_batch([](Reclaimable*) { return true; }, batch);
  }

  // Splices `other`'s entire chain into this list, leaving `other` empty;
  // returns the number of nodes adopted. Used by the zombie reaper: a
  // dead thread's orphaned retire list moves wholesale into a surviving
  // thread's list so its backlog rejoins normal sweeps. The caller must
  // guarantee nobody else is touching either list (single-owner rule —
  // the reaper holds the domain reap lock and the old owner is dead).
  uint64_t adopt(RetireList& other) noexcept {
    Reclaimable* stolen = other.head_;
    if (stolen == nullptr) return 0;
    const uint64_t n = other.len_;
    Reclaimable* tail = stolen;
    while (tail->rl_next != nullptr) tail = tail->rl_next;
    tail->rl_next = head_;
    head_ = stolen;
    len_ += n;
    other.head_ = nullptr;
    other.len_ = 0;
    return n;
  }

 private:
  Reclaimable* head_ = nullptr;
  uint64_t len_ = 0;
};

}  // namespace pop::smr
