// Intrusive per-thread retire list. Single-owner: only the owning thread
// pushes and scans, so no synchronization is needed.
#pragma once

#include <cstdint>

#include "smr/reclaimable.hpp"

namespace pop::smr {

class RetireList {
 public:
  void push(Reclaimable* n) noexcept {
    n->rl_next = head_;
    head_ = n;
    ++len_;
  }

  uint64_t length() const noexcept { return len_; }
  bool empty() const noexcept { return head_ == nullptr; }

  // Walks the list; frees nodes where `can_free(node)` by invoking their
  // deleter, keeps the rest. Returns the number freed.
  template <class Pred>
  uint64_t sweep(Pred&& can_free) noexcept {
    Reclaimable* kept_head = nullptr;
    uint64_t kept = 0;
    uint64_t freed = 0;
    Reclaimable* cur = head_;
    while (cur != nullptr) {
      Reclaimable* next = cur->rl_next;
      if (can_free(cur)) {
        cur->deleter(cur);
        ++freed;
      } else {
        cur->rl_next = kept_head;
        kept_head = cur;
        ++kept;
      }
      cur = next;
    }
    head_ = kept_head;
    len_ = kept;
    return freed;
  }

  // Frees everything unconditionally (domain teardown).
  uint64_t drain() noexcept {
    return sweep([](Reclaimable*) { return true; });
  }

 private:
  Reclaimable* head_ = nullptr;
  uint64_t len_ = 0;
};

}  // namespace pop::smr
