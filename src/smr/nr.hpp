// NR — no reclamation (leaky baseline).
//
// Retired nodes are counted but never freed during the run; the paper uses
// NR as the zero-overhead upper bound ("a rough baseline"). Everything is
// drained when the domain is destroyed so tests do not leak.
#pragma once

#include <atomic>

#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class NrDomain {
 public:
  static constexpr const char* kName = "NR";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<NrDomain>;

  explicit NrDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() { core_.attach_if_new(runtime::my_tid()); }
  void detach() { core_.mark_detached(runtime::my_tid()); }

  void begin_op() { attach(); }
  void end_op() {}

  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    return src.load(std::memory_order_acquire);
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    core_.retire_push(runtime::my_tid(), n, 0);
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  DomainCore core_;
};

}  // namespace pop::smr
