// Configuration and statistics shared by all reclamation schemes.
#pragma once

#include <cstdint>

namespace pop::smr {

struct SmrConfig {
  // Reservation slots per thread (the paper's MAX_HP). The bundled data
  // structures use at most 4.
  int num_slots = 8;

  // Retire-list length that triggers a reclamation pass (the paper's
  // reclaimFreq; 24K in the main experiments, 2K in Figure 4).
  uint64_t retire_threshold = 512;

  // Operations between global-epoch advances for the epoch-based schemes
  // (EBR, IBR, EpochPOP: epochFreq).
  uint64_t epoch_freq = 64;

  // EpochPOP's C: the POP fallback fires when the retire list reaches
  // C * retire_threshold despite EBR-mode reclamation.
  uint64_t pop_multiplier = 2;

  // Memory-pressure backstop: when the domain-wide unreclaimed count
  // (retired - freed) exceeds this bound, the next retire forces a
  // reclamation pass regardless of the normal cadence, then degrades to
  // defer-and-warn if the pass cannot relieve the pressure (a pinned
  // reservation can legitimately hold nodes). 0 = use the
  // POPSMR_PRESSURE_BOUND environment override, or no bound if unset.
  uint64_t pressure_bound = 0;
};

// Per-thread counters; aggregated into a snapshot for reporting. Plain
// u64s: each cell is written by its owning thread only (SWMR), torn reads
// by reporting threads at quiescence are benign.
struct ThreadStats {
  uint64_t retired = 0;
  uint64_t freed = 0;
  uint64_t scans = 0;            // reclamation passes
  uint64_t signals_sent = 0;     // pings issued as a reclaimer
  uint64_t pings_received = 0;   // handler executions
  uint64_t neutralized = 0;      // NBR restarts taken
  uint64_t ebr_frees = 0;        // EpochPOP: freed on the epoch fast path
  uint64_t pop_frees = 0;        // EpochPOP: freed via the POP fallback
  uint64_t max_retire_len = 0;   // high-watermark of the retire list
  uint64_t waves_timed_out = 0;  // handshakes abandoned at the deadline
  uint64_t tids_reaped = 0;      // dead tids certified + neutralized
  uint64_t orphans_adopted = 0;  // retired nodes adopted from dead tids
  uint64_t pressure_events = 0;  // unreclaimed crossed the pressure bound
  uint64_t forced_handshakes = 0;  // reclamation passes forced by pressure
};

struct StatsSnapshot {
  uint64_t retired = 0;
  uint64_t freed = 0;
  uint64_t scans = 0;
  uint64_t signals_sent = 0;
  uint64_t pings_received = 0;
  uint64_t neutralized = 0;
  uint64_t ebr_frees = 0;
  uint64_t pop_frees = 0;
  uint64_t max_retire_len = 0;   // max over threads
  uint64_t waves_timed_out = 0;
  uint64_t tids_reaped = 0;
  uint64_t orphans_adopted = 0;
  uint64_t pressure_events = 0;
  uint64_t forced_handshakes = 0;
  uint64_t unreclaimed() const { return retired - freed; }

  // Accumulates either a per-thread cell (ThreadStats) or another
  // snapshot (the service layer rolls one snapshot per shard into a
  // total) — the two share field names by construction; keeping this a
  // template means a new counter cannot be summed in one roll-up and
  // silently dropped from the other.
  template <class Counters>
  void absorb(const Counters& t) {
    retired += t.retired;
    freed += t.freed;
    scans += t.scans;
    signals_sent += t.signals_sent;
    pings_received += t.pings_received;
    neutralized += t.neutralized;
    ebr_frees += t.ebr_frees;
    pop_frees += t.pop_frees;
    if (t.max_retire_len > max_retire_len) max_retire_len = t.max_retire_len;
    waves_timed_out += t.waves_timed_out;
    tids_reaped += t.tids_reaped;
    orphans_adopted += t.orphans_adopted;
    pressure_events += t.pressure_events;
    forced_handshakes += t.forced_handshakes;
  }
};

}  // namespace pop::smr
