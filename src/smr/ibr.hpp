// IBR — interval-based reclamation (Wen et al., PPoPP'18), the tagged
// 2GE variant the paper benchmarks.
//
// Each thread publishes a reservation *interval* [lo, hi]: lo is the epoch
// at operation start, hi grows to the current epoch whenever a read
// observes an epoch change (fencing only then, like HE). The global epoch
// advances every epoch_freq allocations. A node is freeable when its
// lifespan [birth_era, retire_era] intersects no thread's interval —
// robust like HE, with the same "pinned interval" garbage bound.
#pragma once

#include <atomic>
#include <cstdint>

#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class IbrDomain {
 public:
  static constexpr const char* kName = "IBR";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<IbrDomain>;

  explicit IbrDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      iv_[tid]->lo.store(kEmptyLo, std::memory_order_release);
      iv_[tid]->hi.store(0, std::memory_order_release);
    }
  }
  void detach() {
    quiesce(runtime::my_tid());
    core_.mark_detached(runtime::my_tid());
  }

  void begin_op() {
    attach();
    const int tid = runtime::my_tid();
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    iv_[tid]->hi.store(e, std::memory_order_relaxed);
    iv_[tid]->lo.store(e, std::memory_order_seq_cst);  // seq_cst: one fence/op
  }

  void end_op() { quiesce(runtime::my_tid()); }

  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    for (;;) {
      T* p = src.load(std::memory_order_acquire);
      const uint64_t e = epoch_.load(std::memory_order_acquire);
      if (iv_[tid]->hi.load(std::memory_order_relaxed) == e) return p;
      iv_[tid]->hi.store(e, std::memory_order_seq_cst);  // seq_cst refresh fence
    }
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  template <class T, class... Args>
  T* create(Args&&... args) {
    const int tid = runtime::my_tid();
    if (++alloc_counter_[tid]->v % core_.config().epoch_freq == 0) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    return core_.create_node<T>(epoch_.load(std::memory_order_acquire),
                                std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    core_.retire_push(tid, n, e);
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      scan(tid);
    } else if (core_.pressure_check(tid)) {
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      scan(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  // Empty interval: lo > hi, intersects nothing.
  static constexpr uint64_t kEmptyLo = UINT64_MAX;

  void quiesce(int tid) {
    iv_[tid]->hi.store(0, std::memory_order_relaxed);
    iv_[tid]->lo.store(kEmptyLo, std::memory_order_release);
  }

  void scan(int tid) {
    // A corpse that died mid-operation holds its interval open forever;
    // certify it and empty the interval before collecting reservations.
    core_.reap_dead(tid, [this](int t) { quiesce(t); });
    struct Range {
      uint64_t lo, hi;
    };
    Range rs[runtime::kMaxThreads];
    const int hi_tid = runtime::ThreadRegistry::instance().max_tid();
    int n = 0;
    for (int t = 0; t <= hi_tid; ++t) {
      const uint64_t lo = iv_[t]->lo.load(std::memory_order_acquire);
      const uint64_t h = iv_[t]->hi.load(std::memory_order_acquire);
      if (lo <= h) rs[n++] = {lo, h};
    }
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      for (int i = 0; i < n; ++i) {
        if (node->birth_era <= rs[i].hi && rs[i].lo <= node->retire_era) {
          return false;  // lifespan intersects a reserved interval
        }
      }
      return true;
    });
  }

  struct Interval {
    std::atomic<uint64_t> lo{kEmptyLo};
    std::atomic<uint64_t> hi{0};
  };
  struct Counter {
    uint64_t v = 0;
  };

  DomainCore core_;
  std::atomic<uint64_t> epoch_{1};
  runtime::Padded<Interval> iv_[runtime::kMaxThreads];
  runtime::Padded<Counter> alloc_counter_[runtime::kMaxThreads];
};

}  // namespace pop::smr
