// HP — Michael's hazard pointers (the paper's baseline, §2.1).
//
// Every read of a new shared pointer (1) stores it into a SWMR slot,
// (2) executes a StoreLoad fence (the seq_cst store below compiles to a
// single xchg/mov+mfence on x86 — the exact cost the paper attributes to
// HP), and (3) re-reads the source pointer to validate that the target was
// still reachable after the reservation became visible. A reclaimer scans
// all slots and frees only unreserved retired nodes.
#pragma once

#include <atomic>

#include "smr/domain_base.hpp"
#include "smr/hp_slots.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class HpDomain {
 public:
  static constexpr const char* kName = "HP";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<HpDomain>;

  explicit HpDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      // Fresh attach or recycled-tid takeover: drop any slot values left
      // by a dead previous owner (they only pin memory, never protect us).
      slots_.clear_row(tid, core_.config().num_slots);
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    slots_.clear_row(tid, core_.config().num_slots);
    core_.mark_detached(tid);
  }

  void begin_op() { attach(); }
  void end_op() { clear(); }

  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      // seq_cst store: publish + StoreLoad fence in one instruction.
      slots_.at(tid, slot).store(
          reinterpret_cast<uintptr_t>(strip_mark(p)),
          std::memory_order_seq_cst);
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    slots_.at(tid, dst).store(
        slots_.at(tid, src).load(std::memory_order_relaxed),
        std::memory_order_release);
  }

  void clear() {
    slots_.clear_row(runtime::my_tid(), core_.config().num_slots);
  }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    core_.retire_push(tid, n, 0);
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      scan(tid);
    } else if (core_.pressure_check(tid)) {
      scan(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  void scan(int tid) {
    core_.reap_dead(tid, [this](int t) {
      slots_.clear_row(t, core_.config().num_slots);
    });
    uintptr_t* reserved = core_.scan_scratch(tid);
    const int n = slots_.collect(core_.config().num_slots, reserved);
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      return !SlotTable::contains(reserved, n,
                                  reinterpret_cast<uintptr_t>(node));
    });
  }

  DomainCore core_;
  SlotTable slots_;
};

}  // namespace pop::smr
