// SMR contract sanitizer: opt-in shadow-state checking of the reclamation
// contracts that are otherwise enforced only by comments and review.
//
// Four contracts, four violation kinds:
//   double_retire        the same Reclaimable entered a domain's retire
//                        path twice without an intervening free — the
//                        classic source of double-free corruption under
//                        every scheme (Brown, arxiv 1712.01044).
//   retire_outside_op    retire() ran on a thread holding no operation
//                        bracket (OpGuard or batch bracket). Unbracketed
//                        retires are legal for *this* thread's memory
//                        safety but mean the retiring op itself traversed
//                        the structure unprotected.
//   unbalanced_bracket   a thread detached from a domain with a non-zero
//                        bracket depth — a leaked begin_op, which pins the
//                        entry-time reservation forever (the stall-recovery
//                        failure mode, but silent and permanent).
//   free_never_retired   a reclamation sweep freed a block the shadow set
//                        never saw retired — something pushed onto a
//                        RetireList bypassing the domain's retire path.
//
// Mechanism: every DomainCore owns a DomainShadow (a mutex-guarded set of
// in-flight retired pointers, per *domain* — pointers move between
// per-thread retire lists via the reaper's adopt, but never between
// domains); OpGuard / the batch bracket / park maintain a thread-local
// bracket depth. Hooks fire from the shared base (DomainCore::retire_push,
// sweep_retired, mark_detached), so all eleven schemes are covered without
// per-scheme code.
//
// Gating mirrors src/obs: off by default, one relaxed load + a predictable
// branch per hook when off (tests/smr/test_audit.cpp pins the disabled
// path under the same <2% bound as the obs layer). Enable with
// POPSMR_AUDIT=1 or programmatically with set_enabled(). On violation the
// report names kind/scheme/tid/pointer on stderr, then aborts
// (POPSMR_AUDIT_MODE=abort, the default — tests want a corpse, not a
// corrupted run) or counts and warns once per kind
// (POPSMR_AUDIT_MODE=warn — benches want the row, not the corpse).
// Compiling with -DPOPSMR_AUDIT_DISABLE turns every hook into a true
// no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

namespace pop::smr::audit {

#ifdef POPSMR_AUDIT_DISABLE
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

enum class Violation : int {
  kDoubleRetire = 0,
  kRetireOutsideOp,
  kUnbalancedBracket,
  kFreeNeverRetired,
  kCount,
};
inline constexpr int kViolationCount = static_cast<int>(Violation::kCount);

const char* violation_name(Violation v);

namespace detail {
// 0 = uninitialized (consult POPSMR_AUDIT on first query), 1 = off, 2 = on.
extern std::atomic<int> g_state;
int init_slow();
// Thread-local operation-bracket depth (across domains: the batch bracket
// is thread-global too, and a thread inside *any* bracket is protected).
extern thread_local uint32_t tl_bracket_depth;
void report(Violation v, const char* scheme, int tid, const void* ptr);
}  // namespace detail

// One relaxed load + branch once initialized — the only cost every
// retire/sweep/detach pays when auditing is off.
inline bool on() {
  if constexpr (!kCompiled) return false;
  int s = detail::g_state.load(std::memory_order_relaxed);
  if (s == 0) s = detail::init_slow();
  return s == 2;
}

// Programmatic switches (tests; the env knobs cover deployments).
// Quiescent-only: flipping mid-operation desynchronizes bracket depths.
void set_enabled(bool enabled);
void set_abort_on_violation(bool abort_on_violation);
bool abort_on_violation();

// Violation counters (process-wide, relaxed — exact at quiescence).
uint64_t violations();
uint64_t violations(Violation v);
void reset();  // quiescent-only (tests)

// ---- bracket tracking ------------------------------------------------------

inline void bracket_enter() {
  if constexpr (!kCompiled) return;
  if (on()) ++detail::tl_bracket_depth;
}

inline void bracket_exit() {
  if constexpr (!kCompiled) return;
  // The depth guard makes a mid-bracket enable (enter unseen, exit seen)
  // degrade to a missed check instead of an underflowed counter.
  if (on() && detail::tl_bracket_depth > 0) --detail::tl_bracket_depth;
}

inline uint32_t bracket_depth() {
  if constexpr (!kCompiled) return 0;
  return detail::tl_bracket_depth;
}

// Called by DomainCore::mark_detached on the detaching thread itself: a
// non-zero depth here is a leaked begin_op. The depth resets after
// reporting so one leak does not re-report on every later detach.
void check_detach(const char* scheme, int tid);

// ---- per-domain shadow state -----------------------------------------------

// The set of pointers retired to this domain and not yet freed. Guarded by
// a mutex: auditing is a debugging build, contention here is acceptable
// and keeps the checker trivially correct.
class DomainShadow {
 public:
  // Checks retire-in-bracket and double-retire, then records `p` in
  // flight. Call before the pointer enters any retire list.
  void on_retire(const char* scheme, int tid, const void* p);
  // Records the free of `p`; reports free_never_retired if it was not in
  // flight. Call for every node a reclamation sweep frees.
  void on_free(const char* scheme, int tid, const void* p);
  // Domain teardown: everything still in flight is about to be drained
  // (legitimately — the owning structure is gone), so just forget it.
  void clear();
  // In-flight count (tests).
  uint64_t in_flight() const;

 private:
  mutable std::mutex mu_;
  std::unordered_set<const void*> set_;
};

}  // namespace pop::smr::audit
