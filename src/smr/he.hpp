// HE — hazard eras (Ramalhete & Correia; the paper's Algorithm 4).
//
// Threads reserve monotonically increasing *eras* instead of pointers.
// Each node records its lifespan [birth_era, retire_era]; a node is
// freeable when no reserved era intersects that lifespan. The per-read
// fence is needed only when the global era changed since the slot's last
// reservation, which amortizes fencing — but, as the paper measures, the
// residual cost is still substantial and a reserved era pins every node
// whose lifetime intersects it.
#pragma once

#include <atomic>

#include "smr/domain_base.hpp"
#include "smr/hp_slots.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class HeDomain {
 public:
  static constexpr const char* kName = "HE";
  static constexpr bool kNeutralizes = false;
  using Guard = OpGuard<HeDomain>;
  static constexpr uintptr_t kNoEra = 0;

  explicit HeDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      // Drop era reservations a dead previous owner of this tid left.
      slots_.clear_row(tid, core_.config().num_slots);
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    slots_.clear_row(tid, core_.config().num_slots);
    core_.mark_detached(tid);
  }

  void begin_op() { attach(); }
  void end_op() { clear(); }

  template <class T>
  T* protect(int slot, const std::atomic<T*>& src) {
    const int tid = runtime::my_tid();
    uintptr_t prev = slots_.at(tid, slot).load(std::memory_order_relaxed);
    for (;;) {
      T* p = src.load(std::memory_order_acquire);
      const uint64_t e = era_.load(std::memory_order_acquire);
      if (e == prev) return p;  // era unchanged: reservation already covers p
      slots_.at(tid, slot).store(e, std::memory_order_seq_cst);  // seq_cst fence
      prev = e;
    }
  }

  void copy_slot(int dst, int src) {
    const int tid = runtime::my_tid();
    slots_.at(tid, dst).store(
        slots_.at(tid, src).load(std::memory_order_relaxed),
        std::memory_order_release);
  }

  void clear() {
    slots_.clear_row(runtime::my_tid(), core_.config().num_slots);
  }

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(era_.load(std::memory_order_acquire),
                                std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    const uint64_t e = era_.load(std::memory_order_acquire);
    core_.retire_push(tid, n, e);
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      era_.fetch_add(1, std::memory_order_acq_rel);  // Alg. 4 line 21
      scan(tid);
    } else if (core_.pressure_check(tid)) {
      era_.fetch_add(1, std::memory_order_acq_rel);
      scan(tid);
      core_.pressure_relieved_or_warn(tid);
    }
  }

  void enter_write_phase(std::initializer_list<const Reclaimable*> = {}) {}
  void exit_write_phase() {}

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }
  uint64_t current_era() const { return era_.load(std::memory_order_acquire); }

 private:
  void scan(int tid) {
    core_.reap_dead(tid, [this](int t) {
      slots_.clear_row(t, core_.config().num_slots);
    });
    uintptr_t* eras = core_.scan_scratch(tid);
    const int n = slots_.collect(core_.config().num_slots, eras);  // sorted
    auto& st = core_.stats(tid);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      // Freeable iff no reserved era e with birth <= e <= retire.
      const uintptr_t* lo = std::lower_bound(eras, eras + n, node->birth_era);
      return lo == eras + n || *lo > node->retire_era;
    });
  }

  DomainCore core_;
  SlotTable slots_;                    // slot values are eras
  std::atomic<uint64_t> era_{1};       // 0 is reserved for "no era"
};

}  // namespace pop::smr
