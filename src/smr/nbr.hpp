// NBR+ — neutralization-based reclamation (Singh, Brown & Mashtizadeh,
// PPoPP'21 / TPDS'24), the signal-based baseline the paper contrasts POP
// against.
//
// Operations are split into a *read phase* (traversal; pointers held
// unprotected) and a *write phase* (mutation; the needed pointers are
// published first). A reclaimer pings all threads; a thread caught in its
// read phase is *neutralized*: its handler acknowledges and siglongjmps
// back to the operation checkpoint, discarding every pointer it held. A
// thread in its write phase merely acknowledges — its published
// reservations protect the nodes it will touch. After all
// acknowledgements the reclaimer frees everything not reserved.
//
// The + refinement is the SWMR acknowledgement counter handshake (same
// shape as POP's publish counters) which coalesces concurrent reclaimers.
//
// This is exactly the behaviour Figure 4 punishes: long-running readers
// are restarted from scratch whenever any reclaimer frees, which POP
// avoids. The restart count is exported in the stats as `neutralized`.
#pragma once

#include <atomic>
#include <csetjmp>
#include <csignal>

#include "runtime/backoff.hpp"
#include "runtime/signal_bus.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/hp_slots.hpp"
#include "smr/tagged.hpp"

namespace pop::smr {

class NbrDomain final : public runtime::SignalClient {
 public:
  static constexpr const char* kName = "NBR";
  static constexpr bool kNeutralizes = true;
  using Guard = OpGuard<NbrDomain>;

  explicit NbrDomain(const SmrConfig& cfg = {}) : core_(cfg, kName) {}

  ~NbrDomain() { runtime::SignalBus::instance().detach(this); }

  void attach() {
    const int tid = runtime::my_tid();
    if (core_.attach_if_new(tid)) {
      auto& pt = *pt_[tid];
      // Takeover of a recycled tid: drop the dead owner's published slots.
      slots_.clear_row(tid, core_.config().num_slots);
      pt.read_phase.store(false, std::memory_order_relaxed);
      pt.write_phase.store(false, std::memory_order_relaxed);
      // Relaxed atomic: a reclaimer snapshotting a recycled tid mid-attach
      // may read either epoch; both are safe (change-detection only).
      pt.registry_epoch.store(
          runtime::ThreadRegistry::instance().slot_epoch(tid),
          std::memory_order_relaxed);
      runtime::SignalBus::instance().attach(this);
    }
  }
  void detach() {
    const int tid = runtime::my_tid();
    slots_.clear_row(tid, core_.config().num_slots);
    pt_[tid]->ack.fetch_add(1, std::memory_order_release);
    core_.mark_detached(tid);
    runtime::SignalBus::instance().detach(this);
  }

  void begin_op() { attach(); }

  void end_op() {
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    pt.read_phase.store(false, std::memory_order_relaxed);
    if (pt.write_phase.load(std::memory_order_relaxed)) {
      pt.write_phase.store(false, std::memory_order_relaxed);
      slots_.clear_row(tid, core_.config().num_slots);
    }
    // Run any reclamation that was deferred because the threshold was
    // crossed during a read phase.
    if (pt.reclaim_deferred) {
      pt.reclaim_deferred = false;
      reclaim(tid);
    }
  }

  // ---- checkpoint protocol (used via POPSMR_CHECKPOINT) -------------------

  sigjmp_buf& jmp_env() { return pt_[runtime::my_tid()]->env; }

  // Runs after a neutralization longjmp, before the traversal restarts.
  void on_restart() {
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    pt.write_phase.store(false, std::memory_order_relaxed);
    slots_.clear_row(tid, core_.config().num_slots);
    core_.stats(tid).neutralized += 1;
  }

  void arm_read_phase() {
    pt_[runtime::my_tid()]->read_phase.store(true, std::memory_order_relaxed);
  }

  // ---- reads ----------------------------------------------------------------

  // Read-phase loads are deliberately unprotected; neutralization makes
  // holding them safe (any reclaim round would have restarted us first).
  template <class T>
  T* protect(int /*slot*/, const std::atomic<T*>& src) {
    return src.load(std::memory_order_acquire);
  }
  void copy_slot(int /*dst*/, int /*src*/) {}
  void clear() {}

  // ---- write phase -----------------------------------------------------------

  // Publishes the nodes the write phase will touch, then suppresses
  // neutralization. Order matters: if a ping lands between the publishes
  // and the flag store the handler still restarts us (read_phase is
  // true), and the stale published slots merely make the reclaimer
  // conservative until cleared on restart.
  void enter_write_phase(
      std::initializer_list<const Reclaimable*> to_reserve = {}) {
    const int tid = runtime::my_tid();
    int s = 0;
    for (const Reclaimable* r : to_reserve) {
      slots_.at(tid, s++).store(reinterpret_cast<uintptr_t>(r),
                                std::memory_order_release);
    }
    // seq_cst signal fence: compiler-only barrier — the handler runs on
    // this same thread, so the slot stores above just must not sink past
    // the phase change the handler inspects.
    std::atomic_signal_fence(std::memory_order_seq_cst);
    auto& pt = *pt_[tid];
    pt.write_phase.store(true, std::memory_order_relaxed);
    pt.read_phase.store(false, std::memory_order_relaxed);
  }

  // Leave the write phase and fall back to the read phase (either to keep
  // traversing, as HML's helping does, or to retry from the checkpoint).
  // read_phase is re-armed: the operation's jmp_env is still live, and any
  // pointer the caller keeps using must again be covered by
  // neutralization.
  void exit_write_phase() {
    const int tid = runtime::my_tid();
    auto& pt = *pt_[tid];
    pt.write_phase.store(false, std::memory_order_relaxed);
    slots_.clear_row(tid, core_.config().num_slots);
    pt.read_phase.store(true, std::memory_order_relaxed);
  }

  // ---- memory -----------------------------------------------------------------

  template <class T, class... Args>
  T* create(Args&&... args) {
    return core_.create_node<T>(0, std::forward<Args>(args)...);
  }

  void retire(Reclaimable* n) {
    const int tid = runtime::my_tid();
    core_.retire_push(tid, n, 0);
    if (core_.retire_tick(tid) % core_.config().retire_threshold == 0) {
      // Never reclaim while neutralizable: a longjmp out of the sweep
      // would corrupt the retire list. Deferred work runs at end_op.
      if (!pt_[tid]->read_phase.load(std::memory_order_relaxed)) {
        reclaim(tid);
      } else {
        pt_[tid]->reclaim_deferred = true;
      }
    } else if (core_.pressure_check(tid)) {
      // Same neutralization rule as above: never sweep from a read phase.
      if (!pt_[tid]->read_phase.load(std::memory_order_relaxed)) {
        reclaim(tid);
        core_.pressure_relieved_or_warn(tid);
      } else {
        pt_[tid]->reclaim_deferred = true;
      }
    }
  }

  // ---- signal handler ------------------------------------------------------------

  void on_ping(int tid) noexcept override {
    auto& pt = *pt_[tid];
    if (!core_.attached(tid)) return;
    // seq_cst fence: everything this thread did before taking the signal
    // must be visible before the ack the reclaimer is waiting on.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    pt.ack.fetch_add(1, std::memory_order_release);
    pt.pings += 1;
    if (pt.read_phase.load(std::memory_order_relaxed)) {
      pt.read_phase.store(false, std::memory_order_relaxed);
      // sigsetjmp saved no mask (savemask=0): re-enable the ping signal
      // ourselves, then jump back to the checkpoint.
      sigset_t set;
      sigemptyset(&set);
      sigaddset(&set, runtime::kPingSignal);
      sigprocmask(SIG_UNBLOCK, &set, nullptr);
      siglongjmp(pt.env, 1);
    }
  }

  StatsSnapshot stats() const { return core_.stats_snapshot(); }
  const SmrConfig& config() const { return core_.config(); }

 private:
  void reclaim(int tid) {
    auto& st = core_.stats(tid);
    // A corpse can never acknowledge: certify it, drop its published
    // slots, and bump its ack so any concurrent reclaimer's wait releases.
    core_.reap_dead(tid, [this](int t) {
      slots_.clear_row(t, core_.config().num_slots);
      pt_[t]->ack.fetch_add(1, std::memory_order_release);
    });
    // Snapshot acks, ping everyone, wait for all to acknowledge (either by
    // restarting out of a read phase or by fencing through the handler).
    struct Waited {
      int tid;
      uint64_t ack_before;
      uint64_t registry_epoch;
    };
    Waited waited[runtime::kMaxThreads];
    int nwait = 0;
    auto& reg = runtime::ThreadRegistry::instance();
    const int hi = reg.max_tid();
    for (int t = 0; t <= hi; ++t) {
      if (t == tid || !core_.attached(t)) continue;
      waited[nwait++] = {t, pt_[t]->ack.load(std::memory_order_acquire),
                         pt_[t]->registry_epoch.load(std::memory_order_relaxed)};
    }
    st.signals_sent += static_cast<uint64_t>(reg.ping_others(
        runtime::kPingSignal, [this](int t) { return core_.attached(t); },
        [](int, uint64_t) {}));
    for (int i = 0; i < nwait; ++i) {
      const auto& w = waited[i];
      runtime::SpinThenYield waiter;
      uint32_t spins = 0;
      while (pt_[w.tid]->ack.load(std::memory_order_acquire) ==
                 w.ack_before &&
             core_.attached(w.tid) &&
             reg.slot_epoch(w.tid) == w.registry_epoch) {
        // Periodic kernel-liveness probe: a thread that died mid-phase
        // will never ack, and only this escape (or a later certification)
        // ends the wait. Cheap relative to the yield-dominated loop.
        if ((++spins & 1023u) == 0 &&
            reg.owner_departed(w.tid, w.registry_epoch)) {
          break;
        }
        waiter.wait();
      }
    }
    uintptr_t* reserved = core_.scan_scratch(tid);
    const int n = slots_.collect(core_.config().num_slots, reserved);
    st.scans += 1;
    st.freed += core_.sweep_retired(tid, [&](Reclaimable* node) {
      return !SlotTable::contains(reserved, n,
                                  reinterpret_cast<uintptr_t>(node));
    });
    st.pings_received = pt_[tid]->pings;
  }

  struct PerThread {
    sigjmp_buf env;
    std::atomic<bool> read_phase{false};
    std::atomic<bool> write_phase{false};
    std::atomic<uint64_t> ack{0};
    uint64_t pings = 0;
    // Atomic: written on attach of a recycled tid while reclaimers read
    // it for their staleness snapshots.
    std::atomic<uint64_t> registry_epoch{0};
    bool reclaim_deferred = false;  // owner-thread only
  };

  DomainCore core_;
  SlotTable slots_;
  runtime::Padded<PerThread> pt_[runtime::kMaxThreads];
};

}  // namespace pop::smr
