// Shared SWMR reservation slot array used by the eagerly-publishing
// pointer/era schemes (HP, HPAsym, HE) and by the POP engine's shared
// side. Values are opaque uintptr_t: node addresses for pointer schemes,
// era numbers for era schemes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "runtime/padded.hpp"
#include "runtime/thread_registry.hpp"

namespace pop::smr {

inline constexpr int kMaxSlots = 8;

class SlotTable {
 public:
  std::atomic<uintptr_t>& at(int tid, int slot) {
    return rows_[tid]->s[slot];
  }
  const std::atomic<uintptr_t>& at(int tid, int slot) const {
    return rows_[tid]->s[slot];
  }

  void clear_row(int tid, int nslots) {
    for (int s = 0; s < nslots; ++s) {
      rows_[tid]->s[s].store(0, std::memory_order_release);
    }
  }

  // Appends every non-zero value into `out` (caller-provided buffer of at
  // least kMaxThreads*nslots entries); returns the count.
  int collect(int nslots, uintptr_t* out) const {
    int n = 0;
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi; ++t) {
      for (int s = 0; s < nslots; ++s) {
        const uintptr_t v = rows_[t]->s[s].load(std::memory_order_acquire);
        if (v != 0) out[n++] = v;
      }
    }
    std::sort(out, out + n);
    return n;
  }

  static bool contains(const uintptr_t* sorted, int n, uintptr_t v) {
    return std::binary_search(sorted, sorted + n, v);
  }

 private:
  struct Row {
    std::atomic<uintptr_t> s[kMaxSlots] = {};
  };
  runtime::Padded<Row> rows_[runtime::kMaxThreads];
};

}  // namespace pop::smr
