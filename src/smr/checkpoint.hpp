// POPSMR_CHECKPOINT — operation checkpoint for neutralization-based
// schemes (NBR+). Must be expanded *inside the operation's own stack
// frame*, after the Guard and before the traversal:
//
//   typename Smr::Guard g(smr);
//  retry:
//   POPSMR_CHECKPOINT(smr);
//   ... read phase (traversal) ...
//   smr.enter_write_phase({p, q}); ... writes ...; // or end of op
//
// For schemes with kNeutralizes == false the macro compiles to nothing
// (if constexpr in a template context discards the branch without
// instantiation). For NBR it arms a sigsetjmp target the signal handler
// longjmps to; every local used afterwards must be (re)initialized after
// the macro, which the bundled data structures guarantee by restarting
// their traversals from scratch.
//
// sigsetjmp is called with savemask=0 (no sigprocmask syscall on the hot
// path); the handler re-enables the ping signal itself before jumping.
#pragma once

#include <csetjmp>
#include <type_traits>

#define POPSMR_CHECKPOINT(smr_ref)                                        \
  do {                                                                    \
    if constexpr (std::decay_t<decltype(smr_ref)>::kNeutralizes) {        \
      if (sigsetjmp((smr_ref).jmp_env(), 0) != 0) (smr_ref).on_restart(); \
      (smr_ref).arm_read_phase();                                         \
    }                                                                     \
  } while (0)
