#include "ds/hm_list.hpp"
#include "ds/set_factory_detail.hpp"

namespace pop::ds {

namespace {
struct Maker {
  const SetConfig& cfg;
  template <class S>
  std::unique_ptr<ISet> make() const {
    return std::make_unique<detail::SetAdapter<HmList<S>>>("HML", cfg.smr);
  }
};
}  // namespace

std::unique_ptr<ISet> make_hm_list(const std::string& smr,
                                   const SetConfig& cfg) {
  return detail::dispatch_smr(smr, Maker{cfg});
}

}  // namespace pop::ds
