// ABT — (a,b)-tree with copy-on-write leaves and preemptive splits,
// standing in for Brown's LLX/SCX (a,b)-tree (Figures 1c, 3a, 5; see
// DESIGN.md §5 for the substitution rationale).
//
// What the SMR evaluation needs from this tree is preserved exactly:
// every successful update retires at least one node (the replaced leaf),
// splits retire internal nodes, and traversals are lock-free reads over
// nodes that may be retired mid-flight.
//
// Design:
//  * Leaves are immutable after publication: an update builds a new leaf
//    and swings one child pointer, retiring the old leaf. Readers holding
//    a superseded leaf linearize at the moment they read the child edge.
//  * Internal nodes are mutated in place under a per-node spinlock, with
//    a seqlock version so lock-free readers detect torn key/child arrays
//    and retry. Retired internals carry a `marked` flag readers check.
//  * Splits are preemptive (split a full child while descending, holding
//    only parent+child locks), so a leaf split always finds room in its
//    parent; no merges — underfull/empty leaves are tolerated, bounded by
//    the key range.
//  * A never-retired sentinel (`anchor`, zero keys) sits above the real
//    root so root splits are a one-pointer swing.
//
// Slots: 0 = parent, 1 = current, 2 = descent scratch.
#pragma once

#include <atomic>
#include <cstdint>

#include "ds/kv.hpp"
#include "runtime/backoff.hpp"
#include "runtime/spinlock.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
class AbTree {
 public:
  static constexpr int kMaxKeys = 7;  // b; leaves/internals split beyond this

  explicit AbTree(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    anchor_ = smr_.template create<Internal>();
    Leaf* empty = smr_.template create<Leaf>();
    anchor_->children[0].store(empty, std::memory_order_relaxed);
  }

  ~AbTree() { destroy_rec(anchor_); }

  bool get(uint64_t key, uint64_t* val_out) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!descend(key, /*preemptive_split=*/false, d)) goto retry;
    const int i = leaf_index_of(d.leaf, key);
    if (i < 0) return false;
    // Leaves are immutable after publication: a superseded leaf's value
    // is the pre-replacement mapping, linearized at the child-edge read.
    if (val_out != nullptr) *val_out = d.leaf->vals[i];
    return true;
  }

  bool contains(uint64_t key) { return get(key, nullptr); }

  bool insert(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!descend(key, /*preemptive_split=*/true, d)) goto retry;
    if (leaf_contains(d.leaf, key)) return false;
    if (!add_to_leaf(d, key, val)) goto retry;
    return true;
  }

  bool insert(uint64_t key) { return insert(key, key); }

  PutResult put(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!descend(key, /*preemptive_split=*/true, d)) goto retry;
    if (leaf_contains(d.leaf, key)) {
      // Replace: copy-on-write the leaf with the new value and swing one
      // child pointer — the same publication step every update uses.
      smr_.enter_write_phase({d.parent, d.leaf});
      d.parent->lock.lock();
      const int j = child_index_of(d.parent, d.leaf);
      if (j < 0 || d.parent->marked.load(std::memory_order_acquire)) {
        d.parent->lock.unlock();
        smr_.exit_write_phase();
        goto retry;
      }
      Leaf* nl = leaf_copy_replace(d.leaf, key, val);
      d.parent->children[j].store(nl, std::memory_order_release);
      d.parent->lock.unlock();
      smr_.retire(d.leaf);
      return PutResult::kReplaced;
    }
    if (!add_to_leaf(d, key, val)) goto retry;
    return PutResult::kInserted;
  }

  bool erase(uint64_t key) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!descend(key, /*preemptive_split=*/false, d)) goto retry;
    if (!leaf_contains(d.leaf, key)) return false;

    smr_.enter_write_phase({d.parent, d.leaf});
    d.parent->lock.lock();
    const int j = child_index_of(d.parent, d.leaf);
    if (j < 0 || d.parent->marked.load(std::memory_order_acquire)) {
      d.parent->lock.unlock();
      smr_.exit_write_phase();
      goto retry;
    }
    Leaf* nl = leaf_copy_erase(d.leaf, key);
    d.parent->children[j].store(nl, std::memory_order_release);
    d.parent->lock.unlock();
    smr_.retire(d.leaf);
    return true;
  }

  uint64_t size_slow() const { return count_rec(anchor_); }
  Smr& domain() { return smr_; }

  AbTree(const AbTree&) = delete;
  AbTree& operator=(const AbTree&) = delete;

 private:
  struct NodeBase : smr::Reclaimable {
    explicit NodeBase(bool is_leaf) : leaf(is_leaf) {}
    const bool leaf;
  };

  // Immutable after publication.
  struct Leaf : NodeBase {
    Leaf() : NodeBase(true) {}
    uint32_t nkeys = 0;
    uint64_t keys[kMaxKeys] = {};
    uint64_t vals[kMaxKeys] = {};  // vals[i] maps keys[i]
  };

  struct Internal : NodeBase {
    Internal() : NodeBase(false) {}
    runtime::Spinlock lock;
    std::atomic<bool> marked{false};
    std::atomic<uint64_t> version{0};  // seqlock: odd while mutating
    std::atomic<uint32_t> nkeys{0};
    std::atomic<uint64_t> keys[kMaxKeys] = {};
    std::atomic<NodeBase*> children[kMaxKeys + 1] = {};
  };

  static constexpr int kSlotPar = 0;
  static constexpr int kSlotCur = 1;
  static constexpr int kSlotTmp = 2;

  struct Desc {
    Internal* parent;  // last internal (or the anchor)
    Leaf* leaf;
  };

  // Adds (key, val) to d.leaf by copy-on-write (splitting a full leaf).
  // Returns false when validation failed and the caller must re-descend;
  // on success the write phase is left open for the Guard to close.
  bool add_to_leaf(Desc& d, uint64_t key, uint64_t val) {
    smr_.enter_write_phase({d.parent, d.leaf});
    d.parent->lock.lock();
    const int j = child_index_of(d.parent, d.leaf);
    if (j < 0 || d.parent->marked.load(std::memory_order_acquire)) {
      d.parent->lock.unlock();
      smr_.exit_write_phase();
      return false;
    }
    if (d.leaf->nkeys < kMaxKeys) {
      Leaf* nl = leaf_copy_insert(d.leaf, key, val);
      d.parent->children[j].store(nl, std::memory_order_release);
      d.parent->lock.unlock();
      smr_.retire(d.leaf);
      return true;
    }
    // Leaf split. Preemptive splitting guarantees room in the parent
    // unless a concurrent insert filled it since our descent.
    if (d.parent != anchor_ && d.parent->nkeys.load(std::memory_order_relaxed)
        >= static_cast<uint32_t>(kMaxKeys)) {
      d.parent->lock.unlock();
      smr_.exit_write_phase();
      return false;  // the next descent will split this parent
    }
    uint64_t sep;
    Leaf *l1, *l2;
    leaf_split_insert(d.leaf, key, val, sep, l1, l2);
    if (d.parent == anchor_) {
      Internal* nr = smr_.template create<Internal>();
      nr->nkeys.store(1, std::memory_order_relaxed);
      nr->keys[0].store(sep, std::memory_order_relaxed);
      nr->children[0].store(l1, std::memory_order_relaxed);
      nr->children[1].store(l2, std::memory_order_relaxed);
      anchor_->children[0].store(nr, std::memory_order_release);
    } else {
      internal_insert_sep(d.parent, j, sep, l1, l2);
    }
    d.parent->lock.unlock();
    smr_.retire(d.leaf);
    return true;
  }

  // ---- seqlock-validated internal read ------------------------------------

  // Reads the routing decision for `key` at internal `in`. Returns the
  // child (protected in slot `slot`) or nullptr if `in` is marked (caller
  // restarts from the root).
  NodeBase* read_child(Internal* in, uint64_t key, int slot) {
    runtime::Backoff bo(256);
    for (;;) {
      const uint64_t v1 = in->version.load(std::memory_order_acquire);
      if (v1 & 1) {  // writer in progress
        bo.pause();
        continue;
      }
      if (in->marked.load(std::memory_order_acquire)) return nullptr;
      const uint32_t nk = in->nkeys.load(std::memory_order_relaxed);
      uint32_t idx = 0;
      while (idx < nk &&
             key >= in->keys[idx].load(std::memory_order_relaxed)) {
        ++idx;
      }
      NodeBase* child = smr_.protect(slot, in->children[idx]);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (in->version.load(std::memory_order_relaxed) == v1 &&
          child != nullptr) {
        return child;
      }
      bo.pause();
    }
  }

  // Descends to the leaf for `key`, optionally splitting full internal
  // nodes on the way (insert path). Returns false to request a restart.
  // Reservation slots rotate on descent: the node entering the parent
  // role keeps the reservation it acquired as the current node.
  bool descend(uint64_t key, bool preemptive_split, Desc& d) {
    int spar = kSlotPar, scur = kSlotCur, stmp = kSlotTmp;
    Internal* parent = anchor_;  // never marked, never retired
    NodeBase* cur = smr_.protect(scur, anchor_->children[0]);
    while (!cur->leaf) {
      Internal* in = static_cast<Internal*>(cur);
      if (preemptive_split &&
          in->nkeys.load(std::memory_order_acquire) >=
              static_cast<uint32_t>(kMaxKeys)) {
        split_internal(parent, in);  // restart regardless of outcome
        return false;
      }
      NodeBase* child = read_child(in, key, stmp);
      if (child == nullptr) return false;  // `in` was retired
      parent = in;
      cur = child;
      const int t = spar;  // rotate roles
      spar = scur;
      scur = stmp;
      stmp = t;
    }
    d = {parent, static_cast<Leaf*>(cur)};
    return true;
  }

  // Splits full internal `child` under `parent`'s lock (anchor handled as
  // a root swing). Both new halves are fresh nodes; `child` is marked and
  // retired.
  void split_internal(Internal* parent, Internal* child) {
    smr_.enter_write_phase({parent, child});
    parent->lock.lock();
    const int j = child_index_of(parent, child);
    if (j < 0 || parent->marked.load(std::memory_order_acquire) ||
        child->nkeys.load(std::memory_order_acquire) <
            static_cast<uint32_t>(kMaxKeys) ||
        (parent != anchor_ &&
         parent->nkeys.load(std::memory_order_relaxed) >=
             static_cast<uint32_t>(kMaxKeys))) {
      parent->lock.unlock();
      smr_.exit_write_phase();
      return;  // stale view or no room: caller restarts and re-evaluates
    }
    child->lock.lock();
    // Move the middle key up; children split around it.
    const int mid = kMaxKeys / 2;
    const uint64_t sep = child->keys[mid].load(std::memory_order_relaxed);
    Internal* c1 = smr_.template create<Internal>();
    Internal* c2 = smr_.template create<Internal>();
    c1->nkeys.store(mid, std::memory_order_relaxed);
    for (int i = 0; i < mid; ++i) {
      c1->keys[i].store(child->keys[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    for (int i = 0; i <= mid; ++i) {
      c1->children[i].store(
          child->children[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    const int rcount = kMaxKeys - mid - 1;
    c2->nkeys.store(rcount, std::memory_order_relaxed);
    for (int i = 0; i < rcount; ++i) {
      c2->keys[i].store(
          child->keys[mid + 1 + i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    for (int i = 0; i <= rcount; ++i) {
      c2->children[i].store(
          child->children[mid + 1 + i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    // Mark before unlink (with a version bump so in-flight seqlock readers
    // of `child` notice): a reader never follows an edge out of a node it
    // validated as marked.
    child->version.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    child->marked.store(true, std::memory_order_relaxed);
    child->version.fetch_add(1, std::memory_order_release);
    if (parent == anchor_) {
      Internal* nr = smr_.template create<Internal>();
      nr->nkeys.store(1, std::memory_order_relaxed);
      nr->keys[0].store(sep, std::memory_order_relaxed);
      nr->children[0].store(c1, std::memory_order_relaxed);
      nr->children[1].store(c2, std::memory_order_relaxed);
      anchor_->children[0].store(nr, std::memory_order_release);
    } else {
      internal_insert_sep(parent, j, sep, c1, c2);
    }
    child->lock.unlock();
    parent->lock.unlock();
    smr_.retire(child);
    smr_.exit_write_phase();
  }

  // Inserts separator `sep` at child slot `j`, replacing children[j] with
  // (left, right). Caller holds parent's lock and guarantees room.
  void internal_insert_sep(Internal* p, int j, uint64_t sep, NodeBase* left,
                           NodeBase* right) {
    const uint32_t nk = p->nkeys.load(std::memory_order_relaxed);
    p->version.fetch_add(1, std::memory_order_relaxed);  // odd: mutating
    std::atomic_thread_fence(std::memory_order_release);
    for (int i = static_cast<int>(nk); i > j; --i) {
      p->keys[i].store(p->keys[i - 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    for (int i = static_cast<int>(nk) + 1; i > j + 1; --i) {
      p->children[i].store(
          p->children[i - 1].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    p->keys[j].store(sep, std::memory_order_relaxed);
    p->children[j].store(left, std::memory_order_relaxed);
    p->children[j + 1].store(right, std::memory_order_relaxed);
    p->nkeys.store(nk + 1, std::memory_order_relaxed);
    p->version.fetch_add(1, std::memory_order_release);  // even: done
  }

  // Identity scan for `c` among p's children; requires p's lock (stable
  // arrays). Returns -1 if absent (stale window).
  int child_index_of(Internal* p, NodeBase* c) {
    const uint32_t nk =
        p == anchor_ ? 0 : p->nkeys.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i <= nk; ++i) {
      if (p->children[i].load(std::memory_order_relaxed) == c) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  // ---- immutable leaf helpers ------------------------------------------------

  static int leaf_index_of(const Leaf* l, uint64_t key) {
    for (uint32_t i = 0; i < l->nkeys; ++i) {
      if (l->keys[i] == key) return static_cast<int>(i);
    }
    return -1;
  }

  static bool leaf_contains(const Leaf* l, uint64_t key) {
    return leaf_index_of(l, key) >= 0;
  }

  Leaf* leaf_copy_insert(const Leaf* l, uint64_t key, uint64_t val) {
    Leaf* nl = smr_.template create<Leaf>();
    uint32_t n = 0;
    bool placed = false;
    for (uint32_t i = 0; i < l->nkeys; ++i) {
      if (!placed && key < l->keys[i]) {
        nl->keys[n] = key;
        nl->vals[n] = val;
        ++n;
        placed = true;
      }
      nl->keys[n] = l->keys[i];
      nl->vals[n] = l->vals[i];
      ++n;
    }
    if (!placed) {
      nl->keys[n] = key;
      nl->vals[n] = val;
      ++n;
    }
    nl->nkeys = n;
    return nl;
  }

  // Same keys, `key` remapped to `val` (the put-replace copy).
  Leaf* leaf_copy_replace(const Leaf* l, uint64_t key, uint64_t val) {
    Leaf* nl = smr_.template create<Leaf>();
    for (uint32_t i = 0; i < l->nkeys; ++i) {
      nl->keys[i] = l->keys[i];
      nl->vals[i] = l->keys[i] == key ? val : l->vals[i];
    }
    nl->nkeys = l->nkeys;
    return nl;
  }

  Leaf* leaf_copy_erase(const Leaf* l, uint64_t key) {
    Leaf* nl = smr_.template create<Leaf>();
    uint32_t n = 0;
    for (uint32_t i = 0; i < l->nkeys; ++i) {
      if (l->keys[i] != key) {
        nl->keys[n] = l->keys[i];
        nl->vals[n] = l->vals[i];
        ++n;
      }
    }
    nl->nkeys = n;
    return nl;
  }

  // Splits a full leaf plus (key, val) into two leaves; sep = l2's first
  // key.
  void leaf_split_insert(const Leaf* l, uint64_t key, uint64_t val,
                         uint64_t& sep, Leaf*& l1, Leaf*& l2) {
    uint64_t all[kMaxKeys + 1];
    uint64_t allv[kMaxKeys + 1];
    uint32_t n = 0;
    bool placed = false;
    for (uint32_t i = 0; i < l->nkeys; ++i) {
      if (!placed && key < l->keys[i]) {
        all[n] = key;
        allv[n] = val;
        ++n;
        placed = true;
      }
      all[n] = l->keys[i];
      allv[n] = l->vals[i];
      ++n;
    }
    if (!placed) {
      all[n] = key;
      allv[n] = val;
      ++n;
    }
    const uint32_t half = n / 2;
    l1 = smr_.template create<Leaf>();
    l2 = smr_.template create<Leaf>();
    for (uint32_t i = 0; i < half; ++i) {
      l1->keys[i] = all[i];
      l1->vals[i] = allv[i];
    }
    l1->nkeys = half;
    for (uint32_t i = half; i < n; ++i) {
      l2->keys[i - half] = all[i];
      l2->vals[i - half] = allv[i];
    }
    l2->nkeys = n - half;
    sep = all[half];
  }

  // ---- teardown / introspection -----------------------------------------------

  void destroy_rec(NodeBase* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      Internal* in = static_cast<Internal*>(n);
      const uint32_t nk =
          in == anchor_ ? 0 : in->nkeys.load(std::memory_order_relaxed);
      for (uint32_t i = 0; i <= nk; ++i) {
        destroy_rec(in->children[i].load(std::memory_order_relaxed));
      }
    }
    n->deleter(n);
  }

  uint64_t count_rec(const NodeBase* n) const {
    if (n == nullptr) return 0;
    if (n->leaf) return static_cast<const Leaf*>(n)->nkeys;
    const Internal* in = static_cast<const Internal*>(n);
    const uint32_t nk =
        in == anchor_ ? 0 : in->nkeys.load(std::memory_order_acquire);
    uint64_t total = 0;
    for (uint32_t i = 0; i <= nk; ++i) {
      total += count_rec(in->children[i].load(std::memory_order_acquire));
    }
    return total;
  }

  Smr smr_;  // destroyed last
  Internal* anchor_;
};

}  // namespace pop::ds
