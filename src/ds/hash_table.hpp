// HMHT — hash table with Harris-Michael list buckets (the paper's HMHT,
// Figures 1b, 7, 11). A single reclamation domain is shared across all
// buckets; operations hash to a bucket sentinel and run the HmOps
// algorithm against it. With the paper's load factor the buckets stay
// short, so per-operation traversal cost is dominated by the SMR scheme's
// read-path overhead — which is why HMHT separates the schemes so
// clearly.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "ds/hm_list.hpp"

namespace pop::ds {

template <class Smr>
class HashTable {
 public:
  using Ops = HmOps<Smr>;
  using Node = typename Ops::Node;

  // `capacity` is the expected maximum number of keys; the bucket count
  // is ceil(capacity / load_factor) (the paper uses load factor 6) —
  // rounded UP: truncation used to turn any capacity below the load
  // factor into a single bucket, silently degrading the table to a list.
  explicit HashTable(uint64_t capacity, double load_factor = 6.0,
                     const smr::SmrConfig& cfg = {})
      : smr_(cfg) {
    uint64_t nbuckets = static_cast<uint64_t>(
        std::ceil(static_cast<double>(capacity) / load_factor));
    if (nbuckets == 0) nbuckets = 1;
    if (nbuckets < 2) {
      std::fprintf(stderr,
                   "popsmr: HMHT capacity %llu at load factor %.2f yields "
                   "%llu bucket(s) — the table degenerates to a list; "
                   "raise capacity or use RHHT\n",
                   static_cast<unsigned long long>(capacity), load_factor,
                   static_cast<unsigned long long>(nbuckets));
    }
    heads_.reserve(nbuckets);
    for (uint64_t i = 0; i < nbuckets; ++i) {
      heads_.push_back(smr_.template create<Node>(0));
    }
  }

  ~HashTable() {
    for (Node* h : heads_) Ops::destroy_chain(h);
  }

  bool get(uint64_t k, uint64_t* val_out) {
    return Ops::get(smr_, bucket(k), k, val_out);
  }
  PutResult put(uint64_t k, uint64_t v) {
    return Ops::put(smr_, bucket(k), k, v);
  }
  bool contains(uint64_t k) { return Ops::contains(smr_, bucket(k), k); }
  bool insert(uint64_t k, uint64_t v) {
    return Ops::insert(smr_, bucket(k), k, v);
  }
  bool insert(uint64_t k) { return insert(k, k); }
  bool erase(uint64_t k) { return Ops::erase(smr_, bucket(k), k); }

  uint64_t size_slow() const {
    uint64_t n = 0;
    for (Node* h : heads_) n += Ops::size_slow(h);
    return n;
  }

  uint64_t bucket_count() const { return heads_.size(); }
  Smr& domain() { return smr_; }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

 private:
  Node* bucket(uint64_t k) const {
    // Fibonacci multiplicative hash: spreads dense benchmark key ranges.
    const uint64_t h = k * 0x9e3779b97f4a7c15ull;
    return heads_[h % heads_.size()];
  }

  Smr smr_;  // destroyed last
  std::vector<Node*> heads_;
};

}  // namespace pop::ds
