#include "ds/resizable_hash_table.hpp"
#include "ds/set_factory_detail.hpp"

namespace pop::ds {

namespace {
struct Maker {
  const SetConfig& cfg;
  template <class S>
  std::unique_ptr<ISet> make() const {
    return std::make_unique<detail::SetAdapter<ResizableHashTable<S>>>(
        "RHHT", cfg.capacity, cfg.load_factor, cfg.smr);
  }
};
}  // namespace

std::unique_ptr<ISet> make_resizable_hash_table(const std::string& smr,
                                                const SetConfig& cfg) {
  return detail::dispatch_smr(smr, Maker{cfg});
}

}  // namespace pop::ds
