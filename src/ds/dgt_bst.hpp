// DGT — external (leaf-oriented) binary search tree in the style of
// David, Guerraoui & Trigonakis (ASCY, ASPLOS'15): lock-free traversals,
// per-node spinlocks on the update path (Figures 1a, 3b, 6).
//
// Internal nodes route (key < node.key goes left); leaves hold the map's
// keys and values. An insert replaces a leaf with a three-node subtree; a
// delete unlinks a leaf *and its parent*, retiring both — two
// retirements per delete makes this tree a heavy SMR exerciser. A
// put-replace swings the parent's child pointer from the old leaf to a
// fresh one (values are immutable after publication) and retires the
// displaced leaf; the old leaf is NOT deletion-marked — a reader still
// holding it reads the key as present with the old value, which
// linearizes before the swap, while writers revalidate membership by
// identity and retry.
//
// SMR discipline: nodes are marked before being unlinked, and a traversal
// validates, after protecting a child read from p, that p is still
// unmarked — giving the reachability guarantee the HP family needs.
// Slots: 0 = grandparent, 1 = parent, 2 = leaf, 3 = descent scratch.
#pragma once

#include <atomic>
#include <cstdint>

#include "ds/kv.hpp"
#include "runtime/spinlock.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
class DgtBst {
 public:
  // Keys must be < kMaxUserKey; larger values are sentinel routing keys.
  static constexpr uint64_t kMaxUserKey = UINT64_MAX - 2;

  explicit DgtBst(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    Node* sentinel_leaf =
        smr_.template create<Node>(kMaxUserKey, /*leaf=*/true);
    Node* sentinel_right =
        smr_.template create<Node>(UINT64_MAX - 1, /*leaf=*/true);
    root_ = smr_.template create<Node>(UINT64_MAX - 1, /*leaf=*/false);
    root_->left.store(sentinel_leaf, std::memory_order_relaxed);
    root_->right.store(sentinel_right, std::memory_order_relaxed);
  }

  ~DgtBst() { destroy_rec(root_); }

  bool get(uint64_t key, uint64_t* val_out) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!search(key, d)) goto retry;
    if (d.leaf->key != key ||
        d.leaf->marked.load(std::memory_order_acquire)) {
      return false;
    }
    // Leaf payloads are immutable after publication (a replace swings in
    // a fresh leaf), so this read is untorn; a displaced leaf's old value
    // linearizes before the swap.
    if (val_out != nullptr) *val_out = d.leaf->val;
    return true;
  }

  bool contains(uint64_t key) { return get(key, nullptr); }

  bool insert(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!search(key, d)) goto retry;
    if (d.leaf->key == key) {
      if (d.leaf->marked.load(std::memory_order_acquire)) goto retry;
      return false;  // present (observed unmarked)
    }
    if (!grow_leaf(d, key, val)) goto retry;
    return true;
  }

  bool insert(uint64_t key) { return insert(key, key); }

  PutResult put(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!search(key, d)) goto retry;
    if (d.leaf->key == key) {
      if (d.leaf->marked.load(std::memory_order_acquire)) goto retry;
      // Replace: swing the parent's child edge to a fresh leaf. Member-
      // ship is revalidated by identity under the parent's lock (an
      // erase-marked or already-replaced leaf is no longer its child).
      smr_.enter_write_phase({d.parent, d.leaf});
      d.parent->lock.lock();
      auto& slot = d.leaf_dir_left ? d.parent->left : d.parent->right;
      if (d.parent->marked.load(std::memory_order_acquire) ||
          slot.load(std::memory_order_acquire) != d.leaf) {
        d.parent->lock.unlock();
        smr_.exit_write_phase();
        goto retry;
      }
      Node* nl = smr_.template create<Node>(key, /*leaf=*/true, val);
      slot.store(nl, std::memory_order_release);
      d.parent->lock.unlock();
      smr_.retire(d.leaf);
      return PutResult::kReplaced;
    }
    if (!grow_leaf(d, key, val)) goto retry;
    return PutResult::kInserted;
  }

  bool erase(uint64_t key) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Desc d;
    if (!search(key, d)) goto retry;
    if (d.leaf->key != key) return false;
    if (d.leaf->marked.load(std::memory_order_acquire)) return false;
    smr_.enter_write_phase({d.gparent, d.parent, d.leaf});
    d.gparent->lock.lock();
    // Re-derive p's slot in gp by identity: rotations don't exist, so p is
    // gp's left or right child or the window is stale.
    std::atomic<Node*>* gp_slot = nullptr;
    if (d.gparent->left.load(std::memory_order_acquire) == d.parent) {
      gp_slot = &d.gparent->left;
    } else if (d.gparent->right.load(std::memory_order_acquire) == d.parent) {
      gp_slot = &d.gparent->right;
    }
    if (d.gparent->marked.load(std::memory_order_acquire) ||
        gp_slot == nullptr) {
      d.gparent->lock.unlock();
      smr_.exit_write_phase();
      goto retry;
    }
    d.parent->lock.lock();
    Node* sibling = nullptr;
    if (d.parent->left.load(std::memory_order_acquire) == d.leaf) {
      sibling = d.parent->right.load(std::memory_order_acquire);
    } else if (d.parent->right.load(std::memory_order_acquire) == d.leaf) {
      sibling = d.parent->left.load(std::memory_order_acquire);
    }
    if (sibling == nullptr) {  // leaf no longer under parent
      d.parent->lock.unlock();
      d.gparent->lock.unlock();
      smr_.exit_write_phase();
      goto retry;
    }
    d.parent->marked.store(true, std::memory_order_release);
    d.leaf->marked.store(true, std::memory_order_release);
    gp_slot->store(sibling, std::memory_order_release);
    d.parent->lock.unlock();
    d.gparent->lock.unlock();
    smr_.retire(d.parent);  // after unlock: spinlocks must not be freed
    smr_.retire(d.leaf);    // while a waiter could still spin on them
    return true;
  }

  uint64_t size_slow() const { return count_rec(root_); }
  Smr& domain() { return smr_; }

  DgtBst(const DgtBst&) = delete;
  DgtBst& operator=(const DgtBst&) = delete;

 private:
  struct Node : smr::Reclaimable {
    Node(uint64_t k, bool is_leaf, uint64_t v = 0)
        : key(k), val(v), leaf(is_leaf) {}
    uint64_t key;
    uint64_t val;  // leaf payload; immutable after publication
    bool leaf;
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    runtime::Spinlock lock;
    std::atomic<bool> marked{false};
  };

  static constexpr int kSlotGp = 0;
  static constexpr int kSlotP = 1;
  static constexpr int kSlotL = 2;
  static constexpr int kSlotTmp = 3;

  struct Desc {
    Node* gparent;
    Node* parent;
    Node* leaf;
    bool leaf_dir_left;  // leaf is parent->left
  };

  // Replaces d.leaf with a three-node subtree adding (key, val). Returns
  // false when validation failed and the caller must re-descend. On
  // success the write phase is left open for the Guard to close.
  bool grow_leaf(Desc& d, uint64_t key, uint64_t val) {
    smr_.enter_write_phase({d.parent, d.leaf});
    d.parent->lock.lock();
    auto& slot = d.leaf_dir_left ? d.parent->left : d.parent->right;
    if (d.parent->marked.load(std::memory_order_acquire) ||
        slot.load(std::memory_order_acquire) != d.leaf) {
      d.parent->lock.unlock();
      smr_.exit_write_phase();
      return false;
    }
    Node* new_leaf = smr_.template create<Node>(key, /*leaf=*/true, val);
    Node* internal = smr_.template create<Node>(
        key > d.leaf->key ? key : d.leaf->key, /*leaf=*/false);
    if (key < d.leaf->key) {
      internal->left.store(new_leaf, std::memory_order_relaxed);
      internal->right.store(d.leaf, std::memory_order_relaxed);
    } else {
      internal->left.store(d.leaf, std::memory_order_relaxed);
      internal->right.store(new_leaf, std::memory_order_relaxed);
    }
    slot.store(internal, std::memory_order_release);
    d.parent->lock.unlock();
    return true;
  }

  // Descends to the leaf for `key`. Returns false when a validation
  // failed and the caller must restart. On success gparent/parent/leaf
  // are reserved (in rotating slots: a node entering the gp/p role keeps
  // the reservation it acquired on the way down — zero copies per level).
  bool search(uint64_t key, Desc& d) {
    int sgp = kSlotGp, sp = kSlotP, sl = kSlotL, st = kSlotTmp;
    Node* gp = root_;  // sentinels: root never marked/retired
    Node* p = root_;
    bool dir_left = true;
    Node* l = smr_.protect(sl, root_->left);
    while (!l->leaf) {
      gp = p;
      p = l;
      dir_left = key < p->key;
      Node* child = smr_.protect(st, dir_left ? p->left : p->right);
      if (p->marked.load(std::memory_order_acquire)) return false;
      l = child;
      const int t = sgp;  // rotate roles; the old gp's slot becomes scratch
      sgp = sp;
      sp = sl;
      sl = st;
      st = t;
    }
    d = {gp, p, l, dir_left};
    return true;
  }

  void destroy_rec(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      destroy_rec(n->left.load(std::memory_order_relaxed));
      destroy_rec(n->right.load(std::memory_order_relaxed));
    }
    n->deleter(n);
  }

  uint64_t count_rec(const Node* n) const {
    if (n == nullptr) return 0;
    if (n->leaf) return n->key < kMaxUserKey ? 1 : 0;
    return count_rec(n->left.load(std::memory_order_acquire)) +
           count_rec(n->right.load(std::memory_order_acquire));
  }

  Smr smr_;  // destroyed last
  Node* root_;
};

}  // namespace pop::ds
