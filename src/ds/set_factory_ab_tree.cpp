#include "ds/ab_tree.hpp"
#include "ds/set_factory_detail.hpp"

namespace pop::ds {

namespace {
struct Maker {
  const SetConfig& cfg;
  template <class S>
  std::unique_ptr<ISet> make() const {
    return std::make_unique<detail::SetAdapter<AbTree<S>>>("ABT", cfg.smr);
  }
};
}  // namespace

std::unique_ptr<ISet> make_ab_tree(const std::string& smr,
                                   const SetConfig& cfg) {
  return detail::dispatch_smr(smr, Maker{cfg});
}

}  // namespace pop::ds
