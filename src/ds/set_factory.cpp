#include <cstdio>

#include "ds/iset.hpp"

namespace pop::ds {

// Implemented one-per-DS in set_factory_<ds>.cpp.
std::unique_ptr<IKV> make_hm_list(const std::string&, const SetConfig&);
std::unique_ptr<IKV> make_lazy_list(const std::string&, const SetConfig&);
std::unique_ptr<IKV> make_hash_table(const std::string&, const SetConfig&);
std::unique_ptr<IKV> make_resizable_hash_table(const std::string&,
                                               const SetConfig&);
std::unique_ptr<IKV> make_dgt_bst(const std::string&, const SetConfig&);
std::unique_ptr<IKV> make_ab_tree(const std::string&, const SetConfig&);

const std::vector<std::string>& all_smr_names() {
  static const std::vector<std::string> names = {
      "NR",  "HP",  "HPAsym", "HE",           "EBR",          "IBR",
      "NBR", "BRC", "EpochPOP", "HazardEraPOP", "HazardPtrPOP"};
  return names;
}

const std::vector<std::string>& all_ds_names() {
  static const std::vector<std::string> names = {"HML", "LL", "HMHT", "RHHT",
                                                 "DGT", "ABT"};
  return names;
}

std::unique_ptr<IKV> make_kv(const std::string& ds, const std::string& smr,
                             const SetConfig& cfg) {
  if (ds == "HML") return make_hm_list(smr, cfg);
  if (ds == "LL") return make_lazy_list(smr, cfg);
  if (ds == "HMHT") return make_hash_table(smr, cfg);
  // "rhht" is the factory name the resizable table was introduced under;
  // "RHHT" is the canonical catalogue spelling. Accept both.
  if (ds == "RHHT" || ds == "rhht") {
    return make_resizable_hash_table(smr, cfg);
  }
  if (ds == "DGT") return make_dgt_bst(smr, cfg);
  if (ds == "ABT") return make_ab_tree(smr, cfg);
  std::fprintf(stderr,
               "popsmr: unknown data structure '%s' (known: HML, LL, HMHT, "
               "RHHT, DGT, ABT)\n",
               ds.c_str());
  return nullptr;
}

}  // namespace pop::ds
