// Internal plumbing for the ISet factory: the adapter template and the
// scheme-name dispatcher. Included only by the per-DS factory .cpp files
// (one translation unit per data structure keeps rebuilds incremental).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ds/iset.hpp"
#include "smr/all.hpp"

namespace pop::ds::detail {

template <class DsT>
class SetAdapter final : public ISet {
 public:
  template <class... Args>
  explicit SetAdapter(std::string ds_name, Args&&... args)
      : ds_(std::forward<Args>(args)...), ds_name_(std::move(ds_name)) {}

  bool insert(uint64_t key) override { return ds_.insert(key); }
  bool erase(uint64_t key) override { return ds_.erase(key); }
  bool contains(uint64_t key) override { return ds_.contains(key); }
  void detach_thread() override { ds_.domain().detach(); }

  // Safe for every scheme: the bare begin_op/end_op bracket never arms
  // NBR's neutralization (no checkpoint, so its handler only acks), and
  // for the epoch/era schemes the bracket itself is the reservation that
  // makes the stall observable.
  void park_in_operation(const std::atomic<bool>& release) override {
    auto& d = ds_.domain();
    d.begin_op();
    while (!release.load(std::memory_order_acquire)) {
      // Sleep, don't spin: a parked victim must not steal cycles from the
      // workers whose garbage it is pinning (signals still interrupt it).
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    d.end_op();
  }
  smr::StatsSnapshot smr_stats() const override {
    return const_cast<DsT&>(ds_).domain().stats();
  }
  uint64_t size_slow() const override { return ds_.size_slow(); }
  std::string ds_name() const override { return ds_name_; }
  std::string smr_name() const override {
    return std::decay_t<decltype(std::declval<DsT&>().domain())>::kName;
  }

 private:
  DsT ds_;
  std::string ds_name_;
};

// Calls maker.template make<Scheme>() for the scheme named `name`.
template <class Maker>
std::unique_ptr<ISet> dispatch_smr(const std::string& name, Maker&& maker) {
  if (name == "NR") return maker.template make<smr::NrDomain>();
  if (name == "HP") return maker.template make<smr::HpDomain>();
  if (name == "HPAsym") return maker.template make<smr::HpAsymDomain>();
  if (name == "HE") return maker.template make<smr::HeDomain>();
  if (name == "EBR") return maker.template make<smr::EbrDomain>();
  if (name == "IBR") return maker.template make<smr::IbrDomain>();
  if (name == "NBR") return maker.template make<smr::NbrDomain>();
  if (name == "BRC") return maker.template make<smr::BrcDomain>();
  if (name == "HazardPtrPOP") {
    return maker.template make<core::HazardPtrPopDomain>();
  }
  if (name == "HazardEraPOP") {
    return maker.template make<core::HazardEraPopDomain>();
  }
  if (name == "EpochPOP") return maker.template make<core::EpochPopDomain>();
  return nullptr;
}

}  // namespace pop::ds::detail
