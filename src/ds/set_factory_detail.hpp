// Internal plumbing for the IKV factory: the adapter template and the
// scheme-name dispatcher. Included only by the per-DS factory .cpp files
// (one translation unit per data structure keeps rebuilds incremental).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "ds/iset.hpp"
#include "smr/all.hpp"

namespace pop::ds::detail {

template <class DsT>
class SetAdapter final : public IKV {
 public:
  template <class... Args>
  explicit SetAdapter(std::string ds_name, Args&&... args)
      : ds_(std::forward<Args>(args)...), ds_name_(std::move(ds_name)) {}

  bool get(uint64_t key, uint64_t* val_out) override {
    return ds_.get(key, val_out);
  }
  PutResult put(uint64_t key, uint64_t val) override {
    return ds_.put(key, val);
  }
  bool remove(uint64_t key) override { return ds_.erase(key); }
  bool insert(uint64_t key) override { return ds_.insert(key, key); }
  void detach_thread() override { ds_.domain().detach(); }

  // One domain bracket per pipeline: ops inside the scope skip their own
  // OpGuard (except under NBR, whose guards never skip — the outer
  // bracket is then just an attach and the batch degenerates to per-op
  // brackets, still correct).
  void batch_begin() override {  // smr-lint: allow(R3) the bracket itself
    ds_.domain().begin_op();
    smr::audit::bracket_enter();
    smr::batch_scope_enter();
  }
  void batch_end() override {  // smr-lint: allow(R3) the bracket itself
    smr::batch_scope_exit();
    smr::audit::bracket_exit();
    ds_.domain().end_op();
  }

  // Safe for every scheme: the bare begin_op/end_op bracket never arms
  // NBR's neutralization (no checkpoint, so its handler only acks), and
  // for the epoch/era schemes the bracket itself is the reservation that
  // makes the stall observable.
  void park_in_operation(const std::atomic<bool>& release) override {
    auto& d = ds_.domain();
    d.begin_op();
    smr::audit::bracket_enter();
    while (!release.load(std::memory_order_acquire)) {
      // Sleep, don't spin: a parked victim must not steal cycles from the
      // workers whose garbage it is pinning (signals still interrupt it).
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    smr::audit::bracket_exit();
    d.end_op();
  }
  // Deliberately leaks the operation bracket: the thread is about to die
  // without running end_op or detach, exactly like a crash inside a
  // critical section. Whatever entry-time reservation the scheme makes
  // (epoch/era announcement, BRC phase entry, NBR attach) stays armed
  // until the zombie reaper certifies the corpse. The audit bracket is
  // deliberately entered and never exited for the same reason — if the
  // dying thread somehow reaches detach, unbalanced_bracket SHOULD fire.
  void abandon_in_operation() override {  // smr-lint: allow(R3) crash fixture
    ds_.domain().begin_op();
    smr::audit::bracket_enter();
  }

  smr::StatsSnapshot smr_stats() const override {
    return const_cast<DsT&>(ds_).domain().stats();
  }
  ResizeStats resize_stats() const override {
    if constexpr (requires { ds_.resize_stats(); }) {
      return ds_.resize_stats();
    } else if constexpr (requires { ds_.bucket_count(); }) {
      // Fixed-bucket table: report the shape, zero resize activity.
      ResizeStats r;
      r.buckets = ds_.bucket_count();
      return r;
    } else {
      return {};
    }
  }
  uint64_t size_slow() const override { return ds_.size_slow(); }
  std::string ds_name() const override { return ds_name_; }
  std::string smr_name() const override {
    return std::decay_t<decltype(std::declval<DsT&>().domain())>::kName;
  }

 private:
  DsT ds_;
  std::string ds_name_;
};

// Calls maker.template make<Scheme>() for the scheme named `name`;
// reports an unknown name on stderr (and returns nullptr) so a typo'd
// benchmark flag or config fails loudly instead of as a bare null.
template <class Maker>
std::unique_ptr<IKV> dispatch_smr(const std::string& name, Maker&& maker) {
  if (name == "NR") return maker.template make<smr::NrDomain>();
  if (name == "HP") return maker.template make<smr::HpDomain>();
  if (name == "HPAsym") return maker.template make<smr::HpAsymDomain>();
  if (name == "HE") return maker.template make<smr::HeDomain>();
  if (name == "EBR") return maker.template make<smr::EbrDomain>();
  if (name == "IBR") return maker.template make<smr::IbrDomain>();
  if (name == "NBR") return maker.template make<smr::NbrDomain>();
  if (name == "BRC") return maker.template make<smr::BrcDomain>();
  if (name == "HazardPtrPOP") {
    return maker.template make<core::HazardPtrPopDomain>();
  }
  if (name == "HazardEraPOP") {
    return maker.template make<core::HazardEraPopDomain>();
  }
  if (name == "EpochPOP") return maker.template make<core::EpochPopDomain>();
  std::fprintf(stderr,
               "popsmr: unknown SMR scheme '%s' (known: NR, HP, HPAsym, HE, "
               "EBR, IBR, NBR, BRC, EpochPOP, HazardEraPOP, HazardPtrPOP)\n",
               name.c_str());
  return nullptr;
}

}  // namespace pop::ds::detail
