// MSQ — Michael & Scott's lock-free FIFO queue, the original hazard
// pointer client (Michael's HP paper uses it as the running example).
// Not part of the paper's evaluation; included because it exercises SMR
// differently from the search structures: every dequeue retires the
// (dummy) head node, so the retire rate equals the operation rate, and
// reservations protect exactly two hops (head and head->next).
//
// Under NBR the enqueue/dequeue read phase is the initial snapshot of
// head/tail; every CAS runs in a write phase with its operands reserved.
// Fresh nodes are allocated inside the write phase so a neutralization
// longjmp can never leak one.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
class MsQueue {
 public:
  explicit MsQueue(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    Node* dummy = smr_.template create<Node>(0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~MsQueue() {
    Node* c = head_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      Node* nx = c->next.load(std::memory_order_relaxed);
      c->deleter(c);
      c = nx;
    }
  }

  void enqueue(uint64_t value) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Node* t = smr_.protect(0, tail_);
    Node* next = t->next.load(std::memory_order_acquire);
    if (t != tail_.load(std::memory_order_acquire)) goto retry;
    if (next != nullptr) {
      // Tail is lagging: help swing it, then retry.
      smr_.enter_write_phase({t, next});
      tail_.compare_exchange_strong(t, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
      smr_.exit_write_phase();
      goto retry;
    }
    smr_.enter_write_phase({t});
    Node* n = smr_.template create<Node>(value);
    Node* expected = nullptr;
    if (t->next.compare_exchange_strong(expected, n,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      // Best effort; a helper or the next enqueue finishes the swing.
      tail_.compare_exchange_strong(t, n, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
      return;
    }
    smr::destroy_unpublished(n);
    smr_.exit_write_phase();
    goto retry;
  }

  std::optional<uint64_t> dequeue() {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Node* h = smr_.protect(0, head_);
    Node* t = tail_.load(std::memory_order_acquire);
    Node* next = smr_.protect(1, h->next);
    if (h != head_.load(std::memory_order_acquire)) goto retry;
    if (next == nullptr) return std::nullopt;  // empty (h is the dummy)
    if (h == t) {
      // Tail lagging behind a non-empty queue: help before dequeuing.
      smr_.enter_write_phase({h, next});
      tail_.compare_exchange_strong(t, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
      smr_.exit_write_phase();
      goto retry;
    }
    // Read the value while `next` is protected: after the CAS it becomes
    // the new dummy and a concurrent dequeuer may retire-and-free it.
    const uint64_t value = next->value;
    smr_.enter_write_phase({h, next});
    Node* expected = h;
    if (head_.compare_exchange_strong(expected, next,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      smr_.retire(h);
      return value;
    }
    smr_.exit_write_phase();
    goto retry;
  }

  bool empty_slow() const {
    const Node* h = head_.load(std::memory_order_acquire);
    return h->next.load(std::memory_order_acquire) == nullptr;
  }

  uint64_t size_slow() const {
    uint64_t n = 0;
    for (const Node* c = head_.load(std::memory_order_acquire)
                             ->next.load(std::memory_order_acquire);
         c != nullptr; c = c->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

  Smr& domain() { return smr_; }

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

 private:
  struct Node : smr::Reclaimable {
    explicit Node(uint64_t v) : value(v) {}
    uint64_t value;
    std::atomic<Node*> next{nullptr};
  };

  Smr smr_;  // destroyed last
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
};

}  // namespace pop::ds
