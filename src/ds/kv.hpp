// Small vocabulary shared by the value-carrying map API: the concrete
// data-structure templates (hm_list, lazy_list, hash_table, dgt_bst,
// ab_tree) and the type-erased IKV interface both speak it without
// pulling each other in.
#pragma once

#include <cstdint>

namespace pop::ds {

// Outcome of an insert-or-replace put(). A replace never updates the
// stored value in place: the structure swaps in a freshly allocated node
// and retires the displaced one through its owning SMR scheme, because
// concurrent readers may still hold the old node. This makes update-heavy
// KV traffic a reclamation traffic class of its own (short-lived value
// nodes freed under active readers).
enum class PutResult : uint8_t { kInserted, kReplaced };

inline const char* put_result_name(PutResult r) {
  return r == PutResult::kReplaced ? "replaced" : "inserted";
}

// Resize counters exposed by dynamically resizable structures (RHHT):
// descriptor publications split by direction, plus the current bucket
// count. Fixed-shape structures report all-zero stats (the fixed hash
// table reports its bucket count with zero grows/shrinks), so callers
// can emit the fields unconditionally.
struct ResizeStats {
  uint64_t grows = 0;
  uint64_t shrinks = 0;
  uint64_t buckets = 0;  // 0 for structures with no bucket notion

  uint64_t resizes() const { return grows + shrinks; }
};

}  // namespace pop::ds
