// Lazy list (LL) — Heller et al., OPODIS'05 — lock-based map with
// wait-free-style traversals and logical deletion (Figure 2b, appendix
// Figure 9).
//
// Updates lock pred (and curr for removal/replacement) and validate;
// removal first sets curr->marked, then unlinks. Traversals are
// lock-free and validate each hop: after protecting curr (read from
// pred->next), pred must still be unmarked — if pred was unmarked at
// that check, the pred->curr edge was live when the reservation was
// validated, which is exactly the reachability HP-family schemes need.
// On a marked pred the traversal restarts from the head.
//
// put() on an existing key swaps in a fresh node under both locks (one
// pointer store: atomic for readers) and retires the displaced node —
// values are immutable after publication, never updated in place. The
// displaced node is marked so writers re-traverse, but ALSO flagged
// `replaced` so a reader still holding it keeps a linearizable view: the
// key never left the list, so the stale node reads as present with its
// old value (the read linearizes before the swap).
//
// Slots: 0 = pred, 1 = curr. Retire happens after both locks are
// released so a reclaimer can never free a node whose spinlock is still
// being touched.
#pragma once

#include <atomic>
#include <cstdint>

#include "ds/kv.hpp"
#include "runtime/spinlock.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
class LazyList {
 public:
  static constexpr uint64_t kMaxKey = UINT64_MAX;  // tail sentinel key

  explicit LazyList(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    tail_ = smr_.template create<Node>(kMaxKey);
    head_ = smr_.template create<Node>(0);
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~LazyList() {
    Node* c = head_;
    while (c != nullptr) {
      Node* nx = c->next.load(std::memory_order_relaxed);
      c->deleter(c);
      c = nx;
    }
  }

  bool get(uint64_t key, uint64_t* val_out) {
    typename Smr::Guard g(smr_);
    POPSMR_CHECKPOINT(smr_);
    Node *pred, *curr;
    traverse(key, pred, curr);
    if (curr->key != key) return false;
    // A marked node is absent (deleted) unless it was displaced by a
    // replace — then the key never left the list and the stale node's
    // immutable value is a linearizable (pre-swap) read.
    if (curr->marked.load(std::memory_order_acquire) &&
        !curr->replaced.load(std::memory_order_acquire)) {
      return false;
    }
    if (val_out != nullptr) *val_out = curr->val;
    return true;
  }

  bool contains(uint64_t key) { return get(key, nullptr); }

  bool insert(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Node *pred, *curr;
    traverse(key, pred, curr);
    smr_.enter_write_phase({pred, curr});
    pred->lock.lock();
    if (validate(pred, curr)) {
      if (curr->key == key) {
        pred->lock.unlock();
        return false;
      }
      Node* n = smr_.template create<Node>(key, val);
      n->next.store(curr, std::memory_order_relaxed);
      pred->next.store(n, std::memory_order_release);
      pred->lock.unlock();
      return true;
    }
    pred->lock.unlock();
    smr_.exit_write_phase();
    goto retry;
  }

  bool insert(uint64_t key) { return insert(key, key); }

  PutResult put(uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Node *pred, *curr;
    traverse(key, pred, curr);
    smr_.enter_write_phase({pred, curr});
    pred->lock.lock();
    if (!validate(pred, curr)) {
      pred->lock.unlock();
      smr_.exit_write_phase();
      goto retry;
    }
    if (curr->key != key) {
      Node* n = smr_.template create<Node>(key, val);
      n->next.store(curr, std::memory_order_relaxed);
      pred->next.store(n, std::memory_order_release);
      pred->lock.unlock();
      return PutResult::kInserted;
    }
    // Replace: both locks, like removal — curr's lock keeps its next edge
    // stable (an insert-after-curr would lock curr as its pred) while the
    // fresh node is swapped in with one pointer store.
    curr->lock.lock();
    Node* n = smr_.template create<Node>(key, val);
    n->next.store(curr->next.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    curr->replaced.store(true, std::memory_order_relaxed);
    pred->next.store(n, std::memory_order_release);     // readers switch here
    curr->marked.store(true, std::memory_order_release);  // writers re-traverse
    curr->lock.unlock();
    pred->lock.unlock();
    smr_.retire(curr);  // after unlock: nobody touches a freed spinlock
    return PutResult::kReplaced;
  }

  bool erase(uint64_t key) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Node *pred, *curr;
    traverse(key, pred, curr);
    if (curr->key != key) return false;
    if (curr->marked.load(std::memory_order_acquire)) {
      // Displaced by a replace: the key lives on in the replacement node,
      // so this view is stale — re-traverse instead of reporting absent.
      if (curr->replaced.load(std::memory_order_acquire)) goto retry;
      return false;
    }
    smr_.enter_write_phase({pred, curr});
    pred->lock.lock();
    curr->lock.lock();
    if (validate(pred, curr) && curr->key == key) {
      curr->marked.store(true, std::memory_order_release);  // logical
      pred->next.store(curr->next.load(std::memory_order_relaxed),
                       std::memory_order_release);          // physical
      curr->lock.unlock();
      pred->lock.unlock();
      smr_.retire(curr);  // after unlock: nobody touches a freed spinlock
      return true;
    }
    curr->lock.unlock();
    pred->lock.unlock();
    smr_.exit_write_phase();
    goto retry;
  }

  uint64_t size_slow() const {
    uint64_t n = 0;
    for (Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!c->marked.load(std::memory_order_acquire)) ++n;
    }
    return n;
  }

  bool sorted_unique_slow() const {
    uint64_t last = 0;
    bool first = true;
    for (Node* c = head_->next.load(std::memory_order_acquire); c != tail_;
         c = c->next.load(std::memory_order_acquire)) {
      if (!first && c->key <= last) return false;
      last = c->key;
      first = false;
    }
    return true;
  }

  Smr& domain() { return smr_; }

  LazyList(const LazyList&) = delete;
  LazyList& operator=(const LazyList&) = delete;

 private:
  struct Node : smr::Reclaimable {
    explicit Node(uint64_t k, uint64_t v = 0) : key(k), val(v) {}
    uint64_t key;
    uint64_t val;  // immutable after publication (replace swaps nodes)
    std::atomic<Node*> next{nullptr};
    runtime::Spinlock lock;
    std::atomic<bool> marked{false};
    // Set (before marked) when the node was displaced by a put-replace:
    // readers treat it as still present, writers as stale.
    std::atomic<bool> replaced{false};
  };

  static constexpr int kSlotPred = 0;
  static constexpr int kSlotCurr = 1;

  // Postcondition: pred->key < key <= curr->key, both reserved (rotating
  // slots), and pred was unmarked after curr's reservation was validated.
  void traverse(uint64_t key, Node*& pred, Node*& curr) {
  retry:
    int spred = kSlotPred, scurr = kSlotCurr;
    pred = head_;  // head sentinel: never marked, never retired
    curr = smr_.protect(scurr, head_->next);
    while (curr->key < key) {
      pred = curr;
      // Rotate roles: the new pred keeps the reservation it got as curr;
      // the next protect overwrites the old pred's slot.
      const int t = spred;
      spred = scurr;
      scurr = t;
      curr = smr_.protect(scurr, pred->next);
      if (pred->marked.load(std::memory_order_acquire)) goto retry;
    }
  }

  static bool validate(Node* pred, Node* curr) {
    return !pred->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           pred->next.load(std::memory_order_acquire) == curr;
  }

  Smr smr_;  // destroyed last
  Node* head_;
  Node* tail_;
};

}  // namespace pop::ds
