// Harris-Michael lock-free linked-list set (HML) — Michael, PODC'02 — the
// paper's list workhorse (Figure 2a, Figure 4, appendix Figures 8/10).
//
// Written against the uniform SMR policy interface, so the same code runs
// under HP, HPAsym, HE, EBR, IBR, NBR+, BRC and the three POP schemes —
// the executable form of the paper's "drop-in replacement" claim.
//
// Reservation discipline (slots: 0=prev, 1=curr, 2=next):
//  * every hop protects the next node via the validated protect() read;
//  * logical deletion sets the mark bit in curr->next; traversals help
//    unlink marked nodes, and the thread whose unlink CAS succeeds is the
//    unique retirer;
//  * under NBR, traversals run in the read phase (checkpoint at the top of
//    each operation) and every CAS runs in a write phase with its operands
//    reserved first.
//
// HmOps exposes the algorithm over an external head so the hash table can
// reuse it bucket-wise with a single shared reclamation domain.
#pragma once

#include <atomic>
#include <cstdint>

#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/smr_config.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
struct HmOps {
  struct Node : smr::Reclaimable {
    explicit Node(uint64_t k) : key(k) {}
    uint64_t key;
    std::atomic<Node*> next{nullptr};
  };

  static constexpr int kSlotPrev = 0;
  static constexpr int kSlotCurr = 1;
  static constexpr int kSlotNext = 2;

  struct Window {
    Node* prev;  // last node with key < target (or head sentinel)
    Node* curr;  // first node with key >= target, or nullptr
    Node* next;  // curr->next (unmarked) when curr != nullptr
  };

  // Locates the window for `key`, helping to unlink marked nodes along the
  // way. Postconditions: prev/curr/next reserved (in rotating slots), the
  // prev->curr edge was observed unmarked, curr (if any) was observed
  // logically present. Returns true iff curr holds `key`.
  //
  // Slot roles *rotate* on advance instead of copying reservations: the
  // node entering the prev role already owns a reservation from when it
  // was curr, so an advance costs zero extra slot stores — keeping the
  // hot loop at exactly one protect() per hop, which is what the paper's
  // per-read-fence comparison isolates.
  static bool find(Smr& smr, Node* head, uint64_t key, Window& w) {
  retry:
    int sp = kSlotPrev, sc = kSlotCurr, sn = kSlotNext;
    Node* prev = head;  // sentinel: never marked, never retired
    Node* curr = smr.protect(sc, head->next);
    for (;;) {
      if (curr == nullptr) {
        w = {prev, nullptr, nullptr};
        return false;
      }
      Node* next_raw = smr.protect(sn, curr->next);
      if (smr::is_marked(next_raw)) {
        // curr is logically deleted: help unlink it. The CAS is a write,
        // so NBR needs the operands reserved and neutralization masked.
        Node* next = smr::strip_mark(next_raw);
        smr.enter_write_phase({prev, curr, next});
        Node* expected = curr;
        if (prev->next.compare_exchange_strong(expected, next,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          smr.retire(curr);  // unique retirer: the successful unlinker
          smr.exit_write_phase();
        } else {
          smr.exit_write_phase();
          goto retry;  // window changed under us
        }
        curr = smr.protect(sc, prev->next);
        if (smr::is_marked(curr)) goto retry;  // prev got deleted
        continue;
      }
      if (curr->key >= key) {
        w = {prev, curr, next_raw};
        return curr->key == key;
      }
      prev = curr;
      curr = next_raw;
      const int t = sp;  // rotate roles; old prev's reservation is dropped
      sp = sc;
      sc = sn;
      sn = t;
    }
  }

  static bool contains(Smr& smr, Node* head, uint64_t key) {
    typename Smr::Guard g(smr);
    POPSMR_CHECKPOINT(smr);  // a neutralization longjmp re-runs find
    Window w;
    return find(smr, head, key, w);
  }

  static bool insert(Smr& smr, Node* head, uint64_t key) {
    typename Smr::Guard g(smr);
  retry:
    POPSMR_CHECKPOINT(smr);
    Window w;
    if (find(smr, head, key, w)) return false;
    smr.enter_write_phase({w.prev, w.curr});
    Node* n = smr.template create<Node>(key);
    n->next.store(w.curr, std::memory_order_relaxed);
    Node* expected = w.curr;
    if (w.prev->next.compare_exchange_strong(expected, n,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      return true;  // Guard's end_op exits the write phase
    }
    smr::destroy_unpublished(n);
    smr.exit_write_phase();
    goto retry;
  }

  static bool erase(Smr& smr, Node* head, uint64_t key) {
    typename Smr::Guard g(smr);
  retry:
    POPSMR_CHECKPOINT(smr);
    Window w;
    if (!find(smr, head, key, w)) return false;
    smr.enter_write_phase({w.prev, w.curr, w.next});
    // Logical deletion: mark curr->next.
    Node* expected = w.next;
    if (!w.curr->next.compare_exchange_strong(expected,
                                              smr::with_mark(w.next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      smr.exit_write_phase();
      goto retry;
    }
    // Physical unlink, best effort; a failed CAS means some traversal will
    // (or already did) unlink and retire it for us.
    Node* expc = w.curr;
    if (w.prev->next.compare_exchange_strong(expc, w.next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      smr.retire(w.curr);
    }
    return true;
  }

  // Quiescent-only helpers (tests, teardown).
  static uint64_t size_slow(Node* head) {
    uint64_t n = 0;
    for (Node* c = smr::strip_mark(head->next.load(std::memory_order_acquire));
         c != nullptr;
         c = smr::strip_mark(c->next.load(std::memory_order_acquire))) {
      if (!smr::is_marked(c->next.load(std::memory_order_acquire))) ++n;
    }
    return n;
  }

  static bool sorted_unique_slow(Node* head) {
    uint64_t last = 0;
    bool first = true;
    for (Node* c = smr::strip_mark(head->next.load(std::memory_order_acquire));
         c != nullptr;
         c = smr::strip_mark(c->next.load(std::memory_order_acquire))) {
      if (!first && c->key <= last) return false;
      last = c->key;
      first = false;
    }
    return true;
  }

  static void destroy_chain(Node* head) {
    Node* c = head;
    while (c != nullptr) {
      Node* nx = smr::strip_mark(c->next.load(std::memory_order_relaxed));
      c->deleter(c);
      c = nx;
    }
  }
};

// The standalone list set.
template <class Smr>
class HmList {
 public:
  using Ops = HmOps<Smr>;
  using Node = typename Ops::Node;

  explicit HmList(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    head_ = smr_.template create<Node>(0);
  }
  ~HmList() { Ops::destroy_chain(head_); }

  bool contains(uint64_t k) { return Ops::contains(smr_, head_, k); }
  bool insert(uint64_t k) { return Ops::insert(smr_, head_, k); }
  bool erase(uint64_t k) { return Ops::erase(smr_, head_, k); }

  uint64_t size_slow() const { return Ops::size_slow(head_); }
  bool sorted_unique_slow() const { return Ops::sorted_unique_slow(head_); }

  Smr& domain() { return smr_; }

  HmList(const HmList&) = delete;
  HmList& operator=(const HmList&) = delete;

 private:
  Smr smr_;  // declared first: destroyed last (drains retire lists)
  Node* head_;
};

}  // namespace pop::ds
