// Harris-Michael lock-free linked-list map (HML) — Michael, PODC'02 — the
// paper's list workhorse (Figure 2a, Figure 4, appendix Figures 8/10),
// promoted to carry a value per node.
//
// Written against the uniform SMR policy interface, so the same code runs
// under HP, HPAsym, HE, EBR, IBR, NBR+, BRC and the three POP schemes —
// the executable form of the paper's "drop-in replacement" claim.
//
// Reservation discipline (slots: 0=prev, 1=curr, 2=next):
//  * every hop protects the next node via the validated protect() read;
//  * logical deletion sets the mark bit in curr->next; traversals help
//    unlink marked nodes, and the thread whose unlink CAS succeeds is the
//    unique retirer;
//  * under NBR, traversals run in the read phase (checkpoint at the top of
//    each operation) and every CAS runs in a write phase with its operands
//    reserved first.
//
// Values are immutable after publication: put() on an existing key never
// writes the old node — it marks the old node (the erase mark, winning
// against concurrent erasers) and then swings prev->next from the old
// node to a fresh one in a single CAS, retiring the displaced node as the
// unique unlinker. The common path is therefore one mark + one swap; if a
// helping traversal steals the unlink between the two CASes, the put
// degrades to a fresh insert (the replace then linearizes as a deletion
// immediately followed by an insertion).
//
// HmOps exposes the algorithm over an external head so the hash table can
// reuse it bucket-wise with a single shared reclamation domain.
#pragma once

#include <atomic>
#include <cstdint>

#include "ds/kv.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/smr_config.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

template <class Smr>
struct HmOps {
  struct Node : smr::Reclaimable {
    explicit Node(uint64_t k, uint64_t v = 0) : key(k), val(v) {}
    uint64_t key;
    uint64_t val;  // immutable after publication (replace swaps nodes)
    std::atomic<Node*> next{nullptr};
  };

  static constexpr int kSlotPrev = 0;
  static constexpr int kSlotCurr = 1;
  static constexpr int kSlotNext = 2;

  struct Window {
    Node* prev;  // last node with key < target (or head sentinel)
    Node* curr;  // first node with key >= target, or nullptr
    Node* next;  // curr->next (unmarked) when curr != nullptr
  };

  // Locates the window for `key`, helping to unlink marked nodes along the
  // way. Postconditions: prev/curr/next reserved (in rotating slots), the
  // prev->curr edge was observed unmarked, curr (if any) was observed
  // logically present. Returns true iff curr holds `key`.
  //
  // Slot roles *rotate* on advance instead of copying reservations: the
  // node entering the prev role already owns a reservation from when it
  // was curr, so an advance costs zero extra slot stores — keeping the
  // hot loop at exactly one protect() per hop, which is what the paper's
  // per-read-fence comparison isolates.
  static bool find(Smr& smr, Node* head, uint64_t key, Window& w) {
  retry:
    int sp = kSlotPrev, sc = kSlotCurr, sn = kSlotNext;
    Node* prev = head;  // sentinel: never marked, never retired
    Node* curr = smr.protect(sc, head->next);
    for (;;) {
      if (curr == nullptr) {
        w = {prev, nullptr, nullptr};
        return false;
      }
      Node* next_raw = smr.protect(sn, curr->next);
      if (smr::is_marked(next_raw)) {
        // curr is logically deleted: help unlink it. The CAS is a write,
        // so NBR needs the operands reserved and neutralization masked.
        Node* next = smr::strip_mark(next_raw);
        smr.enter_write_phase({prev, curr, next});
        Node* expected = curr;
        if (prev->next.compare_exchange_strong(expected, next,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          smr.retire(curr);  // unique retirer: the successful unlinker
          smr.exit_write_phase();
        } else {
          smr.exit_write_phase();
          goto retry;  // window changed under us
        }
        curr = smr.protect(sc, prev->next);
        if (smr::is_marked(curr)) goto retry;  // prev got deleted
        continue;
      }
      if (curr->key >= key) {
        w = {prev, curr, next_raw};
        return curr->key == key;
      }
      prev = curr;
      curr = next_raw;
      const int t = sp;  // rotate roles; old prev's reservation is dropped
      sp = sc;
      sc = sn;
      sn = t;
    }
  }

  // get: the node's value is immutable after publication, so once find()
  // validated curr's reservation the plain read is safe and untorn.
  static bool get(Smr& smr, Node* head, uint64_t key, uint64_t* val_out) {
    typename Smr::Guard g(smr);
    POPSMR_CHECKPOINT(smr);  // a neutralization longjmp re-runs find
    Window w;
    if (!find(smr, head, key, w)) return false;
    if (val_out != nullptr) *val_out = w.curr->val;
    return true;
  }

  static bool contains(Smr& smr, Node* head, uint64_t key) {
    return get(smr, head, key, nullptr);
  }

  // Links a fresh (key, val) node into window `w` (which observed the key
  // absent). True on success, leaving the write phase open for the
  // Guard's end_op; false (phase exited, node destroyed) to re-find.
  static bool try_link(Smr& smr, Window& w, uint64_t key, uint64_t val) {
    smr.enter_write_phase({w.prev, w.curr});
    Node* n = smr.template create<Node>(key, val);
    n->next.store(w.curr, std::memory_order_relaxed);
    Node* expected = w.curr;
    if (w.prev->next.compare_exchange_strong(expected, n,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      return true;
    }
    smr::destroy_unpublished(n);
    smr.exit_write_phase();
    return false;
  }

  static bool insert(Smr& smr, Node* head, uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr);
  retry:
    POPSMR_CHECKPOINT(smr);
    Window w;
    if (find(smr, head, key, w)) return false;
    if (!try_link(smr, w, key, val)) goto retry;
    return true;
  }

  // Insert-or-replace. A replace marks the old node exactly like erase
  // (so it wins or loses the key's mark against concurrent erasers /
  // replacers — never both), then swaps prev->next from the marked node
  // to the fresh one in one CAS: unlink + insert are atomic, and the
  // swapper is the unique retirer of the displaced node. If a helping
  // traversal unlinks (and retires) the marked node first, the swap CAS
  // fails and the put falls back to a fresh insert on retry.
  static PutResult put(Smr& smr, Node* head, uint64_t key, uint64_t val) {
    typename Smr::Guard g(smr);
    bool displaced = false;  // a previous iteration marked out the old value
  retry:
    POPSMR_CHECKPOINT(smr);
    Window w;
    if (!find(smr, head, key, w)) {
      if (!try_link(smr, w, key, val)) goto retry;
      return displaced ? PutResult::kReplaced : PutResult::kInserted;
    }
    smr.enter_write_phase({w.prev, w.curr, w.next});
    // Mark the node we are displacing (same CAS as erase's logical
    // deletion; only one marker ever wins a given node).
    Node* expected = w.next;
    if (!w.curr->next.compare_exchange_strong(expected,
                                              smr::with_mark(w.next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      smr.exit_write_phase();
      goto retry;
    }
    displaced = true;
    Node* n = smr.template create<Node>(key, val);
    n->next.store(w.next, std::memory_order_relaxed);
    Node* expc = w.curr;
    if (w.prev->next.compare_exchange_strong(expc, n,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      smr.retire(w.curr);  // unique retirer: the successful swapper
      return PutResult::kReplaced;
    }
    // A helper unlinked (and retired) the marked node under us; the key
    // is momentarily absent — reinsert the new value from scratch.
    smr::destroy_unpublished(n);
    smr.exit_write_phase();
    goto retry;
  }

  static bool erase(Smr& smr, Node* head, uint64_t key) {
    typename Smr::Guard g(smr);
  retry:
    POPSMR_CHECKPOINT(smr);
    Window w;
    if (!find(smr, head, key, w)) return false;
    smr.enter_write_phase({w.prev, w.curr, w.next});
    // Logical deletion: mark curr->next.
    Node* expected = w.next;
    if (!w.curr->next.compare_exchange_strong(expected,
                                              smr::with_mark(w.next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      smr.exit_write_phase();
      goto retry;
    }
    // Physical unlink, best effort; a failed CAS means some traversal will
    // (or already did) unlink and retire it for us.
    Node* expc = w.curr;
    if (w.prev->next.compare_exchange_strong(expc, w.next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      smr.retire(w.curr);
    }
    return true;
  }

  // Quiescent-only helpers (tests, teardown).
  static uint64_t size_slow(Node* head) {
    uint64_t n = 0;
    for (Node* c = smr::strip_mark(head->next.load(std::memory_order_acquire));
         c != nullptr;
         c = smr::strip_mark(c->next.load(std::memory_order_acquire))) {
      if (!smr::is_marked(c->next.load(std::memory_order_acquire))) ++n;
    }
    return n;
  }

  static bool sorted_unique_slow(Node* head) {
    uint64_t last = 0;
    bool first = true;
    for (Node* c = smr::strip_mark(head->next.load(std::memory_order_acquire));
         c != nullptr;
         c = smr::strip_mark(c->next.load(std::memory_order_acquire))) {
      if (!first && c->key <= last) return false;
      last = c->key;
      first = false;
    }
    return true;
  }

  static void destroy_chain(Node* head) {
    Node* c = head;
    while (c != nullptr) {
      Node* nx = smr::strip_mark(c->next.load(std::memory_order_relaxed));
      c->deleter(c);
      c = nx;
    }
  }
};

// The standalone list map (also usable as a set via the key-only shims).
template <class Smr>
class HmList {
 public:
  using Ops = HmOps<Smr>;
  using Node = typename Ops::Node;

  explicit HmList(const smr::SmrConfig& cfg = {}) : smr_(cfg) {
    head_ = smr_.template create<Node>(0);
  }
  ~HmList() { Ops::destroy_chain(head_); }

  bool get(uint64_t k, uint64_t* val_out) {
    return Ops::get(smr_, head_, k, val_out);
  }
  PutResult put(uint64_t k, uint64_t v) { return Ops::put(smr_, head_, k, v); }
  bool contains(uint64_t k) { return Ops::contains(smr_, head_, k); }
  bool insert(uint64_t k, uint64_t v) { return Ops::insert(smr_, head_, k, v); }
  bool insert(uint64_t k) { return insert(k, k); }
  bool erase(uint64_t k) { return Ops::erase(smr_, head_, k); }

  uint64_t size_slow() const { return Ops::size_slow(head_); }
  bool sorted_unique_slow() const { return Ops::sorted_unique_slow(head_); }

  Smr& domain() { return smr_; }

  HmList(const HmList&) = delete;
  HmList& operator=(const HmList&) = delete;

 private:
  Smr smr_;  // declared first: destroyed last (drains retire lists)
  Node* head_;
};

}  // namespace pop::ds
