// Type-erased concurrent key-value map interface + factory over every
// (data structure x reclamation scheme) combination in the library.
//
// The benchmark driver, the service layer, and the integration tests are
// written against IKV so one binary can sweep the full matrix; virtual
// dispatch happens once per *operation* (amortized over a whole
// traversal) so it does not perturb the per-read costs the paper
// measures.
//
// IKV is the value-carrying surface (get / put / remove). The original
// key-only set API survives as thin shims on the same interface: `ISet`
// is an alias, `contains` is a get() that discards the value, `erase` is
// remove(), and `insert` stays a genuine insert-if-absent virtual (it
// must NOT be a put shim: put replaces, and a replace retires a node —
// set-only benchmarks would silently change reclamation profile).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ds/kv.hpp"
#include "smr/smr_config.hpp"

namespace pop::ds {

struct SetConfig {
  // Expected maximum number of keys (hash-table bucket sizing).
  uint64_t capacity = 1 << 16;
  double load_factor = 6.0;  // hash table only; the paper uses 6
  smr::SmrConfig smr;
};

class IKV {
 public:
  virtual ~IKV() = default;

  // ---- map surface ---------------------------------------------------------
  // Returns true iff `key` is present; when `val_out` is non-null the
  // stored value is written through it. The value read is the one some
  // completed put/insert published: nodes are immutable after
  // publication, so a get never observes a torn value.
  virtual bool get(uint64_t key, uint64_t* val_out) = 0;

  // Insert-or-replace. kReplaced means an existing mapping was displaced:
  // the structure swapped in a fresh node and retired the old one through
  // its SMR domain (never an in-place value update — readers may still
  // hold the old node; see kv.hpp for the retirement contract).
  virtual PutResult put(uint64_t key, uint64_t val) = 0;

  virtual bool remove(uint64_t key) = 0;

  // ---- set-compat surface --------------------------------------------------
  // Insert-if-absent with value == key; returns false (and retires
  // nothing) when the key is already present.
  virtual bool insert(uint64_t key) = 0;
  bool contains(uint64_t key) { return get(key, nullptr); }
  bool erase(uint64_t key) { return remove(key); }

  // ---- batch bracket -------------------------------------------------------
  // Brackets a pipelined run of point ops on the calling thread so the
  // scheme can amortize its per-op entry cost (the epoch/era announcement
  // fence) over the whole pipeline: one begin_op/end_op per batch instead
  // of per op. The default no-ops keep per-op brackets, which is always
  // correct — the batch bracket is a performance contract, never a safety
  // one. Callers must not touch any *other* IKV between batch_begin and
  // batch_end, and must never hold the bracket across a blocking wait
  // (see smr/domain_base.hpp for the skip mechanism and why NBR opts out).
  virtual void batch_begin() {}
  virtual void batch_end() {}

  // Called by each worker thread before it exits so reclaimers stop
  // waiting on it (and its reservations are dropped).
  virtual void detach_thread() = 0;

  // Fault injection for the scenario engine's stall workloads: parks the
  // calling thread *inside* an SMR operation bracket (begin_op held, any
  // entry-time reservation — e.g. an announced epoch/era — live) until
  // `release` becomes true. This is the paper's stalled-reader failure
  // mode on demand: under EBR the parked thread pins the global epoch and
  // garbage grows for as long as it sleeps; under the POP schemes a
  // reclaimer pings it and frees around its published reservations.
  virtual void park_in_operation(const std::atomic<bool>& release) = 0;

  // Fault injection for the crash scenarios: opens an SMR operation
  // bracket on the calling thread and returns WITHOUT closing it, as if
  // the thread died mid-operation. The caller must let the thread exit
  // immediately afterwards (no detach_thread) — this models a worker
  // killed inside a critical section, the failure mode the zombie reaper
  // exists to recover from. Default: no-op for adapters without a domain.
  virtual void abandon_in_operation() {}

  virtual smr::StatsSnapshot smr_stats() const = 0;

  // Resize counters (grows/shrinks/current buckets). Non-zero grows or
  // shrinks only for dynamically resizable structures (RHHT); the fixed
  // hash table reports its bucket count, everything else reports zeros.
  virtual ResizeStats resize_stats() const { return {}; }

  virtual uint64_t size_slow() const = 0;
  virtual std::string ds_name() const = 0;
  virtual std::string smr_name() const = 0;
};

// The key-only set view is the same interface; existing callers keep
// calling insert/erase/contains through it unchanged.
using ISet = IKV;

// Known names (factory keys, also the benchmark row labels).
const std::vector<std::string>& all_smr_names();
const std::vector<std::string>& all_ds_names();

// Creates `ds` ("HML", "LL", "HMHT", "RHHT" — alias "rhht" — "DGT",
// "ABT") under `smr` ("NR", "HP", "HPAsym", "HE", "EBR", "IBR", "NBR",
// "BRC", "HazardPtrPOP", "HazardEraPOP", "EpochPOP"). Returns nullptr
// for unknown names, after printing one stderr line naming the bad name
// and the known catalogue.
std::unique_ptr<IKV> make_kv(const std::string& ds, const std::string& smr,
                             const SetConfig& cfg);

// Legacy name for the same factory (the set view is the same object).
inline std::unique_ptr<ISet> make_set(const std::string& ds,
                                      const std::string& smr,
                                      const SetConfig& cfg) {
  return make_kv(ds, smr, cfg);
}

}  // namespace pop::ds
