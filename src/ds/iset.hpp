// Type-erased concurrent set interface + factory over every
// (data structure x reclamation scheme) combination in the library.
//
// The benchmark driver and the integration tests are written against
// ISet so one binary can sweep the full matrix; virtual dispatch happens
// once per *operation* (amortized over a whole traversal) so it does not
// perturb the per-read costs the paper measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smr/smr_config.hpp"

namespace pop::ds {

struct SetConfig {
  // Expected maximum number of keys (hash-table bucket sizing).
  uint64_t capacity = 1 << 16;
  double load_factor = 6.0;  // hash table only; the paper uses 6
  smr::SmrConfig smr;
};

class ISet {
 public:
  virtual ~ISet() = default;
  virtual bool insert(uint64_t key) = 0;
  virtual bool erase(uint64_t key) = 0;
  virtual bool contains(uint64_t key) = 0;

  // Called by each worker thread before it exits so reclaimers stop
  // waiting on it (and its reservations are dropped).
  virtual void detach_thread() = 0;

  // Fault injection for the scenario engine's stall workloads: parks the
  // calling thread *inside* an SMR operation bracket (begin_op held, any
  // entry-time reservation — e.g. an announced epoch/era — live) until
  // `release` becomes true. This is the paper's stalled-reader failure
  // mode on demand: under EBR the parked thread pins the global epoch and
  // garbage grows for as long as it sleeps; under the POP schemes a
  // reclaimer pings it and frees around its published reservations.
  virtual void park_in_operation(const std::atomic<bool>& release) = 0;

  virtual smr::StatsSnapshot smr_stats() const = 0;
  virtual uint64_t size_slow() const = 0;
  virtual std::string ds_name() const = 0;
  virtual std::string smr_name() const = 0;
};

// Known names (factory keys, also the benchmark row labels).
const std::vector<std::string>& all_smr_names();
const std::vector<std::string>& all_ds_names();

// Creates `ds` ("HML", "LL", "HMHT", "DGT", "ABT") under `smr` ("NR",
// "HP", "HPAsym", "HE", "EBR", "IBR", "NBR", "BRC", "HazardPtrPOP",
// "HazardEraPOP", "EpochPOP"). Returns nullptr for unknown names.
std::unique_ptr<ISet> make_set(const std::string& ds, const std::string& smr,
                               const SetConfig& cfg);

}  // namespace pop::ds
