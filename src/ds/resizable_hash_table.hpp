// RHHT — dynamically resizable lock-free hash table under SMR, built as a
// split-ordered list (Shalev & Shavit, "Split-Ordered Lists: Lock-Free
// Extensible Hash Tables", JACM'06) over the same reservation discipline
// as HmOps.
//
// Why split order instead of migrating items between bucket arrays: a
// copy-based migration has to re-insert items into the new table, and a
// stalled helper can resurrect a key that was concurrently removed —
// solving that needs per-bucket freeze words or per-item forwarding
// marks. In the split-ordered design the items never move. There is ONE
// ordered lock-free list of all items, ordered by the bit-reversal of
// their hashed keys, and a bucket array is just an index of shortcut
// pointers into it:
//
//   * regular node:  so = reverse64(mix(key)) | 1   (odd)
//   * dummy node:    so = reverse64(bucket)         (even; one per bucket,
//                    lazily inserted, NEVER retired)
//
// Bit reversal puts a key's bucket bits (the LOW bits of mix(key), for a
// power-of-two table) at the TOP of its so-key, so every bucket is a
// contiguous run of the list and bucket b of a 2n-bucket table splits
// bucket b mod n of the n-bucket table in place. A resize therefore only
// swaps the *descriptor*:
//
//   table_ --CAS--> Table{nbuckets, cells[]}        (cells: write-once
//                    pointers to dummy nodes; null = not yet initialized)
//
// The displaced descriptor — a multi-kilobyte bucket array, the bursty
// large-Reclaimable shape this structure exists to exercise — is retired
// as a single Reclaimable through the owning domain; its destructor
// returns the cells array to the pool, so the batched sweep, the
// poisoned/UAF suites, and the leak-balance accounting all see it.
// Readers protect the descriptor with a validated protect() in a slot of
// its own (kSlotTable = 3; the list traversal rotates 0..2 exactly like
// HmOps), so a descriptor is never freed under a traversal that still
// routes through it. Dummies are reachable from every table generation
// and are never retired; after a shrink the orphaned high-bucket dummies
// stay in the list (harmless: they are just extra even so-keys) and are
// re-adopted if the table grows again.
//
// Cooperative incremental migration: there is no migration *thread* —
// an operation that routes to an uninitialized cell initializes it
// (recursively from the bucket's split-parent, insert-if-absent), i.e.
// every operation finishes the resize for exactly the bucket it touches.
//
// Resize policy: per-thread striped size counters (SWMR, summed over the
// registry's live-tid range) are checked every kResizeCheckEvery updates;
// grow doubles when size > nbuckets * load_factor, shrink halves after
// kShrinkStreak consecutive checks below a quarter of that watermark
// (hysteresis so a mixed workload near the boundary does not oscillate).
// The losing racer of a descriptor CAS destroys its unpublished Table.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "ds/kv.hpp"
#include "obs/obs.hpp"
#include "runtime/padded.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/thread_registry.hpp"
#include "smr/checkpoint.hpp"
#include "smr/domain_base.hpp"
#include "smr/smr_config.hpp"
#include "smr/tagged.hpp"

namespace pop::ds {

namespace detail_rhht {

inline uint64_t reverse64(uint64_t x) {
  x = ((x >> 1) & 0x5555555555555555ull) | ((x & 0x5555555555555555ull) << 1);
  x = ((x >> 2) & 0x3333333333333333ull) | ((x & 0x3333333333333333ull) << 2);
  x = ((x >> 4) & 0x0f0f0f0f0f0f0f0full) | ((x & 0x0f0f0f0f0f0f0f0full) << 4);
  return __builtin_bswap64(x);
}

// Fibonacci multiplicative mix (odd multiplier: a bijection, so two keys
// collide in so-space only in the dropped-bit sense handled by the
// (so, key) lexicographic order below).
inline uint64_t mix(uint64_t k) { return k * 0x9e3779b97f4a7c15ull; }

// reverse64(mix)|1 drops mix's bit 63, so two distinct keys CAN share a
// regular so-key; all comparisons are lexicographic on (so, key).
inline uint64_t so_regular(uint64_t k) { return reverse64(mix(k)) | 1; }
inline uint64_t so_dummy(uint64_t bucket) { return reverse64(bucket); }

// Split-parent: the bucket index with its highest set bit cleared.
inline uint64_t parent_bucket(uint64_t i) {
  return i & ~(1ull << (63 - __builtin_clzll(i)));
}

inline uint64_t pow2_at_least(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace detail_rhht

template <class Smr>
class ResizableHashTable {
 public:
  struct Node : smr::Reclaimable {
    Node(uint64_t so_, uint64_t k, uint64_t v) : so(so_), key(k), val(v) {}
    uint64_t so;   // split-order key; even = dummy (key holds the bucket)
    uint64_t key;
    uint64_t val;  // immutable after publication (replace swaps nodes)
    std::atomic<Node*> next{nullptr};
  };

  // The CAS-published descriptor. Retiring one retires the whole bucket
  // array as a single large Reclaimable: the destructor (run by the
  // batch_prep hook on the sweep path) returns the cells block to the
  // pool, so descriptor reclamation is visible to the same allocated ==
  // freed accounting as node reclamation.
  struct Table : smr::Reclaimable {
    explicit Table(uint64_t n) : nbuckets(n) {
      cells = static_cast<std::atomic<Node*>*>(
          runtime::PoolAllocator::instance().allocate(
              n * sizeof(std::atomic<Node*>)));
      for (uint64_t i = 0; i < n; ++i) {
        new (&cells[i]) std::atomic<Node*>(nullptr);
      }
    }
    ~Table() { runtime::PoolAllocator::instance().deallocate(cells); }
    const uint64_t nbuckets;         // always a power of two
    std::atomic<Node*>* cells;       // write-once: null -> dummy, never back
  };

  // The list traversal rotates slots 0..2 (HmOps discipline); the table
  // descriptor lives in a slot of its own so it stays protected across
  // the whole operation. Bundled structures use at most 4 of the
  // kMaxSlots = 8 slots, so slot 3 is free by library convention.
  static constexpr int kSlotTable = 3;
  static constexpr uint64_t kMinBuckets = 2;
  static constexpr uint64_t kMaxBuckets = 1ull << 26;
  static constexpr uint64_t kResizeCheckEvery = 64;
  // 4 checks (at 64 updates each, per thread) of sustained underflow
  // before a shrink: a filling-but-still-small table — the first moments
  // of every under-provisioned run — must not thrash descriptors on its
  // way up, while a genuinely drained table still halves within a few
  // hundred updates.
  static constexpr uint32_t kShrinkStreak = 4;

  explicit ResizableHashTable(uint64_t capacity, double load_factor = 6.0,
                              const smr::SmrConfig& cfg = {})
      : smr_(cfg), load_factor_(load_factor > 0 ? load_factor : 6.0) {
    const uint64_t want = static_cast<uint64_t>(
        (static_cast<double>(capacity) + load_factor_ - 1) / load_factor_);
    const uint64_t n = std::clamp<uint64_t>(detail_rhht::pow2_at_least(want),
                                            kMinBuckets, kMaxBuckets);
    head_ = smr_.template create<Node>(detail_rhht::so_dummy(0), 0, 0);
    Table* t = smr_.template create<Table>(n);
    t->cells[0].store(head_, std::memory_order_relaxed);
    nbuckets_now_.store(n, std::memory_order_relaxed);
    table_.store(t, std::memory_order_release);
  }

  ~ResizableHashTable() {
    // Quiescent teardown: free the whole list (dummies included), then
    // the current descriptor; descriptors displaced earlier sit on the
    // domain's retire lists and are freed by its drain (smr_ is the
    // first member, so it is destroyed after this body runs).
    Node* c = head_;
    while (c != nullptr) {
      Node* nx = smr::strip_mark(c->next.load(std::memory_order_relaxed));
      c->deleter(c);
      c = nx;
    }
    smr::destroy_unpublished(table_.load(std::memory_order_relaxed));
  }

  bool get(uint64_t k, uint64_t* val_out) {
    typename Smr::Guard g(smr_);
    POPSMR_CHECKPOINT(smr_);  // a neutralization longjmp re-runs from here
    Table* t = smr_.protect(kSlotTable, table_);
    Window w;
    if (!find(bucket_head(t, bucket_of(t, k)), detail_rhht::so_regular(k), k,
              w)) {
      return false;
    }
    if (val_out != nullptr) *val_out = w.curr->val;
    return true;
  }

  bool contains(uint64_t k) { return get(k, nullptr); }

  bool insert(uint64_t k, uint64_t v) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Table* t = smr_.protect(kSlotTable, table_);
    const uint64_t so = detail_rhht::so_regular(k);
    Window w;
    if (find(bucket_head(t, bucket_of(t, k)), so, k, w)) return false;
    if (!try_link(w, so, k, v)) goto retry;
    // The successful link leaves the write phase open (Guard's end_op
    // closes it), so the size bump and any resize it triggers cannot be
    // torn off by a neutralization restart.
    after_update(t, +1);
    return true;
  }

  bool insert(uint64_t k) { return insert(k, k); }

  // Insert-or-replace, HmOps put semantics: mark the displaced node like
  // an erase, then swing prev->next to the fresh node in one CAS; the
  // successful swapper is the unique retirer. Falls back to a fresh
  // insert when a helping traversal steals the unlink in between.
  PutResult put(uint64_t k, uint64_t v) {
    typename Smr::Guard g(smr_);
    // Size accounting is conservation-exact: every successful mark CAS is
    // one logical deletion (-1), the one successful publication is +1 —
    // the rare mark/swap-fail/re-mark path nets -1, not 0, and a drifting
    // stripe sum would slowly inflate the resize policy's size estimate.
    int64_t marks = 0;
  retry:
    POPSMR_CHECKPOINT(smr_);
    Table* t = smr_.protect(kSlotTable, table_);
    const uint64_t so = detail_rhht::so_regular(k);
    Window w;
    if (!find(bucket_head(t, bucket_of(t, k)), so, k, w)) {
      if (!try_link(w, so, k, v)) goto retry;
      after_update(t, 1 - marks);
      return marks > 0 ? PutResult::kReplaced : PutResult::kInserted;
    }
    smr_.enter_write_phase({w.prev, w.curr, w.next});
    Node* expected = w.next;
    if (!w.curr->next.compare_exchange_strong(expected,
                                              smr::with_mark(w.next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      smr_.exit_write_phase();
      goto retry;
    }
    ++marks;
    Node* n = smr_.template create<Node>(so, k, v);
    n->next.store(w.next, std::memory_order_relaxed);
    Node* expc = w.curr;
    if (w.prev->next.compare_exchange_strong(expc, n,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      smr_.retire(w.curr);
      after_update(t, 1 - marks);
      return PutResult::kReplaced;
    }
    smr::destroy_unpublished(n);
    smr_.exit_write_phase();
    goto retry;
  }

  bool erase(uint64_t k) {
    typename Smr::Guard g(smr_);
  retry:
    POPSMR_CHECKPOINT(smr_);
    Table* t = smr_.protect(kSlotTable, table_);
    Window w;
    if (!find(bucket_head(t, bucket_of(t, k)), detail_rhht::so_regular(k), k,
              w)) {
      return false;
    }
    smr_.enter_write_phase({w.prev, w.curr, w.next});
    Node* expected = w.next;
    if (!w.curr->next.compare_exchange_strong(expected,
                                              smr::with_mark(w.next),
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      smr_.exit_write_phase();
      goto retry;
    }
    Node* expc = w.curr;
    if (w.prev->next.compare_exchange_strong(expc, w.next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      smr_.retire(w.curr);
    }
    after_update(t, -1);
    return true;
  }

  // Quiescent-only helpers.
  uint64_t size_slow() const {
    uint64_t n = 0;
    for (Node* c = smr::strip_mark(head_->next.load(std::memory_order_acquire));
         c != nullptr;
         c = smr::strip_mark(c->next.load(std::memory_order_acquire))) {
      if ((c->so & 1) != 0 &&
          !smr::is_marked(c->next.load(std::memory_order_acquire))) {
        ++n;
      }
    }
    return n;
  }

  uint64_t bucket_count() const {
    return nbuckets_now_.load(std::memory_order_acquire);
  }

  // The resize policy's striped size estimate (racy-but-benign sum).
  // Exposed so tests can assert the estimate tracks the true population:
  // a drifting estimate makes the policy thrash descriptors.
  int64_t size_estimate() const { return approx_size(); }

  ResizeStats resize_stats() const {
    ResizeStats r;
    r.grows = grows_.load(std::memory_order_relaxed);
    r.shrinks = shrinks_.load(std::memory_order_relaxed);
    r.buckets = bucket_count();
    return r;
  }

  Smr& domain() { return smr_; }

  ResizableHashTable(const ResizableHashTable&) = delete;
  ResizableHashTable& operator=(const ResizableHashTable&) = delete;

 private:
  struct Window {
    Node* prev;
    Node* curr;  // first node with (so, key) >= target, or nullptr
    Node* next;
  };

  struct Stripe {
    std::atomic<int64_t> size{0};  // SWMR: written only by the owning tid
    uint64_t tick = 0;
  };

  static uint64_t bucket_of(const Table* t, uint64_t k) {
    return detail_rhht::mix(k) & (t->nbuckets - 1);
  }

  // The bucket's shortcut dummy, initializing the cell on first touch —
  // this IS the cooperative migration step: whichever operation first
  // routes through a fresh (post-grow) cell splits the parent bucket by
  // inserting the dummy, and every operation therefore migrates exactly
  // the bucket it touches. Recursion depth is bounded by log2(nbuckets)
  // (each parent index clears the top bit). Cells are write-once, and
  // the dummy for a given so-key is unique for all time (insert-if-
  // absent, never retired), so a lost cells-CAS race always installed
  // the same pointer.
  Node* bucket_head(Table* t, uint64_t b) {
    Node* d = t->cells[b].load(std::memory_order_acquire);
    if (d != nullptr) return d;
    Node* p = bucket_head(t, detail_rhht::parent_bucket(b));
    const uint64_t so = detail_rhht::so_dummy(b);
    for (;;) {
      Window w;
      if (find(p, so, b, w)) {
        d = w.curr;
        break;
      }
      smr_.enter_write_phase({w.prev, w.curr});
      Node* n = smr_.template create<Node>(so, b, 0);
      n->next.store(w.curr, std::memory_order_relaxed);
      Node* expected = w.curr;
      if (w.prev->next.compare_exchange_strong(expected, n,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        // Unlike a data link, a dummy link happens mid-operation: close
        // the write phase (re-arming the read phase) — a neutralization
        // restart re-finds this dummy, so the link is idempotent.
        smr_.exit_write_phase();
        d = n;
        break;
      }
      smr::destroy_unpublished(n);
      smr_.exit_write_phase();
    }
    Node* expected = nullptr;
    t->cells[b].compare_exchange_strong(expected, d,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
    return t->cells[b].load(std::memory_order_acquire);
  }

  // HmOps::find with (so, key) lexicographic comparisons. `head` is a
  // dummy node: never marked, never retired, so the retry label is safe
  // to re-enter without a fresh protect.
  bool find(Node* head, uint64_t so, uint64_t key, Window& w) {
  retry:
    int sp = 0, sc = 1, sn = 2;
    Node* prev = head;
    Node* curr = smr_.protect(sc, head->next);
    for (;;) {
      if (curr == nullptr) {
        w = {prev, nullptr, nullptr};
        return false;
      }
      Node* next_raw = smr_.protect(sn, curr->next);
      if (smr::is_marked(next_raw)) {
        Node* next = smr::strip_mark(next_raw);
        smr_.enter_write_phase({prev, curr, next});
        Node* expected = curr;
        if (prev->next.compare_exchange_strong(expected, next,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
          smr_.retire(curr);  // unique retirer: the successful unlinker
          smr_.exit_write_phase();
        } else {
          smr_.exit_write_phase();
          goto retry;
        }
        curr = smr_.protect(sc, prev->next);
        if (smr::is_marked(curr)) goto retry;
        continue;
      }
      if (curr->so > so || (curr->so == so && curr->key >= key)) {
        w = {prev, curr, next_raw};
        return curr->so == so && curr->key == key;
      }
      prev = curr;
      curr = next_raw;
      const int t = sp;
      sp = sc;
      sc = sn;
      sn = t;
    }
  }

  // Links a fresh regular node into window `w`. On success the write
  // phase stays open for the Guard's end_op (HmOps contract).
  bool try_link(Window& w, uint64_t so, uint64_t key, uint64_t val) {
    smr_.enter_write_phase({w.prev, w.curr});
    Node* n = smr_.template create<Node>(so, key, val);
    n->next.store(w.curr, std::memory_order_relaxed);
    Node* expected = w.curr;
    if (w.prev->next.compare_exchange_strong(expected, n,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      return true;
    }
    smr::destroy_unpublished(n);
    smr_.exit_write_phase();
    return false;
  }

  int64_t approx_size() const {
    int64_t n = 0;
    const int hi = runtime::ThreadRegistry::instance().max_tid();
    for (int t = 0; t <= hi && t < runtime::kMaxThreads; ++t) {
      n += stripe_[t]->size.load(std::memory_order_relaxed);
    }
    return n > 0 ? n : 0;
  }

  // Called by every successful update while its write phase is still
  // open: the stripe bump is unconditional, the policy check runs every
  // kResizeCheckEvery updates per thread.
  void after_update(Table* t, int64_t delta) {
    Stripe& s = *stripe_[runtime::my_tid()];
    if (delta != 0) {
      s.size.store(s.size.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
    }
    if (++s.tick % kResizeCheckEvery != 0) return;
    maybe_resize(t);
  }

  void maybe_resize(Table* t) {
    if (table_.load(std::memory_order_acquire) != t) return;  // stale view
    const uint64_t n = t->nbuckets;
    const double watermark = static_cast<double>(n) * load_factor_;
    const int64_t sz = approx_size();
    uint64_t want = 0;
    if (static_cast<double>(sz) > watermark && n < kMaxBuckets) {
      want = n * 2;
      shrink_streak_.store(0, std::memory_order_relaxed);
    } else if (n > kMinBuckets &&
               static_cast<double>(sz) * 4.0 < watermark) {
      // Sustained underflow only: one quiet check is not a trend.
      if (shrink_streak_.fetch_add(1, std::memory_order_relaxed) + 1 <
          kShrinkStreak) {
        return;
      }
      shrink_streak_.store(0, std::memory_order_relaxed);
      want = n / 2;
    } else {
      shrink_streak_.store(0, std::memory_order_relaxed);
      return;
    }
    // Re-reserve {t} for the descriptor copy below: under NBR the caller
    // is in a write phase with only its list operands published, and a
    // concurrent resizer may retire t the moment its own CAS lands. The
    // mutation that brought us here is already complete, so replacing
    // the operand set is safe; the phase itself stays open (no exit
    // until the Guard's end_op), keeping the copy un-neutralizable.
    smr_.enter_write_phase({t});
    Table* nt = smr_.template create<Table>(want);
    const uint64_t keep = std::min(n, want);
    for (uint64_t i = 0; i < keep; ++i) {
      // Snapshot the shortcut index. A cell initialized concurrently
      // after the copy is re-derived lazily in the new table (the dummy
      // is already in the list; bucket_head just re-finds it).
      nt->cells[i].store(t->cells[i].load(std::memory_order_acquire),
                         std::memory_order_relaxed);
    }
    Table* expected = t;
    if (table_.compare_exchange_strong(expected, nt,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      nbuckets_now_.store(want, std::memory_order_release);
      if (want > n) {
        grows_.fetch_add(1, std::memory_order_relaxed);
      } else {
        shrinks_.fetch_add(1, std::memory_order_relaxed);
      }
      if (obs::trace_on()) {  // arg: the published bucket count
        obs::trace_event(obs::TraceKind::kResizePublish, obs::now_ns(), 0,
                         static_cast<uint32_t>(
                             want > UINT32_MAX ? UINT32_MAX : want));
      }
      smr_.retire(t);  // one large Reclaimable: the whole bucket array
    } else {
      smr::destroy_unpublished(nt);  // lost the descriptor race
    }
  }

  Smr smr_;  // declared first: destroyed last (drains retired descriptors)
  double load_factor_;
  std::atomic<Table*> table_{nullptr};
  Node* head_;  // bucket 0's dummy; shared by every table generation
  std::atomic<uint64_t> nbuckets_now_{0};  // reporting-only mirror
  std::atomic<uint64_t> grows_{0};
  std::atomic<uint64_t> shrinks_{0};
  std::atomic<uint32_t> shrink_streak_{0};
  runtime::Padded<Stripe> stripe_[runtime::kMaxThreads];
};

}  // namespace pop::ds
