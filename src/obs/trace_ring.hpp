// TraceRing — fixed-size per-thread ring of timestamped reclamation events.
//
// Each thread appends to its own ring (no cross-thread writes); a dump pass
// from any thread reads every ring concurrently with ongoing appends. Slots
// are tiny seqlocks over relaxed atomics: the writer bumps seq to odd,
// stores the payload, then bumps it to even with release; the reader
// rejects a slot whose seq is odd or changed between two acquire loads.
// Worst case a reader skips a slot being overwritten — never a torn event,
// never a TSan report.
//
// The ring overwrites oldest-first; `dropped()` says how many events were
// lost to wraparound so dumps can disclose truncation.

#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

namespace pop::obs {

enum class TraceKind : uint32_t {
  kRetire = 0,
  kSweep,
  kPingWaveLead,
  kPingWaveJoin,
  kPingWaveTimeout,
  kZombieCertified,
  kPressure,
  kResizePublish,
  kScenarioBegin,
  kScenarioEnd,
  kCount,
};

inline const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kRetire:          return "retire";
    case TraceKind::kSweep:           return "sweep";
    case TraceKind::kPingWaveLead:    return "ping_wave_led";
    case TraceKind::kPingWaveJoin:    return "ping_wave_joined";
    case TraceKind::kPingWaveTimeout: return "ping_wave_timed_out";
    case TraceKind::kZombieCertified: return "zombie_certified";
    case TraceKind::kPressure:        return "pressure";
    case TraceKind::kResizePublish:   return "resize_published";
    case TraceKind::kScenarioBegin:   return "scenario_begin";
    case TraceKind::kScenarioEnd:     return "scenario_end";
    default:                          return "unknown";
  }
}

// Duration events render as Chrome "X" (complete) slices; the rest are "i"
// (instant) marks.
inline bool trace_kind_is_span(TraceKind k) {
  switch (k) {
    case TraceKind::kSweep:
    case TraceKind::kPingWaveLead:
    case TraceKind::kPingWaveJoin:
    case TraceKind::kPingWaveTimeout:
      return true;
    default:
      return false;
  }
}

struct TraceEvent {
  uint64_t t_ns = 0;    // steady-clock timestamp of event start
  uint64_t dur_ns = 0;  // 0 for instant events
  uint32_t kind = 0;    // TraceKind
  uint32_t arg = 0;     // kind-specific payload (count, tid, …)
  int tid = -1;         // filled in by the collector
};

class TraceRing {
 public:
  explicit TraceRing(uint32_t capacity) {
    cap_ = std::bit_ceil(capacity < 8 ? 8u : capacity);
    slots_ = std::make_unique<Slot[]>(cap_);
  }

  uint32_t capacity() const { return cap_; }

  // Total events ever recorded (monotonic).
  uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

  // Events lost to wraparound so far.
  uint64_t dropped() const {
    const uint64_t h = recorded();
    return h > cap_ ? h - cap_ : 0;
  }

  // Owner thread only.
  void record(TraceKind k, uint64_t t_ns, uint64_t dur_ns, uint32_t arg) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & (cap_ - 1)];
    const uint64_t q = s.seq.load(std::memory_order_relaxed);
    s.seq.store(q + 1, std::memory_order_release);  // odd: write in flight
    s.t_ns.store(t_ns, std::memory_order_release);
    s.dur_ns.store(dur_ns, std::memory_order_release);
    s.meta.store(static_cast<uint64_t>(k) << 32 | arg,
                 std::memory_order_release);
    s.seq.store(q + 2, std::memory_order_release);  // even: stable
    head_.store(h + 1, std::memory_order_release);
  }

  // Any thread; appends every stable slot to `out`, tagging each with
  // `tid`. Slots mid-overwrite are skipped after a few retries.
  void collect(int tid, std::vector<TraceEvent>& out) const {
    const uint64_t h = head_.load(std::memory_order_acquire);
    const uint64_t n = h < cap_ ? h : cap_;
    for (uint64_t i = 0; i < n; ++i) {
      const Slot& s = slots_[i];
      for (int attempt = 0; attempt < 4; ++attempt) {
        const uint64_t q1 = s.seq.load(std::memory_order_acquire);
        if (q1 & 1) continue;  // writer in flight
        TraceEvent e;
        e.t_ns = s.t_ns.load(std::memory_order_acquire);
        e.dur_ns = s.dur_ns.load(std::memory_order_acquire);
        const uint64_t meta = s.meta.load(std::memory_order_acquire);
        const uint64_t q2 = s.seq.load(std::memory_order_acquire);
        if (q1 != q2) continue;  // overwritten mid-read
        e.kind = static_cast<uint32_t>(meta >> 32);
        e.arg = static_cast<uint32_t>(meta);
        e.tid = tid;
        out.push_back(e);
        break;
      }
    }
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // even: stable, odd: being written
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> meta{0};  // kind << 32 | arg
  };

  std::unique_ptr<Slot[]> slots_;
  uint32_t cap_ = 0;                 // power of two
  std::atomic<uint64_t> head_{0};    // next write position (monotonic)
};

}  // namespace pop::obs
