// Observability backends: per-thread histogram / ring registries, the
// perf_event_open syscalls, and the Chrome trace-event dump.

#include "obs/obs.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/hw_counters.hpp"
#include "runtime/env.hpp"
#include "runtime/thread_registry.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pop::obs {

uint64_t run_id() {
  // Wall-clock ns at first call: unique-enough per process, and monotonic
  // across successive runs so concatenated CI artifacts sort correctly.
  static const uint64_t id = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return id;
}

uint64_t wall_ts_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

namespace detail {

std::atomic<int> g_latency_state{0};
std::atomic<int> g_hw_state{0};
std::atomic<int> g_trace_state{0};

namespace {

int env_flag_state(const char* name) {
  return runtime::env_u64(name, 0) != 0 ? 2 : 1;
}

// ---- latency registry ------------------------------------------------------

struct ThreadHistos {
  LatencyHisto h[kLatOpCount];
};

// Slots are published with release so a snapshotting thread that sees the
// pointer sees a constructed object. Freed by the table destructor at
// process exit (ASan leak checking stays clean); worker threads are joined
// before main returns in every binary that enables latency.
struct HistoTable {
  std::atomic<ThreadHistos*> slots[runtime::kMaxThreads] = {};
  ~HistoTable() {
    for (auto& s : slots) delete s.load(std::memory_order_acquire);
  }
};

HistoTable& histo_table() {
  static HistoTable t;
  return t;
}

ThreadHistos& histos_for_self() {
  const int tid = runtime::my_tid();
  auto& slot = histo_table().slots[tid];
  ThreadHistos* h = slot.load(std::memory_order_acquire);
  if (!h) {
    // tid slots are owned by one live thread at a time, so no CAS race:
    // only the owner allocates its slot. (Recycled tids inherit the block,
    // which is fine — snapshots are process-wide merges anyway.)
    h = new ThreadHistos();
    slot.store(h, std::memory_order_release);
  }
  return *h;
}

// ---- trace registry --------------------------------------------------------

struct TraceRegistry {
  std::atomic<TraceRing*> rings[runtime::kMaxThreads] = {};
  std::mutex mu;             // guards path/epoch/ring_cap
  std::string path;
  uint64_t epoch_ns = 0;     // now_ns at arm time; dump timestamps are
                             // relative to this
  uint32_t ring_cap = 0;

  ~TraceRegistry() {
    for (auto& r : rings) delete r.load(std::memory_order_acquire);
  }
};

TraceRegistry& trace_registry() {
  static TraceRegistry t;
  return t;
}

TraceRing& ring_for_self() {
  auto& reg = trace_registry();
  const int tid = runtime::my_tid();
  auto& slot = reg.rings[tid];
  TraceRing* r = slot.load(std::memory_order_acquire);
  if (!r) {
    uint32_t cap;
    {
      std::lock_guard<std::mutex> lk(reg.mu);
      cap = reg.ring_cap ? reg.ring_cap
                         : static_cast<uint32_t>(
                               runtime::env_u64("POPSMR_TRACE_RING", 8192));
    }
    r = new TraceRing(cap);
    slot.store(r, std::memory_order_release);
  }
  return *r;
}

}  // namespace

int latency_init_slow() {
  int expected = 0;
  const int s = env_flag_state("POPSMR_OBS_LATENCY");
  if (g_latency_state.compare_exchange_strong(expected, s,
                                              std::memory_order_relaxed)) {
    return s;
  }
  return expected;  // lost the race; someone else initialized
}

int hw_init_slow() {
  int expected = 0;
  const int s = env_flag_state("POPSMR_OBS_HW");
  if (g_hw_state.compare_exchange_strong(expected, s,
                                         std::memory_order_relaxed)) {
    return s;
  }
  return expected;
}

int trace_init_slow() {
  const std::string path = runtime::env_str("POPSMR_TRACE", "");
  if (path.empty()) {
    int expected = 0;
    g_trace_state.compare_exchange_strong(expected, 1,
                                          std::memory_order_relaxed);
    return g_trace_state.load(std::memory_order_relaxed);
  }
  arm_trace(path);
  return g_trace_state.load(std::memory_order_relaxed);
}

void record_latency_slow(LatOp op, uint64_t ns) {
  histos_for_self().h[static_cast<int>(op)].record(ns);
}

void trace_event_slow(TraceKind k, uint64_t t_ns, uint64_t dur_ns,
                      uint32_t arg) {
  ring_for_self().record(k, t_ns, dur_ns, arg);
}

}  // namespace detail

void set_latency(bool on) {
  if constexpr (!kEnabled) return;
  detail::g_latency_state.store(on ? 2 : 1, std::memory_order_relaxed);
}

void set_hw(bool on) {
  if constexpr (!kEnabled) return;
  detail::g_hw_state.store(on ? 2 : 1, std::memory_order_relaxed);
}

void init_from_env() {
  if constexpr (!kEnabled) return;
  (void)latency_on();
  (void)hw_on();
  (void)trace_on();
}

HistoSnapshot latency_snapshot(LatOp op) {
  HistoSnapshot s;
  if constexpr (!kEnabled) return s;
  auto& table = detail::histo_table();
  for (int t = 0; t < runtime::kMaxThreads; ++t) {
    auto* h = table.slots[t].load(std::memory_order_acquire);
    if (h) s.merge(h->h[static_cast<int>(op)].snapshot());
  }
  return s;
}

void latency_reset() {
  if constexpr (!kEnabled) return;
  auto& table = detail::histo_table();
  for (int t = 0; t < runtime::kMaxThreads; ++t) {
    auto* h = table.slots[t].load(std::memory_order_acquire);
    if (!h) continue;
    for (int k = 0; k < kLatOpCount; ++k) h->h[k].reset();
  }
}

void arm_trace(const std::string& path, uint32_t ring_capacity) {
  if constexpr (!kEnabled) return;
  auto& reg = detail::trace_registry();
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    reg.path = path;
    if (ring_capacity) reg.ring_cap = ring_capacity;
    if (reg.epoch_ns == 0) reg.epoch_ns = now_ns();
  }
  detail::g_trace_state.store(2, std::memory_order_relaxed);
}

void disarm_trace() {
  if constexpr (!kEnabled) return;
  detail::g_trace_state.store(1, std::memory_order_relaxed);
  // Forget the armed path too: a later dump_trace() with nothing armed
  // must fail rather than overwrite the previous run's file.
  auto& reg = detail::trace_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.path.clear();
}

std::vector<TraceEvent> trace_collect() {
  std::vector<TraceEvent> out;
  if constexpr (!kEnabled) return out;
  auto& reg = detail::trace_registry();
  for (int t = 0; t < runtime::kMaxThreads; ++t) {
    auto* r = reg.rings[t].load(std::memory_order_acquire);
    if (r) r->collect(t, out);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t_ns < b.t_ns;
            });
  return out;
}

uint64_t trace_dropped() {
  uint64_t d = 0;
  if constexpr (!kEnabled) return d;
  auto& reg = detail::trace_registry();
  for (int t = 0; t < runtime::kMaxThreads; ++t) {
    auto* r = reg.rings[t].load(std::memory_order_acquire);
    if (r) d += r->dropped();
  }
  return d;
}

bool dump_trace_to(const std::string& path) {
  if constexpr (!kEnabled) return false;
  if (path.empty()) return false;
  uint64_t epoch;
  {
    auto& reg = detail::trace_registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    epoch = reg.epoch_ns;
  }
  const std::vector<TraceEvent> events = trace_collect();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "popsmr: cannot write trace to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  // Chrome trace-event "JSON object format": Perfetto and about://tracing
  // both accept {"traceEvents": [...]}. Timestamps are microseconds
  // relative to the arm epoch; spans are "X" complete events, the rest
  // instant events with thread scope.
  std::fprintf(f, "{\"traceEvents\":[");
  bool first = true;
  for (const auto& e : events) {
    const auto k = static_cast<TraceKind>(e.kind);
    const double ts_us =
        static_cast<double>(e.t_ns >= epoch ? e.t_ns - epoch : 0) / 1000.0;
    if (!first) std::fputc(',', f);
    first = false;
    if (trace_kind_is_span(k)) {
      std::fprintf(f,
                   "\n{\"name\":\"%s\",\"cat\":\"smr\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
                   "\"args\":{\"arg\":%u}}",
                   trace_kind_name(k), ts_us,
                   static_cast<double>(e.dur_ns) / 1000.0, e.tid, e.arg);
    } else {
      std::fprintf(f,
                   "\n{\"name\":\"%s\",\"cat\":\"smr\",\"ph\":\"i\","
                   "\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,"
                   "\"args\":{\"arg\":%u}}",
                   trace_kind_name(k), ts_us, e.tid, e.arg);
    }
  }
  std::fprintf(f,
               "\n],\"displayTimeUnit\":\"ms\","
               "\"otherData\":{\"dropped_events\":\"%" PRIu64 "\"}}\n",
               trace_dropped());
  std::fclose(f);
  return true;
}

bool dump_trace() {
  if constexpr (!kEnabled) return false;
  std::string path;
  {
    auto& reg = detail::trace_registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    path = reg.path;
  }
  return dump_trace_to(path);
}

// ---------------------------------------------------------------------------
// HwCounters
// ---------------------------------------------------------------------------

#ifdef __linux__

namespace {

int open_counter(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // works under perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  // Returns -1 with EACCES/EPERM (paranoid), ENOSYS/ENOENT (no PMU /
  // unsupported event) — all of which we absorb as "counter absent".
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*self*/, -1 /*any cpu*/,
              -1 /*no group*/, 0));
}

}  // namespace

HwCounters::HwCounters() {
  fd_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fd_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fd_[2] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  fd_[3] = open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES);
  hw_valid_ = fd_[0] >= 0 || fd_[1] >= 0 || fd_[2] >= 0;
}

HwCounters::~HwCounters() {
  for (int fd : fd_) {
    if (fd >= 0) close(fd);
  }
}

HwSample HwCounters::read() const {
  HwSample s;
  s.valid = hw_valid_;
  uint64_t* out[4] = {&s.cycles, &s.instructions, &s.llc_misses,
                      &s.ctx_switches};
  for (int i = 0; i < 4; ++i) {
    if (fd_[i] < 0) continue;
    uint64_t v = 0;
    if (::read(fd_[i], &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v))) {
      *out[i] = v;
    }
  }
  return s;
}

bool HwCounters::available() {
  const int fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  if (fd < 0) return false;
  close(fd);
  return true;
}

#else  // !__linux__

HwCounters::HwCounters() {}
HwCounters::~HwCounters() {}
HwSample HwCounters::read() const { return {}; }
bool HwCounters::available() { return false; }

#endif

}  // namespace pop::obs
