// HwCounters — thin perf_event_open wrapper for per-phase hardware samples.
//
// Opens four per-thread counters (cycles, instructions, LLC misses, context
// switches) for the calling thread. Every failure mode the CI container can
// produce — EACCES from perf_event_paranoid, ENOSYS/ENOENT on kernels or
// archs without the PMU, EPERM in seccomp'd sandboxes — degrades to a
// zero-filled, valid=false sample rather than an error; callers emit
// hw_valid=0 columns and move on. See README "Observability" for the
// perf_event_paranoid note.

#pragma once

#include <cstdint>

namespace pop::obs {

struct HwSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t ctx_switches = 0;
  bool valid = false;  // at least one hardware counter actually opened

  double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  // LLC misses per kilo-instruction (the "llc_miss_rate" JSONL column).
  double llc_miss_rate() const {
    return instructions ? 1000.0 * static_cast<double>(llc_misses) /
                              static_cast<double>(instructions)
                        : 0.0;
  }

  void accumulate(const HwSample& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    ctx_switches += o.ctx_switches;
    valid = valid || o.valid;
  }

  // Saturating self - earlier (counters are monotonic per thread).
  HwSample delta(const HwSample& earlier) const {
    auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
    HwSample d;
    d.cycles = sub(cycles, earlier.cycles);
    d.instructions = sub(instructions, earlier.instructions);
    d.llc_misses = sub(llc_misses, earlier.llc_misses);
    d.ctx_switches = sub(ctx_switches, earlier.ctx_switches);
    d.valid = valid;
    return d;
  }
};

// Per-thread counter set: open in the constructor on the calling thread,
// read from the same thread, close in the destructor. Not copyable or
// movable — workers hold one by unique_ptr for exactly their lifetime.
class HwCounters {
 public:
  HwCounters();
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  // True when at least one hardware counter (cycles/instructions/LLC)
  // opened; the software ctx-switch counter alone does not make a sample
  // "valid" for ipc purposes.
  bool any_valid() const { return hw_valid_; }

  // Cumulative counts since open; zero-filled fields for counters the
  // kernel refused.
  HwSample read() const;

  // Cheap probe: can this process open an instructions counter at all?
  static bool available();

 private:
  int fd_[4] = {-1, -1, -1, -1};  // cycles, instructions, llc, ctx-switches
  bool hw_valid_ = false;
};

}  // namespace pop::obs
