// Unified observability layer: latency histograms, event tracing, hardware
// counters, and row-stamping for the JSONL rail.
//
// Design rule: the disabled path compiles to (almost) nothing. Every hook
// below reduces to one relaxed atomic load plus a predictable branch when
// the corresponding channel is off; tests/obs/test_obs_overhead.cpp pins
// that cost under 2% of a ~100 ns op. Compiling with -DPOPSMR_OBS_DISABLE
// turns kEnabled into a constexpr false and the hooks into true no-ops.
//
// Channels and their knobs (CLI flags in bench/cli.hpp seed the env vars
// without overriding, so CI env wins, same as every other bench knob):
//   latency   POPSMR_OBS_LATENCY=1   / --latency      / ScenarioSpec.obs
//   tracing   POPSMR_TRACE=<path>    / --trace <path>
//   hardware  POPSMR_OBS_HW=1       / --hw-counters  / ScenarioSpec.obs
//   ring size POPSMR_TRACE_RING=<events per thread, default 8192>

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/latency_histo.hpp"
#include "obs/trace_ring.hpp"

namespace pop::obs {

#ifdef POPSMR_OBS_DISABLE
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Everything the engine/driver times, point ops and reclamation side.
enum class LatOp : int {
  kGet = 0,
  kPut,
  kInsert,
  kRemove,
  // Server-side drain of one pipelined batch inside one SMR batch
  // bracket (src/net/server.cpp) — not a point op (excluded from the
  // merged point-op summary by kPointOpCount).
  kNetBatch,
  kPingWave,
  kSweep,
  kReap,
  kCount,
};

inline constexpr int kLatOpCount = static_cast<int>(LatOp::kCount);
inline constexpr int kPointOpCount = 4;  // kGet..kRemove

inline const char* lat_op_name(LatOp op) {
  switch (op) {
    case LatOp::kGet:      return "get";
    case LatOp::kPut:      return "put";
    case LatOp::kInsert:   return "insert";
    case LatOp::kRemove:   return "remove";
    case LatOp::kNetBatch: return "net_batch";
    case LatOp::kPingWave: return "ping_wave";
    case LatOp::kSweep:    return "sweep";
    case LatOp::kReap:     return "reap";
    default:               return "unknown";
  }
}

namespace detail {
// 0 = uninitialized (consult env on first query), 1 = off, 2 = on.
extern std::atomic<int> g_latency_state;
extern std::atomic<int> g_hw_state;
extern std::atomic<int> g_trace_state;
int latency_init_slow();
int hw_init_slow();
int trace_init_slow();
void record_latency_slow(LatOp op, uint64_t ns);
void trace_event_slow(TraceKind k, uint64_t t_ns, uint64_t dur_ns,
                      uint32_t arg);
}  // namespace detail

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-wide run identity for JSONL rows: run_id is the wall-clock ns at
// first use (monotonic across successive runs, stable within one), ts is
// the per-row wall-clock in ms since the epoch.
uint64_t run_id();
uint64_t wall_ts_ms();

// ---- channel toggles -------------------------------------------------------

inline bool latency_on() {
  if constexpr (!kEnabled) return false;
  int s = detail::g_latency_state.load(std::memory_order_relaxed);
  if (s == 0) s = detail::latency_init_slow();
  return s == 2;
}

inline bool hw_on() {
  if constexpr (!kEnabled) return false;
  int s = detail::g_hw_state.load(std::memory_order_relaxed);
  if (s == 0) s = detail::hw_init_slow();
  return s == 2;
}

inline bool trace_on() {
  if constexpr (!kEnabled) return false;
  int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s == 0) s = detail::trace_init_slow();
  return s == 2;
}

// Programmatic overrides (ScenarioSpec.obs, tests). No-ops when compiled out.
void set_latency(bool on);
void set_hw(bool on);

// Force env evaluation of all three channels now (bench mains call this
// after CLI parsing so the first hot-path query is just a load).
void init_from_env();

// ---- latency ---------------------------------------------------------------

// Record one duration into the calling thread's histogram for `op`.
inline void record_latency(LatOp op, uint64_t ns) {
  if constexpr (!kEnabled) return;
  if (!latency_on()) return;
  detail::record_latency_slow(op, ns);
}

// Merged view across all threads for one op kind. Cheap enough to take at
// phase boundaries; diff two snapshots for an interval.
HistoSnapshot latency_snapshot(LatOp op);

// Quiescent-only: zero every thread's histograms (tests).
void latency_reset();

// ---- tracing ---------------------------------------------------------------

// Append an event to the calling thread's ring. No-op unless tracing is
// armed. `t_ns` is the event start (now_ns clock); `dur_ns` 0 for instants.
inline void trace_event(TraceKind k, uint64_t t_ns, uint64_t dur_ns,
                        uint32_t arg = 0) {
  if constexpr (!kEnabled) return;
  if (!trace_on()) return;
  detail::trace_event_slow(k, t_ns, dur_ns, arg);
}

// Arm tracing with an output path (POPSMR_TRACE does this lazily).
// ring_capacity 0 means POPSMR_TRACE_RING or the 8192 default.
void arm_trace(const std::string& path, uint32_t ring_capacity = 0);
void disarm_trace();

// Dump every thread's ring as Chrome trace-event JSON ("traceEvents"
// array; Perfetto-openable). dump_trace() writes to the armed path.
// Returns false when nothing is armed / the file cannot be written.
bool dump_trace();
bool dump_trace_to(const std::string& path);

// Collected view for tests: every stable event, sorted by timestamp.
std::vector<TraceEvent> trace_collect();

// Total events lost to ring wraparound (disclosed in the dump's metadata).
uint64_t trace_dropped();

}  // namespace pop::obs
