// LatencyHisto — lock-free per-thread log-bucketed latency histogram.
//
// HDR-style bucket layout: values below 128 ns land in unit-width buckets;
// above that, each power-of-two range is split into 64 sub-buckets, so the
// relative quantization error is bounded by 1/64 ≈ 1.6% — two significant
// digits, which is the accuracy contract tests/obs/test_latency_histo.cpp
// enforces against an exact sorted reference. Values are capped at 2^42 ns
// (~73 minutes); anything longer saturates into the top bucket but is still
// reflected exactly in max_ns.
//
// Concurrency contract: record() is single-writer (the owning thread);
// snapshot() may run concurrently from any thread. Counters are relaxed
// atomics — the single-writer discipline means plain load+store suffices,
// and using atomics keeps TSan clean without widening tsan.supp. A
// concurrent snapshot may miss in-flight increments; it never tears.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

namespace pop::obs {

inline constexpr int kHistoSubBits = 6;  // 64 sub-buckets per octave
inline constexpr uint64_t kHistoCapNs = (uint64_t{1} << 42) - 1;
// Max shift for a capped value: bit_width(2^42-1) = 42 → shift 35, and the
// index formula below tops out at (35 << 6) | 127.
inline constexpr uint32_t kHistoBuckets = (35u << kHistoSubBits) + 128u;

// value → bucket index. shift = 0 for the linear region (< 128), else
// bit_width(v) - (kHistoSubBits + 1); index = (shift << 6) + (v >> shift).
// The add (not an or) is load-bearing: v >> shift always has bit 6 set,
// so or-ing would alias odd-shift octaves onto the one below them.
inline uint32_t histo_bucket_index(uint64_t v) {
  if (v > kHistoCapNs) v = kHistoCapNs;
  if (v < 128) return static_cast<uint32_t>(v);
  const int shift = std::bit_width(v) - (kHistoSubBits + 1);
  return (static_cast<uint32_t>(shift) << kHistoSubBits) +
         static_cast<uint32_t>(v >> shift);
}

// Representative value (bucket midpoint) for an index; inverse of the above
// up to quantization.
inline uint64_t histo_bucket_value(uint32_t idx) {
  const uint32_t seg = idx >> kHistoSubBits;
  if (seg <= 1) return idx;  // linear region, exact
  const int shift = static_cast<int>(seg) - 1;
  const uint64_t base = static_cast<uint64_t>(idx - (seg << kHistoSubBits) +
                                              (1u << kHistoSubBits))
                        << shift;
  return base + (uint64_t{1} << (shift - 1));  // midpoint of [base, base+2^shift)
}

struct LatencySummary {
  uint64_t count = 0;
  double p50_us = 0, p90_us = 0, p99_us = 0, p999_us = 0, max_us = 0;
};

// Plain (non-atomic) copy of a histogram; mergeable and diffable.
struct HistoSnapshot {
  std::array<uint64_t, kHistoBuckets> counts{};
  uint64_t total = 0;
  uint64_t max_ns = 0;

  void add(uint64_t ns) {
    counts[histo_bucket_index(ns)]++;
    total++;
    max_ns = std::max(max_ns, ns);
  }

  void merge(const HistoSnapshot& o) {
    for (uint32_t i = 0; i < kHistoBuckets; ++i) counts[i] += o.counts[i];
    total += o.total;
    max_ns = std::max(max_ns, o.max_ns);
  }

  // Counts since `earlier` (which must be an older snapshot of the same
  // histogram set). max_ns stays the later high-watermark — the same
  // semantics the SMR rail uses for max_retire_len.
  HistoSnapshot diff(const HistoSnapshot& earlier) const {
    HistoSnapshot d;
    for (uint32_t i = 0; i < kHistoBuckets; ++i) {
      const uint64_t a = counts[i], b = earlier.counts[i];
      d.counts[i] = a >= b ? a - b : 0;
      d.total += d.counts[i];
    }
    d.max_ns = max_ns;
    return d;
  }

  // p in [0, 100]. Returns the midpoint of the bucket holding the p-th
  // percentile sample, in ns; 0 when empty. p=100 returns exact max_ns.
  uint64_t percentile(double p) const {
    if (total == 0) return 0;
    if (p >= 100.0) return max_ns;
    uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                    static_cast<double>(total)));
    if (rank < 1) rank = 1;
    uint64_t cum = 0;
    for (uint32_t i = 0; i < kHistoBuckets; ++i) {
      cum += counts[i];
      if (cum >= rank) return std::min(histo_bucket_value(i), max_ns);
    }
    return max_ns;
  }
};

inline LatencySummary summarize(const HistoSnapshot& s) {
  LatencySummary r;
  r.count = s.total;
  if (s.total == 0) return r;
  r.p50_us = static_cast<double>(s.percentile(50.0)) / 1000.0;
  r.p90_us = static_cast<double>(s.percentile(90.0)) / 1000.0;
  r.p99_us = static_cast<double>(s.percentile(99.0)) / 1000.0;
  r.p999_us = static_cast<double>(s.percentile(99.9)) / 1000.0;
  r.max_us = static_cast<double>(s.max_ns) / 1000.0;
  return r;
}

class LatencyHisto {
 public:
  // Owner thread only.
  void record(uint64_t ns) {
    const uint32_t idx = histo_bucket_index(ns);
    counts_[idx].store(counts_[idx].load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    if (ns > max_ns_.load(std::memory_order_relaxed))
      max_ns_.store(ns, std::memory_order_relaxed);
    // total_ last: a concurrent snapshot that sees the new total has at
    // least as many bucket increments available to find (same thread, so
    // no ordering needed for the owner; readers tolerate slack anyway).
    total_.store(total_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }

  // Any thread. Monotonic-ish: concurrent records may be partially visible.
  HistoSnapshot snapshot() const {
    HistoSnapshot s;
    for (uint32_t i = 0; i < kHistoBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total += s.counts[i];
    }
    s.max_ns = max_ns_.load(std::memory_order_relaxed);
    return s;
  }

  // Quiescent-only (tests): zero everything.
  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> counts_[kHistoBuckets] = {};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> max_ns_{0};
};

}  // namespace pop::obs
