#include "service/sharded_map.hpp"

#include <algorithm>
#include <utility>

#include "runtime/pool_alloc.hpp"
#include "runtime/rng.hpp"

namespace pop::service {

namespace {

// Pure 64-bit mix (splitmix64 finalizer) for shard selection: adjacent
// keys land on unrelated shards, so uniform key traffic is uniform shard
// traffic even for range-heavy workloads.
uint64_t mix_key(uint64_t key) {
  uint64_t s = key;
  return runtime::splitmix64(s);
}

}  // namespace

ShardedMap::ShardedMap(std::vector<std::unique_ptr<ds::IKV>> shards,
                       ShardHash hash)
    : shards_(std::move(shards)),
      // One row of counters per registry tid, strided to a whole number
      // of cache lines so no two threads' rows share a line (stride is in
      // shards; each shard cell is kLanes u64s, and 8 shards x 5 lanes =
      // 40 u64s = 5 full lines).
      ops_stride_((shards_.size() + 7) / 8 * 8),
      ops_(new std::atomic<uint64_t>[static_cast<std::size_t>(
          runtime::kMaxThreads) * ops_stride_ * kLanes]()),
      hash_(hash) {}

std::unique_ptr<ShardedMap> ShardedMap::create(const std::string& ds,
                                               const std::string& smr,
                                               const ShardedMapConfig& cfg) {
  const int n = cfg.shards < 1 ? 1 : cfg.shards;
  ds::SetConfig per_shard = cfg.set;
  per_shard.capacity =
      std::max<uint64_t>(64, cfg.set.capacity / static_cast<uint64_t>(n));
  std::vector<std::unique_ptr<ds::IKV>> shards;
  shards.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto s = ds::make_kv(ds, smr, per_shard);
    if (s == nullptr) return nullptr;  // make_kv named the bad name already
    shards.push_back(std::move(s));
  }
  return std::unique_ptr<ShardedMap>(
      new ShardedMap(std::move(shards), cfg.hash));
}

int ShardedMap::shard_of(uint64_t key) const {
  const uint64_t n = static_cast<uint64_t>(shards_.size());
  switch (hash_) {
    case ShardHash::kSplitMix64:
      return static_cast<int>(mix_key(key) % n);
    case ShardHash::kModulo:
      return static_cast<int>(key % n);
  }
  return 0;  // unreachable
}

smr::StatsSnapshot ShardedMap::smr_stats() const {
  smr::StatsSnapshot total;
  for (const auto& s : shards_) total.absorb(s->smr_stats());
  return total;
}

ds::ResizeStats ShardedMap::resize_stats() const {
  ds::ResizeStats total;
  for (const auto& s : shards_) {
    const ds::ResizeStats r = s->resize_stats();
    total.grows += r.grows;
    total.shrinks += r.shrinks;
    total.buckets += r.buckets;
  }
  return total;
}

uint64_t ShardedMap::size_slow() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->size_slow();
  return n;
}

void ShardedMap::sum_lanes(std::size_t shard, uint64_t (&lanes)[kLanes]) const {
  // One pass over the counter rows, all lanes at once, bounded by the
  // registry's high-water tid — slots past it were never written (the
  // mem-timeline sampler snapshots at cadence, so this runs on a timer).
  for (int l = 0; l < kLanes; ++l) lanes[l] = 0;
  const int hi = runtime::ThreadRegistry::instance().max_tid();
  for (int t = 0; t <= hi; ++t) {
    const std::size_t row =
        (static_cast<std::size_t>(t) * ops_stride_ + shard) * kLanes;
    for (int l = 0; l < kLanes; ++l) {
      lanes[l] += ops_[row + static_cast<std::size_t>(l)].load(
          std::memory_order_relaxed);
    }
  }
}

ServiceStats ShardedMap::service_stats() const {
  ServiceStats out;
  out.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats ss;
    ss.shard = static_cast<int>(i);
    uint64_t lanes[kLanes];
    sum_lanes(i, lanes);
    ss.get_hits = lanes[kLaneGetHit];
    ss.get_misses = lanes[kLaneGetMiss];
    ss.put_inserts = lanes[kLanePutInsert];
    ss.put_replaces = lanes[kLanePutReplace];
    ss.ops = lanes[kLaneOther] + ss.get_hits + ss.get_misses +
             ss.put_inserts + ss.put_replaces;
    ss.smr = shards_[i]->smr_stats();
    const ds::ResizeStats rs = shards_[i]->resize_stats();
    ss.resizes = rs.resizes();
    ss.buckets_final = rs.buckets;
    out.smr.absorb(ss.smr);
    out.ops_total += ss.ops;
    out.get_hits_total += ss.get_hits;
    out.get_misses_total += ss.get_misses;
    out.put_inserts_total += ss.put_inserts;
    out.put_replaces_total += ss.put_replaces;
    out.resizes_total += ss.resizes;
    out.buckets_total += ss.buckets_final;
    out.shards.push_back(std::move(ss));
  }
  const auto ps = runtime::PoolAllocator::instance().stats();
  out.pool_live_blocks = ps.freed_blocks > ps.allocated_blocks
                             ? 0
                             : ps.allocated_blocks - ps.freed_blocks;
  return out;
}

std::unique_ptr<ds::IKV> make_service_set(const std::string& ds,
                                          const std::string& smr,
                                          const ds::SetConfig& cfg,
                                          int shards, ShardHash hash) {
  if (shards <= 1) return ds::make_kv(ds, smr, cfg);
  ShardedMapConfig sc;
  sc.shards = shards;
  sc.hash = hash;
  sc.set = cfg;
  return ShardedMap::create(ds, smr, sc);
}

bool parse_shard_hash(const std::string& name, ShardHash* out) {
  if (name == "splitmix") {
    *out = ShardHash::kSplitMix64;
    return true;
  }
  if (name == "modulo") {
    *out = ShardHash::kModulo;
    return true;
  }
  return false;
}

const char* shard_hash_name(ShardHash h) {
  return h == ShardHash::kModulo ? "modulo" : "splitmix";
}

}  // namespace pop::service
