// ShardedMap: a sharded key-value service layer over the ISet matrix.
//
// The key space is partitioned over N independent ISet instances, each
// owning its *own* SMR domain — the composition publish-on-ping makes
// cheap: reservations stay private per thread regardless of how many
// domains it touches, and one ping publishes the reservations of every
// co-resident domain on the receiving thread (the SignalBus notifies all
// clients), so concurrent reclaimers across shards coalesce onto shared
// ping waves (see PopEngine's process-wide handshake round).
//
// Sharding splits domain-level contention — retire lists, wave
// membership, epoch advances — N ways, which is what lets throughput
// rise with shard count once a single domain saturates. ShardedMap is
// itself an IKV (and therefore an ISet), so the scenario engine,
// benchmarks, and tests can run it anywhere a monolithic map runs; the
// routing layer additionally tracks get hit/miss and put insert/replace
// outcomes per shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ds/iset.hpp"
#include "runtime/thread_registry.hpp"
#include "service/service_stats.hpp"

namespace pop::service {

// Shard-selection hash. kSplitMix64 scatters adjacent keys across shards
// (uniform load, the service default); kModulo keeps key % N locality so
// contiguous ranges map to predictable shards (deterministic tests,
// range-partitioned deployments).
enum class ShardHash { kSplitMix64, kModulo };

struct ShardedMapConfig {
  int shards = 4;
  ShardHash hash = ShardHash::kSplitMix64;
  // Per-shard structures size themselves from capacity / shards (floored
  // at 64) so a sharded map's total footprint matches the monolithic one.
  ds::SetConfig set;
};

class ShardedMap final : public ds::IKV {
 public:
  // Builds `shards` independent (ds, smr) maps; nullptr on unknown names
  // (ds::make_kv reports which name was bad on stderr).
  static std::unique_ptr<ShardedMap> create(const std::string& ds,
                                            const std::string& smr,
                                            const ShardedMapConfig& cfg);

  // ---- IKV: operations route by shard_of(key) ----------------------------
  bool get(uint64_t key, uint64_t* val_out) override {
    const int s = shard_of(key);
    const bool hit = shards_[s]->get(key, val_out);
    count_op(s, hit ? kLaneGetHit : kLaneGetMiss);
    return hit;
  }
  ds::PutResult put(uint64_t key, uint64_t val) override {
    const int s = shard_of(key);
    const ds::PutResult r = shards_[s]->put(key, val);
    count_op(s, r == ds::PutResult::kReplaced ? kLanePutReplace
                                              : kLanePutInsert);
    return r;
  }
  bool remove(uint64_t key) override {
    const int s = shard_of(key);
    count_op(s, kLaneOther);
    return shards_[s]->remove(key);
  }
  bool insert(uint64_t key) override {
    const int s = shard_of(key);
    count_op(s, kLaneOther);
    return shards_[s]->insert(key);
  }

  // Opens the batch bracket on every shard's domain: a pipelined batch
  // routes by key, so any shard may be hit, and each shard owns its own
  // domain. Costs one begin_op per shard per batch — the amortization
  // wins when the pipeline depth exceeds the shard count, which is the
  // regime the networked front end runs in (documented in the README).
  void batch_begin() override {  // smr-lint: allow(R3) bracket forwarder
    for (auto& s : shards_) s->batch_begin();
  }
  void batch_end() override {  // smr-lint: allow(R3) bracket forwarder
    // Reverse order so scope depth unwinds symmetrically.
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
      (*it)->batch_end();
    }
  }

  // Detaches the calling thread from *every* shard's domain. Detaching
  // from a domain the thread never attached to is a no-op by scheme
  // contract, so threads that only ever touched a subset are fine.
  void detach_thread() override {
    for (auto& s : shards_) s->detach_thread();
  }

  // Parks inside shard 0's domain: a stalled reader pins one shard's
  // reservations, the service-shaped version of the paper's failure mode
  // (the other shards keep reclaiming around it).
  void park_in_operation(const std::atomic<bool>& release) override {
    shards_[0]->park_in_operation(release);
  }

  // Dies inside shard 0's domain (same shard choice as the stall fault).
  void abandon_in_operation() override { shards_[0]->abandon_in_operation(); }

  smr::StatsSnapshot smr_stats() const override;
  // Roll-up over shards: grows/shrinks sum, buckets is the total across
  // shards (each shard resizes independently on its own load).
  ds::ResizeStats resize_stats() const override;
  uint64_t size_slow() const override;
  std::string ds_name() const override { return shards_[0]->ds_name(); }
  std::string smr_name() const override { return shards_[0]->smr_name(); }

  // ---- service surface ---------------------------------------------------
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(uint64_t key) const;
  ds::ISet& shard(int i) { return *shards_[i]; }
  const ds::ISet& shard(int i) const { return *shards_[i]; }
  ShardHash hash() const { return hash_; }

  // Per-shard breakdown + roll-up + pool occupancy; counter reads are
  // racy-but-benign SWMR like every stats surface in the library.
  ServiceStats service_stats() const;

 private:
  // One counter lane per routed-op outcome; a shard's total ops is the
  // sum over lanes, so every operation costs exactly one increment.
  enum Lane : int {
    kLaneOther = 0,      // insert / remove
    kLaneGetHit = 1,
    kLaneGetMiss = 2,
    kLanePutInsert = 3,
    kLanePutReplace = 4,
    kLanes = 5,
  };

  ShardedMap(std::vector<std::unique_ptr<ds::IKV>> shards, ShardHash hash);

  // Per-(thread, shard, lane) counter: each cell is written only by its
  // owning thread (the relaxed load+store pair compiles to a plain
  // increment), so routing adds no shared-line write — a shared per-shard
  // counter would ping-pong its cache line between every core hitting a
  // hot shard and skew the very scaling the layer exists to measure.
  // Rows are cacheline-multiple strided so threads never share a line.
  void count_op(int s, Lane lane) {
    auto& c = ops_[(static_cast<std::size_t>(runtime::my_tid()) * ops_stride_ +
                    static_cast<std::size_t>(s)) * kLanes +
                   static_cast<std::size_t>(lane)];
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  void sum_lanes(std::size_t shard, uint64_t (&lanes)[kLanes]) const;

  std::vector<std::unique_ptr<ds::IKV>> shards_;
  std::size_t ops_stride_;  // shards rounded up so rows are line-aligned
  std::unique_ptr<std::atomic<uint64_t>[]> ops_;
  ShardHash hash_;
};

// Service-aware map factory: a ShardedMap for shards > 1, the plain
// monolithic map for shards <= 1 (zero routing overhead when the axis is
// off). nullptr on unknown ds/smr names (reported on stderr by the
// underlying factory).
std::unique_ptr<ds::IKV> make_service_set(const std::string& ds,
                                          const std::string& smr,
                                          const ds::SetConfig& cfg,
                                          int shards,
                                          ShardHash hash = ShardHash::kSplitMix64);

// Parses a shard-hash name ("splitmix" | "modulo"); returns true and
// writes `out` on success.
bool parse_shard_hash(const std::string& name, ShardHash* out);
const char* shard_hash_name(ShardHash h);

}  // namespace pop::service
