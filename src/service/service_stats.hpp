// ServiceStats: the per-shard statistics snapshot the sharded service
// layer exposes. Each shard is an independent ISet with its own SMR
// domain; the snapshot rolls their scheme counters up into one total and
// keeps the per-shard breakdown (routed operations, unreclaimed nodes)
// so load skew — a hot shard under Zipfian keys — is observable.
#pragma once

#include <cstdint>
#include <vector>

#include "smr/smr_config.hpp"

namespace pop::service {

struct ShardStats {
  int shard = 0;
  // Operations routed to this shard since construction (get + put +
  // insert + remove), counted at the routing layer.
  uint64_t ops = 0;
  // KV outcome breakdown, also counted at the routing layer: lookup hit
  // ratio and the insert/replace split of put traffic (each put_replace
  // retired one displaced node in this shard's domain).
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t put_inserts = 0;
  uint64_t put_replaces = 0;
  // Resize activity of this shard's structure (RHHT shards resize
  // independently — each shard's descriptor CASes on its own load):
  // grows + shrinks, and the bucket count at snapshot time (a fixed
  // HMHT shard reports its static bucket count with resizes == 0).
  uint64_t resizes = 0;
  uint64_t buckets_final = 0;
  smr::StatsSnapshot smr;  // the shard's own domain counters
};

// Per-connection routed-op counters kept by the networked front end
// (src/net/): one instance per live connection, written only by the
// worker thread that owns the connection (the same SWMR discipline as
// every stats surface here), rolled up into the server totals and
// emitted as kind-tagged "conn" JSONL rows by the loadgen/server rails.
struct ConnectionStats {
  uint64_t conn_id = 0;
  uint64_t ops = 0;  // pings + gets + puts + dels
  uint64_t pings = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  uint64_t puts = 0;
  uint64_t put_replaced = 0;
  uint64_t dels = 0;
  uint64_t del_hits = 0;
  // Pipeline shape actually observed: batches is the number of SMR batch
  // brackets drained for this connection, max_batch the deepest one.
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t protocol_errors = 0;

  void accumulate(const ConnectionStats& o) {
    ops += o.ops;
    pings += o.pings;
    gets += o.gets;
    get_hits += o.get_hits;
    puts += o.puts;
    put_replaced += o.put_replaced;
    dels += o.dels;
    del_hits += o.del_hits;
    batches += o.batches;
    max_batch = o.max_batch > max_batch ? o.max_batch : max_batch;
    protocol_errors += o.protocol_errors;
  }
};

struct ServiceStats {
  std::vector<ShardStats> shards;
  smr::StatsSnapshot smr;  // roll-up across all shards
  uint64_t ops_total = 0;
  uint64_t get_hits_total = 0;
  uint64_t get_misses_total = 0;
  uint64_t put_inserts_total = 0;
  uint64_t put_replaces_total = 0;
  uint64_t resizes_total = 0;
  uint64_t buckets_total = 0;  // sum of per-shard bucket counts
  // Process-wide pool occupancy at snapshot time (the pool is shared by
  // every shard's domain, so blocks are not separable per shard).
  uint64_t pool_live_blocks = 0;

  uint64_t unreclaimed() const { return smr.unreclaimed(); }

  // Max/min routed-op counts over shards: the skew a hot shard produces.
  uint64_t ops_max_shard() const {
    uint64_t m = 0;
    for (const auto& s : shards) m = s.ops > m ? s.ops : m;
    return m;
  }
  uint64_t ops_min_shard() const {
    if (shards.empty()) return 0;
    uint64_t m = UINT64_MAX;
    for (const auto& s : shards) m = s.ops < m ? s.ops : m;
    return m;
  }
};

}  // namespace pop::service
