// Process memory statistics from /proc/self/status, used by the appendix
// experiments (Figures 5-11) which report max resident memory.
#pragma once

#include <cstdint>

namespace pop::runtime {

// Peak resident set size (VmHWM) in KiB; 0 if unavailable.
uint64_t vm_hwm_kib();

// Current resident set size (VmRSS) in KiB; 0 if unavailable.
uint64_t vm_rss_kib();

}  // namespace pop::runtime
