// Environment-variable helpers for benchmark configuration overrides.
#pragma once

#include <cstdint>
#include <string>

namespace pop::runtime {

// Value of `name` parsed as u64, or `fallback` if unset/unparsable.
uint64_t env_u64(const char* name, uint64_t fallback);

// Value of `name`, or `fallback` if unset.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace pop::runtime
