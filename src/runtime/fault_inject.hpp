// Process-wide fault injection for robustness testing.
//
// The only fault modeled at this layer is *signal loss*: ping_others
// consults should_drop() per target and, when armed, skips the
// pthread_kill while still reporting the target as signalled — exactly
// what a lost-in-flight POSIX signal looks like to the sender. Everything
// downstream (re-ping escalation, the handshake watchdog, the zombie
// reaper) must recover from that lie; the fault tests assert that it
// does.
//
// Thread-kill faults need no runtime hook: the workload engine simply
// lets a worker exit mid-operation-bracket without detaching (see
// ds::IKV::abandon_in_operation), which is indistinguishable from a
// genuine crash as far as the reclamation layer can observe.
//
// Disarmed (the default), the sender path costs one relaxed load.
#pragma once

#include <atomic>
#include <cstdint>

namespace pop::runtime {

class FaultInjection {
 public:
  static FaultInjection& instance() {
    static FaultInjection f;  // leaked-on-exit singleton, like the registry
    return f;
  }

  // Arms signal loss: pings to `victim_tid` (-1 = every target) are
  // dropped with probability pct/100. pct outside [0,100] is clamped.
  void arm_signal_loss(int pct, int victim_tid = -1) {
    if (pct < 0) pct = 0;
    if (pct > 100) pct = 100;
    victim_.store(victim_tid, std::memory_order_relaxed);
    loss_pct_.store(pct, std::memory_order_release);
  }

  void disarm() {
    loss_pct_.store(0, std::memory_order_release);
    victim_.store(-1, std::memory_order_relaxed);
  }

  bool armed() const {
    return loss_pct_.load(std::memory_order_acquire) > 0;
  }

  // Sender-side check, one per (broadcast, target). Counts the drop so
  // benches can report how many signals the fault actually ate.
  bool should_drop(int target_tid) {
    const int pct = loss_pct_.load(std::memory_order_relaxed);
    if (pct <= 0) return false;
    const int victim = victim_.load(std::memory_order_relaxed);
    if (victim >= 0 && victim != target_tid) return false;
    if (pct < 100 && static_cast<int>(next_rand() % 100) >= pct) return false;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  FaultInjection(const FaultInjection&) = delete;
  FaultInjection& operator=(const FaultInjection&) = delete;

 private:
  FaultInjection() = default;

  // splitmix64 over an atomic counter: concurrent senders draw
  // independent values without a lock (statistical quality is all the
  // drop decision needs).
  uint64_t next_rand() {
    uint64_t z = state_.fetch_add(0x9E3779B97F4A7C15ull,
                                  std::memory_order_relaxed) +
                 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::atomic<int> loss_pct_{0};
  std::atomic<int> victim_{-1};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> state_{0x243F6A8885A308D3ull};
};

}  // namespace pop::runtime
