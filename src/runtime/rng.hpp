// Per-thread pseudo-random numbers for workload generation.
// splitmix64 seeds xoshiro256** (Blackman & Vigna); both are tiny,
// allocation-free and fast enough to never show up in profiles.
#pragma once

#include <cstdint>

namespace pop::runtime {

inline uint64_t splitmix64(uint64_t& state) noexcept {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift rejection-free mapping
  // (slight modulo bias is irrelevant for workload key choice).
  uint64_t next_below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // True with probability pct/100.
  bool percent(uint32_t pct) noexcept { return next_below(100) < pct; }

 private:
  static uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace pop::runtime
