// Per-thread pseudo-random numbers for workload generation.
// splitmix64 seeds xoshiro256** (Blackman & Vigna); both are tiny,
// allocation-free and fast enough to never show up in profiles.
//
// On top of the uniform core sit the skewed key generators the scenario
// engine (src/workload/) composes workloads from: ZipfTable (precomputed
// CDF, Θ configurable) and HotspotDist (a movable hot window).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pop::runtime {

inline uint64_t splitmix64(uint64_t& state) noexcept {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Lemire's multiply-shift rejection-free mapping
  // (slight modulo bias is irrelevant for workload key choice).
  uint64_t next_below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // True with probability pct/100.
  bool percent(uint32_t pct) noexcept { return next_below(100) < pct; }

  // Uniform double in [0, 1) with 53 random bits.
  double next_unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

// Zipfian distribution over ranks [0, n): P(rank = i) ∝ 1/(i+1)^theta.
// theta = 0 degenerates to uniform; YCSB's default skew is theta = 0.99.
// The CDF is precomputed once (O(n) doubles) and shared immutably across
// worker threads; each draw costs one uniform double plus an O(log n)
// binary search — no per-thread tables, no allocation on the draw path.
//
// sample() returns a *rank* (0 = most popular). Callers that don't want
// the hot keys clustered at the low end of the key space scramble the
// rank themselves (see workload::KeyPicker).
class ZipfTable {
 public:
  ZipfTable(uint64_t n, double theta) : theta_(theta), cdf_(n ? n : 1) {
    const uint64_t m = cdf_.size();
    double mass = 0;
    for (uint64_t i = 0; i < m; ++i) {
      mass += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    double acc = 0;
    for (uint64_t i = 0; i < m; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta) / mass;
      cdf_[i] = acc;
    }
    cdf_[m - 1] = 1.0;  // guard against accumulated rounding
  }

  uint64_t n() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

  // Exact probability of `rank`, for statistical tests and reporting.
  double pmf(uint64_t rank) const noexcept {
    if (rank >= cdf_.size()) return 0.0;
    return cdf_[rank] - (rank == 0 ? 0.0 : cdf_[rank - 1]);
  }

  uint64_t sample(Xoshiro256& rng) const noexcept {
    const double u = rng.next_unit();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<uint64_t>(it - cdf_.begin());
  }

 private:
  double theta_;
  std::vector<double> cdf_;
};

// Hotspot distribution: a contiguous window of `hot_fraction * range`
// keys receives `hot_pct`% of the draws; the remainder are uniform over
// the whole range. The window start is caller-supplied per draw so a
// coordinator can slide the hotspot over time (moving-hotspot
// workloads) without touching per-thread state.
class HotspotDist {
 public:
  HotspotDist(uint64_t range, double hot_fraction, uint32_t hot_pct) noexcept
      : range_(range ? range : 1),
        hot_size_(window_size(range_, hot_fraction)),
        hot_pct_(hot_pct > 100 ? 100 : hot_pct) {}

  uint64_t range() const noexcept { return range_; }
  uint64_t hot_size() const noexcept { return hot_size_; }
  uint32_t hot_pct() const noexcept { return hot_pct_; }

  uint64_t sample(Xoshiro256& rng, uint64_t window_start = 0) const noexcept {
    if (rng.percent(hot_pct_)) {
      return (window_start % range_ + rng.next_below(hot_size_)) % range_;
    }
    return rng.next_below(range_);
  }

 private:
  static uint64_t window_size(uint64_t range, double frac) noexcept {
    if (!(frac > 0.0)) return 1;
    if (frac >= 1.0) return range;
    const auto w = static_cast<uint64_t>(frac * static_cast<double>(range));
    return w == 0 ? 1 : w;
  }

  uint64_t range_;
  uint64_t hot_size_;
  uint32_t hot_pct_;
};

}  // namespace pop::runtime
