#include "runtime/asym_fence.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

#include "runtime/backoff.hpp"
#include "runtime/signal_bus.hpp"
#include "runtime/thread_registry.hpp"

#ifndef MEMBARRIER_CMD_QUERY
#define MEMBARRIER_CMD_QUERY 0
#endif
#ifndef MEMBARRIER_CMD_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_PRIVATE_EXPEDITED (1 << 3)
#endif
#ifndef MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED (1 << 4)
#endif

namespace pop::runtime {

namespace {

long membarrier(int cmd) {
#ifdef __NR_membarrier
  return syscall(__NR_membarrier, cmd, 0, 0);
#else
  (void)cmd;
  errno = ENOSYS;
  return -1;
#endif
}

bool probe_membarrier() {
  const long cmds = membarrier(MEMBARRIER_CMD_QUERY);
  if (cmds < 0) return false;
  if ((cmds & MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0) return false;
  if (membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) != 0) return false;
  return true;
}

// Signal-broadcast fallback: ping every *enrolled* thread; each handler
// issues a full fence and bumps an ack counter the barrier waits on.
// Only threads that enrolled (HPAsym attach) can hold the reservations a
// heavy fence must make visible, so only they are signalled.
class BarrierClient final : public SignalClient {
 public:
  void on_ping(int tid) noexcept override {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    acks_[tid]->fetch_add(1, std::memory_order_release);
  }

  uint64_t ack(int tid) const {
    return acks_[tid]->load(std::memory_order_acquire);
  }

  void enroll(int tid) {
    enrolled_[tid]->store(true, std::memory_order_release);
  }
  bool enrolled(int tid) const {
    return enrolled_[tid]->load(std::memory_order_acquire);
  }

 private:
  Padded<std::atomic<uint64_t>> acks_[kMaxThreads];
  Padded<std::atomic<bool>> enrolled_[kMaxThreads];
};

BarrierClient& barrier_client() {
  static BarrierClient c;
  return c;
}

void signal_broadcast_fence() {
  auto& reg = ThreadRegistry::instance();
  auto& client = barrier_client();
  // Every live thread must be attached to the bus for this to reach it;
  // SMR domains attach threads on their first operation, and the barrier
  // client is attached alongside (see HpAsymDomain::attach). Threads never
  // attached cannot hold hazard pointers, so missing them is safe.
  struct Pending {
    int tid;
    uint64_t ack_before;
    uint64_t epoch;
  };
  Pending pending[kMaxThreads];
  int n = 0;
  reg.ping_others(
      kPingSignal, [&](int tid) { return client.enrolled(tid); },
      [&](int tid, uint64_t epoch) {
        pending[n++] = {tid, client.ack(tid), epoch};
      });
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (int i = 0; i < n; ++i) {
    const auto& p = pending[i];
    SpinThenYield waiter;
    while (client.ack(p.tid) == p.ack_before && reg.alive(p.tid) &&
           reg.slot_epoch(p.tid) == p.epoch) {
      waiter.wait();
    }
  }
}

}  // namespace

AsymFence& AsymFence::instance() {
  static AsymFence f;
  return f;
}

AsymFence::AsymFence()
    : backend_(probe_membarrier() ? AsymBackend::kMembarrier
                                  : AsymBackend::kSignalBroadcast) {}

void AsymFence::heavy_fence() {
  if (backend_ == AsymBackend::kMembarrier) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED);
  } else {
    SignalBus::instance().attach(&barrier_client());
    signal_broadcast_fence();
  }
}

// Exposed so HPAsym can attach worker threads to the fallback barrier
// client when the membarrier syscall is unavailable.
namespace detail {
void attach_barrier_client_for_current_thread() {
  if (AsymFence::instance().backend() == AsymBackend::kSignalBroadcast) {
    SignalBus::instance().attach(&barrier_client());
    barrier_client().enroll(ThreadRegistry::instance().my_tid());
  }
}
}  // namespace detail

}  // namespace pop::runtime
