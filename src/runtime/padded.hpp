// Padded<T>: one T per cache line, for per-thread arrays that would
// otherwise false-share (publish counters, reservation rows, stats).
#pragma once

#include <cstddef>
#include <utility>

#include "runtime/cacheline.hpp"

namespace pop::runtime {

template <class T>
struct alignas(kCacheLine) Padded {
  T v{};

  Padded() = default;
  template <class... Args>
  explicit Padded(Args&&... args) : v(std::forward<Args>(args)...) {}

  T* operator->() { return &v; }
  const T* operator->() const { return &v; }
  T& operator*() { return v; }
  const T& operator*() const { return v; }
};

static_assert(alignof(Padded<char>) == kCacheLine);
static_assert(sizeof(Padded<char>) == kCacheLine);

}  // namespace pop::runtime
