#include "runtime/pool_alloc.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "runtime/cacheline.hpp"

// Slabs and per-thread heaps are retained for the whole process on
// purpose (see carve()/my_heap() below); teach LeakSanitizer that these
// are not leaks so ASan CI runs stay meaningful for everything else.
#if !defined(POPSMR_ASAN) && defined(__SANITIZE_ADDRESS__)
#define POPSMR_ASAN 1
#endif
#if !defined(POPSMR_ASAN) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define POPSMR_ASAN 1
#endif
#endif
#ifdef POPSMR_ASAN
extern "C" const char* __lsan_default_suppressions() {
  // Match only the two retention sites by function name. A broader
  // pattern like "leak:pool_alloc" would also match the *module* name of
  // the runtime_test_pool_alloc test binary and silence every leak in it,
  // and a source-file match would hide leaked oversized blocks from
  // PoolAllocator::allocate.
  return "leak:carve\nleak:my_heap\n";
}
#endif

namespace pop::runtime {

namespace {

// ---- size classes -------------------------------------------------------
// Powers of two from 32B to kMaxBlockSize. Concurrent set/tree nodes are
// 32-512B, so fine-grained small classes matter more than large ones.
constexpr std::size_t kMinShift = 5;   // 32 B
constexpr std::size_t kMaxShift = 13;  // 8 KiB
constexpr int kNumClasses = static_cast<int>(kMaxShift - kMinShift + 1);
constexpr std::size_t kSlabBytes = 256 * 1024;

int class_of(std::size_t size) {
  std::size_t need = size < 32 ? 32 : size;
  int c = 0;
  std::size_t cap = std::size_t{1} << kMinShift;
  while (cap < need) {
    cap <<= 1;
    ++c;
  }
  return c;
}

constexpr std::size_t class_bytes(int c) {
  return std::size_t{1} << (kMinShift + static_cast<std::size_t>(c));
}

constexpr uint32_t kMagicLive = detail::kPoolMagicLive;
constexpr uint32_t kMagicFree = detail::kPoolMagicFree;

struct ThreadHeap;

// Block header layout lives in the public header (detail::PoolBlockHeader)
// so FreeBatch::add can inline; this TU gives owner its real type.
using BlockHeader = detail::PoolBlockHeader;

ThreadHeap* owner_of(const BlockHeader* h) {
  return static_cast<ThreadHeap*>(h->owner);
}

struct FreeNode {
  FreeNode* next;
};

std::atomic<uint64_t> g_allocated{0};
std::atomic<uint64_t> g_freed{0};
std::atomic<uint64_t> g_remote{0};          // blocks freed cross-thread
std::atomic<uint64_t> g_remote_splices{0};  // pushes that carried them
std::atomic<uint64_t> g_slabs{0};
std::atomic<bool> g_poison{false};

[[noreturn]] void die(const char* what, const void* p) {
  std::fprintf(stderr, "popsmr pool_alloc: %s (block %p)\n", what, p);
  std::abort();
}

struct alignas(kCacheLine) ThreadHeap {
  // Local free lists: owner-thread only, no synchronization.
  FreeNode* local[kNumClasses] = {};
  // Remote-free stacks: lock-free MPSC Treiber stacks, drained by owner.
  std::atomic<FreeNode*> remote[kNumClasses] = {};
  // Slab bump state, per class.
  char* bump_cur[kNumClasses] = {};
  char* bump_end[kNumClasses] = {};

  void* alloc(int c) {
    if (FreeNode* n = local[c]) {
      local[c] = n->next;
      return reuse(n, c);
    }
    if (remote[c].load(std::memory_order_relaxed) != nullptr) {
      FreeNode* chain = remote[c].exchange(nullptr, std::memory_order_acquire);
      if (chain != nullptr) {
        local[c] = chain->next;
        return reuse(chain, c);
      }
    }
    return carve(c);
  }

  void* reuse(FreeNode* n, int /*size_class*/) {
    auto* h = reinterpret_cast<BlockHeader*>(reinterpret_cast<char*>(n) -
                                             sizeof(BlockHeader));
    if (g_poison.load(std::memory_order_relaxed)) {
      if (h->magic != kMagicFree) die("reusing non-free block", n);
    }
    h->magic = kMagicLive;
    g_allocated.fetch_add(1, std::memory_order_relaxed);
    return n;
  }

  void* carve(int c) {
    const std::size_t block = sizeof(BlockHeader) + class_bytes(c);
    if (bump_cur[c] == nullptr ||
        bump_cur[c] + block > bump_end[c]) {
      char* slab = static_cast<char*>(::operator new(kSlabBytes));
      g_slabs.fetch_add(1, std::memory_order_relaxed);
      bump_cur[c] = slab;
      bump_end[c] = slab + kSlabBytes;
      // Slabs are intentionally never returned to the OS: SMR benchmarks
      // measure reclamation of *nodes*, and mimalloc likewise retains
      // pages for reuse during a run.
    }
    auto* h = reinterpret_cast<BlockHeader*>(bump_cur[c]);
    bump_cur[c] += block;
    h->owner = this;
    h->size_class = static_cast<uint32_t>(c);
    h->magic = kMagicLive;
    g_allocated.fetch_add(1, std::memory_order_relaxed);
    return h + 1;
  }
};

// Heaps are handed out per thread and parked (never destroyed) on thread
// exit so in-flight remote frees always target a live heap. A later thread
// adopts a parked heap, inheriting its free lists.
std::mutex g_heaps_mu;
std::vector<ThreadHeap*> g_parked;

struct HeapHolder {
  ThreadHeap* heap = nullptr;
  ~HeapHolder() {
    if (heap != nullptr) {
      std::lock_guard<std::mutex> lk(g_heaps_mu);
      g_parked.push_back(heap);
    }
  }
};
thread_local HeapHolder t_heap;

ThreadHeap* my_heap() {
  if (t_heap.heap != nullptr) return t_heap.heap;
  std::lock_guard<std::mutex> lk(g_heaps_mu);
  if (!g_parked.empty()) {
    t_heap.heap = g_parked.back();
    g_parked.pop_back();
  } else {
    t_heap.heap = new ThreadHeap();  // leaked on purpose (process lifetime)
  }
  return t_heap.heap;
}

BlockHeader* header_of(void* p) {
  return reinterpret_cast<BlockHeader*>(static_cast<char*>(p) -
                                        sizeof(BlockHeader));
}

}  // namespace

PoolAllocator& PoolAllocator::instance() {
  static PoolAllocator a;
  return a;
}

void* PoolAllocator::allocate(std::size_t size) {
  if (size > kMaxBlockSize) {
    // Oversized: plain heap block tagged with a null owner.
    char* raw =
        static_cast<char*>(::operator new(size + sizeof(BlockHeader)));
    auto* h = reinterpret_cast<BlockHeader*>(raw);
    h->owner = nullptr;
    h->size_class = 0;
    h->magic = kMagicLive;
    g_allocated.fetch_add(1, std::memory_order_relaxed);
    return raw + sizeof(BlockHeader);
  }
  return my_heap()->alloc(class_of(size));
}

void PoolAllocator::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* h = header_of(p);
  const bool poison = g_poison.load(std::memory_order_relaxed);
  if (poison && h->magic != kMagicLive) {
    die(h->magic == kMagicFree ? "double free" : "freeing corrupt block", p);
  }
  g_freed.fetch_add(1, std::memory_order_relaxed);
  if (h->owner == nullptr) {
    h->magic = kMagicFree;
    ::operator delete(static_cast<void*>(h));
    return;
  }
  const int c = static_cast<int>(h->size_class);
  if (poison) {
    std::memset(p, kPoisonByte, class_bytes(c));
  }
  h->magic = kMagicFree;
  auto* node = static_cast<FreeNode*>(p);
  ThreadHeap* owner = owner_of(h);
  if (owner == t_heap.heap) {
    node->next = owner->local[c];
    owner->local[c] = node;
    return;
  }
  // Remote free: push onto the owner's MPSC stack (a splice of one).
  g_remote.fetch_add(1, std::memory_order_relaxed);
  g_remote_splices.fetch_add(1, std::memory_order_relaxed);
  FreeNode* head = owner->remote[c].load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!owner->remote[c].compare_exchange_weak(
      head, node, std::memory_order_release, std::memory_order_relaxed));
}

// ---- batched free ---------------------------------------------------------

PoolAllocator::FreeBatch::FreeBatch() noexcept
    : poison_(g_poison.load(std::memory_order_relaxed)) {}

void PoolAllocator::FreeBatch::add_slow(void* p) noexcept {
  BlockHeader* h = header_of(p);
  const bool poison = poison_;
  if (poison && h->magic != kMagicLive) {
    die(h->magic == kMagicFree ? "double free" : "freeing corrupt block", p);
  }
  if (h->owner == nullptr) {
    // Oversized blocks bypass the pools; nothing to batch.
    g_freed.fetch_add(1, std::memory_order_relaxed);
    h->magic = kMagicFree;
    ::operator delete(static_cast<void*>(h));
    ++added_;
    return;
  }
  if (poison) {
    std::memset(p, kPoisonByte, class_bytes(static_cast<int>(h->size_class)));
  }
  h->magic = kMagicFree;
  ++added_;

  // Retire lists free in long same-owner runs (allocation order), so the
  // previous group almost always matches — check it before scanning.
  {
    Group& g = groups_[last_];
    if (g.owner == h->owner && g.size_class == h->size_class) {
      auto* node = static_cast<FreeNode*>(p);
      node->next = static_cast<FreeNode*>(g.head);
      g.head = node;
      ++g.count;
      return;
    }
  }
  Group* empty = nullptr;
  Group* fullest = &groups_[0];
  for (int i = 0; i < kWays; ++i) {
    Group& g = groups_[i];
    if (g.owner == h->owner && g.size_class == h->size_class) {
      auto* node = static_cast<FreeNode*>(p);
      node->next = static_cast<FreeNode*>(g.head);
      g.head = node;
      ++g.count;
      last_ = i;
      return;
    }
    if (g.owner == nullptr) {
      if (empty == nullptr) empty = &g;
    } else if (g.count > fullest->count) {
      fullest = &g;
    }
  }
  Group& g = empty != nullptr ? *empty : *fullest;
  if (empty == nullptr) flush_group(g);  // evict: all ways occupied
  auto* node = static_cast<FreeNode*>(p);
  node->next = nullptr;
  g.owner = h->owner;
  g.size_class = h->size_class;
  g.head = node;
  g.tail = node;
  g.count = 1;
  last_ = static_cast<int>(&g - groups_);
}

void PoolAllocator::FreeBatch::flush() noexcept {
  for (int i = 0; i < kWays; ++i) {
    if (groups_[i].owner != nullptr) flush_group(groups_[i]);
  }
}

void PoolAllocator::FreeBatch::flush_group(Group& g) noexcept {
  auto* owner = static_cast<ThreadHeap*>(g.owner);
  auto* head = static_cast<FreeNode*>(g.head);
  auto* tail = static_cast<FreeNode*>(g.tail);
  const int c = static_cast<int>(g.size_class);
  g_freed.fetch_add(g.count, std::memory_order_relaxed);
  if (owner == t_heap.heap) {
    // Local splice: prepend the whole chain, owner-thread only.
    tail->next = owner->local[c];
    owner->local[c] = head;
  } else {
    // Remote splice: the whole group lands with one successful CAS.
    g_remote.fetch_add(g.count, std::memory_order_relaxed);
    g_remote_splices.fetch_add(1, std::memory_order_relaxed);
    FreeNode* old = owner->remote[c].load(std::memory_order_relaxed);
    do {
      tail->next = old;
    } while (!owner->remote[c].compare_exchange_weak(
        old, head, std::memory_order_release, std::memory_order_relaxed));
  }
  g = Group{};
}

void PoolAllocator::set_poison(bool on) noexcept {
  g_poison.store(on, std::memory_order_seq_cst);
}

bool PoolAllocator::poison_enabled() noexcept {
  return g_poison.load(std::memory_order_relaxed);
}

bool PoolAllocator::is_poisoned(const void* p) noexcept {
  if (p == nullptr) return false;
  const auto* h = reinterpret_cast<const BlockHeader*>(
      static_cast<const char*>(p) - sizeof(BlockHeader));
  return h->magic == kMagicFree;
}

PoolAllocator::Stats PoolAllocator::stats() const noexcept {
  return {g_allocated.load(std::memory_order_relaxed),
          g_freed.load(std::memory_order_relaxed),
          g_remote.load(std::memory_order_relaxed),
          g_remote_splices.load(std::memory_order_relaxed),
          g_slabs.load(std::memory_order_relaxed)};
}

}  // namespace pop::runtime
