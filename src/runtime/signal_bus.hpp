// Signal bus: one process-wide SIGUSR1 handler multiplexed across SMR
// domains.
//
// A thread may simultaneously participate in several SMR domains (e.g. two
// data structures with different reclaimers in one test). A ping carries no
// sender identity, so the handler conservatively notifies *every* client
// the receiving thread is attached to; publishing reservations for an
// uninvolved domain is harmless and satisfies any concurrent reclaimer.
//
// Handler-side work must be async-signal-safe: clients may only touch
// lock-free atomics, issue fences, and (for NBR) siglongjmp. The per-thread
// client table is only mutated by its own thread; handler interleavings are
// made safe by publishing entries with release stores and nulling on
// detach.
#pragma once

#include <csignal>

namespace pop::runtime {

inline constexpr int kPingSignal = SIGUSR1;

// Interface a reclamation domain implements to receive pings.
class SignalClient {
 public:
  // Runs in signal-handler context on the pinged thread. May not return
  // (NBR neutralization siglongjmps). tid is the receiving thread's id.
  virtual void on_ping(int tid) noexcept = 0;

 protected:
  ~SignalClient() = default;
};

class SignalBus {
 public:
  static SignalBus& instance();

  // Attach `c` for the calling thread. Installs the process signal handler
  // on first use. A client must detach from every thread that attached it
  // before it is destroyed.
  void attach(SignalClient* c);

  // Detach `c` for the calling thread (no-op if not attached).
  void detach(SignalClient* c);

  // True if `c` is attached for the calling thread.
  bool attached(SignalClient* c) const;

  SignalBus(const SignalBus&) = delete;
  SignalBus& operator=(const SignalBus&) = delete;

 private:
  SignalBus() = default;
  static void handler(int);
};

}  // namespace pop::runtime
