#include "runtime/proc_stats.hpp"

#include <cstdio>
#include <cstring>

namespace pop::runtime {
namespace {

uint64_t status_field_kib(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t out = 0;
  const std::size_t keylen = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, keylen) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + keylen, " %llu", &v) == 1) out = v;
      break;
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

uint64_t vm_hwm_kib() { return status_field_kib("VmHWM:"); }
uint64_t vm_rss_kib() { return status_field_kib("VmRSS:"); }

}  // namespace pop::runtime
