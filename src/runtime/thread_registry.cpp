#include "runtime/thread_registry.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "runtime/backoff.hpp"

namespace pop::runtime {

namespace detail {
thread_local int t_cached_tid = -1;
}  // namespace detail

namespace {
// RAII holder that releases the slot when the thread exits.
struct TidHolder {
  int tid = -1;
  ~TidHolder();
};
thread_local TidHolder t_tid;
}  // namespace

// Out-of-line so TidHolder's dtor can see deregister().
struct TidGuard {
  static void release(int tid) { ThreadRegistry::instance().deregister(tid); }
};

namespace {
TidHolder::~TidHolder() {
  if (tid >= 0) {
    detail::t_cached_tid = -1;
    TidGuard::release(tid);
  }
}
}  // namespace

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry r;  // leaked-on-exit singleton; no destruction races
  return r;
}

void ThreadRegistry::lock() {
  Backoff bo(512);
  while (mu_.exchange(true, std::memory_order_acquire)) {
    while (mu_.load(std::memory_order_relaxed)) bo.pause();
  }
}

void ThreadRegistry::unlock() { mu_.store(false, std::memory_order_release); }

int ThreadRegistry::register_current_thread() {
  lock();
  int tid = -1;
  for (int t = 0; t < kMaxThreads; ++t) {
    if (!slots_[t]->alive.load(std::memory_order_relaxed)) {
      tid = t;
      break;
    }
  }
  if (tid < 0) {
    unlock();
    std::fprintf(stderr,
                 "popsmr: thread registry exhausted (kMaxThreads=%d)\n",
                 kMaxThreads);
    std::abort();
  }
  auto& s = *slots_[tid];
  s.handle = pthread_self();
  s.ktid.store(static_cast<pid_t>(syscall(SYS_gettid)),
               std::memory_order_relaxed);
  s.heartbeat.fetch_add(1, std::memory_order_relaxed);
  s.epoch.fetch_add(1, std::memory_order_release);
  s.alive.store(true, std::memory_order_release);
  int hi = max_tid_.load(std::memory_order_relaxed);
  while (hi < tid &&
         !max_tid_.compare_exchange_weak(hi, tid, std::memory_order_release)) {
  }
  live_.fetch_add(1, std::memory_order_relaxed);
  unlock();
  t_tid.tid = tid;
  detail::t_cached_tid = tid;
  return tid;
}

void ThreadRegistry::deregister(int tid) {
  lock();
  auto& s = *slots_[tid];
  s.alive.store(false, std::memory_order_release);
  s.epoch.fetch_add(1, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_relaxed);
  unlock();
}

void ThreadRegistry::detail_abandon_registration() {
  // Disarm the RAII holder first: once tid is -1 the TLS destructor is a
  // no-op, so the slot outlives the thread in the registered state.
  t_tid.tid = -1;
  detail::t_cached_tid = -1;
}

bool ThreadRegistry::kernel_dead(int tid) {
  auto& s = *slots_[tid];
  if (!s.alive.load(std::memory_order_acquire)) return false;
  const pid_t kt = s.ktid.load(std::memory_order_relaxed);
  if (kt <= 0) return false;
  // tgkill with sig 0 performs existence+permission checks only. ESRCH is
  // the only verdict that certifies death; any other failure (or success)
  // reads as "alive" so a probe error can never cause a wrongful reap.
  errno = 0;
  return syscall(SYS_tgkill, getpid(), kt, 0) != 0 && errno == ESRCH;
}

bool ThreadRegistry::certify_zombie(int tid, uint64_t owner_epoch) {
  lock();
  auto& s = *slots_[tid];
  const bool zombie = s.alive.load(std::memory_order_relaxed) &&
                      s.epoch.load(std::memory_order_relaxed) == owner_epoch &&
                      kernel_dead(tid);
  if (zombie) {
    // Same transition as deregister(), performed on the corpse's behalf.
    // Holding the registry lock excludes a concurrent broadcast from
    // pthread_kill-ing the (dangling) handle mid-certification.
    s.alive.store(false, std::memory_order_release);
    s.epoch.fetch_add(1, std::memory_order_release);
    live_.fetch_sub(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "popsmr: certified zombie tid %d (kernel thread gone "
                 "without deregistering); slot reclaimed\n",
                 tid);
  }
  unlock();
  return zombie;
}

}  // namespace pop::runtime
