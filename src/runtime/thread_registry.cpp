#include "runtime/thread_registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "runtime/backoff.hpp"

namespace pop::runtime {

namespace detail {
thread_local int t_cached_tid = -1;
}  // namespace detail

namespace {
// RAII holder that releases the slot when the thread exits.
struct TidHolder {
  int tid = -1;
  ~TidHolder();
};
thread_local TidHolder t_tid;
}  // namespace

// Out-of-line so TidHolder's dtor can see deregister().
struct TidGuard {
  static void release(int tid) { ThreadRegistry::instance().deregister(tid); }
};

namespace {
TidHolder::~TidHolder() {
  if (tid >= 0) {
    detail::t_cached_tid = -1;
    TidGuard::release(tid);
  }
}
}  // namespace

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry r;  // leaked-on-exit singleton; no destruction races
  return r;
}

void ThreadRegistry::lock() {
  Backoff bo(512);
  while (mu_.exchange(true, std::memory_order_acquire)) {
    while (mu_.load(std::memory_order_relaxed)) bo.pause();
  }
}

void ThreadRegistry::unlock() { mu_.store(false, std::memory_order_release); }

int ThreadRegistry::register_current_thread() {
  lock();
  int tid = -1;
  for (int t = 0; t < kMaxThreads; ++t) {
    if (!slots_[t]->alive.load(std::memory_order_relaxed)) {
      tid = t;
      break;
    }
  }
  if (tid < 0) {
    unlock();
    std::fprintf(stderr,
                 "popsmr: thread registry exhausted (kMaxThreads=%d)\n",
                 kMaxThreads);
    std::abort();
  }
  auto& s = *slots_[tid];
  s.handle = pthread_self();
  s.epoch.fetch_add(1, std::memory_order_release);
  s.alive.store(true, std::memory_order_release);
  int hi = max_tid_.load(std::memory_order_relaxed);
  while (hi < tid &&
         !max_tid_.compare_exchange_weak(hi, tid, std::memory_order_release)) {
  }
  live_.fetch_add(1, std::memory_order_relaxed);
  unlock();
  t_tid.tid = tid;
  detail::t_cached_tid = tid;
  return tid;
}

void ThreadRegistry::deregister(int tid) {
  lock();
  auto& s = *slots_[tid];
  s.alive.store(false, std::memory_order_release);
  s.epoch.fetch_add(1, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_relaxed);
  unlock();
}

}  // namespace pop::runtime
