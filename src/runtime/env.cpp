#include "runtime/env.hpp"

#include <cstdlib>

namespace pop::runtime {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<uint64_t>(v);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace pop::runtime
