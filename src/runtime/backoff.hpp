// Bounded exponential backoff for contended CAS loops and spin waits.
#pragma once

#include <sched.h>

#include <algorithm>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pop::runtime {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  explicit Backoff(uint32_t max_spins = 1024) noexcept : max_(max_spins) {}

  void pause() noexcept {
    for (uint32_t i = 0; i < cur_; ++i) cpu_relax();
    cur_ = std::min(cur_ * 2, max_);
  }

  void reset() noexcept { cur_ = 1; }

  // Spins the *next* pause() will burn; never exceeds max_spins().
  uint32_t spins() const noexcept { return cur_; }
  uint32_t max_spins() const noexcept { return max_; }

 private:
  uint32_t cur_ = 1;
  uint32_t max_;
};

// Waiter for conditions that require *another thread to run* (publish
// counters, acks, grace periods). Spins briefly for the uncontended case,
// then yields: on an oversubscribed machine the awaited thread cannot make
// progress until the waiter gives up the CPU — burning the whole timeslice
// in cpu_relax() turns a microsecond handshake into a scheduling quantum
// (the paper's §4.1.2 worst case).
class SpinThenYield {
 public:
  void wait() noexcept {
    if (spins_ < kSpinLimit) {
      ++spins_;
      cpu_relax();
    } else {
      yield_now();
    }
  }

 private:
  static constexpr uint32_t kSpinLimit = 128;
  static void yield_now() noexcept { sched_yield(); }
  uint32_t spins_ = 0;
};

}  // namespace pop::runtime
