// Sharded pool allocator — the repo's stand-in for mimalloc.
//
// The paper (§5.0.1, citing "Are Your Epochs Too Epic?") runs under
// mimalloc because deferred reclamation frees objects in large batches,
// often from a different thread than the allocator, and jemalloc-style
// arenas serialize those cross-thread frees. What SMR benchmarking needs
// from the allocator is:
//   * per-thread free lists (no lock on the alloc/local-free fast path),
//   * a lock-free remote-free path (an MPSC Treiber stack per heap) so a
//     reclaimer can free another thread's blocks without contending,
//   * size-class recycling so freed nodes are reused quickly (keeping the
//     working set cache-resident, as mimalloc's sharded free lists do).
//
// Blocks carry a one-word header encoding the owning heap and size class.
// An optional poison mode fills freed payloads with a canary byte and
// checks header magic on reuse; the test suite uses it as a
// use-after-free / double-free detector for every SMR scheme.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace pop::runtime {

namespace detail {
// One header word per pool block, immediately before the payload. Exposed
// here (owner kept opaque) so FreeBatch::add can inline its fast path;
// the allocator's .cpp is the only writer of owner/size_class.
struct PoolBlockHeader {
  void* owner;  // owning ThreadHeap; null for oversized fall-through blocks
  uint32_t size_class;
  uint32_t magic;  // live/free marker, verified in poison mode
};
static_assert(sizeof(PoolBlockHeader) == 16);

inline constexpr uint32_t kPoolMagicLive = 0xA110CA7Eu;
inline constexpr uint32_t kPoolMagicFree = 0xF7EEF7EEu;
}  // namespace detail

class PoolAllocator {
 public:
  static PoolAllocator& instance();

  // Allocates `size` bytes (size <= kMaxBlockSize served from pools; larger
  // falls through to ::operator new). Never returns nullptr.
  void* allocate(std::size_t size);

  // Returns a block to its owning heap (any thread may call).
  void deallocate(void* p) noexcept;

  // Batched free path. A FreeBatch accumulates blocks, grouping them by
  // (owning heap, size class) into intrusive chains threaded through the
  // blocks themselves (no allocation), and returns each whole group with a
  // single operation: local-heap groups are spliced onto the local free
  // list, remote groups are spliced into the owner's MPSC stack with ONE
  // CAS per group instead of one per block — O(heaps × classes) CASes per
  // reclamation pass instead of O(freed). Poison mode (canary fill,
  // double-free detection) applies per block exactly as on the single
  // deallocate() path. Destructors are NOT run: callers destroy payloads
  // first (see smr::Reclaimable::batch_prep).
  //
  // Not thread-safe; one thread owns a FreeBatch. Destructor flushes.
  // Poison mode is sampled at construction (it is enabled before any
  // thread allocates, per set_poison's contract), saving an atomic load
  // per block on the hot add() path.
  class FreeBatch {
   public:
    FreeBatch() noexcept;
    ~FreeBatch() { flush(); }

    // Adds a block previously returned by allocate(). The payload is dead
    // after this call (the chain link is stored inside it). The fast path
    // — poison off, block hits the most recently used group — inlines to
    // a handful of loads and stores; everything else (poison checks,
    // group search, eviction, oversized blocks) takes the slow path.
    void add(void* p) noexcept {
      if (p == nullptr) return;
      auto* h = reinterpret_cast<detail::PoolBlockHeader*>(
          static_cast<char*>(p) - sizeof(detail::PoolBlockHeader));
      Group& g = groups_[last_];
      if (!poison_ && h->owner != nullptr && g.owner == h->owner &&
          g.size_class == h->size_class) {
        // Free-list blocks always carry free magic, so poison mode can be
        // turned on later without tripping over batch-freed blocks.
        h->magic = detail::kPoolMagicFree;
        *static_cast<void**>(p) = g.head;  // link through the dead payload
        g.head = p;
        ++g.count;
        ++added_;
        return;
      }
      add_slow(p);
    }

    // Splices every pending group out to its heap. Called automatically on
    // destruction; idempotent.
    void flush() noexcept;

    uint64_t blocks_added() const noexcept { return added_; }

    FreeBatch(const FreeBatch&) = delete;
    FreeBatch& operator=(const FreeBatch&) = delete;

   private:
    // One pending chain per distinct (heap, class) seen. Sweeps free
    // nodes of one or two size classes from a handful of heaps, so a
    // small direct-mapped set suffices; on overflow the fullest group is
    // spliced early (still far fewer CASes than per-block).
    struct Group {
      void* owner = nullptr;  // ThreadHeap*; null slot = empty
      void* head = nullptr;   // chain of blocks, linked through payloads
      void* tail = nullptr;
      uint32_t size_class = 0;
      uint32_t count = 0;
    };
    static constexpr int kWays = 16;

    void add_slow(void* p) noexcept;
    void flush_group(Group& g) noexcept;

    Group groups_[kWays];
    int last_ = 0;  // most recently hit group (frees cluster by owner)
    bool poison_;
    uint64_t added_ = 0;
  };

  // Typed helpers.
  template <class T, class... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  template <class T>
  void destroy(T* p) noexcept {
    if (p == nullptr) return;
    p->~T();
    deallocate(p);
  }

  // When enabled, freed payloads are filled with kPoisonByte and block
  // headers are verified on free/reuse (aborts on corruption). Enable
  // before any thread allocates; used by the safety test suites.
  static void set_poison(bool on) noexcept;
  static bool poison_enabled() noexcept;

  // True if `p` is a live pool block whose payload has been poisoned -
  // i.e. reading it would be a use-after-free. Only meaningful in poison
  // mode and only for pool-managed blocks.
  static bool is_poisoned(const void* p) noexcept;

  // Global counters (approximate under concurrency; exact at quiescence).
  // remote_frees counts BLOCKS returned to a non-owning heap;
  // remote_splices counts the push operations that carried them (one per
  // single deallocate(), one per FreeBatch group), so
  // remote_splices <= remote_frees and the gap measures batching wins.
  struct Stats {
    uint64_t allocated_blocks;
    uint64_t freed_blocks;
    uint64_t remote_frees;
    uint64_t remote_splices;
    uint64_t slabs;
  };
  Stats stats() const noexcept;

  static constexpr std::size_t kMaxBlockSize = 8192;
  static constexpr uint8_t kPoisonByte = 0xDD;

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

 private:
  PoolAllocator() = default;
};

// Convenience free functions.
inline void* pool_alloc(std::size_t n) {
  return PoolAllocator::instance().allocate(n);
}
inline void pool_free(void* p) noexcept {
  PoolAllocator::instance().deallocate(p);
}

}  // namespace pop::runtime
