// Sharded pool allocator — the repo's stand-in for mimalloc.
//
// The paper (§5.0.1, citing "Are Your Epochs Too Epic?") runs under
// mimalloc because deferred reclamation frees objects in large batches,
// often from a different thread than the allocator, and jemalloc-style
// arenas serialize those cross-thread frees. What SMR benchmarking needs
// from the allocator is:
//   * per-thread free lists (no lock on the alloc/local-free fast path),
//   * a lock-free remote-free path (an MPSC Treiber stack per heap) so a
//     reclaimer can free another thread's blocks without contending,
//   * size-class recycling so freed nodes are reused quickly (keeping the
//     working set cache-resident, as mimalloc's sharded free lists do).
//
// Blocks carry a one-word header encoding the owning heap and size class.
// An optional poison mode fills freed payloads with a canary byte and
// checks header magic on reuse; the test suite uses it as a
// use-after-free / double-free detector for every SMR scheme.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace pop::runtime {

class PoolAllocator {
 public:
  static PoolAllocator& instance();

  // Allocates `size` bytes (size <= kMaxBlockSize served from pools; larger
  // falls through to ::operator new). Never returns nullptr.
  void* allocate(std::size_t size);

  // Returns a block to its owning heap (any thread may call).
  void deallocate(void* p) noexcept;

  // Typed helpers.
  template <class T, class... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  template <class T>
  void destroy(T* p) noexcept {
    if (p == nullptr) return;
    p->~T();
    deallocate(p);
  }

  // When enabled, freed payloads are filled with kPoisonByte and block
  // headers are verified on free/reuse (aborts on corruption). Enable
  // before any thread allocates; used by the safety test suites.
  static void set_poison(bool on) noexcept;
  static bool poison_enabled() noexcept;

  // True if `p` is a live pool block whose payload has been poisoned -
  // i.e. reading it would be a use-after-free. Only meaningful in poison
  // mode and only for pool-managed blocks.
  static bool is_poisoned(const void* p) noexcept;

  // Global counters (approximate under concurrency; exact at quiescence).
  struct Stats {
    uint64_t allocated_blocks;
    uint64_t freed_blocks;
    uint64_t remote_frees;
    uint64_t slabs;
  };
  Stats stats() const noexcept;

  static constexpr std::size_t kMaxBlockSize = 8192;
  static constexpr uint8_t kPoisonByte = 0xDD;

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

 private:
  PoolAllocator() = default;
};

// Convenience free functions.
inline void* pool_alloc(std::size_t n) {
  return PoolAllocator::instance().allocate(n);
}
inline void pool_free(void* p) noexcept {
  PoolAllocator::instance().deallocate(p);
}

}  // namespace pop::runtime
