// Test-and-test-and-set spinlock with backoff. Used for per-node locks in
// the lock-based data structures (lazy list, DGT BST, (a,b)-tree) where a
// futex-based mutex would be too heavy (one lock per node).
#pragma once

#include <atomic>

#include "runtime/backoff.hpp"

namespace pop::runtime {

class Spinlock {
 public:
  void lock() noexcept {
    Backoff bo(256);
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace pop::runtime
