// Process-wide thread registry.
//
// Publish-on-ping needs to send POSIX signals to every participating
// thread, which requires (a) a dense small integer id per live thread for
// indexing SWMR reservation arrays, and (b) a pthread_t that is guaranteed
// to stay valid for the duration of a pthread_kill call.
//
// Ids are allocated from a fixed pool on first use (my_tid()) and recycled
// when the thread exits (thread_local destructor). ping-style broadcasts
// run under the registry mutex, so a registered thread cannot finish
// deregistering — and thus cannot die — while a signal to it is in flight.
#pragma once

#include <pthread.h>
#include <signal.h>  // pthread_kill
#include <sys/types.h>  // pid_t

#include <atomic>
#include <cstdint>

#include "runtime/fault_inject.hpp"
#include "runtime/padded.hpp"

namespace pop::runtime {

// Upper bound on simultaneously live registered threads. SMR domains size
// their per-thread arrays with this; keep it modest to keep scans cheap.
inline constexpr int kMaxThreads = 144;

namespace detail {
// Fast-path cache for my_tid(): initial-exec TLS, readable with a single
// mov on the hot path (protect() consults it on every pointer read).
extern thread_local int t_cached_tid;
}  // namespace detail

class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  // Dense id of the calling thread, registering it on first call.
  int my_tid() {
    const int t = detail::t_cached_tid;
    return t >= 0 ? t : register_current_thread();
  }

  // True if a thread currently owns `tid`.
  bool alive(int tid) const {
    return slots_[tid]->alive.load(std::memory_order_acquire);
  }

  // Registration epoch of `tid`: bumped every time the slot is (re)assigned,
  // so waiters can detect that a slot was recycled to a different thread.
  uint64_t slot_epoch(int tid) const {
    return slots_[tid]->epoch.load(std::memory_order_acquire);
  }

  // ---- liveness probe (the zombie reaper's certification rail) -----------

  // Per-slot heartbeat: bumped by the owning thread on every operation
  // bracket (DomainCore::attach_if_new) and on every signal delivery
  // (SignalBus handler). Async-signal-safe: a lock-free atomic increment.
  // Reapers use staleness across scans to gate the kernel probe below —
  // a frozen heartbeat is *suspicion*, never proof (a legitimately parked
  // reader freezes too); only the kernel's verdict certifies death.
  void heartbeat_bump(int tid) {
    slots_[tid]->heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t heartbeat(int tid) const {
    return slots_[tid]->heartbeat.load(std::memory_order_relaxed);
  }

  // Kernel verdict on a registered slot: true iff the slot is currently
  // owned and tgkill(sig 0) says the owning kernel thread no longer
  // exists — i.e. the thread died without running its TLS destructor
  // (async kill, cancellation). A recycled kernel tid makes this answer
  // "alive", which is the conservative (never-reap) direction.
  bool kernel_dead(int tid);

  // True iff the thread that owned `tid` at `owner_epoch` is gone: the
  // slot was deregistered or recycled (epoch moved), or the owner is
  // kernel-dead while still registered. This is the reaper's
  // certification predicate; a `false` means the owner may still take
  // references and its state must not be touched.
  bool owner_departed(int tid, uint64_t owner_epoch) {
    if (slot_epoch(tid) != owner_epoch) return true;   // deregistered/recycled
    if (!alive(tid)) return true;                      // mid-deregister
    return kernel_dead(tid);
  }

  // Force-deregisters a slot whose owner (at `owner_epoch`) is kernel-dead
  // but still registered — its TLS destructor never ran. Bumping the
  // epoch here is what releases every epoch-staleness wait loop (POP
  // handshake, NBR ack round) from the corpse. Returns true iff this call
  // performed the deregistration.
  bool certify_zombie(int tid, uint64_t owner_epoch);

  // Sends `sig` to every live registered thread except the caller for
  // which filter(tid) is true, invoking fn(tid, epoch) per signalled
  // thread. Runs under the registry lock: targets cannot deregister (or
  // exit) mid-kill. Returns #signals sent.
  //
  // Callers MUST pass a filter selecting only the threads participating
  // in their domain: signalling uninvolved threads is not just wasted
  // work — a reclaim-heavy domain would bombard every thread in the
  // process with EINTRs (a sleeping thread can be starved out of its
  // sleep entirely at high ping rates).
  template <class Filter, class Fn>
  int ping_others(int sig, Filter&& filter, Fn&& fn) {
    const int self = my_tid();  // register before taking the lock
    lock();
    int sent = 0;
    const int hi = max_tid_.load(std::memory_order_acquire);
    auto& faults = FaultInjection::instance();
    for (int t = 0; t <= hi; ++t) {
      auto& s = *slots_[t];
      if (t == self || !s.alive.load(std::memory_order_acquire)) continue;
      if (!filter(t)) continue;
      // Injected signal loss: the kill is skipped but the target still
      // counts as signalled — the sender must not be able to tell a
      // dropped signal from a delivered one (that is the fault model).
      if (faults.should_drop(t)) {
        fn(t, s.epoch.load(std::memory_order_relaxed));
        ++sent;
        continue;
      }
      if (pthread_kill(s.handle, sig) == 0) {
        fn(t, s.epoch.load(std::memory_order_relaxed));
        ++sent;
      }
    }
    unlock();
    return sent;
  }

  // Async-signal-safe read of the calling thread's cached id; -1 when the
  // thread is not currently registered (never registers).
  static int detail_cached_tid() noexcept { return detail::t_cached_tid; }

  // Fault-injection hook: forgets the calling thread's registration
  // WITHOUT releasing the slot. When the thread then exits, its slot
  // stays registered while the kernel thread disappears — exactly the
  // zombie state (TLS destructor never ran) that the reaper's tgkill
  // certification exists for. The slot is unrecoverable except through
  // certify_zombie. Test/bench use only.
  void detail_abandon_registration();

  // Largest tid ever assigned (inclusive); bounds scan loops.
  int max_tid() const { return max_tid_.load(std::memory_order_acquire); }

  // #threads currently registered.
  int live_count() const { return live_.load(std::memory_order_relaxed); }

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

 private:
  ThreadRegistry() = default;

  struct Slot {
    std::atomic<bool> alive{false};
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint64_t> heartbeat{0};
    // Kernel thread id of the current owner, for the tgkill(sig 0) probe.
    // pthread_t can outlive its thread in unspecified ways; the kernel id
    // is safe to probe after death (worst case it aliases a new thread,
    // which reads as "alive" — the conservative direction).
    std::atomic<pid_t> ktid{0};
    pthread_t handle{};
  };

  void lock();
  void unlock();
  int register_current_thread();  // slow path; out of line
  void deregister(int tid);

  friend struct TidGuard;

  Padded<Slot> slots_[kMaxThreads];
  std::atomic<int> max_tid_{-1};
  std::atomic<int> live_{0};
  std::atomic<bool> mu_{false};
};

// Convenience: dense id of the calling thread. One TLS load when cached.
inline int my_tid() {
  const int t = detail::t_cached_tid;
  return t >= 0 ? t : ThreadRegistry::instance().my_tid();
}

}  // namespace pop::runtime
