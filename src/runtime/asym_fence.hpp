// Asymmetric memory barrier: a near-free reader-side "light" fence paired
// with an expensive reclaimer-side "heavy" fence that forces every thread's
// prior stores visible and its prior loads complete.
//
// This is the substrate for HPAsym (the Folly-style hazard pointer
// baseline the paper compares against, §2.1/§5). Readers publish a hazard
// pointer with a plain store + compiler barrier; reclaimers run
// heavy_fence() before scanning so that either the reader's store is
// visible or the reader's validation load will observe the unlink.
//
// Backend selection, probed once at startup:
//  1. membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED)   - Linux >= 4.14
//  2. signal broadcast via the thread registry        - container fallback
// The fallback mirrors what liburcu did before sys_membarrier existed (and
// is itself a miniature publish-on-ping, minus the reservation copy).
#pragma once

#include <atomic>

namespace pop::runtime {

enum class AsymBackend { kMembarrier, kSignalBroadcast };

class AsymFence {
 public:
  static AsymFence& instance();

  // Reader side: compiler-only barrier. On TSO the paired heavy fence
  // supplies the StoreLoad ordering.
  static void light_fence() noexcept {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }

  // Reclaimer side: process-wide barrier over all registered threads.
  void heavy_fence();

  AsymBackend backend() const noexcept { return backend_; }

  AsymFence(const AsymFence&) = delete;
  AsymFence& operator=(const AsymFence&) = delete;

 private:
  AsymFence();
  AsymBackend backend_;
};

namespace detail {
// When the signal-broadcast fallback is active, worker threads must be
// reachable by the barrier's ping; HPAsym calls this at thread attach.
void attach_barrier_client_for_current_thread();
}  // namespace detail

}  // namespace pop::runtime
