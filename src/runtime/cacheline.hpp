// Cache-line geometry and false-sharing protection.
#pragma once

#include <cstddef>

namespace pop::runtime {

// Two 64-byte lines: x86 adjacent-line prefetch makes 128 the effective
// destructive-interference granularity.
inline constexpr std::size_t kCacheLine = 128;

}  // namespace pop::runtime
