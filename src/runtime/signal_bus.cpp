#include "runtime/signal_bus.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "runtime/thread_registry.hpp"

namespace pop::runtime {

namespace {

constexpr int kMaxClientsPerThread = 16;

struct ClientTable {
  // Slots are published with release stores so the handler (same thread,
  // but asynchronous) observes fully-constructed entries. std::atomic of a
  // pointer is lock-free and therefore async-signal-safe.
  std::atomic<SignalClient*> slots[kMaxClientsPerThread] = {};
  // Detach-in-flight marker, closing the delivery/detach race: detach()
  // publishes the client here *before* touching the slot array, and the
  // handler completes any marked detach at entry (nulling the slot on the
  // interrupted code's behalf) before it walks a single client. Without
  // this, a handler that interrupts detach() mid-walk and then leaves via
  // a client's siglongjmp (NBR neutralization) abandons the detach frame
  // with the stale pointer still in the table — the next ping would call
  // on_ping through a client that may since have been destroyed.
  std::atomic<SignalClient*> pending_detach{nullptr};
};

thread_local ClientTable t_clients;

// Two flags close the install race: `g_handler_claim` elects the single
// installing thread; `g_handler_installed` flips only after sigaction
// returned. A thread that loses the claim must WAIT for the flip —
// otherwise it can attach, retire, and ping the still-installing thread
// while SIGUSR1 has the default (terminate) disposition.
std::atomic<bool> g_handler_claim{false};
std::atomic<bool> g_handler_installed{false};

}  // namespace

SignalBus& SignalBus::instance() {
  static SignalBus bus;
  return bus;
}

void SignalBus::handler(int) {
  // errno must be preserved: the interrupted code may be between a syscall
  // and its errno check.
  const int saved_errno = errno;
  // A still-pending ping can be delivered while this thread is exiting,
  // *after* it deregistered (thread_local destructor order is
  // unspecified). Registering from a signal handler would deadlock on
  // the registry lock the sender may hold and write to a destroyed
  // thread_local — so consult the cached id only and bail out when the
  // thread is no longer (or not yet) registered: an unregistered thread
  // has nothing to publish and no reclaimer waits on it.
  const int tid = ThreadRegistry::detail_cached_tid();
  if (tid < 0) {
    errno = saved_errno;
    return;
  }
  // Liveness evidence for the zombie reaper: every delivery advances the
  // receiving thread's registry heartbeat (lock-free atomic increment,
  // async-signal-safe).
  ThreadRegistry::instance().heartbeat_bump(tid);
  // Complete any detach this delivery interrupted BEFORE running clients:
  // a client below may siglongjmp and never return control to the
  // interrupted detach() frame, so this is the only point guaranteed to
  // finish the removal. Same-thread atomics; no client has run yet, so no
  // jump can bypass this cleanup.
  SignalClient* pending =
      t_clients.pending_detach.load(std::memory_order_acquire);
  if (pending != nullptr) {
    for (auto& slot : t_clients.slots) {
      if (slot.load(std::memory_order_relaxed) == pending) {
        slot.store(nullptr, std::memory_order_release);
      }
    }
    t_clients.pending_detach.store(nullptr, std::memory_order_release);
  }
  for (auto& slot : t_clients.slots) {
    SignalClient* c = slot.load(std::memory_order_acquire);
    if (c != nullptr) c->on_ping(tid);  // may siglongjmp (NBR)
  }
  errno = saved_errno;
}

void SignalBus::attach(SignalClient* c) {
  // A client is only reachable if the thread is registered: broadcasts
  // iterate the registry.
  (void)ThreadRegistry::instance().my_tid();
  if (!g_handler_claim.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa = {};
    sa.sa_handler = &SignalBus::handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(kPingSignal, &sa, nullptr) != 0) {
      std::perror("popsmr: sigaction");
      std::abort();
    }
    g_handler_installed.store(true, std::memory_order_release);
  } else {
    while (!g_handler_installed.load(std::memory_order_acquire)) {
      // One-time, few-instruction window; spinning is fine.
    }
  }
  for (auto& slot : t_clients.slots) {
    if (slot.load(std::memory_order_relaxed) == c) return;  // already attached
  }
  for (auto& slot : t_clients.slots) {
    if (slot.load(std::memory_order_relaxed) == nullptr) {
      slot.store(c, std::memory_order_release);
      return;
    }
  }
  std::fprintf(stderr, "popsmr: >%d signal clients on one thread\n",
               kMaxClientsPerThread);
  std::abort();
}

void SignalBus::detach(SignalClient* c) {
  // Publish intent first: from here on, a delivery that interrupts this
  // frame finishes the removal itself (see handler), so even a
  // siglongjmp-abandoned detach leaves the table clean.
  t_clients.pending_detach.store(c, std::memory_order_release);
  for (auto& slot : t_clients.slots) {
    if (slot.load(std::memory_order_relaxed) == c) {
      slot.store(nullptr, std::memory_order_release);
      break;
    }
  }
  // CAS, not a plain clear: if a handler already completed this detach it
  // also cleared the marker, and a plain store could wipe a *newer*
  // marker in exotic nestings. Failure means the work is already done.
  SignalClient* expected = c;
  t_clients.pending_detach.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel,
      std::memory_order_relaxed);
}

bool SignalBus::attached(SignalClient* c) const {
  for (auto& slot : t_clients.slots) {
    if (slot.load(std::memory_order_relaxed) == c) return true;
  }
  return false;
}

}  // namespace pop::runtime
