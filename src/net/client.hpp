// NetClient: a blocking, pipelined client for the popsmr wire format.
//
// One client per connection (no internal locking — the loadgen runs one
// client per connection thread). exec_batch() writes every request of
// the batch back-to-back, then reads responses until all have arrived;
// the depth of the batch IS the pipeline depth. Per-request end-to-end
// latency is (response-decoded time) - (batch-send time), i.e. it
// includes the server's queueing of later responses behind earlier ones
// — exactly what a caller of a pipelined connection experiences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace pop::net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close_fd(); }

  // Connects over TCP (blocking, TCP_NODELAY). False + one stderr line
  // on resolve/connect failure.
  bool connect_tcp(const std::string& host, uint16_t port);

  // Takes ownership of an already-connected blocking socket (the other
  // end of a socketpair in tests).
  void adopt(int fd) {
    close_fd();
    fd_ = fd;
  }

  bool connected() const { return fd_ >= 0; }
  void close_fd();

  // Sends every request, then receives exactly reqs.size() responses in
  // order into *resps. When lat_ns is non-null it receives one entry per
  // request: response-arrival minus batch-send, in nanoseconds. False on
  // any socket error, EOF, or malformed response (connection is closed).
  bool exec_batch(const std::vector<Request>& reqs,
                  std::vector<Response>* resps,
                  std::vector<uint64_t>* lat_ns = nullptr);

  // Single-op conveniences built on exec_batch (tests, prefill).
  bool ping();
  bool get(uint64_t key, uint64_t* val_out, bool* hit);
  bool put(uint64_t key, uint64_t val, bool* replaced);
  bool del(uint64_t key, bool* removed);

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

 private:
  bool send_all(const uint8_t* data, size_t n);

  int fd_ = -1;
  FrameSplitter in_;
  std::vector<uint8_t> wire_;  // encode scratch, reused per batch
};

}  // namespace pop::net
