// Wire format for the networked KV front end: minimal RESP-like
// length-prefixed binary framing, pipelined.
//
// Every frame is a u32 little-endian body length followed by the body.
// Request bodies:
//
//   PING   [0x01]                                   len 1
//   GET    [0x02][key u64le]                        len 9
//   PUT    [0x03][key u64le][val u64le]             len 17
//   DEL    [0x04][key u64le]                        len 9
//
// Response bodies (one per request, FIFO order — pipelining is just
// writing N requests before reading N responses):
//
//   miss / absent       [0x00]                      len 1   (GET, DEL)
//   hit                 [0x01][val u64le]           len 9   (GET)
//   removed             [0x01]                      len 1   (DEL)
//   inserted            [0x02]                      len 1   (PUT)
//   replaced            [0x03]                      len 1   (PUT)
//   pong                [0x04]                      len 1   (PING)
//
// A body length of zero, a length above kMaxFrameBody, an unknown
// opcode/status, or a length that does not match the opcode's fixed
// shape is a protocol error: the peer closes the connection. The framing
// layer is pure (no sockets) so the torture suite can split frames at
// every byte boundary; see tests/net/test_frame.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace pop::net {

// Opcodes / statuses are one byte on the wire.
enum class Op : uint8_t { kPing = 0x01, kGet = 0x02, kPut = 0x03, kDel = 0x04 };
enum class Status : uint8_t {
  kMiss = 0x00,      // GET miss / DEL absent
  kHit = 0x01,       // GET hit (value follows) / DEL removed
  kInserted = 0x02,  // PUT created the mapping
  kReplaced = 0x03,  // PUT displaced (and retired) an existing node
  kPong = 0x04,
};

// Upper bound on a body: the largest legal frame is a PUT request
// (17 bytes). Anything above this is rejected before buffering — a
// hostile or corrupt length prefix must not make the server allocate.
inline constexpr uint32_t kMaxFrameBody = 17;
inline constexpr size_t kLenPrefix = 4;

struct Request {
  Op op = Op::kPing;
  uint64_t key = 0;
  uint64_t val = 0;  // PUT only
};

struct Response {
  Status status = Status::kPong;
  uint64_t val = 0;  // GET hit only
};

inline void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}
inline void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}
inline uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void encode_request(const Request& r, std::vector<uint8_t>& out) {
  switch (r.op) {
    case Op::kPing:
      put_u32(out, 1);
      out.push_back(static_cast<uint8_t>(r.op));
      break;
    case Op::kGet:
    case Op::kDel:
      put_u32(out, 9);
      out.push_back(static_cast<uint8_t>(r.op));
      put_u64(out, r.key);
      break;
    case Op::kPut:
      put_u32(out, 17);
      out.push_back(static_cast<uint8_t>(r.op));
      put_u64(out, r.key);
      put_u64(out, r.val);
      break;
  }
}

inline void encode_response(const Response& r, std::vector<uint8_t>& out) {
  if (r.status == Status::kHit) {
    // Only GET's hit carries a value; DEL's "removed" reuses the status
    // byte with a len-1 body, so the encoder needs the caller to say
    // which — encode_response_removed below covers DEL.
    put_u32(out, 9);
    out.push_back(static_cast<uint8_t>(r.status));
    put_u64(out, r.val);
    return;
  }
  put_u32(out, 1);
  out.push_back(static_cast<uint8_t>(r.status));
}

// DEL's positive outcome: status kHit with no value payload.
inline void encode_response_removed(std::vector<uint8_t>& out) {
  put_u32(out, 1);
  out.push_back(static_cast<uint8_t>(Status::kHit));
}

// Decodes one request body. False on any malformed body (unknown opcode
// or a length that does not match the opcode's fixed shape).
inline bool decode_request(const uint8_t* body, uint32_t len, Request* out) {
  if (len == 0) return false;
  switch (static_cast<Op>(body[0])) {
    case Op::kPing:
      if (len != 1) return false;
      out->op = Op::kPing;
      return true;
    case Op::kGet:
    case Op::kDel:
      if (len != 9) return false;
      out->op = static_cast<Op>(body[0]);
      out->key = get_u64(body + 1);
      return true;
    case Op::kPut:
      if (len != 17) return false;
      out->op = Op::kPut;
      out->key = get_u64(body + 1);
      out->val = get_u64(body + 9);
      return true;
  }
  return false;
}

// Decodes one response body. kHit is legal at both len 1 (DEL removed)
// and len 9 (GET hit); the client disambiguates by the op it pipelined.
inline bool decode_response(const uint8_t* body, uint32_t len, Response* out) {
  if (len == 0) return false;
  const auto st = static_cast<Status>(body[0]);
  switch (st) {
    case Status::kHit:
      if (len != 1 && len != 9) return false;
      out->status = st;
      out->val = len == 9 ? get_u64(body + 1) : 0;
      return true;
    case Status::kMiss:
    case Status::kInserted:
    case Status::kReplaced:
    case Status::kPong:
      if (len != 1) return false;
      out->status = st;
      out->val = 0;
      return true;
  }
  return false;
}

// Incremental frame splitter: feed bytes as they arrive (in any
// fragmentation), pull complete bodies out. Shared by both directions —
// it only understands the length prefix; decode_request/decode_response
// interpret the body. Buffered bytes are compacted lazily so a long
// pipeline costs one memmove per drain, not per frame.
class FrameSplitter {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  void feed(const uint8_t* data, size_t n) { buf_.insert(buf_.end(), data, data + n); }

  // On kFrame, *body/*len point into the internal buffer and stay valid
  // until the next feed()/next() call.
  Result next(const uint8_t** body, uint32_t* len) {
    if (buf_.size() - pos_ < kLenPrefix) {
      compact();
      return Result::kNeedMore;
    }
    const uint32_t blen = get_u32(buf_.data() + pos_);
    if (blen == 0 || blen > kMaxFrameBody) return Result::kError;
    if (buf_.size() - pos_ < kLenPrefix + blen) {
      compact();
      return Result::kNeedMore;
    }
    *body = buf_.data() + pos_ + kLenPrefix;
    *len = blen;
    pos_ += kLenPrefix + blen;
    return Result::kFrame;
  }

  // Bytes buffered but not yet consumed (a torn tail at EOF is a
  // truncated frame the owner may want to count as an error).
  size_t pending() const { return buf_.size() - pos_; }

 private:
  void compact() {
    if (pos_ == 0) return;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix
};

}  // namespace pop::net
