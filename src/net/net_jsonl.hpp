// JSONL emission for the networked front end: one "net" summary row per
// loadgen cell (end-to-end client-observed latency percentiles + the
// server-visible op outcome breakdown) and one "conn" row per
// connection (the per-connection counter/latency breakdown that makes a
// skewed connection visible). Same rail as every other bench
// (POPSMR_BENCH_JSON), same run_id/ts stamp, separable by `kind`.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/latency_histo.hpp"
#include "service/service_stats.hpp"
#include "workload/jsonl.hpp"

namespace pop::net {

// One loadgen cell: identity + what every connection did, rolled up.
struct NetCellRow {
  std::string scenario;
  std::string ds;
  std::string smr;
  int workers = 0;  // server worker threads, the row's `threads` column
  int shards = 0;
  int connections = 0;
  int pipeline_depth = 0;
  double seconds = 0.0;
  service::ConnectionStats totals;    // summed over connections
  obs::LatencySummary latency;        // merged client-side request latency
};

struct ConnRow {
  service::ConnectionStats stats;  // client-side view of one connection
  obs::LatencySummary latency;
};

inline void emit_net_counter_fields(std::FILE* f,
                                    const service::ConnectionStats& s) {
  std::fprintf(
      f,
      "\"ops\":%llu,\"gets\":%llu,\"get_hits\":%llu,\"puts\":%llu,"
      "\"put_replaced\":%llu,\"dels\":%llu,\"del_hits\":%llu,"
      "\"pings\":%llu,\"errors\":%llu,",
      static_cast<unsigned long long>(s.ops),
      static_cast<unsigned long long>(s.gets),
      static_cast<unsigned long long>(s.get_hits),
      static_cast<unsigned long long>(s.puts),
      static_cast<unsigned long long>(s.put_replaced),
      static_cast<unsigned long long>(s.dels),
      static_cast<unsigned long long>(s.del_hits),
      static_cast<unsigned long long>(s.pings),
      static_cast<unsigned long long>(s.protocol_errors));
}

// Appends the "net" row plus one "conn" row per connection to `path`
// (no-op on an empty path, like every emitter on this rail).
inline void emit_net_jsonl(const std::string& path, const NetCellRow& cell,
                           const std::vector<ConnRow>& conns) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;

  workload::begin_row(f, "net");
  workload::emit_latency_fields(f, cell.latency);
  emit_net_counter_fields(f, cell.totals);
  const double mops =
      cell.seconds > 0.0
          ? static_cast<double>(cell.totals.ops) / cell.seconds / 1e6
          : 0.0;
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\",\"threads\":%d,"
      "\"shards\":%d,\"connections\":%d,\"pipeline_depth\":%d,"
      "\"seconds\":%.6f,\"mops\":%.6f}\n",
      cell.scenario.c_str(), cell.ds.c_str(), cell.smr.c_str(), cell.workers,
      cell.shards, cell.connections, cell.pipeline_depth, cell.seconds, mops);

  for (const ConnRow& c : conns) {
    workload::begin_row(f, "conn");
    emit_net_counter_fields(f, c.stats);
    std::fprintf(
        f,
        "\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\",\"conn\":%llu,"
        "\"connections\":%d,\"pipeline_depth\":%d,\"p50_us\":%.3f,"
        "\"p90_us\":%.3f,\"p99_us\":%.3f,\"p999_us\":%.3f,"
        "\"max_us\":%.3f}\n",
        cell.scenario.c_str(), cell.ds.c_str(), cell.smr.c_str(),
        static_cast<unsigned long long>(c.stats.conn_id), cell.connections,
        cell.pipeline_depth, c.latency.p50_us, c.latency.p90_us,
        c.latency.p99_us, c.latency.p999_us, c.latency.max_us);
  }
  std::fclose(f);
}

}  // namespace pop::net
