#include "net/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "obs/obs.hpp"

namespace pop::net {

bool NetClient::connect_tcp(const std::string& host, uint16_t port) {
  close_fd();
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("popsmr net: socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "popsmr net: bad host '%s' (numeric IPv4 only)\n",
                 host.c_str());
    close(fd);
    return false;
  }
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    std::fprintf(stderr, "popsmr net: connect %s:%u failed: %s\n",
                 host.c_str(), unsigned{port}, strerror(errno));
    close(fd);
    return false;
  }
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

void NetClient::close_fd() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool NetClient::send_all(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that closed mid-batch must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t w = send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool NetClient::exec_batch(const std::vector<Request>& reqs,
                           std::vector<Response>* resps,
                           std::vector<uint64_t>* lat_ns) {
  if (fd_ < 0 || reqs.empty()) return false;
  wire_.clear();
  for (const Request& r : reqs) encode_request(r, wire_);

  const uint64_t t_send = obs::now_ns();
  if (!send_all(wire_.data(), wire_.size())) {
    close_fd();
    return false;
  }

  resps->clear();
  resps->reserve(reqs.size());
  if (lat_ns) {
    lat_ns->clear();
    lat_ns->reserve(reqs.size());
  }
  uint8_t buf[16 * 1024];
  while (resps->size() < reqs.size()) {
    // Drain whatever is already buffered before touching the socket.
    const uint8_t* body = nullptr;
    uint32_t len = 0;
    const auto res = in_.next(&body, &len);
    if (res == FrameSplitter::Result::kFrame) {
      Response resp;
      if (!decode_response(body, len, &resp)) {
        close_fd();
        return false;
      }
      resps->push_back(resp);
      if (lat_ns) lat_ns->push_back(obs::now_ns() - t_send);
      continue;
    }
    if (res == FrameSplitter::Result::kError) {
      close_fd();
      return false;
    }
    ssize_t r;
    do {
      r = read(fd_, buf, sizeof(buf));
    } while (r < 0 && errno == EINTR);
    if (r <= 0) {  // EOF or hard error mid-batch
      close_fd();
      return false;
    }
    in_.feed(buf, static_cast<size_t>(r));
  }
  return true;
}

bool NetClient::ping() {
  std::vector<Response> resps;
  if (!exec_batch({Request{Op::kPing, 0, 0}}, &resps)) return false;
  return resps[0].status == Status::kPong;
}

bool NetClient::get(uint64_t key, uint64_t* val_out, bool* hit) {
  std::vector<Response> resps;
  if (!exec_batch({Request{Op::kGet, key, 0}}, &resps)) return false;
  *hit = resps[0].status == Status::kHit;
  if (*hit && val_out) *val_out = resps[0].val;
  return true;
}

bool NetClient::put(uint64_t key, uint64_t val, bool* replaced) {
  std::vector<Response> resps;
  if (!exec_batch({Request{Op::kPut, key, val}}, &resps)) return false;
  if (resps[0].status != Status::kInserted &&
      resps[0].status != Status::kReplaced) {
    return false;
  }
  *replaced = resps[0].status == Status::kReplaced;
  return true;
}

bool NetClient::del(uint64_t key, bool* removed) {
  std::vector<Response> resps;
  if (!exec_batch({Request{Op::kDel, key, 0}}, &resps)) return false;
  *removed = resps[0].status == Status::kHit;
  return true;
}

}  // namespace pop::net
