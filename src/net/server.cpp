#include "net/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "obs/obs.hpp"

namespace pop::net {

namespace {

// Sentinel for the listen socket in worker 0's epoll (real connections
// carry their Conn* in data.ptr; the listen fd has no Conn).
void* const kListenTag = reinterpret_cast<void*>(uintptr_t{1});

bool set_nonblocking(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  return fl >= 0 && fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

NetServer::NetServer(const NetServerConfig& cfg) : cfg_(cfg) {}

std::unique_ptr<NetServer> NetServer::create(const NetServerConfig& cfg) {
  auto srv = std::unique_ptr<NetServer>(new NetServer(cfg));
  if (srv->cfg_.workers < 1) srv->cfg_.workers = 1;

  srv->map_ = service::make_service_set(cfg.ds, cfg.smr, cfg.set, cfg.shards,
                                        cfg.hash);
  if (!srv->map_) return nullptr;  // factory already named the bad name

  if (cfg.listen) {
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (fd < 0) {
      std::perror("popsmr_server: socket");
      return nullptr;
    }
    int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
      std::fprintf(stderr, "popsmr_server: bad bind host '%s'\n",
                   cfg.host.c_str());
      close(fd);
      return nullptr;
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd, 128) != 0) {
      std::fprintf(stderr, "popsmr_server: bind/listen %s:%u failed: %s\n",
                   cfg.host.c_str(), unsigned{cfg.port}, strerror(errno));
      close(fd);
      return nullptr;
    }
    // Resolve port 0 to the kernel's pick.
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
      srv->port_ = ntohs(bound.sin_port);
    }
    srv->listen_fd_ = fd;
  }
  return srv;
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  workers_.clear();
  for (int w = 0; w < cfg_.workers; ++w) {
    auto wk = std::make_unique<Worker>();
    wk->epfd = epoll_create1(EPOLL_CLOEXEC);
    if (wk->epfd < 0) {
      std::perror("popsmr_server: epoll_create1");
      std::abort();  // resource exhaustion at startup; nothing to unwind
    }
    workers_.push_back(std::move(wk));
  }
  if (listen_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: accept_burst may leave backlog
    ev.data.ptr = kListenTag;
    (void)epoll_ctl(workers_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

void NetServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& wk : workers_) {
    if (wk->thread.joinable()) wk->thread.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& wk : workers_) {
    // The worker already closed its conns on the way out; epfd is ours.
    if (wk->epfd >= 0) {
      close(wk->epfd);
      wk->epfd = -1;
    }
  }
  running_.store(false, std::memory_order_release);
}

bool NetServer::adopt(int fd) {
  if (!running_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    close(fd);
    return false;
  }
  if (!set_nonblocking(fd)) {
    close(fd);
    return false;
  }
  return register_conn(fd);
}

bool NetServer::register_conn(int fd) {
  const int w = static_cast<int>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint64_t>(cfg_.workers));
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->worker = w;
  conn->stats.conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  Conn* raw = conn.get();
  {
    std::lock_guard<std::mutex> lk(workers_[w]->mu);
    workers_[w]->conns.push_back(std::move(conn));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  ev.data.ptr = raw;
  if (epoll_ctl(workers_[w]->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    destroy_conn(raw);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void NetServer::accept_burst() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error
    }
    set_nodelay(fd);
    register_conn(fd);
  }
}

void NetServer::worker_loop(int w) {
  Worker& wk = *workers_[w];
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    // Short timeout so stop() is honored promptly; SMR ping signals also
    // interrupt the wait (EINTR), which is harmless — we just loop.
    const int n = epoll_wait(wk.epfd, events, 64, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == kListenTag) {
        accept_burst();
        continue;
      }
      Conn* c = static_cast<Conn*>(events[i].data.ptr);
      if (c->dead) continue;  // closed earlier in this event burst
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        c->dead = true;
      } else {
        if (ev & EPOLLOUT) flush_writes(c);
        if (!c->dead && (ev & (EPOLLIN | EPOLLRDHUP))) drain_readable(c);
      }
      if (c->dead) destroy_conn(c);
    }
  }
  // Teardown: close every connection this worker still owns, then drop
  // the thread's SMR attachments before it exits.
  for (;;) {
    Conn* victim = nullptr;
    {
      std::lock_guard<std::mutex> lk(wk.mu);
      if (!wk.conns.empty()) victim = wk.conns.back().get();
    }
    if (!victim) break;
    destroy_conn(victim);
  }
  map_->detach_thread();
}

void NetServer::drain_readable(Conn* c) {
  uint8_t buf[16 * 1024];
  bool saw_eof = false;
  for (;;) {
    const ssize_t r = read(c->fd, buf, sizeof(buf));
    if (r > 0) {
      c->in.feed(buf, static_cast<size_t>(r));
      if (static_cast<size_t>(r) < sizeof(buf)) break;  // drained (ET-safe:
      // a short read means the socket buffer is empty right now; anything
      // arriving after it re-arms the edge)
      continue;
    }
    if (r == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    c->dead = true;  // hard read error
    return;
  }

  // Split everything buffered into one decoded pipeline, then execute it
  // under a single batch bracket.
  c->batch.clear();
  for (;;) {
    const uint8_t* body = nullptr;
    uint32_t len = 0;
    const auto res = c->in.next(&body, &len);
    if (res == FrameSplitter::Result::kNeedMore) break;
    if (res == FrameSplitter::Result::kError) {
      c->stats.protocol_errors++;
      c->dead = true;
      break;
    }
    Request req;
    if (!decode_request(body, len, &req)) {
      c->stats.protocol_errors++;
      c->dead = true;
      break;
    }
    c->batch.push_back(req);
  }
  if (!c->batch.empty()) {
    execute_batch(c);
    flush_writes(c);
  }
  if (saw_eof && !c->dead) {
    // A clean close with a torn frame still buffered is a protocol error
    // worth counting; either way the connection is done.
    if (c->in.pending() != 0) c->stats.protocol_errors++;
    c->dead = true;
  }
}

void NetServer::execute_batch(Conn* c) {
  const uint64_t t0 = obs::now_ns();
  auto& m = *map_;
  auto& st = c->stats;
  // ONE bracket for the whole pipeline: this is the amortization the
  // networked front end exists to measure. The bracket opens only after
  // the socket read completed and closes before any write — it is never
  // held across a syscall that can block.
  m.batch_begin();
  for (const Request& req : c->batch) {
    switch (req.op) {
      case Op::kPing: {
        st.pings++;
        encode_response(Response{Status::kPong, 0}, c->out);
        break;
      }
      case Op::kGet: {
        st.gets++;
        uint64_t val = 0;
        if (m.get(req.key, &val)) {
          st.get_hits++;
          encode_response(Response{Status::kHit, val}, c->out);
        } else {
          encode_response(Response{Status::kMiss, 0}, c->out);
        }
        break;
      }
      case Op::kPut: {
        st.puts++;
        const ds::PutResult r = m.put(req.key, req.val);
        if (r == ds::PutResult::kReplaced) {
          st.put_replaced++;
          encode_response(Response{Status::kReplaced, 0}, c->out);
        } else {
          encode_response(Response{Status::kInserted, 0}, c->out);
        }
        break;
      }
      case Op::kDel: {
        st.dels++;
        if (m.remove(req.key)) {
          st.del_hits++;
          encode_response_removed(c->out);
        } else {
          encode_response(Response{Status::kMiss, 0}, c->out);
        }
        break;
      }
    }
  }
  m.batch_end();
  obs::record_latency(obs::LatOp::kNetBatch, obs::now_ns() - t0);
  const uint64_t n = c->batch.size();
  st.ops += n;
  st.batches++;
  if (n > st.max_batch) st.max_batch = n;
}

void NetServer::flush_writes(Conn* c) {
  while (c->out_pos < c->out.size()) {
    // MSG_NOSIGNAL: a client that vanished mid-response is an EPIPE (we
    // close the conn), never a process-wide SIGPIPE.
    const ssize_t w = send(c->fd, c->out.data() + c->out_pos,
                           c->out.size() - c->out_pos, MSG_NOSIGNAL);
    if (w > 0) {
      c->out_pos += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c->want_write) {
        c->want_write = true;
        update_interest(c);
      }
      return;
    }
    c->dead = true;  // hard write error (EPIPE etc.)
    return;
  }
  // Fully drained: reclaim the buffer and drop EPOLLOUT interest.
  c->out.clear();
  c->out_pos = 0;
  if (c->want_write) {
    c->want_write = false;
    update_interest(c);
  }
}

void NetServer::update_interest(Conn* c) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP |
              (c->want_write ? EPOLLOUT : 0u);
  ev.data.ptr = c;
  (void)epoll_ctl(workers_[c->worker]->epfd, EPOLL_CTL_MOD, c->fd, &ev);
}

void NetServer::destroy_conn(Conn* c) {
  Worker& wk = *workers_[c->worker];
  (void)epoll_ctl(wk.epfd, EPOLL_CTL_DEL, c->fd, nullptr);
  close(c->fd);
  std::lock_guard<std::mutex> lk(wk.mu);
  for (auto it = wk.conns.begin(); it != wk.conns.end(); ++it) {
    if (it->get() == c) {
      wk.closed_total.accumulate(c->stats);
      wk.conns.erase(it);
      break;
    }
  }
}

service::ConnectionStats NetServer::total_stats() const {
  service::ConnectionStats total;
  for (const auto& wk : workers_) {
    std::lock_guard<std::mutex> lk(wk->mu);
    total.accumulate(wk->closed_total);
    for (const auto& c : wk->conns) total.accumulate(c->stats);
  }
  return total;
}

}  // namespace pop::net
