// NetServer: an epoll edge-triggered TCP front end over the service
// layer's IKV (ShardedMap when shards > 1).
//
// Shape: N worker threads, each owning a private epoll instance; the
// listen socket lives in worker 0's epoll and accepted connections are
// dealt round-robin across workers (epoll_ctl into another worker's
// epoll is a plain syscall — no handoff queue needed). Each connection
// belongs to exactly one worker for its whole life, so its parse/write
// buffers and ConnectionStats are single-writer without locks; the
// per-worker connection list is mutex-guarded only because accepts (and
// adopt()) insert from a different thread than the one that removes.
//
// The batching contract (the reason this server exists as a benchmark
// surface): every readable burst is drained through the framing layer
// into a vector of decoded requests, then the WHOLE pipeline executes
// inside ONE SMR batch bracket — map->batch_begin(), apply every op,
// map->batch_end() — so the scheme's per-op entry fence is paid once per
// batch instead of once per op. The bracket is never held across a
// blocking wait: it opens after the socket read completes and closes
// before the response write starts, so a worker parked in epoll_wait
// pins nothing (see src/smr/domain_base.hpp for the skip mechanism).
//
// Protocol errors (bad length prefix, unknown opcode, shape mismatch)
// close the connection after counting; a torn frame at EOF counts too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ds/iset.hpp"
#include "net/frame.hpp"
#include "service/service_stats.hpp"
#include "service/sharded_map.hpp"

namespace pop::net {

struct NetServerConfig {
  std::string ds = "HMHT";
  std::string smr = "EBR";
  int shards = 1;
  int workers = 2;
  // Port 0 binds an ephemeral port; read the real one back via port().
  uint16_t port = 0;
  std::string host = "127.0.0.1";
  ds::SetConfig set;
  service::ShardHash hash = service::ShardHash::kSplitMix64;
  // When false the server never opens a listen socket — connections
  // arrive only through adopt() (hermetic socketpair tests).
  bool listen = true;
};

class NetServer {
 public:
  // Builds the map and (when cfg.listen) binds the listen socket.
  // nullptr on unknown ds/smr names or bind failure (reported on stderr).
  static std::unique_ptr<NetServer> create(const NetServerConfig& cfg);

  ~NetServer();

  // Spawns the worker threads. Call once.
  void start();

  // Stops accepting, closes every connection, joins the workers. Safe to
  // call twice; the destructor calls it.
  void stop();

  // The bound port (resolves port 0 to the kernel-assigned one).
  uint16_t port() const { return port_; }

  // Hands an already-connected socket (e.g. one end of a socketpair) to
  // a worker. The server owns the fd from here on. False when the server
  // is stopped or the fd cannot be registered.
  bool adopt(int fd);

  // Roll-up of every connection ever served (closed + still live).
  service::ConnectionStats total_stats() const;
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  ds::IKV& map() { return *map_; }
  const NetServerConfig& config() const { return cfg_; }

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

 private:
  struct Conn {
    int fd = -1;
    int worker = 0;
    FrameSplitter in;
    // Pending response bytes not yet accepted by the kernel, starting at
    // out_pos (flushed on EPOLLOUT once the socket buffer was full).
    std::vector<uint8_t> out;
    size_t out_pos = 0;
    bool want_write = false;
    bool dead = false;
    service::ConnectionStats stats;
    // Decoded-pipeline scratch, reused across batches.
    std::vector<Request> batch;
  };

  struct Worker {
    int epfd = -1;
    std::thread thread;
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Conn>> conns;  // guarded by mu
    service::ConnectionStats closed_total;     // guarded by mu
  };

  explicit NetServer(const NetServerConfig& cfg);

  void worker_loop(int w);
  void accept_burst();
  // Reads everything available, executes complete frames in batch
  // brackets, queues responses. Marks the conn dead on error/EOF.
  void drain_readable(Conn* c);
  // Executes c->batch inside one bracket, appending responses to c->out.
  void execute_batch(Conn* c);
  // Pushes c->out to the socket; arms EPOLLOUT when the kernel pushes
  // back. Marks the conn dead on hard write errors.
  void flush_writes(Conn* c);
  void update_interest(Conn* c);
  bool register_conn(int fd);
  void destroy_conn(Conn* c);

  NetServerConfig cfg_;
  std::unique_ptr<ds::IKV> map_;
  std::vector<std::unique_ptr<Worker>> workers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_worker_{0};  // round-robin dealer
  std::atomic<uint64_t> next_conn_id_{0};
  std::atomic<uint64_t> accepted_{0};
};

}  // namespace pop::net
