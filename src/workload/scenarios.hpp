// Named scenario registry: the matrix bench_scenarios sweeps. Each name
// maps (ds, smr, threads, time scale) onto a full ScenarioSpec — the
// "scenario cookbook" in the README documents what each one stresses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace pop::workload {

// Knobs a caller varies per matrix cell; everything else (phases, key
// distributions, churn/stall schedules) is the scenario's identity.
struct ScenarioBuild {
  std::string ds = "HML";
  std::string smr = "EpochPOP";
  int threads = 4;
  // Multiplies every phase duration (and derived intervals). CI's
  // scenario-smoke job (bench_scenarios --short) runs at 0.25 with a
  // shrunken key range.
  double time_scale = 1.0;
  // 0 = the scenario's own default range; smoke mode passes a small one.
  uint64_t key_range = 0;
  // Service-layer shard count for the sharded-* scenarios; 0 = the
  // scenario's own default (4 for sharded scenarios, 1 elsewhere).
  int shards = 0;
};

// Registry order is presentation order.
const std::vector<std::string>& scenario_names();

// Builds `name` for the given cell; nullopt for unknown names. The
// returned spec is already valid (normalize() would make no changes).
std::optional<ScenarioSpec> make_scenario(const std::string& name,
                                          const ScenarioBuild& build);

// One-line description per scenario for --list and the cookbook.
std::string scenario_description(const std::string& name);

}  // namespace pop::workload
