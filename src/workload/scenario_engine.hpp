// Entry point of the scenario engine; see scenario.hpp for the
// vocabulary. Separate header so callers that only build specs (the
// named-scenario registry, the bench CLI) don't pull in the engine's
// dependencies.
#pragma once

#include "workload/scenario.hpp"

namespace pop::workload {

// Executes the scenario: builds the (ds, smr) set, prefills, runs the
// phase schedule with churn/stall/sampling as specified, joins, and
// aggregates. Aborts on an unknown ds/smr name. This is the single
// worker-loop implementation every bench binary and the legacy
// run_workload wrapper share.
ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace pop::workload
