#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>

namespace pop::workload {

namespace {

uint64_t scaled_ms(uint64_t ms, double scale) {
  const double v = std::ceil(static_cast<double>(ms) * scale);
  return v < 1.0 ? 1 : static_cast<uint64_t>(v);
}

// List traversals are O(size): give them a smaller default universe than
// the log/const-depth structures so cells finish in comparable time.
uint64_t default_range(const std::string& ds) {
  return (ds == "HML" || ds == "LL") ? 2048 : 16384;
}

PhaseSpec phase(const char* name, uint64_t dur_ms, uint32_t ins, uint32_t ers,
                double scale) {
  PhaseSpec p;
  p.name = name;
  p.duration_ms = scaled_ms(dur_ms, scale);
  p.pct_insert = ins;
  p.pct_erase = ers;
  return p;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "uniform-mixed",  "hotspot-churn",        "moving-hotspot",
      "stall-recovery", "oversubscribed-burst", "sharded-uniform",
      "sharded-hotspot", "kv-update-heavy",     "grow-churn",
      "resize-storm",   "zombie-storm",         "pressure-backstop",
  };
  return names;
}

std::string scenario_description(const std::string& name) {
  if (name == "uniform-mixed") {
    return "control cell: one phase, uniform keys, 25i/25d/50c, static pool";
  }
  if (name == "hotspot-churn") {
    return "90% of ops on a 10% hot set while workers exit and fresh "
           "threads re-register (registry tid recycling under ping waves)";
  }
  if (name == "moving-hotspot") {
    return "write-burst then read-mostly phases with the hot window "
           "sliding across the key space mid-phase";
  }
  if (name == "stall-recovery") {
    return "a victim worker parks mid-operation holding its reservation; "
           "the timeline shows unreclaimed memory grow and recover";
  }
  if (name == "oversubscribed-burst") {
    return "4x thread burst (past the core count) -> read-mostly -> "
           "erase-heavy drain, exercising preempted-thread handshakes";
  }
  if (name == "sharded-uniform") {
    return "key space partitioned over N shards (one SMR domain each), "
           "uniform keys: the domain-contention split scale axis";
  }
  if (name == "sharded-hotspot") {
    return "sharded map under Zipfian keys: the head keys concentrate on "
           "one hot shard while the rest idle (skewed service traffic)";
  }
  if (name == "kv-update-heavy") {
    return "value-carrying map traffic: a put-heavy phase (replaces retire "
           "displaced nodes under active readers) then a get-heavy phase "
           "over the rewritten keys";
  }
  if (name == "grow-churn") {
    return "a table provisioned for 1/64th of the key range fills under "
           "insert-heavy traffic while workers churn: grow-path descriptor "
           "CASes race recycled registry tids (RHHT resizes; fixed tables "
           "just run long buckets)";
  }
  if (name == "resize-storm") {
    return "fill -> drain -> refill oscillation on an under-provisioned "
           "table with a victim parked through the drain: bucket-array "
           "retirement (one large Reclaimable per displaced descriptor) "
           "flows through the batched sweep against a pinned reservation";
  }
  if (name == "zombie-storm") {
    return "workers are repeatedly killed inside operation brackets "
           "(registry slot leaked: only tgkill certification reclaims it) "
           "while replacements respawn; the reaper must certify corpses, "
           "neutralize their reservations and adopt orphaned retires";
  }
  if (name == "pressure-backstop") {
    return "a victim parks holding its reservation with a tight "
           "POPSMR_PRESSURE_BOUND set: unreclaimed crosses the bound, the "
           "backstop forces passes, degrades to defer-and-warn while "
           "pinned, and recovers once the victim resumes";
  }
  return "";
}

std::optional<ScenarioSpec> make_scenario(const std::string& name,
                                          const ScenarioBuild& b) {
  ScenarioSpec s;
  s.name = name;
  s.ds = b.ds;
  s.smr = b.smr;
  s.threads = std::max(1, b.threads);
  s.key_range = b.key_range ? b.key_range : default_range(b.ds);
  // Any scenario can run sharded (bench_sharded sweeps the axis); only
  // the sharded-* scenarios default it above 1.
  s.shards = b.shards > 0 ? b.shards : 1;
  const double sc = b.time_scale > 0 ? b.time_scale : 1.0;

  if (name == "uniform-mixed") {
    s.phases.push_back(phase("mixed", 200, 25, 25, sc));
    return s;
  }

  if (name == "hotspot-churn") {
    PhaseSpec p = phase("hot-churn", 300, 40, 40, sc);
    p.keys.kind = KeyDist::kHotspot;
    p.keys.hot_fraction = 0.10;
    p.keys.hot_op_pct = 90;
    s.phases.push_back(p);
    s.churn.enabled = true;
    s.churn.interval_ms = scaled_ms(30, sc);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  if (name == "moving-hotspot") {
    PhaseSpec burst = phase("write-burst", 200, 45, 45, sc);
    burst.keys.kind = KeyDist::kHotspot;
    burst.keys.hot_fraction = 0.05;
    burst.keys.hot_op_pct = 90;
    burst.keys.hot_move_every_ms = scaled_ms(25, sc);
    PhaseSpec read = phase("read-mostly", 200, 5, 5, sc);
    read.keys = burst.keys;
    s.phases.push_back(burst);
    s.phases.push_back(read);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  if (name == "stall-recovery") {
    // Equal mixed phases; the victim parks for all of phase "stalled".
    // Zipfian keys keep old (pre-stall-born) nodes churning, which is
    // what an era-publishing stalled thread pins.
    const uint64_t warm = 150, stall = 250, recover = 250;
    for (auto [nm, dur] : {std::pair{"warmup", warm},
                           std::pair{"stalled", stall},
                           std::pair{"recovery", recover}}) {
      PhaseSpec p = phase(nm, dur, 30, 30, sc);
      p.keys.kind = KeyDist::kZipfian;
      p.keys.zipf_theta = 0.8;
      s.phases.push_back(p);
    }
    s.stall.enabled = true;
    s.stall.victim = 0;
    s.stall.park_after_ms = scaled_ms(warm, sc);
    s.stall.park_for_ms = scaled_ms(stall, sc);
    s.mem_sample_every_ms = std::max<uint64_t>(1, scaled_ms(8, sc));
    return s;
  }

  if (name == "sharded-uniform") {
    if (b.shards <= 0) s.shards = 4;
    s.phases.push_back(phase("mixed", 200, 30, 30, sc));
    return s;
  }

  if (name == "sharded-hotspot") {
    if (b.shards <= 0) s.shards = 4;
    PhaseSpec p = phase("zipf", 250, 30, 30, sc);
    // theta 0.99 (YCSB default): the top handful of keys carry most of
    // the mass, so whichever shards they hash to run hot while the rest
    // see background traffic — per-shard ops in the ServiceStats show it.
    p.keys.kind = KeyDist::kZipfian;
    p.keys.zipf_theta = 0.99;
    s.phases.push_back(p);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  if (name == "kv-update-heavy") {
    // Put-replace is the reclamation traffic class set workloads never
    // exercise: most nodes die young (displaced while readers still hold
    // them). Phase 1 rewrites values hard; phase 2 reads them back with a
    // trickle of puts so reclamation keeps running against a get-heavy
    // mix.
    PhaseSpec rewrite = phase("put-heavy", 250, 5, 5, sc);
    rewrite.pct_put = 60;
    PhaseSpec readback = phase("get-heavy", 200, 0, 0, sc);
    readback.pct_put = 10;
    s.phases.push_back(rewrite);
    s.phases.push_back(readback);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  if (name == "grow-churn") {
    // Under-provision by 64x: the resizable table must double its way up
    // ~6 times mid-run while the worker pool churns underneath it (a
    // descriptor CAS or cooperative bucket split can race a tid being
    // recycled). Prefill is skipped so the whole growth happens under
    // contention, not in the single-threaded fill loop.
    s.initial_capacity = std::max<uint64_t>(2, s.key_range / 64);
    s.prefill = 0;
    s.phases.push_back(phase("grow", 250, 70, 5, sc));
    s.phases.push_back(phase("churn-steady", 200, 25, 25, sc));
    s.churn.enabled = true;
    s.churn.interval_ms = scaled_ms(30, sc);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  if (name == "resize-storm") {
    // Oscillate the population so an adaptive table grows AND shrinks:
    // every displaced bucket array is retired as one large Reclaimable,
    // and the victim parked through the drain pins a reservation while
    // those arrays flow through the batched sweep.
    s.initial_capacity = std::max<uint64_t>(2, s.key_range / 64);
    s.prefill = 0;
    const uint64_t fill = 200, drain = 200, refill = 150;
    s.phases.push_back(phase("fill", fill, 80, 0, sc));
    s.phases.push_back(phase("drain", drain, 0, 80, sc));
    s.phases.push_back(phase("refill", refill, 60, 10, sc));
    s.stall.enabled = true;
    s.stall.victim = 0;
    s.stall.park_after_ms = scaled_ms(fill, sc);
    s.stall.park_for_ms = scaled_ms(drain / 2, sc);
    s.mem_sample_every_ms = std::max<uint64_t>(1, scaled_ms(8, sc));
    return s;
  }

  if (name == "zombie-storm") {
    // Update-heavy traffic keeps every corpse's abandoned bracket armed
    // against live garbage; kills land every interval with respawns, so
    // the run sustains a rolling population of uncertified zombies. The
    // mem timeline shows each kill's backlog and the reaper's adoption.
    PhaseSpec p = phase("storm", 400, 35, 35, sc);
    s.phases.push_back(p);
    s.faults.thread_kill = true;
    s.faults.kill_zombie = true;
    s.faults.respawn = true;
    s.faults.kill_after_ms = scaled_ms(60, sc);
    s.faults.kill_every_ms = scaled_ms(60, sc);
    s.faults.kills = 4;
    // Reclaim passes are the reaper's only vehicle: a low threshold keeps
    // them frequent enough that certification (two stale heartbeat scans,
    // then the tgkill probe) lands inside the run even under sanitizers.
    s.smr_cfg.retire_threshold = 64;
    s.mem_sample_every_ms = std::max<uint64_t>(1, scaled_ms(8, sc));
    return s;
  }

  if (name == "pressure-backstop") {
    // Same shape as stall-recovery but with a pressure bound tight enough
    // that the parked victim pushes unreclaimed over it: the backstop
    // forces passes (visible as forced_handshakes / pressure_events) and
    // degrades to defer-and-warn until the victim resumes.
    const uint64_t warm = 120, stall = 220, recover = 200;
    for (auto [nm, dur] : {std::pair{"warmup", warm},
                           std::pair{"stalled", stall},
                           std::pair{"recovery", recover}}) {
      PhaseSpec p = phase(nm, dur, 30, 30, sc);
      s.phases.push_back(p);
    }
    s.stall.enabled = true;
    s.stall.victim = 0;
    s.stall.park_after_ms = scaled_ms(warm, sc);
    s.stall.park_for_ms = scaled_ms(stall, sc);
    // Bound well under a stalled run's organic backlog but above the
    // steady-state watermark (retire_threshold per worker).
    s.smr_cfg.pressure_bound =
        s.smr_cfg.retire_threshold * static_cast<uint64_t>(s.threads) * 2;
    s.mem_sample_every_ms = std::max<uint64_t>(1, scaled_ms(8, sc));
    return s;
  }

  if (name == "oversubscribed-burst") {
    PhaseSpec burst = phase("write-burst", 200, 50, 50, sc);
    burst.threads = s.threads * 4;
    PhaseSpec read = phase("read-mostly", 150, 5, 5, sc);
    PhaseSpec drain = phase("drain", 150, 0, 60, sc);
    s.phases.push_back(burst);
    s.phases.push_back(read);
    s.phases.push_back(drain);
    s.mem_sample_every_ms = scaled_ms(10, sc);
    return s;
  }

  return std::nullopt;
}

}  // namespace pop::workload
