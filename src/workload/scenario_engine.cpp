#include "workload/scenario_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ds/iset.hpp"
#include "obs/hw_counters.hpp"
#include "obs/obs.hpp"
#include "runtime/fault_inject.hpp"
#include "runtime/padded.hpp"
#include "runtime/pool_alloc.hpp"
#include "runtime/proc_stats.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_registry.hpp"
#include "service/sharded_map.hpp"
#include "smr/audit.hpp"
#include "workload/key_dist.hpp"

namespace pop::workload {

namespace {

using Clock = std::chrono::steady_clock;

// Read-your-writes ledger states (values a worker knows it wrote use the
// remaining space; both sentinels are unreachable as real values because
// workers tag puts with a nonzero high byte below kRwAbsent's).
constexpr uint64_t kRwUnknown = UINT64_MAX;
constexpr uint64_t kRwAbsent = UINT64_MAX - 1;

// Per-slot control word, written rarely by the coordinator and polled
// once per operation by the owning worker (a read-mostly private line).
struct SlotCtrl {
  std::atomic<bool> exit_now{false};
  std::atomic<bool> park{false};
  // Crash fault: the worker opens an SMR bracket and exits without
  // closing it or detaching (see FaultSpec::thread_kill).
  std::atomic<bool> die{false};
  // Registry tid of the slot's current worker; -1 until it registers.
  std::atomic<int> tid{-1};
};

// Prefill to half the key range (paper §5.0.2): every other key keeps
// the fill deterministic across schemes so structures are comparable.
// Insertion *order* matters per structure: descending for lists (each
// key becomes the new minimum, found right after the head: O(1) per
// insert instead of O(n)); BFS-midpoint for the external BST (produces
// a balanced tree instead of a degenerate chain). The (a,b)-tree and
// hash table are insensitive, and take the midpoint order too.
void prefill_set(ds::ISet& set, const ScenarioSpec& spec) {
  const uint64_t prefill =
      spec.prefill == UINT64_MAX ? spec.key_range / 2 : spec.prefill;
  const uint64_t nkeys = spec.key_range / 2;  // even keys 0,2,4,...
  uint64_t inserted = 0;
  if (spec.ds == "HML" || spec.ds == "LL") {
    for (uint64_t i = nkeys; i >= 1 && inserted < prefill; --i) {
      inserted += set.insert((i - 1) * 2);
    }
  } else {
    // BFS over index ranges: insert the middle even key of each segment.
    std::vector<std::pair<uint64_t, uint64_t>> queue_;
    queue_.reserve(64);
    queue_.emplace_back(0, nkeys);
    for (size_t qi = 0; qi < queue_.size() && inserted < prefill; ++qi) {
      const auto [lo, hi] = queue_[qi];
      if (lo >= hi) continue;
      const uint64_t mid = lo + (hi - lo) / 2;
      inserted += set.insert(mid * 2);
      queue_.emplace_back(lo, mid);
      queue_.emplace_back(mid + 1, hi);
    }
  }
  // Odd keys (still balanced enough) if a caller asked for more than half.
  for (uint64_t k = 1; k < spec.key_range && inserted < prefill; k += 2) {
    inserted += set.insert(k);
  }
  set.detach_thread();
}

// End-minus-start of the SWMR per-thread counters; max_retire_len is a
// high-watermark, so the phase keeps the end value rather than a delta.
smr::StatsSnapshot snapshot_delta(const smr::StatsSnapshot& a,
                                  const smr::StatsSnapshot& b) {
  smr::StatsSnapshot d;
  d.retired = b.retired - a.retired;
  d.freed = b.freed - a.freed;
  d.scans = b.scans - a.scans;
  d.signals_sent = b.signals_sent - a.signals_sent;
  d.pings_received = b.pings_received - a.pings_received;
  d.neutralized = b.neutralized - a.neutralized;
  d.ebr_frees = b.ebr_frees - a.ebr_frees;
  d.pop_frees = b.pop_frees - a.pop_frees;
  d.max_retire_len = b.max_retire_len;
  d.waves_timed_out = b.waves_timed_out - a.waves_timed_out;
  d.tids_reaped = b.tids_reaped - a.tids_reaped;
  d.orphans_adopted = b.orphans_adopted - a.orphans_adopted;
  d.pressure_events = b.pressure_events - a.pressure_events;
  d.forced_handshakes = b.forced_handshakes - a.forced_handshakes;
  return d;
}

// Mid-run probes read the SWMR counters racily; a torn read can catch a
// batched sweep between retired and freed and see freed ahead — saturate
// instead of wrapping.
uint64_t unreclaimed_now(const ds::ISet& set) {
  const auto s = set.smr_stats();
  return s.freed > s.retired ? 0 : s.retired - s.freed;
}

uint64_t ms_since(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count());
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec_in) {
  ScenarioSpec spec = spec_in;
  ScenarioResult res;
  // Snapshot the contract-sanitizer counter so res reports this run's
  // delta, not violations accumulated by earlier runs in the process.
  const uint64_t audit_before = smr::audit::violations();
  res.warnings = normalize(spec);
  for (const auto& w : res.warnings) {
    std::fprintf(stderr, "popsmr scenario '%s': %s\n", spec.name.c_str(),
                 w.c_str());
  }

  ds::SetConfig sc;
  // The resize axis: provision for initial_capacity when set (an under-
  // provisioned resizable table has to grow its way out mid-run), else
  // for the full key range.
  sc.capacity =
      spec.initial_capacity > 0 ? spec.initial_capacity : spec.key_range;
  sc.load_factor = spec.load_factor;
  sc.smr = spec.smr_cfg;
  // Sharded specs run against a ShardedMap (one SMR domain per shard);
  // shards == 1 takes the monolithic path with zero routing overhead.
  service::ShardHash hash = service::ShardHash::kSplitMix64;
  (void)service::parse_shard_hash(spec.shard_hash, &hash);
  service::ShardedMap* sharded = nullptr;
  std::unique_ptr<ds::ISet> set;
  if (spec.shards > 1) {
    service::ShardedMapConfig smc;
    smc.shards = spec.shards;
    smc.hash = hash;
    smc.set = sc;
    auto sm = service::ShardedMap::create(spec.ds, spec.smr, smc);
    sharded = sm.get();
    set = std::move(sm);
  } else {
    set = ds::make_set(spec.ds, spec.smr, sc);
  }
  if (set == nullptr) {
    std::fprintf(stderr, "unknown ds/smr: %s/%s\n", spec.ds.c_str(),
                 spec.smr.c_str());
    std::abort();
  }
  prefill_set(*set, spec);

  const int nph = static_cast<int>(spec.phases.size());
  int max_threads = 1;
  for (const auto& p : spec.phases) max_threads = std::max(max_threads, p.threads);

  // Shared Zipf tables: one per distinct theta (all phases draw over the
  // same key range), built once and read immutably by every worker.
  std::vector<std::unique_ptr<runtime::ZipfTable>> zipf_tables;
  std::vector<KeyPicker> pickers;
  pickers.reserve(nph);
  for (const auto& p : spec.phases) {
    const runtime::ZipfTable* table = nullptr;
    if (p.keys.kind == KeyDist::kZipfian) {
      for (const auto& t : zipf_tables) {
        if (t->theta() == p.keys.zipf_theta) table = t.get();
      }
      if (table == nullptr) {
        zipf_tables.push_back(std::make_unique<runtime::ZipfTable>(
            spec.key_range, p.keys.zipf_theta));
        table = zipf_tables.back().get();
      }
    }
    pickers.emplace_back(p.keys, spec.key_range, table);
  }

  std::atomic<bool> go{false};
  std::atomic<int> phase_idx{0};
  std::atomic<uint64_t> hot_window{0};
  std::atomic<bool> park_release{false};
  std::atomic<bool> victim_parked{false};
  std::vector<runtime::Padded<SlotCtrl>> ctrl(max_threads);
  std::vector<runtime::Padded<OpCounts>> counts(
      static_cast<size_t>(max_threads) * nph);

  // Any phase running the read-your-writes checker makes workers keep a
  // per-key ledger of their own writes (worker-private key stripes).
  bool any_rw = false;
  for (const auto& p : spec.phases) any_rw |= p.read_your_writes;

  // ---- observability channels ---------------------------------------------
  // Spec toggles OR with the process-wide env/CLI channels. Forcing the
  // global latency flag on for the run (restored at the end) lets the
  // reclamation-side hooks in DomainCore/PopEngine see the same switch
  // the worker loop branches on.
  const bool lat_prev = obs::latency_on();
  const bool lat_on = obs::kEnabled && (spec.obs.latency || lat_prev);
  if (lat_on && !lat_prev) obs::set_latency(true);
  const bool hw_en = obs::kEnabled && (spec.obs.hw || obs::hw_on());
  // Per-(slot, phase) hardware-counter cells: perf_event_open binds to
  // the calling thread, so each worker opens its own counters and flushes
  // a delta into its cell at every phase transition and on every exit
  // path. The owner is the only writer; the coordinator reads after the
  // join.
  std::vector<runtime::Padded<obs::HwSample>> hw_cells(
      hw_en ? static_cast<size_t>(max_threads) * nph : 0);

  auto worker_body = [&](int slot, uint64_t generation) {
    // Legacy seed for generation 0 keeps one-phase uniform runs
    // bit-comparable with the pre-engine driver; churned replacements
    // perturb it so a recycled slot doesn't replay its predecessor.
    runtime::Xoshiro256 rng(0x9E3779B9ull * (slot + 1) + 12345 +
                            generation * 0xD1342543DE82EF95ull);
    std::vector<uint64_t> rw_expect;
    if (any_rw) rw_expect.assign(spec.key_range, kRwUnknown);
    // Unique, monotonic put values: (slot, generation) salt | sequence.
    const uint64_t val_salt = (static_cast<uint64_t>(slot + 1) << 48) |
                              ((generation & 0xFF) << 40);
    uint64_t val_seq = 0;
    SlotCtrl& my_ctrl = *ctrl[slot];
    // Register before the start barrier and publish the tid: the fault
    // coordinator resolves victims (signal-loss target, kill slots) by
    // registry tid, which must exist before any fault can be scheduled.
    my_ctrl.tid.store(runtime::my_tid(), std::memory_order_release);
    // This worker's hardware counters; hw_flush folds the delta since the
    // last flush into the (slot, phase) cell of the phase that just ended.
    std::unique_ptr<obs::HwCounters> hc;
    obs::HwSample hw_last;
    int hw_phase = 0;
    if (hw_en) {
      hc = std::make_unique<obs::HwCounters>();
      hw_last = hc->read();
    }
    auto hw_flush = [&](int next_phase) {
      if (!hc) return;
      const obs::HwSample cur = hc->read();
      hw_cells[static_cast<size_t>(slot) * nph + hw_phase]->accumulate(
          cur.delta(hw_last));
      hw_last = cur;
      hw_phase = next_phase;
    };
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (;;) {
      const int p = phase_idx.load(std::memory_order_acquire);
      if (hw_en && p != hw_phase) hw_flush(p < nph ? p : nph - 1);
      if (p >= nph) break;
      if (my_ctrl.exit_now.load(std::memory_order_relaxed)) break;
      if (my_ctrl.die.load(std::memory_order_relaxed)) {
        // Crash fault: die inside a critical section. The bracket is left
        // open, detach_thread never runs, and (kill_zombie) the registry
        // slot is leaked so only tgkill certification can reclaim it.
        hw_flush(hw_phase);  // the corpse's counters still count
        set->abandon_in_operation();
        if (spec.faults.kill_zombie) {
          runtime::ThreadRegistry::instance().detail_abandon_registration();
        }
        return;
      }
      if (my_ctrl.park.load(std::memory_order_relaxed)) {
        victim_parked.store(true, std::memory_order_release);
        set->park_in_operation(park_release);
        victim_parked.store(false, std::memory_order_release);
        my_ctrl.park.store(false, std::memory_order_relaxed);
        continue;
      }
      const PhaseSpec& ph = spec.phases[p];
      if (slot >= ph.threads) {
        // Inactive this phase: stay registered, run nothing.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      OpCounts& my = *counts[static_cast<size_t>(slot) * nph + p];
      ++my.ops;
      // One clock read before and after the op when the latency channel
      // is on; the branch below costs a relaxed load + predictable jump
      // when it is off (the <2% contract tests/obs pins down).
      const uint64_t lat_t0 = lat_on ? obs::now_ns() : 0;
      obs::LatOp lat_kind = obs::LatOp::kGet;
      if (ph.split_readers_writers && slot < ph.threads / 2) {
        // Dedicated reader (Figure 4): full-range gets only.
        my.get_hits += set->get(rng.next_below(spec.key_range), nullptr);
        ++my.reads;
        ++my.gets;
      } else if (ph.split_readers_writers) {
        // Dedicated updater near the head of the structure.
        const uint64_t k = rng.next_below(ph.writer_key_range);
        if (rng.percent(50)) {
          (void)set->insert(k);
          ++my.inserts;
          lat_kind = obs::LatOp::kInsert;
        } else {
          (void)set->erase(k);
          ++my.erases;
          lat_kind = obs::LatOp::kRemove;
        }
        ++my.updates;
      } else {
        uint64_t k = pickers[p].next(
            rng, hot_window.load(std::memory_order_relaxed));
        const bool rw = ph.read_your_writes;
        if (rw) {
          // Confine the key to this worker's private stripe
          // (k ≡ slot mod active threads) so the ledger below is the
          // single source of truth for it.
          const uint64_t nact = static_cast<uint64_t>(ph.threads);
          k = k - k % nact + static_cast<uint64_t>(slot);
          if (k >= spec.key_range) k -= nact;
        }
        const uint64_t dice = rng.next_below(100);
        // The ledger checks below also validate op OUTCOMES, not just the
        // follow-up get: on a private stripe, an insert/put/remove over a
        // key whose state the ledger knows must report the matching
        // outcome (a put that lost its key would otherwise reinsert and
        // read back clean, hiding the loss).
        if (dice < ph.pct_insert) {
          const bool inserted = set->insert(k);
          ++my.inserts;
          ++my.updates;
          lat_kind = obs::LatOp::kInsert;
          if (rw) {
            const uint64_t e = rw_expect[k];
            if ((e == kRwAbsent && !inserted) ||
                (e != kRwAbsent && e != kRwUnknown && inserted)) {
              ++my.rw_violations;
            }
            if (inserted) rw_expect[k] = k;  // insert stores value == key
          }
        } else if (dice < ph.pct_insert + ph.pct_erase) {
          const bool removed = set->remove(k);
          ++my.erases;
          ++my.updates;
          lat_kind = obs::LatOp::kRemove;
          if (rw) {
            const uint64_t e = rw_expect[k];
            if ((e == kRwAbsent && removed) ||
                (e != kRwAbsent && e != kRwUnknown && !removed)) {
              ++my.rw_violations;
            }
            rw_expect[k] = kRwAbsent;
            uint64_t got = 0;
            if (set->get(k, &got)) ++my.rw_violations;
          }
        } else if (dice < ph.pct_insert + ph.pct_erase + ph.pct_put) {
          const uint64_t v = val_salt | ++val_seq;
          const ds::PutResult pr = set->put(k, v);
          if (pr == ds::PutResult::kReplaced) ++my.put_replaced;
          ++my.puts;
          ++my.updates;
          lat_kind = obs::LatOp::kPut;
          if (rw) {
            const uint64_t e = rw_expect[k];
            if ((e == kRwAbsent && pr != ds::PutResult::kInserted) ||
                (e != kRwAbsent && e != kRwUnknown &&
                 pr != ds::PutResult::kReplaced)) {
              ++my.rw_violations;
            }
            rw_expect[k] = v;
            uint64_t got = 0;
            if (!set->get(k, &got) || got != v) ++my.rw_violations;
          }
        } else {
          uint64_t got = 0;
          const bool hit = set->get(k, &got);
          my.get_hits += hit;
          ++my.gets;
          ++my.reads;
          if (rw) {
            const uint64_t e = rw_expect[k];
            if (hit && (e == kRwAbsent || (e != kRwUnknown && got != e))) {
              ++my.rw_violations;
            } else if (!hit && e != kRwAbsent && e != kRwUnknown) {
              ++my.rw_violations;
            }
          }
        }
      }
      if (lat_on) obs::record_latency(lat_kind, obs::now_ns() - lat_t0);
    }
    hw_flush(hw_phase);
    set->detach_thread();
  };

  std::vector<std::thread> workers;
  workers.reserve(max_threads);
  std::vector<uint64_t> generation(max_threads, 0);
  for (int s = 0; s < max_threads; ++s) workers.emplace_back(worker_body, s, 0);

  // ---- background memory-timeline sampler ---------------------------------
  std::atomic<bool> sampler_stop{false};
  std::vector<MemSample> samples;
  std::thread sampler;
  const auto t0 = Clock::now();
  if (spec.mem_sample_every_ms > 0) {
    sampler = std::thread([&] {
      const auto cadence =
          std::chrono::milliseconds(spec.mem_sample_every_ms);
      auto next = Clock::now();
      while (!sampler_stop.load(std::memory_order_acquire)) {
        MemSample m;
        m.t_ms = ms_since(t0);
        m.phase = std::min(phase_idx.load(std::memory_order_acquire), nph - 1);
        m.vm_rss_kib = runtime::vm_rss_kib();
        m.vm_hwm_kib = runtime::vm_hwm_kib();
        const auto s = set->smr_stats();  // racy-but-benign SWMR reads
        m.retired = s.retired;
        m.freed = s.freed;
        const auto ps = runtime::PoolAllocator::instance().stats();
        m.pool_allocated = ps.allocated_blocks;
        m.pool_freed = ps.freed_blocks;
        m.victim_parked = victim_parked.load(std::memory_order_acquire);
        samples.push_back(m);
        next += cadence;
        std::this_thread::sleep_until(next);
      }
    });
  }

  // ---- coordinator: phase schedule + churn + stall + faults ---------------
  auto& faults = runtime::FaultInjection::instance();
  const uint64_t dropped_before = faults.dropped();
  const bool loss_on = spec.faults.signal_loss;
  bool loss_armed = false;
  if (loss_on) {
    // Victim = the stall victim's registry tid when the stall injector is
    // on (the cell where a reclaimer pings a parked thread and the ping
    // never lands); otherwise every ping target rolls the dice.
    int victim_tid = -1;
    if (spec.stall.enabled) {
      while ((victim_tid = ctrl[spec.stall.victim]->tid.load(
                  std::memory_order_acquire)) < 0) {
        std::this_thread::yield();
      }
    }
    faults.arm_signal_loss(spec.faults.signal_loss_pct, victim_tid);
    loss_armed = true;
  }
  const auto loss_stop_at =
      t0 + std::chrono::milliseconds(spec.faults.signal_loss_stop_after_ms);

  const bool kill_on = spec.faults.thread_kill;
  auto next_kill = t0 + std::chrono::milliseconds(spec.faults.kill_after_ms);
  int kills_left = kill_on ? spec.faults.kills : 0;
  int kill_rr = 0;
  std::vector<bool> slot_dead(max_threads, false);
  uint64_t kill_baseline = 0;

  go.store(true, std::memory_order_release);

  const bool churn_on = spec.churn.enabled;
  auto next_churn = t0 + std::chrono::milliseconds(spec.churn.interval_ms);
  int churn_rr = 0;  // round-robin slot cursor

  const bool stall_on = spec.stall.enabled;
  enum class StallStage { kPending, kParked, kDone };
  StallStage stall_stage = stall_on ? StallStage::kPending : StallStage::kDone;
  const auto park_at = t0 + std::chrono::milliseconds(spec.stall.park_after_ms);
  const auto resume_at =
      park_at + std::chrono::milliseconds(spec.stall.park_for_ms);

  std::vector<smr::StatsSnapshot> boundary(nph + 1);
  std::vector<Clock::time_point> boundary_t(nph + 1);
  boundary[0] = set->smr_stats();
  boundary_t[0] = t0;

  // Latency boundary snapshots ride alongside the SMR ones: one merged
  // point-op snapshot per boundary (diff of merges == merge of diffs,
  // so per-phase summaries come out of adjacent boundaries), plus
  // per-kind start/end snapshots for the whole-run per-op rows.
  std::vector<obs::HistoSnapshot> lat_boundary(lat_on ? nph + 1 : 0);
  std::vector<obs::HistoSnapshot> lat_run_start(lat_on ? obs::kLatOpCount
                                                       : 0);
  auto lat_point_snapshot = [] {
    obs::HistoSnapshot s;
    for (int k = 0; k < obs::kPointOpCount; ++k) {
      s.merge(obs::latency_snapshot(static_cast<obs::LatOp>(k)));
    }
    return s;
  };
  if (lat_on) {
    for (int k = 0; k < obs::kLatOpCount; ++k) {
      lat_run_start[k] = obs::latency_snapshot(static_cast<obs::LatOp>(k));
    }
    for (int k = 0; k < obs::kPointOpCount; ++k) {
      lat_boundary[0].merge(lat_run_start[k]);
    }
  }
  if (obs::trace_on()) {
    obs::trace_event(obs::TraceKind::kScenarioBegin, obs::now_ns(), 0,
                     static_cast<uint32_t>(nph));
  }

  auto phase_end = t0;
  for (int p = 0; p < nph; ++p) {
    const PhaseSpec& ph = spec.phases[p];
    phase_end += std::chrono::milliseconds(ph.duration_ms);
    auto next_hot_move =
        Clock::now() + std::chrono::milliseconds(ph.keys.hot_move_every_ms);
    for (;;) {
      auto now = Clock::now();
      if (now >= phase_end) break;
      auto wake = phase_end;
      if (churn_on && next_churn < wake) wake = next_churn;
      if (stall_stage == StallStage::kPending && park_at < wake) wake = park_at;
      if (stall_stage == StallStage::kParked && resume_at < wake) {
        wake = resume_at;
      }
      if (kills_left > 0 && next_kill < wake) wake = next_kill;
      if (loss_armed && spec.faults.signal_loss_stop_after_ms > 0 &&
          loss_stop_at < wake) {
        wake = loss_stop_at;
      }
      if (ph.keys.hot_move_every_ms > 0 && next_hot_move < wake) {
        wake = next_hot_move;
      }
      std::this_thread::sleep_until(wake);
      now = Clock::now();

      if (loss_armed && spec.faults.signal_loss_stop_after_ms > 0 &&
          now >= loss_stop_at) {
        faults.disarm();  // restore signal delivery: recovery starts here
        loss_armed = false;
      }
      if (kills_left > 0 && now >= next_kill) {
        // Kill one worker mid-operation (round-robin over live slots,
        // never the stall victim — it cannot observe flags while asleep).
        int slot = -1;
        for (int probe = 0; probe < max_threads; ++probe) {
          const int cand = (kill_rr + probe) % max_threads;
          if (stall_on && cand == spec.stall.victim) continue;
          if (slot_dead[cand]) continue;
          slot = cand;
          break;
        }
        if (slot >= 0) {
          kill_rr = (slot + 1) % max_threads;
          if (res.kills == 0) {
            kill_baseline = unreclaimed_now(*set);
            res.first_kill_at_ms = ms_since(t0);
          }
          ctrl[slot]->die.store(true, std::memory_order_release);
          workers[slot].join();  // the corpse's SMR state is now frozen
          ctrl[slot]->die.store(false, std::memory_order_relaxed);
          if (spec.faults.respawn) {
            ctrl[slot]->tid.store(-1, std::memory_order_relaxed);
            workers[slot] = std::thread(worker_body, slot,
                                        ++generation[slot]);
          } else {
            slot_dead[slot] = true;
          }
          ++res.kills;
        }
        --kills_left;
        next_kill += std::chrono::milliseconds(
            spec.faults.kill_every_ms > 0 ? spec.faults.kill_every_ms : 1);
      }

      if (stall_stage == StallStage::kPending && now >= park_at) {
        res.baseline_unreclaimed = unreclaimed_now(*set);
        res.stall_parked_at_ms = ms_since(t0);
        ctrl[spec.stall.victim]->park.store(true, std::memory_order_release);
        stall_stage = StallStage::kParked;
      }
      if (stall_stage == StallStage::kParked && now >= resume_at) {
        // Probe the peak just before releasing: the sampler may be off
        // (or slower than the stall window).
        res.stall_peak_unreclaimed = unreclaimed_now(*set);
        res.stall_resumed_at_ms = ms_since(t0);
        park_release.store(true, std::memory_order_release);
        stall_stage = StallStage::kDone;
      }
      if (churn_on && now >= next_churn) {
        // Retire one worker (skipping a parked/parking victim: it cannot
        // observe exit flags while asleep) and respawn its slot; the old
        // thread's exit deregisters its tid, the replacement re-registers
        // and typically recycles the same slot with a bumped epoch.
        int slot = -1;
        for (int probe = 0; probe < max_threads; ++probe) {
          const int cand = (churn_rr + probe) % max_threads;
          if (stall_on && cand == spec.stall.victim) continue;
          if (slot_dead[cand]) continue;  // killed without respawn
          slot = cand;
          break;
        }
        if (slot >= 0) {
          churn_rr = (slot + 1) % max_threads;
          ctrl[slot]->exit_now.store(true, std::memory_order_release);
          workers[slot].join();  // TLS dtor has deregistered its tid here
          ctrl[slot]->exit_now.store(false, std::memory_order_relaxed);
          ctrl[slot]->tid.store(-1, std::memory_order_relaxed);
          workers[slot] = std::thread(worker_body, slot, ++generation[slot]);
          ++res.churn_cycles;
        }
        next_churn += std::chrono::milliseconds(spec.churn.interval_ms);
      }
      if (ph.keys.hot_move_every_ms > 0 && now >= next_hot_move) {
        hot_window.fetch_add(1, std::memory_order_relaxed);
        next_hot_move +=
            std::chrono::milliseconds(ph.keys.hot_move_every_ms);
      }
    }
    boundary[p + 1] = set->smr_stats();  // racy-but-benign: reporting only
    if (lat_on) lat_boundary[p + 1] = lat_point_snapshot();
    boundary_t[p + 1] = Clock::now();
    phase_idx.store(p + 1, std::memory_order_release);
  }

  // A stall window reaching past the end of the schedule must not wedge
  // the join: release the victim unconditionally.
  if (stall_stage == StallStage::kParked) {
    res.stall_peak_unreclaimed = unreclaimed_now(*set);
    res.stall_resumed_at_ms = ms_since(t0);
  }
  park_release.store(true, std::memory_order_release);
  for (auto& t : workers) {
    if (t.joinable()) t.join();  // killed-without-respawn slots are done
  }
  const auto t_end = Clock::now();
  if (obs::trace_on()) {
    obs::trace_event(obs::TraceKind::kScenarioEnd, obs::now_ns(), 0, 0);
  }
  // End-of-run per-kind snapshots (workers quiesced: these are exact).
  std::vector<obs::HistoSnapshot> lat_run_end(lat_on ? obs::kLatOpCount : 0);
  if (lat_on) {
    for (int k = 0; k < obs::kLatOpCount; ++k) {
      lat_run_end[k] = obs::latency_snapshot(static_cast<obs::LatOp>(k));
    }
  }

  if (loss_on) {
    faults.disarm();
    res.signals_suppressed = faults.dropped() - dropped_before;
  }

  sampler_stop.store(true, std::memory_order_release);
  if (sampler.joinable()) sampler.join();

  // ---- aggregation --------------------------------------------------------
  res.phases.resize(nph);
  for (int p = 0; p < nph; ++p) {
    PhaseResult& pr = res.phases[p];
    const PhaseSpec& ph = spec.phases[p];
    pr.name = ph.name;
    pr.threads = ph.threads;
    pr.seconds =
        std::chrono::duration<double>(boundary_t[p + 1] - boundary_t[p])
            .count();
    for (int s = 0; s < max_threads; ++s) {
      pr.accumulate(*counts[static_cast<size_t>(s) * nph + p]);
    }
    if (pr.seconds > 0) {
      pr.mops = static_cast<double>(pr.ops) / pr.seconds / 1e6;
      pr.read_mops = static_cast<double>(pr.reads) / pr.seconds / 1e6;
    }
    pr.smr_delta = snapshot_delta(boundary[p], boundary[p + 1]);
    pr.unreclaimed_end = boundary[p + 1].unreclaimed();
    if (lat_on) {
      pr.latency = obs::summarize(lat_boundary[p + 1].diff(lat_boundary[p]));
    }
    if (hw_en) {
      for (int s = 0; s < max_threads; ++s) {
        pr.hw.accumulate(*hw_cells[static_cast<size_t>(s) * nph + p]);
      }
      res.hw.accumulate(pr.hw);
    }
    res.accumulate(pr);
  }
  res.obs_hw_on = hw_en;
  if (lat_on) {
    res.obs_latency_on = true;
    obs::HistoSnapshot all_points;
    for (int k = 0; k < obs::kLatOpCount; ++k) {
      obs::HistoSnapshot d = lat_run_end[k].diff(lat_run_start[k]);
      if (k < obs::kPointOpCount) all_points.merge(d);
      if (d.total > 0) {
        res.latency.push_back({obs::lat_op_name(static_cast<obs::LatOp>(k)),
                               obs::summarize(d)});
      }
    }
    res.latency_all = obs::summarize(all_points);
    if (!lat_prev) obs::set_latency(false);  // restore the global switch
  }
  res.seconds = std::chrono::duration<double>(t_end - t0).count();
  if (res.seconds > 0) {
    res.mops = static_cast<double>(res.ops) / res.seconds / 1e6;
    res.read_mops = static_cast<double>(res.reads) / res.seconds / 1e6;
  }
  res.smr = set->smr_stats();
  {
    const ds::ResizeStats rs = set->resize_stats();
    res.grows = rs.grows;
    res.shrinks = rs.shrinks;
    res.buckets_final = rs.buckets;
  }
  if (sharded != nullptr) res.service = sharded->service_stats();
  res.vm_hwm_kib = runtime::vm_hwm_kib();
  res.final_size = set->size_slow();
  res.final_unreclaimed = res.smr.unreclaimed();
  res.samples = std::move(samples);
  for (const auto& m : res.samples) {
    if (m.victim_parked && m.unreclaimed() > res.stall_peak_unreclaimed) {
      res.stall_peak_unreclaimed = m.unreclaimed();
    }
  }
  // Post-kill recovery point: the first sampled time after the first kill
  // at which unreclaimed fell back to the pre-kill level (the reaper
  // adopted + swept the orphaned backlog).
  if (res.kills > 0) {
    for (const auto& m : res.samples) {
      if (m.t_ms <= res.first_kill_at_ms) continue;
      if (m.unreclaimed() <= kill_baseline) {
        res.recovered_at_ms = m.t_ms;
        break;
      }
    }
  }
  res.audit_on = smr::audit::on();
  res.audit_violations = smr::audit::violations() - audit_before;
  return res;
}

}  // namespace pop::workload
