// Scenario engine vocabulary: a ScenarioSpec composes a benchmark run
// from four orthogonal axes —
//
//   * key distribution   (uniform | Zipfian | [moving] hotspot, per phase)
//   * phase schedule     (timed phases changing op mix / thread count)
//   * thread lifecycle   (static pool, or churn: workers exit and fresh
//                         threads re-register mid-run, recycling registry
//                         tids under in-flight ping waves)
//   * fault injection    (a stall injector that parks a victim worker
//                         inside an SMR operation, pinning whatever its
//                         scheme publishes at op entry)
//
// plus a background memory-timeline sampler, so robustness shows up as a
// plotted trajectory (unreclaimed nodes / RSS over time) instead of one
// end-of-run number. `run_scenario` executes a spec; `normalize`
// validates and clamps it first. The legacy bench driver's run_workload
// is a one-phase wrapper over this engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/hw_counters.hpp"
#include "obs/latency_histo.hpp"
#include "service/service_stats.hpp"
#include "smr/smr_config.hpp"
#include "workload/op_mix.hpp"

namespace pop::workload {

enum class KeyDist { kUniform, kZipfian, kHotspot };

struct KeyDistSpec {
  KeyDist kind = KeyDist::kUniform;
  // Zipfian skew (theta = 0 is uniform; YCSB's default is 0.99).
  double zipf_theta = 0.99;
  // Hotspot: `hot_fraction` of the key range receives `hot_op_pct`% of
  // the operations; a nonzero move interval slides the window while the
  // phase runs (workers pick it up via a shared window counter).
  double hot_fraction = 0.10;
  uint32_t hot_op_pct = 90;
  uint64_t hot_move_every_ms = 0;
};

// The op mix (pct_insert / pct_erase / pct_put, remainder get) is the
// shared OpMix base — the same struct the bench driver's WorkloadConfig
// embeds.
struct PhaseSpec : OpMix {
  std::string name = "main";
  uint64_t duration_ms = 100;
  // Read-your-writes validation mode: workers confine themselves to
  // worker-private key stripes (key % active_threads == slot) and check
  // after every put/remove that an immediate get returns exactly the
  // value just written (or a miss after remove); a mismatch counts into
  // OpCounts::rw_violations. Turns the phase into a per-key
  // linearizability checker for the put-replace retire path.
  bool read_your_writes = false;
  // Active worker count this phase; 0 inherits ScenarioSpec::threads.
  // Slots beyond the active count idle (they stay registered but run no
  // operations), so a burst phase can oversubscribe and a drain phase can
  // quiesce without tearing the pool down.
  int threads = 0;
  KeyDistSpec keys;
  // Figure-4 mode: the first half of the active workers only run
  // contains() over the full range; the rest update [0, writer_key_range)
  // 50/50. pct_insert/pct_erase and `keys` are ignored when set (the
  // roles fix both the mix and the distribution; normalize() warns).
  bool split_readers_writers = false;
  uint64_t writer_key_range = 64;
};

struct ChurnSpec {
  bool enabled = false;
  // Every interval one worker exits (deregistering its tid) and a fresh
  // thread is spawned into its slot, re-registering — the recycled-tid
  // path reclaimers' ping waves must survive.
  uint64_t interval_ms = 25;
};

struct StallSpec {
  bool enabled = false;
  int victim = 0;              // worker slot to park
  uint64_t park_after_ms = 0;  // measured from the start of phase 0
  uint64_t park_for_ms = 50;
};

// Crash-fault injectors (the failure modes the zombie reaper, handshake
// watchdog, and pressure backstop exist to absorb). Orthogonal to the
// stall injector: a run can combine a parked victim with lost signals —
// the cell where a POP reclaimer's ping wave genuinely cannot complete.
struct FaultSpec {
  // Signal loss: pings are silently dropped (pthread_kill skipped; the
  // sender still counts the target as signalled — it cannot tell). The
  // victim defaults to the stall victim's registry tid when the stall
  // injector is on, else any target.
  bool signal_loss = false;
  int signal_loss_pct = 100;           // drop probability per ping
  uint64_t signal_loss_stop_after_ms = 0;  // restore delivery at T; 0 = never
  // Thread kill: starting at kill_after_ms, a worker opens an SMR
  // operation bracket and exits WITHOUT closing it or detaching, then
  // (kill_every_ms > 0) another every interval, up to `kills` victims.
  bool thread_kill = false;
  uint64_t kill_after_ms = 10;  // from phase-0 start
  uint64_t kill_every_ms = 0;   // 0 = single kill
  int kills = 1;                // total victims
  // Leak the registry slot too (skip the TLS deregister): the corpse
  // stays *registered* and only the reaper's tgkill certification can
  // reclaim the tid — the hard zombie, vs. the default departed-worker.
  bool kill_zombie = false;
  bool respawn = true;  // spawn a fresh worker into the killed slot
};

// Observability toggles, OR-ed with the process-wide env/CLI channels
// (POPSMR_OBS_LATENCY / POPSMR_OBS_HW): a spec can force latency
// recording or per-phase hardware counters for one run without touching
// the environment. Tracing is armed process-wide (POPSMR_TRACE /
// obs::arm_trace) and needs no spec field — the engine only marks run
// boundaries in the trace when a ring is armed.
struct ObsSpec {
  bool latency = false;
  bool hw = false;
};

struct ScenarioSpec {
  std::string name = "custom";
  std::string ds = "HML";
  std::string smr = "NR";
  int threads = 2;
  // Service-layer shard axis: > 1 runs the workload against a ShardedMap
  // of that many independent (ds, smr) shards — one SMR domain per shard
  // — instead of one monolithic set. 1 = plain set, zero routing cost.
  int shards = 1;
  // Shard-selection hash: "splitmix" (scatter, the default) or "modulo"
  // (key % shards: contiguous-range locality).
  std::string shard_hash = "splitmix";
  uint64_t key_range = 2048;
  // Keys prefilled before phase 0 (default: key_range / 2).
  uint64_t prefill = UINT64_MAX;
  double load_factor = 6.0;  // hash table only
  // Resize axis: the capacity the structure is *provisioned* for, when
  // different from key_range (0 = provision for key_range, the legacy
  // behaviour). Under-provisioning a resizable table (initial_capacity
  // << key_range) forces a grow storm; a fixed HMHT just runs with long
  // buckets. The deficit key_range / initial_capacity is what
  // bench_resize sweeps.
  uint64_t initial_capacity = 0;
  smr::SmrConfig smr_cfg;
  std::vector<PhaseSpec> phases;  // empty => one default phase
  ChurnSpec churn;
  StallSpec stall;
  FaultSpec faults;
  // Background sampler cadence; 0 disables the timeline.
  uint64_t mem_sample_every_ms = 0;
  ObsSpec obs;
};

// Validates and clamps `spec` in place: fills defaulted fields (empty
// phase list, inherited per-phase thread counts), clamps out-of-range
// values (prefill > key_range, pct_insert + pct_erase > 100, thread
// counts beyond the registry, degenerate distribution parameters) and
// returns one human-readable message per adjustment. run_scenario calls
// this itself and prints the messages to stderr; callers that want to
// *reject* bad specs instead can call it first and treat a non-empty
// result as an error.
std::vector<std::string> normalize(ScenarioSpec& spec);

// One point on the memory timeline, taken by the background sampler.
// Counter reads are racy-but-benign (SWMR u64 cells, torn values are off
// by at most one op) — the timeline is for plotting, not accounting.
struct MemSample {
  uint64_t t_ms = 0;  // since phase 0 started
  int phase = 0;
  uint64_t vm_rss_kib = 0;
  uint64_t vm_hwm_kib = 0;
  uint64_t retired = 0;
  uint64_t freed = 0;  // unreclaimed = retired - freed
  uint64_t pool_allocated = 0;
  uint64_t pool_freed = 0;
  bool victim_parked = false;
  // Saturating: a torn mid-run snapshot can catch a batched sweep between
  // its retired and freed reads and see freed > retired momentarily.
  uint64_t unreclaimed() const { return freed > retired ? 0 : retired - freed; }
};

// Per-op counters (ops/reads/updates plus the KV breakdown) come from
// the shared OpCounts base.
struct PhaseResult : OpCounts {
  std::string name;
  int threads = 0;
  double seconds = 0;
  double mops = 0;
  double read_mops = 0;
  // Scheme counters accrued during this phase (end minus start snapshot;
  // max_retire_len is the end-of-phase high-watermark, not a delta).
  smr::StatsSnapshot smr_delta;
  uint64_t unreclaimed_end = 0;
  // Point-op latency over this phase (all op kinds merged; count == 0
  // when the latency channel was off) and the phase's hardware-counter
  // deltas summed across workers (hw.valid == false when the kernel
  // refused perf_event_open — the CI-container case).
  obs::LatencySummary latency;
  obs::HwSample hw;
};

// Whole-run aggregates; the OpCounts base replaces the old
// ops_total/reads_total/updates_total trio (ops == the old ops_total).
struct ScenarioResult : OpCounts {
  std::vector<PhaseResult> phases;
  std::vector<MemSample> samples;
  double mops = 0;
  double read_mops = 0;
  double seconds = 0;
  smr::StatsSnapshot smr;
  uint64_t vm_hwm_kib = 0;
  uint64_t final_size = 0;
  // Thread-lifecycle accounting.
  uint64_t churn_cycles = 0;
  // Stall accounting (meaningful when the spec enabled the injector):
  // unreclaimed just before the victim parked, the maximum observed while
  // it slept, and the value after the run drained.
  uint64_t baseline_unreclaimed = 0;
  uint64_t stall_peak_unreclaimed = 0;
  uint64_t final_unreclaimed = 0;
  uint64_t stall_parked_at_ms = 0;
  uint64_t stall_resumed_at_ms = 0;
  // Crash-fault accounting (meaningful when spec.faults enabled one):
  // workers killed mid-operation, pings suppressed by the loss injector,
  // and the first post-kill timestamp at which unreclaimed dropped back
  // to (or below) its pre-kill baseline (0 = never observed recovering —
  // only meaningful when the mem sampler ran).
  uint64_t kills = 0;
  uint64_t signals_suppressed = 0;
  uint64_t first_kill_at_ms = 0;
  uint64_t recovered_at_ms = 0;
  // Resize accounting (RHHT cells; zero-filled for fixed structures
  // except buckets_final, which reports a fixed table's static shape).
  uint64_t grows = 0;
  uint64_t shrinks = 0;
  uint64_t buckets_final = 0;
  uint64_t resizes() const { return grows + shrinks; }
  // Per-shard breakdown when the spec ran sharded (shards > 1); empty
  // otherwise. service.smr matches the `smr` roll-up above.
  service::ServiceStats service;
  std::vector<std::string> warnings;  // what normalize() adjusted
  // Observability roll-up (tentpole PR 8). `latency` has one entry per
  // op/reclamation kind that recorded at least one sample ("get", "put",
  // "insert", "remove", "ping_wave", "sweep", "reap"); `latency_all`
  // merges the point ops. Empty / zero when the latency channel was off
  // (obs_latency_on says which). `hw` is the whole-run counter roll-up.
  struct OpLatency {
    std::string op;
    obs::LatencySummary lat;
  };
  std::vector<OpLatency> latency;
  obs::LatencySummary latency_all;
  obs::HwSample hw;
  bool obs_latency_on = false;
  bool obs_hw_on = false;
  // Contract-sanitizer roll-up: violations reported by smr::audit during
  // this run (delta, not process-lifetime total). Always 0 in a green
  // run; audit_on records whether the sanitizer was armed at all, so a 0
  // can be read as "checked and clean" vs "not checked".
  uint64_t audit_violations = 0;
  bool audit_on = false;
};

// The engine itself — ScenarioResult run_scenario(const ScenarioSpec&) —
// lives in scenario_engine.hpp.

}  // namespace pop::workload
