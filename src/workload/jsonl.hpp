// JSON Lines emission for scenario runs: one "scenario" summary row, one
// "phase" row per phase, one "mem_sample" row per timeline point, all
// appended to the same file the figure binaries write their per-cell rows
// to (POPSMR_BENCH_JSON) — a `kind` field keeps the streams separable.
// Values are numbers and [A-Za-z0-9_-] identifiers only, so no string
// escaping is needed.
//
// Every row leads with the same stamp: `run_id` (process-wide, wall-clock
// ns at first use — monotonic across successive runs) and `ts` (per-row
// wall-clock ms), so concatenated multi-run CI artifacts stay
// disambiguable. Scenario/phase/kv/fault rows additionally carry the
// latency percentile columns (zero-filled when the latency channel was
// off) and the hardware-counter columns (hw_valid=0 when perf_event_open
// was refused); kind-tagged "latency" rows break the percentiles out per
// op when the channel recorded anything.
#pragma once

#include <cstdio>
#include <string>

#include "obs/obs.hpp"
#include "workload/scenario.hpp"

namespace pop::workload {

// Opens a row: kind tag plus the run_id/ts stamp, trailing comma.
inline void begin_row(std::FILE* f, const char* kind) {
  std::fprintf(f, "{\"kind\":\"%s\",\"run_id\":%llu,\"ts\":%llu,", kind,
               static_cast<unsigned long long>(obs::run_id()),
               static_cast<unsigned long long>(obs::wall_ts_ms()));
}

// The lat_* column block (trailing comma). All zeros when the channel was
// off — the columns are always present so downstream tooling never
// branches on schema.
inline void emit_latency_fields(std::FILE* f, const obs::LatencySummary& s) {
  std::fprintf(
      f,
      "\"lat_ops\":%llu,\"lat_p50_us\":%.3f,\"lat_p90_us\":%.3f,"
      "\"lat_p99_us\":%.3f,\"lat_p999_us\":%.3f,\"lat_max_us\":%.3f,",
      static_cast<unsigned long long>(s.count), s.p50_us, s.p90_us, s.p99_us,
      s.p999_us, s.max_us);
}

// The hardware-counter column block (trailing comma). llc_miss_rate is
// LLC misses per kilo-instruction.
inline void emit_hw_fields(std::FILE* f, const obs::HwSample& hw) {
  std::fprintf(f, "\"ipc\":%.4f,\"llc_miss_rate\":%.4f,\"hw_valid\":%d,",
               hw.ipc(), hw.llc_miss_rate(), hw.valid ? 1 : 0);
}

// One "latency" row per op/reclamation kind that recorded samples
// (get/put/insert/remove/ping_wave/sweep/reap): the per-kind percentile
// breakdown the scenario row's merged lat_* columns cannot show.
inline void emit_latency_rows(std::FILE* f, const ScenarioSpec& spec,
                              const ScenarioResult& r) {
  for (const auto& L : r.latency) {
    begin_row(f, "latency");
    std::fprintf(
        f,
        "\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\",\"threads\":%d,"
        "\"shards\":%d,\"op\":\"%s\",\"count\":%llu,\"p50_us\":%.3f,"
        "\"p90_us\":%.3f,\"p99_us\":%.3f,\"p999_us\":%.3f,"
        "\"max_us\":%.3f}\n",
        spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
        spec.shards, L.op.c_str(),
        static_cast<unsigned long long>(L.lat.count), L.lat.p50_us,
        L.lat.p90_us, L.lat.p99_us, L.lat.p999_us, L.lat.max_us);
  }
}

// One "shard" row per shard of a sharded run (no-op for monolithic runs,
// whose ServiceStats stays empty): the per-shard routed-op count and
// domain counters that make a hot shard visible in the artifact — now
// including the fault-recovery counters (waves_timed_out, tids_reaped,
// pressure_events, forced_handshakes), which previously existed only on
// the monolithic roll-up and under-reported sharded fault runs.
inline void emit_shard_rows(std::FILE* f, const ScenarioSpec& spec,
                            const ScenarioResult& r) {
  for (const auto& s : r.service.shards) {
    begin_row(f, "shard");
    std::fprintf(
        f,
        "\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"shard\":%d,"
        "\"ops\":%llu,\"retired\":%llu,\"freed\":%llu,"
        "\"unreclaimed\":%llu,\"signals_sent\":%llu,\"get_hits\":%llu,"
        "\"get_misses\":%llu,\"put_inserts\":%llu,\"put_replaces\":%llu,"
        "\"resizes\":%llu,\"buckets_final\":%llu,"
        "\"waves_timed_out\":%llu,\"tids_reaped\":%llu,"
        "\"pressure_events\":%llu,\"forced_handshakes\":%llu}\n",
        spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
        spec.shards, s.shard, static_cast<unsigned long long>(s.ops),
        static_cast<unsigned long long>(s.smr.retired),
        static_cast<unsigned long long>(s.smr.freed),
        static_cast<unsigned long long>(s.smr.unreclaimed()),
        static_cast<unsigned long long>(s.smr.signals_sent),
        static_cast<unsigned long long>(s.get_hits),
        static_cast<unsigned long long>(s.get_misses),
        static_cast<unsigned long long>(s.put_inserts),
        static_cast<unsigned long long>(s.put_replaces),
        static_cast<unsigned long long>(s.resizes),
        static_cast<unsigned long long>(s.buckets_final),
        static_cast<unsigned long long>(s.smr.waves_timed_out),
        static_cast<unsigned long long>(s.smr.tids_reaped),
        static_cast<unsigned long long>(s.smr.pressure_events),
        static_cast<unsigned long long>(s.smr.forced_handshakes));
  }
}

// Contract-sanitizer column, emitted only when the auditor was armed for
// the run: a green row then carries an explicit 0 ("checked and clean"),
// while unaudited runs omit the column entirely rather than writing a 0
// that would be indistinguishable from a clean audited run.
inline void emit_audit_fields(std::FILE* f, const ScenarioResult& r) {
  if (!r.audit_on) return;
  std::fprintf(f, "\"audit_violations\":%llu,",
               static_cast<unsigned long long>(r.audit_violations));
}

inline void emit_scenario_jsonl(const std::string& path,
                                const ScenarioSpec& spec,
                                const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  const char* nm = spec.name.c_str();
  const char* ds = spec.ds.c_str();
  const char* smr = spec.smr.c_str();

  begin_row(f, "scenario");
  emit_audit_fields(f, r);
  emit_latency_fields(f, r.latency_all);
  emit_hw_fields(f, r.hw);
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"seconds\":%.6f,"
      "\"mops\":%.6f,"
      "\"read_mops\":%.6f,\"retired\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu,\"vm_hwm_kib\":%llu,\"churn_cycles\":%llu,"
      "\"baseline_unreclaimed\":%llu,\"stall_peak_unreclaimed\":%llu,"
      "\"final_unreclaimed\":%llu,\"stall_parked_at_ms\":%llu,"
      "\"stall_resumed_at_ms\":%llu,\"grows\":%llu,\"shrinks\":%llu,"
      "\"buckets_final\":%llu,\"gets\":%llu,\"get_hits\":%llu,"
      "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,"
      "\"put_replaced\":%llu,\"rw_violations\":%llu}\n",
      nm, ds, smr, spec.threads, spec.shards, r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.churn_cycles),
      static_cast<unsigned long long>(r.baseline_unreclaimed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.stall_parked_at_ms),
      static_cast<unsigned long long>(r.stall_resumed_at_ms),
      static_cast<unsigned long long>(r.grows),
      static_cast<unsigned long long>(r.shrinks),
      static_cast<unsigned long long>(r.buckets_final),
      static_cast<unsigned long long>(r.gets),
      static_cast<unsigned long long>(r.get_hits),
      static_cast<unsigned long long>(r.inserts),
      static_cast<unsigned long long>(r.erases),
      static_cast<unsigned long long>(r.puts),
      static_cast<unsigned long long>(r.put_replaced),
      static_cast<unsigned long long>(r.rw_violations));

  for (size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseResult& p = r.phases[i];
    begin_row(f, "phase");
    emit_latency_fields(f, p.latency);
    emit_hw_fields(f, p.hw);
    std::fprintf(
        f,
        "\"cycles\":%llu,\"instructions\":%llu,\"llc_misses\":%llu,"
        "\"ctx_switches\":%llu,"
        "\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"phase\":\"%s\",\"idx\":%zu,\"threads\":%d,"
        "\"seconds\":%.6f,\"mops\":%.6f,\"read_mops\":%.6f,"
        "\"retired\":%llu,\"freed\":%llu,\"signals_sent\":%llu,"
        "\"pings\":%llu,\"neutralized\":%llu,\"max_retire_len\":%llu,"
        "\"unreclaimed_end\":%llu,\"gets\":%llu,\"get_hits\":%llu,"
        "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,"
        "\"put_replaced\":%llu,\"rw_violations\":%llu}\n",
        static_cast<unsigned long long>(p.hw.cycles),
        static_cast<unsigned long long>(p.hw.instructions),
        static_cast<unsigned long long>(p.hw.llc_misses),
        static_cast<unsigned long long>(p.hw.ctx_switches),
        nm, ds, smr, p.name.c_str(), i, p.threads, p.seconds, p.mops,
        p.read_mops, static_cast<unsigned long long>(p.smr_delta.retired),
        static_cast<unsigned long long>(p.smr_delta.freed),
        static_cast<unsigned long long>(p.smr_delta.signals_sent),
        static_cast<unsigned long long>(p.smr_delta.pings_received),
        static_cast<unsigned long long>(p.smr_delta.neutralized),
        static_cast<unsigned long long>(p.smr_delta.max_retire_len),
        static_cast<unsigned long long>(p.unreclaimed_end),
        static_cast<unsigned long long>(p.gets),
        static_cast<unsigned long long>(p.get_hits),
        static_cast<unsigned long long>(p.inserts),
        static_cast<unsigned long long>(p.erases),
        static_cast<unsigned long long>(p.puts),
        static_cast<unsigned long long>(p.put_replaced),
        static_cast<unsigned long long>(p.rw_violations));
  }

  for (const MemSample& m : r.samples) {
    begin_row(f, "mem_sample");
    std::fprintf(
        f,
        "\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"t_ms\":%llu,\"phase\":%d,\"vm_rss_kib\":%llu,"
        "\"vm_hwm_kib\":%llu,\"unreclaimed\":%llu,\"pool_live_blocks\":%llu,"
        "\"victim_parked\":%d}\n",
        nm, ds, smr, static_cast<unsigned long long>(m.t_ms), m.phase,
        static_cast<unsigned long long>(m.vm_rss_kib),
        static_cast<unsigned long long>(m.vm_hwm_kib),
        static_cast<unsigned long long>(m.unreclaimed()),
        static_cast<unsigned long long>(
            m.pool_freed > m.pool_allocated ? 0
                                            : m.pool_allocated - m.pool_freed),
        m.victim_parked ? 1 : 0);
  }

  emit_latency_rows(f, spec, r);
  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

// One "kv" summary row per bench_kv cell: the cell identity (including
// the put ratio being swept), throughput, the per-op outcome breakdown,
// and the leak-balance signals (final_unreclaimed; per-shard rows follow
// when the cell ran sharded).
inline void emit_kv_jsonl(const std::string& path, const ScenarioSpec& spec,
                          uint32_t pct_put, const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  begin_row(f, "kv");
  emit_latency_fields(f, r.latency_all);
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\","
      "\"threads\":%d,\"shards\":%d,\"pct_put\":%u,\"seconds\":%.6f,"
      "\"mops\":%.6f,\"read_mops\":%.6f,\"gets\":%llu,\"get_hits\":%llu,"
      "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,\"put_replaced\":%llu,"
      "\"rw_violations\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu,\"final_unreclaimed\":%llu,"
      "\"vm_hwm_kib\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      spec.shards, pct_put, r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.gets),
      static_cast<unsigned long long>(r.get_hits),
      static_cast<unsigned long long>(r.inserts),
      static_cast<unsigned long long>(r.erases),
      static_cast<unsigned long long>(r.puts),
      static_cast<unsigned long long>(r.put_replaced),
      static_cast<unsigned long long>(r.rw_violations),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.vm_hwm_kib));
  emit_latency_rows(f, spec, r);
  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

/// One "resize" row per bench_resize cell: the provisioning deficit being
// swept (key_range / initial_capacity), the resize activity it forced,
// and the grow-storm vs post-storm steady throughput split. recovery_pct
// is steady throughput as a percentage of the correctly-provisioned
// fixed-table reference in the same (smr, threads) cell — the acceptance
// signal that an under-provisioned resizable table grows its way back.
inline void emit_resize_jsonl(const std::string& path,
                              const ScenarioSpec& spec, uint64_t deficit,
                              double storm_mops, double steady_mops,
                              double recovery_pct, const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  begin_row(f, "resize");
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"deficit\":%llu,"
      "\"initial_capacity\":%llu,\"key_range\":%llu,\"seconds\":%.6f,"
      "\"mops\":%.6f,\"storm_mops\":%.6f,\"steady_mops\":%.6f,"
      "\"recovery_pct\":%.2f,\"grows\":%llu,\"shrinks\":%llu,"
      "\"buckets_final\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"final_unreclaimed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      static_cast<unsigned long long>(deficit),
      static_cast<unsigned long long>(
          spec.initial_capacity > 0 ? spec.initial_capacity : spec.key_range),
      static_cast<unsigned long long>(spec.key_range), r.seconds, r.mops,
      storm_mops, steady_mops, recovery_pct,
      static_cast<unsigned long long>(r.grows),
      static_cast<unsigned long long>(r.shrinks),
      static_cast<unsigned long long>(r.buckets_final),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.final_unreclaimed));
  std::fclose(f);
}

// One "fault" row per bench_faults cell: the fault being injected (the
// `fault` axis), the blast radius (kills / suppressed signals), what the
// recovery machinery did about it (waves timed out, tids reaped, orphans
// adopted), and the memory trajectory around the fault window. recovered
// == 0 means the timeline never dropped back to the pre-fault baseline —
// the signal a reviewer greps for.
inline void emit_fault_jsonl(const std::string& path, const ScenarioSpec& spec,
                             const std::string& fault,
                             const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  begin_row(f, "fault");
  emit_audit_fields(f, r);
  emit_latency_fields(f, r.latency_all);
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\","
      "\"threads\":%d,\"fault\":\"%s\",\"seconds\":%.6f,\"mops\":%.6f,"
      "\"kills\":%llu,\"signals_suppressed\":%llu,\"first_kill_at_ms\":%llu,"
      "\"recovered_at_ms\":%llu,\"waves_timed_out\":%llu,"
      "\"tids_reaped\":%llu,\"orphans_adopted\":%llu,"
      "\"pressure_events\":%llu,\"forced_handshakes\":%llu,"
      "\"signals_sent\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"peak_unreclaimed\":%llu,\"final_unreclaimed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      fault.c_str(), r.seconds, r.mops,
      static_cast<unsigned long long>(r.kills),
      static_cast<unsigned long long>(r.signals_suppressed),
      static_cast<unsigned long long>(r.first_kill_at_ms),
      static_cast<unsigned long long>(r.recovered_at_ms),
      static_cast<unsigned long long>(r.smr.waves_timed_out),
      static_cast<unsigned long long>(r.smr.tids_reaped),
      static_cast<unsigned long long>(r.smr.orphans_adopted),
      static_cast<unsigned long long>(r.smr.pressure_events),
      static_cast<unsigned long long>(r.smr.forced_handshakes),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed));
  emit_latency_rows(f, spec, r);
  std::fclose(f);
}

// One "pressure" row per backstop cell: the configured bound, how often
// unreclaimed crossed it (pressure_events) vs how many handshake passes
// the backstop actually forced, and the bound-vs-peak trajectory showing
// graceful degradation (peak may exceed the bound while a reservation
// pins memory; the backstop defers and warns, it never blocks).
inline void emit_pressure_jsonl(const std::string& path,
                                const ScenarioSpec& spec,
                                const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  begin_row(f, "pressure");
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"pressure_bound\":%llu,"
      "\"pressure_events\":%llu,\"forced_handshakes\":%llu,"
      "\"baseline_unreclaimed\":%llu,\"peak_unreclaimed\":%llu,"
      "\"final_unreclaimed\":%llu,\"stall_parked_at_ms\":%llu,"
      "\"stall_resumed_at_ms\":%llu,\"retired\":%llu,\"freed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      static_cast<unsigned long long>(spec.smr_cfg.pressure_bound),
      static_cast<unsigned long long>(r.smr.pressure_events),
      static_cast<unsigned long long>(r.smr.forced_handshakes),
      static_cast<unsigned long long>(r.baseline_unreclaimed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.stall_parked_at_ms),
      static_cast<unsigned long long>(r.stall_resumed_at_ms),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed));
  std::fclose(f);
}

// One "sharded" summary row per benchmark cell (bench_sharded's rail):
// the cell identity plus the aggregate throughput and the per-shard load
// spread, followed by the per-shard "shard" rows.
inline void emit_sharded_jsonl(const std::string& path,
                               const ScenarioSpec& spec,
                               const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  begin_row(f, "sharded");
  std::fprintf(
      f,
      "\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"shard_hash\":\"%s\","
      "\"seconds\":%.6f,\"mops\":%.6f,\"read_mops\":%.6f,\"retired\":%llu,"
      "\"freed\":%llu,\"signals_sent\":%llu,\"final_unreclaimed\":%llu,"
      "\"pool_live_blocks\":%llu,\"shard_ops_max\":%llu,"
      "\"shard_ops_min\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      spec.shards, spec.shard_hash.c_str(), r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.service.pool_live_blocks),
      static_cast<unsigned long long>(r.service.ops_max_shard()),
      static_cast<unsigned long long>(r.service.ops_min_shard()));
  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

}  // namespace pop::workload
