// JSON Lines emission for scenario runs: one "scenario" summary row, one
// "phase" row per phase, one "mem_sample" row per timeline point, all
// appended to the same file the figure binaries write their per-cell rows
// to (POPSMR_BENCH_JSON) — a `kind` field keeps the streams separable.
// Values are numbers and [A-Za-z0-9_-] identifiers only, so no string
// escaping is needed.
#pragma once

#include <cstdio>
#include <string>

#include "workload/scenario.hpp"

namespace pop::workload {

// One "shard" row per shard of a sharded run (no-op for monolithic runs,
// whose ServiceStats stays empty): the per-shard routed-op count and
// domain counters that make a hot shard visible in the artifact.
inline void emit_shard_rows(std::FILE* f, const ScenarioSpec& spec,
                            const ScenarioResult& r) {
  for (const auto& s : r.service.shards) {
    std::fprintf(
        f,
        "{\"kind\":\"shard\",\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"shard\":%d,"
        "\"ops\":%llu,\"retired\":%llu,\"freed\":%llu,"
        "\"unreclaimed\":%llu,\"signals_sent\":%llu,\"get_hits\":%llu,"
        "\"get_misses\":%llu,\"put_inserts\":%llu,\"put_replaces\":%llu,"
        "\"resizes\":%llu,\"buckets_final\":%llu}\n",
        spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
        spec.shards, s.shard, static_cast<unsigned long long>(s.ops),
        static_cast<unsigned long long>(s.smr.retired),
        static_cast<unsigned long long>(s.smr.freed),
        static_cast<unsigned long long>(s.smr.unreclaimed()),
        static_cast<unsigned long long>(s.smr.signals_sent),
        static_cast<unsigned long long>(s.get_hits),
        static_cast<unsigned long long>(s.get_misses),
        static_cast<unsigned long long>(s.put_inserts),
        static_cast<unsigned long long>(s.put_replaces),
        static_cast<unsigned long long>(s.resizes),
        static_cast<unsigned long long>(s.buckets_final));
  }
}

inline void emit_scenario_jsonl(const std::string& path,
                                const ScenarioSpec& spec,
                                const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  const char* nm = spec.name.c_str();
  const char* ds = spec.ds.c_str();
  const char* smr = spec.smr.c_str();

  std::fprintf(
      f,
      "{\"kind\":\"scenario\",\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"seconds\":%.6f,"
      "\"mops\":%.6f,"
      "\"read_mops\":%.6f,\"retired\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu,\"vm_hwm_kib\":%llu,\"churn_cycles\":%llu,"
      "\"baseline_unreclaimed\":%llu,\"stall_peak_unreclaimed\":%llu,"
      "\"final_unreclaimed\":%llu,\"stall_parked_at_ms\":%llu,"
      "\"stall_resumed_at_ms\":%llu,\"grows\":%llu,\"shrinks\":%llu,"
      "\"buckets_final\":%llu,\"gets\":%llu,\"get_hits\":%llu,"
      "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,"
      "\"put_replaced\":%llu,\"rw_violations\":%llu}\n",
      nm, ds, smr, spec.threads, spec.shards, r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.vm_hwm_kib),
      static_cast<unsigned long long>(r.churn_cycles),
      static_cast<unsigned long long>(r.baseline_unreclaimed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.stall_parked_at_ms),
      static_cast<unsigned long long>(r.stall_resumed_at_ms),
      static_cast<unsigned long long>(r.grows),
      static_cast<unsigned long long>(r.shrinks),
      static_cast<unsigned long long>(r.buckets_final),
      static_cast<unsigned long long>(r.gets),
      static_cast<unsigned long long>(r.get_hits),
      static_cast<unsigned long long>(r.inserts),
      static_cast<unsigned long long>(r.erases),
      static_cast<unsigned long long>(r.puts),
      static_cast<unsigned long long>(r.put_replaced),
      static_cast<unsigned long long>(r.rw_violations));

  for (size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseResult& p = r.phases[i];
    std::fprintf(
        f,
        "{\"kind\":\"phase\",\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"phase\":\"%s\",\"idx\":%zu,\"threads\":%d,"
        "\"seconds\":%.6f,\"mops\":%.6f,\"read_mops\":%.6f,"
        "\"retired\":%llu,\"freed\":%llu,\"signals_sent\":%llu,"
        "\"pings\":%llu,\"neutralized\":%llu,\"max_retire_len\":%llu,"
        "\"unreclaimed_end\":%llu,\"gets\":%llu,\"get_hits\":%llu,"
        "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,"
        "\"put_replaced\":%llu,\"rw_violations\":%llu}\n",
        nm, ds, smr, p.name.c_str(), i, p.threads, p.seconds, p.mops,
        p.read_mops, static_cast<unsigned long long>(p.smr_delta.retired),
        static_cast<unsigned long long>(p.smr_delta.freed),
        static_cast<unsigned long long>(p.smr_delta.signals_sent),
        static_cast<unsigned long long>(p.smr_delta.pings_received),
        static_cast<unsigned long long>(p.smr_delta.neutralized),
        static_cast<unsigned long long>(p.smr_delta.max_retire_len),
        static_cast<unsigned long long>(p.unreclaimed_end),
        static_cast<unsigned long long>(p.gets),
        static_cast<unsigned long long>(p.get_hits),
        static_cast<unsigned long long>(p.inserts),
        static_cast<unsigned long long>(p.erases),
        static_cast<unsigned long long>(p.puts),
        static_cast<unsigned long long>(p.put_replaced),
        static_cast<unsigned long long>(p.rw_violations));
  }

  for (const MemSample& m : r.samples) {
    std::fprintf(
        f,
        "{\"kind\":\"mem_sample\",\"scenario\":\"%s\",\"ds\":\"%s\","
        "\"smr\":\"%s\",\"t_ms\":%llu,\"phase\":%d,\"vm_rss_kib\":%llu,"
        "\"vm_hwm_kib\":%llu,\"unreclaimed\":%llu,\"pool_live_blocks\":%llu,"
        "\"victim_parked\":%d}\n",
        nm, ds, smr, static_cast<unsigned long long>(m.t_ms), m.phase,
        static_cast<unsigned long long>(m.vm_rss_kib),
        static_cast<unsigned long long>(m.vm_hwm_kib),
        static_cast<unsigned long long>(m.unreclaimed()),
        static_cast<unsigned long long>(
            m.pool_freed > m.pool_allocated ? 0
                                            : m.pool_allocated - m.pool_freed),
        m.victim_parked ? 1 : 0);
  }

  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

// One "kv" summary row per bench_kv cell: the cell identity (including
// the put ratio being swept), throughput, the per-op outcome breakdown,
// and the leak-balance signals (final_unreclaimed; per-shard rows follow
// when the cell ran sharded).
inline void emit_kv_jsonl(const std::string& path, const ScenarioSpec& spec,
                          uint32_t pct_put, const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"kind\":\"kv\",\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\","
      "\"threads\":%d,\"shards\":%d,\"pct_put\":%u,\"seconds\":%.6f,"
      "\"mops\":%.6f,\"read_mops\":%.6f,\"gets\":%llu,\"get_hits\":%llu,"
      "\"inserts\":%llu,\"erases\":%llu,\"puts\":%llu,\"put_replaced\":%llu,"
      "\"rw_violations\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"signals_sent\":%llu,\"final_unreclaimed\":%llu,"
      "\"vm_hwm_kib\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      spec.shards, pct_put, r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.gets),
      static_cast<unsigned long long>(r.get_hits),
      static_cast<unsigned long long>(r.inserts),
      static_cast<unsigned long long>(r.erases),
      static_cast<unsigned long long>(r.puts),
      static_cast<unsigned long long>(r.put_replaced),
      static_cast<unsigned long long>(r.rw_violations),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.vm_hwm_kib));
  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

/// One "resize" row per bench_resize cell: the provisioning deficit being
// swept (key_range / initial_capacity), the resize activity it forced,
// and the grow-storm vs post-storm steady throughput split. recovery_pct
// is steady throughput as a percentage of the correctly-provisioned
// fixed-table reference in the same (smr, threads) cell — the acceptance
// signal that an under-provisioned resizable table grows its way back.
inline void emit_resize_jsonl(const std::string& path,
                              const ScenarioSpec& spec, uint64_t deficit,
                              double storm_mops, double steady_mops,
                              double recovery_pct, const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"kind\":\"resize\",\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"deficit\":%llu,"
      "\"initial_capacity\":%llu,\"key_range\":%llu,\"seconds\":%.6f,"
      "\"mops\":%.6f,\"storm_mops\":%.6f,\"steady_mops\":%.6f,"
      "\"recovery_pct\":%.2f,\"grows\":%llu,\"shrinks\":%llu,"
      "\"buckets_final\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"final_unreclaimed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      static_cast<unsigned long long>(deficit),
      static_cast<unsigned long long>(
          spec.initial_capacity > 0 ? spec.initial_capacity : spec.key_range),
      static_cast<unsigned long long>(spec.key_range), r.seconds, r.mops,
      storm_mops, steady_mops, recovery_pct,
      static_cast<unsigned long long>(r.grows),
      static_cast<unsigned long long>(r.shrinks),
      static_cast<unsigned long long>(r.buckets_final),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.final_unreclaimed));
  std::fclose(f);
}

// One "fault" row per bench_faults cell: the fault being injected (the
// `fault` axis), the blast radius (kills / suppressed signals), what the
// recovery machinery did about it (waves timed out, tids reaped, orphans
// adopted), and the memory trajectory around the fault window. recovered
// == 0 means the timeline never dropped back to the pre-fault baseline —
// the signal a reviewer greps for.
inline void emit_fault_jsonl(const std::string& path, const ScenarioSpec& spec,
                             const std::string& fault,
                             const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"kind\":\"fault\",\"scenario\":\"%s\",\"ds\":\"%s\",\"smr\":\"%s\","
      "\"threads\":%d,\"fault\":\"%s\",\"seconds\":%.6f,\"mops\":%.6f,"
      "\"kills\":%llu,\"signals_suppressed\":%llu,\"first_kill_at_ms\":%llu,"
      "\"recovered_at_ms\":%llu,\"waves_timed_out\":%llu,"
      "\"tids_reaped\":%llu,\"orphans_adopted\":%llu,"
      "\"pressure_events\":%llu,\"forced_handshakes\":%llu,"
      "\"signals_sent\":%llu,\"retired\":%llu,\"freed\":%llu,"
      "\"peak_unreclaimed\":%llu,\"final_unreclaimed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      fault.c_str(), r.seconds, r.mops,
      static_cast<unsigned long long>(r.kills),
      static_cast<unsigned long long>(r.signals_suppressed),
      static_cast<unsigned long long>(r.first_kill_at_ms),
      static_cast<unsigned long long>(r.recovered_at_ms),
      static_cast<unsigned long long>(r.smr.waves_timed_out),
      static_cast<unsigned long long>(r.smr.tids_reaped),
      static_cast<unsigned long long>(r.smr.orphans_adopted),
      static_cast<unsigned long long>(r.smr.pressure_events),
      static_cast<unsigned long long>(r.smr.forced_handshakes),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed));
  std::fclose(f);
}

// One "pressure" row per backstop cell: the configured bound, how often
// unreclaimed crossed it (pressure_events) vs how many handshake passes
// the backstop actually forced, and the bound-vs-peak trajectory showing
// graceful degradation (peak may exceed the bound while a reservation
// pins memory; the backstop defers and warns, it never blocks).
inline void emit_pressure_jsonl(const std::string& path,
                                const ScenarioSpec& spec,
                                const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"kind\":\"pressure\",\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"pressure_bound\":%llu,"
      "\"pressure_events\":%llu,\"forced_handshakes\":%llu,"
      "\"baseline_unreclaimed\":%llu,\"peak_unreclaimed\":%llu,"
      "\"final_unreclaimed\":%llu,\"stall_parked_at_ms\":%llu,"
      "\"stall_resumed_at_ms\":%llu,\"retired\":%llu,\"freed\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      static_cast<unsigned long long>(spec.smr_cfg.pressure_bound),
      static_cast<unsigned long long>(r.smr.pressure_events),
      static_cast<unsigned long long>(r.smr.forced_handshakes),
      static_cast<unsigned long long>(r.baseline_unreclaimed),
      static_cast<unsigned long long>(r.stall_peak_unreclaimed),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.stall_parked_at_ms),
      static_cast<unsigned long long>(r.stall_resumed_at_ms),
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed));
  std::fclose(f);
}

// One "sharded" summary row per benchmark cell (bench_sharded's rail):
// the cell identity plus the aggregate throughput and the per-shard load
// spread, followed by the per-shard "shard" rows.
inline void emit_sharded_jsonl(const std::string& path,
                               const ScenarioSpec& spec,
                               const ScenarioResult& r) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"kind\":\"sharded\",\"scenario\":\"%s\",\"ds\":\"%s\","
      "\"smr\":\"%s\",\"threads\":%d,\"shards\":%d,\"shard_hash\":\"%s\","
      "\"seconds\":%.6f,\"mops\":%.6f,\"read_mops\":%.6f,\"retired\":%llu,"
      "\"freed\":%llu,\"signals_sent\":%llu,\"final_unreclaimed\":%llu,"
      "\"pool_live_blocks\":%llu,\"shard_ops_max\":%llu,"
      "\"shard_ops_min\":%llu}\n",
      spec.name.c_str(), spec.ds.c_str(), spec.smr.c_str(), spec.threads,
      spec.shards, spec.shard_hash.c_str(), r.seconds, r.mops, r.read_mops,
      static_cast<unsigned long long>(r.smr.retired),
      static_cast<unsigned long long>(r.smr.freed),
      static_cast<unsigned long long>(r.smr.signals_sent),
      static_cast<unsigned long long>(r.final_unreclaimed),
      static_cast<unsigned long long>(r.service.pool_live_blocks),
      static_cast<unsigned long long>(r.service.ops_max_shard()),
      static_cast<unsigned long long>(r.service.ops_min_shard()));
  emit_shard_rows(f, spec, r);
  std::fclose(f);
}

}  // namespace pop::workload
