// The one shared definition of the operation-mix and per-op-result
// vocabulary. Both the scenario engine (PhaseSpec / PhaseResult /
// ScenarioResult) and the legacy bench driver (WorkloadConfig /
// WorkloadResult) embed these — the driver used to carry its own copies
// of the same fields, and the two drifted.
#pragma once

#include <cstdint>

namespace pop::workload {

// Operation mix in percent; the remainder of a [0, 100) roll is get()
// (== contains for key-only callers). put is insert-or-replace: on an
// existing key it swaps in a fresh node and retires the displaced one,
// the KV-specific reclamation traffic class set-only mixes never create.
struct OpMix {
  uint32_t pct_insert = 25;
  uint32_t pct_erase = 25;
  uint32_t pct_put = 0;
};

// Per-op counters accumulated by a run (a phase, or a whole scenario).
// reads = gets; updates = inserts + erases + puts.
struct OpCounts {
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t gets = 0;
  uint64_t get_hits = 0;
  uint64_t inserts = 0;
  uint64_t erases = 0;
  uint64_t puts = 0;
  uint64_t put_replaced = 0;  // puts that displaced (and retired) a node
  // Read-your-writes violations observed by the validation mode (a get
  // on a worker-private key returning anything but the worker's latest
  // completed write). Always 0 on a correct build.
  uint64_t rw_violations = 0;

  void accumulate(const OpCounts& o) {
    ops += o.ops;
    reads += o.reads;
    updates += o.updates;
    gets += o.gets;
    get_hits += o.get_hits;
    inserts += o.inserts;
    erases += o.erases;
    puts += o.puts;
    put_replaced += o.put_replaced;
    rw_violations += o.rw_violations;
  }
};

}  // namespace pop::workload
