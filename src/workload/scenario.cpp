#include "workload/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "runtime/thread_registry.hpp"
#include "service/sharded_map.hpp"

namespace pop::workload {

namespace {

// Worker slots available to one scenario: leave registry headroom for the
// coordinating thread, the sampler, and whatever test harness spawned us.
constexpr int kMaxScenarioThreads = runtime::kMaxThreads - 8;

template <class... Args>
void warn(std::vector<std::string>& out, const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out.emplace_back(buf);
}

}  // namespace

std::vector<std::string> normalize(ScenarioSpec& spec) {
  std::vector<std::string> w;

  if (spec.phases.empty()) spec.phases.emplace_back();

  if (spec.threads < 1) {
    warn(w, "threads %d < 1: clamped to 1", spec.threads);
    spec.threads = 1;
  }
  if (spec.threads > kMaxScenarioThreads) {
    warn(w, "threads %d exceeds the registry budget: clamped to %d",
         spec.threads, kMaxScenarioThreads);
    spec.threads = kMaxScenarioThreads;
  }
  if (spec.key_range < 2) {
    warn(w, "key_range %llu < 2: clamped to 2",
         static_cast<unsigned long long>(spec.key_range));
    spec.key_range = 2;
  }
  if (spec.shards < 1) {
    warn(w, "shards %d < 1: clamped to 1", spec.shards);
    spec.shards = 1;
  }
  if (static_cast<uint64_t>(spec.shards) > spec.key_range) {
    warn(w, "shards %d exceeds key_range %llu: clamped to the key range",
         spec.shards, static_cast<unsigned long long>(spec.key_range));
    spec.shards = static_cast<int>(spec.key_range);
  }
  {
    service::ShardHash h;
    if (!service::parse_shard_hash(spec.shard_hash, &h)) {
      warn(w, "unknown shard_hash '%s': reset to splitmix",
           spec.shard_hash.c_str());
      spec.shard_hash = "splitmix";
    }
  }
  // The fill loops can insert at most key_range distinct keys; a larger
  // ask used to be silently under-delivered by the odd-key loop.
  if (spec.prefill != UINT64_MAX && spec.prefill > spec.key_range) {
    warn(w, "prefill %llu > key_range %llu: clamped to the key range",
         static_cast<unsigned long long>(spec.prefill),
         static_cast<unsigned long long>(spec.key_range));
    spec.prefill = spec.key_range;
  }

  for (size_t i = 0; i < spec.phases.size(); ++i) {
    PhaseSpec& p = spec.phases[i];
    if (p.name.empty()) p.name = "phase" + std::to_string(i);
    if (p.threads == 0) p.threads = spec.threads;
    if (p.threads < 1) {
      warn(w, "phase '%s': threads %d < 1: clamped to 1", p.name.c_str(),
           p.threads);
      p.threads = 1;
    }
    if (p.threads > kMaxScenarioThreads) {
      warn(w, "phase '%s': threads %d exceeds the registry budget: "
              "clamped to %d",
           p.name.c_str(), p.threads, kMaxScenarioThreads);
      p.threads = kMaxScenarioThreads;
    }
    if (p.duration_ms == 0) {
      warn(w, "phase '%s': duration 0 ms: clamped to 1 ms", p.name.c_str());
      p.duration_ms = 1;
    }
    if (p.pct_insert > 100) {
      warn(w, "phase '%s': pct_insert %u > 100: clamped", p.name.c_str(),
           p.pct_insert);
      p.pct_insert = 100;
    }
    // This used to wrap the dice comparison: an 80/80 mix made erase win
    // the range [80, 160) of a [0, 100) roll — i.e. silently became
    // 80/20 with no contains at all.
    if (p.pct_insert + p.pct_erase > 100) {
      warn(w, "phase '%s': pct_insert %u + pct_erase %u > 100: "
              "pct_erase clamped to %u",
           p.name.c_str(), p.pct_insert, p.pct_erase, 100 - p.pct_insert);
      p.pct_erase = 100 - p.pct_insert;
    }
    if (p.pct_insert + p.pct_erase + p.pct_put > 100) {
      warn(w, "phase '%s': pct_insert %u + pct_erase %u + pct_put %u > 100: "
              "pct_put clamped to %u",
           p.name.c_str(), p.pct_insert, p.pct_erase, p.pct_put,
           100 - p.pct_insert - p.pct_erase);
      p.pct_put = 100 - p.pct_insert - p.pct_erase;
    }
    if (p.read_your_writes && p.split_readers_writers) {
      warn(w, "phase '%s': read_your_writes is incompatible with "
              "split_readers_writers (roles share keys): validation off",
           p.name.c_str());
      p.read_your_writes = false;
    }
    if (p.read_your_writes &&
        spec.key_range < static_cast<uint64_t>(p.threads)) {
      warn(w, "phase '%s': read_your_writes needs key_range >= threads for "
              "worker-private key stripes: validation off",
           p.name.c_str());
      p.read_your_writes = false;
    }
    // The checker keeps a dense per-worker ledger of key_range u64s;
    // beyond this bound that is gigabytes per worker, not validation.
    constexpr uint64_t kMaxRwKeyRange = 1ull << 22;
    if (p.read_your_writes && spec.key_range > kMaxRwKeyRange) {
      warn(w, "phase '%s': read_your_writes over key_range %llu would "
              "allocate a %llu MiB ledger per worker: validation off "
              "(max key_range %llu)",
           p.name.c_str(), static_cast<unsigned long long>(spec.key_range),
           static_cast<unsigned long long>(spec.key_range * 8 >> 20),
           static_cast<unsigned long long>(kMaxRwKeyRange));
      p.read_your_writes = false;
    }
    if (p.writer_key_range == 0) p.writer_key_range = 1;
    if (p.writer_key_range > spec.key_range) {
      warn(w, "phase '%s': writer_key_range clamped to key_range",
           p.name.c_str());
      p.writer_key_range = spec.key_range;
    }
    if (p.split_readers_writers && p.keys.kind != KeyDist::kUniform) {
      warn(w, "phase '%s': split_readers_writers ignores the key "
              "distribution (readers scan uniformly, writers hit "
              "[0, writer_key_range)); keys reset to uniform",
           p.name.c_str());
      p.keys = KeyDistSpec{};
    }

    KeyDistSpec& k = p.keys;
    if (k.kind == KeyDist::kZipfian && !(k.zipf_theta >= 0.0)) {
      warn(w, "phase '%s': zipf_theta %.3f < 0: clamped to 0 (uniform)",
           p.name.c_str(), k.zipf_theta);
      k.zipf_theta = 0.0;
    }
    if (k.kind == KeyDist::kHotspot) {
      if (!(k.hot_fraction > 0.0) || k.hot_fraction > 1.0) {
        warn(w, "phase '%s': hot_fraction %.3f outside (0, 1]: reset to 0.1",
             p.name.c_str(), k.hot_fraction);
        k.hot_fraction = 0.1;
      }
      if (k.hot_op_pct > 100) {
        warn(w, "phase '%s': hot_op_pct %u > 100: clamped", p.name.c_str(),
             k.hot_op_pct);
        k.hot_op_pct = 100;
      }
    }
  }

  // Read-your-writes keys are striped by (key mod active threads), so
  // the stripe map must be identical for every phase — otherwise a key
  // can migrate between workers at a phase boundary and a stale ledger
  // reports a false violation. Require a uniform all-RW schedule.
  {
    bool any_rw = false;
    for (const auto& p : spec.phases) any_rw |= p.read_your_writes;
    if (any_rw) {
      bool uniform = true;
      for (const auto& p : spec.phases) {
        uniform &= p.read_your_writes && p.threads == spec.phases[0].threads;
      }
      if (!uniform) {
        warn(w, "read_your_writes requires every phase to validate with the "
                "same thread count (worker-private key stripes must not "
                "move): validation off");
        for (auto& p : spec.phases) p.read_your_writes = false;
      }
    }
  }

  if (spec.churn.enabled && spec.churn.interval_ms == 0) {
    warn(w, "churn interval 0 ms: clamped to 1 ms");
    spec.churn.interval_ms = 1;
  }

  if (spec.stall.enabled) {
    const int max_threads =
        std::max_element(spec.phases.begin(), spec.phases.end(),
                         [](const PhaseSpec& a, const PhaseSpec& b) {
                           return a.threads < b.threads;
                         })
            ->threads;
    if (spec.stall.victim < 0 || spec.stall.victim >= max_threads) {
      warn(w, "stall victim %d outside the worker pool [0, %d): reset to 0",
           spec.stall.victim, max_threads);
      spec.stall.victim = 0;
    }
    if (spec.stall.park_for_ms == 0) {
      warn(w, "stall park_for 0 ms: clamped to 1 ms");
      spec.stall.park_for_ms = 1;
    }
  }

  FaultSpec& f = spec.faults;
  if (f.signal_loss) {
    if (f.signal_loss_pct < 1 || f.signal_loss_pct > 100) {
      warn(w, "signal_loss_pct %d outside [1, 100]: reset to 100",
           f.signal_loss_pct);
      f.signal_loss_pct = 100;
    }
  }
  if (f.thread_kill) {
    const int max_threads =
        std::max_element(spec.phases.begin(), spec.phases.end(),
                         [](const PhaseSpec& a, const PhaseSpec& b) {
                           return a.threads < b.threads;
                         })
            ->threads;
    if (f.kills < 1) {
      warn(w, "thread_kill with kills %d < 1: clamped to 1", f.kills);
      f.kills = 1;
    }
    // Without respawn each kill permanently empties a slot; leave at
    // least one worker alive (the stall victim is also never killed).
    const int pool = max_threads - (spec.stall.enabled ? 1 : 0);
    if (!f.respawn && f.kills >= pool) {
      warn(w, "thread_kill without respawn would kill the whole worker "
              "pool: kills clamped to %d",
           pool - 1 > 0 ? pool - 1 : 1);
      f.kills = pool - 1 > 0 ? pool - 1 : 1;
    }
    if (f.kill_every_ms == 0 && f.kills > 1) {
      warn(w, "thread_kill kills %d with kill_every 0 ms: interval set to "
              "10 ms",
           f.kills);
      f.kill_every_ms = 10;
    }
    // A zombie leaks its registry slot for good until certified; bound
    // the storm so a scheme with no reap site (NR) cannot exhaust the
    // registry across a bench sweep.
    const int kill_budget = runtime::kMaxThreads / 4;
    if (f.kill_zombie && f.kills > kill_budget) {
      warn(w, "kill_zombie kills %d would risk exhausting the registry: "
              "clamped to %d",
           f.kills, kill_budget);
      f.kills = kill_budget;
    }
  }

  return w;
}

}  // namespace pop::workload
