// Per-phase key selection: binds a KeyDistSpec to the shared generator
// state (an immutable ZipfTable, the moving-hotspot window counter) and
// hands workers a single next() call on their private rng.
#pragma once

#include <cstdint>

#include "runtime/rng.hpp"
#include "workload/scenario.hpp"

namespace pop::workload {

class KeyPicker {
 public:
  // `zipf` must outlive the picker and is only consulted for kZipfian.
  KeyPicker(const KeyDistSpec& spec, uint64_t key_range,
            const runtime::ZipfTable* zipf)
      : kind_(spec.kind),
        range_(key_range ? key_range : 1),
        zipf_(zipf),
        hotspot_(key_range, spec.hot_fraction, spec.hot_op_pct) {}

  // `hot_window` is the coordinator-published window index for moving
  // hotspots (ignored by the other distributions).
  uint64_t next(runtime::Xoshiro256& rng, uint64_t hot_window) const {
    switch (kind_) {
      case KeyDist::kUniform:
        return rng.next_below(range_);
      case KeyDist::kZipfian: {
        // Scramble the rank so the popular keys are spread over the key
        // space instead of clustered at the low end (which for the list
        // structures would conflate skew with head locality). The hash is
        // not a bijection; rank collisions just merge two ranks' mass.
        uint64_t h = zipf_->sample(rng) + 0x9e3779b97f4a7c15ull;
        h = runtime::splitmix64(h);
        return h % range_;
      }
      case KeyDist::kHotspot:
        return hotspot_.sample(rng, hot_window * hotspot_.hot_size());
    }
    return 0;  // unreachable
  }

 private:
  KeyDist kind_;
  uint64_t range_;
  const runtime::ZipfTable* zipf_;
  runtime::HotspotDist hotspot_;
};

}  // namespace pop::workload
