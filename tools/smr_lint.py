#!/usr/bin/env python3
"""smr_lint.py — static SMR-contract lint for the popsmr source tree.

The reclamation contracts this repo depends on (allocation routes through
the pool, memory orders are explicit and justified, operation brackets
pair, frees route through the domain, TSan suppressions stay honest) are
mechanically checkable without a compiler: the code style is regular
enough that a deterministic token/regex pass catches the violation classes
that have actually bitten (see ISSUE history: three races shipped behind
an implicit seq_cst and a stale suppression). No libclang, no build —
runnable on a bare checkout, in CI, pre-commit, anywhere.

Rules (each individually suppressible — see SUPPRESSION below):

  R1  raw-allocation ban (src/ds/): no `new`/`delete`/`malloc`/`free` —
      node memory must route through the pool/domain (create_node,
      destroy_unpublished, retire). Placement new is exempt (it does not
      allocate); `= delete` declarations are exempt.
  R2  explicit memory orders (src/smr/, src/core/, src/ds/): every
      std::atomic load/store/RMW must pass a std::memory_order_*
      argument — a bare call is an implicit seq_cst nobody reviewed.
      Additionally every *explicit* seq_cst must carry a justification
      comment mentioning "seq_cst" on the same line or within the three
      preceding lines: the repo's fence-safety arguments are load-bearing
      (see tsan.supp) and an unexplained seq_cst is either a missing
      argument for why, or wasted cycles.
  R3  bracket pairing (src/): within one function body, `batch_begin`
      calls must balance `batch_end` calls and `begin_op` calls must
      balance `end_op` calls (OpGuard handles pairing by construction;
      this rule polices the direct callers). A bare `return` while a
      hand-opened begin_op bracket is open is flagged too — RAII can't
      save a hand-rolled bracket.
  R4  no direct `delete` in src/smr/ or src/core/ outside
      retire_list.hpp: a Reclaimable dies through its deleter/batch_prep
      hooks or the pool, never through a scheme calling delete.
  R5  tsan.supp hygiene: every suppression pattern must still resolve to
      a symbol present under src/ (dead suppressions silently mask future
      races), and must sit under a `# ---` documentation block explaining
      why it is benign.

SUPPRESSION: append `// smr-lint: allow(R1)` (or `allow(R1,R3)`) to the
offending line, or place it on a comment line immediately above. In
tsan.supp use `# smr-lint: allow(R5)`. Suppressions are per-line and
per-rule — there is no file-level or global opt-out by design.

Output is `path:line: [Rn] message` (clickable in CI logs). Exit 1 iff
findings remain. `--self-test` runs every rule against an inline fixture
corpus with seeded violations and asserts the exact findings, mirroring
check_bench_jsonl.py.

Usage:
  tools/smr_lint.py [--root DIR] [--rules R1,R2,...] [--list-rules]
  tools/smr_lint.py --self-test
"""

import argparse
import os
import re
import sys

RULES = {
    "R1": "raw new/delete/malloc/free in src/ds/ (allocation must route "
          "through the pool/domain)",
    "R2": "std::atomic access without an explicit std::memory_order_* "
          "argument, or seq_cst without a justification comment",
    "R3": "unbalanced batch_begin/batch_end or begin_op/end_op within a "
          "function, or return across a hand-opened bracket",
    "R4": "direct delete in src/smr/ or src/core/ outside retire_list.hpp",
    "R5": "tsan.supp suppression that is stale (symbol gone from src/) or "
          "undocumented (no preceding '# ---' block)",
}

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "requires", "sizeof", "alignof", "decltype", "constexpr"}

ATOMIC_METHODS = ("load", "store", "exchange", "fetch_add", "fetch_sub",
                  "fetch_and", "fetch_or", "fetch_xor",
                  "compare_exchange_weak", "compare_exchange_strong")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blank out comments and string/char literals, preserving layout.

    Returns (code, comments) — both same length/line structure as `text`:
    `code` has comments and literal contents replaced with spaces, and
    `comments` has everything EXCEPT comment text blanked. Keeping both
    lets rules match code without tripping on prose, while suppression
    and justification checks read the prose.
    """
    code = list(text)
    comments = [c if c == "\n" else " " for c in text]
    i, n = 0, len(text)
    NONE, LINE, BLOCK, STR, CHR = 0, 1, 2, 3, 4
    state = NONE
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NONE:
            if c == "/" and nxt == "/":
                state = LINE
                code[i] = code[i + 1] = " "
                comments[i], comments[i + 1] = "/", "/"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                code[i] = code[i + 1] = " "
                comments[i], comments[i + 1] = "/", "*"
                i += 2
                continue
            if c == '"':
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE:
            if c == "\n":
                state = NONE
            else:
                code[i] = " "
                comments[i] = c
            i += 1
            continue
        if state == BLOCK:
            if c == "*" and nxt == "/":
                state = NONE
                code[i] = code[i + 1] = " "
                comments[i], comments[i + 1] = "*", "/"
                i += 2
                continue
            if c != "\n":
                code[i] = " "
                comments[i] = c
            i += 1
            continue
        # String/char literal: blank contents (keep the quotes in code so
        # tokens never merge across them), honor escapes.
        if c == "\\" and i + 1 < n:
            code[i] = code[i + 1] = " "
            i += 2
            continue
        if (state == STR and c == '"') or (state == CHR and c == "'"):
            state = NONE
            i += 1
            continue
        if c != "\n":
            code[i] = " "
        i += 1
    return "".join(code), "".join(comments)


ALLOW_RE = re.compile(r"smr-lint:\s*allow\(([A-Z0-9, ]+)\)")


def parse_allows(code_lines, comment_lines):
    """Per-line rule suppressions: an allow comment covers its own line,
    and — when the line holds no code — the next line as well."""
    allowed = {}
    for idx, comment in enumerate(comment_lines):
        m = ALLOW_RE.search(comment)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allowed.setdefault(idx, set()).update(rules)
        if not code_lines[idx].strip():
            allowed.setdefault(idx + 1, set()).update(rules)
    return allowed


def is_allowed(allowed, line_idx, rule):
    return rule in allowed.get(line_idx, set())


def line_of(text, pos):
    return text.count("\n", 0, pos)


def balanced_args(code, open_paren_pos):
    """Text between a '(' and its matching ')' (or None if unbalanced)."""
    depth = 0
    for j in range(open_paren_pos, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren_pos + 1:j]
    return None


# ---- R1 --------------------------------------------------------------------

R1_NEW = re.compile(r"\bnew\b(?!\s*\()")  # placement new is exempt
R1_DELETE = re.compile(r"(?<![=\w])\s*\bdelete\b(?:\s*\[\s*\])?")
R1_CFN = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
EQ_DELETE = re.compile(r"=\s*(?:delete|default)\b")


def rule_r1(path, code, comments, allowed, findings):
    code_lines = code.split("\n")
    for idx, line in enumerate(code_lines):
        if is_allowed(allowed, idx, "R1"):
            continue
        stripped = EQ_DELETE.sub("", line)
        if R1_NEW.search(line):
            findings.append(Finding(path, idx + 1, "R1",
                                    "raw `new` — route allocation through "
                                    "domain.create/PoolAllocator"))
        if R1_DELETE.search(stripped):
            findings.append(Finding(path, idx + 1, "R1",
                                    "raw `delete` — retire through the "
                                    "domain or use destroy_unpublished"))
        m = R1_CFN.search(line)
        if m:
            findings.append(Finding(path, idx + 1, "R1",
                                    f"raw `{m.group(1)}` — route through "
                                    "the pool allocator"))


# ---- R2 --------------------------------------------------------------------

R2_CALL = re.compile(r"\.(" + "|".join(ATOMIC_METHODS) + r")\s*\(")
R2_SEQ = re.compile(r"\bmemory_order_seq_cst\b|\bmemory_order::seq_cst\b")


def rule_r2(path, code, comments, allowed, findings):
    comment_lines = comments.split("\n")
    for m in R2_CALL.finditer(code):
        method = m.group(1)
        args = balanced_args(code, m.end() - 1)
        if args is None:
            continue
        idx = line_of(code, m.start())
        if is_allowed(allowed, idx, "R2"):
            continue
        if "memory_order" not in args:
            findings.append(Finding(
                path, idx + 1, "R2",
                f"std::atomic {method}() without an explicit "
                "std::memory_order_* argument (implicit seq_cst)"))
    for m in R2_SEQ.finditer(code):
        idx = line_of(code, m.start())
        if is_allowed(allowed, idx, "R2"):
            continue
        window = comment_lines[max(0, idx - 3):idx + 1]
        if not any("seq_cst" in c for c in window):
            findings.append(Finding(
                path, idx + 1, "R2",
                "seq_cst without a justification comment mentioning "
                "seq_cst on this or the three preceding lines"))


# ---- R3 --------------------------------------------------------------------

IDENT_BACK = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*$")


def function_bodies(code):
    """Yield (start_line_idx, body_text) for every top-level function-like
    body: a '{' whose preceding code ends in ')' (allowing const/noexcept/
    override/final/trailing-return in between) and whose call-paren is not
    introduced by a control keyword. Nested blocks stay inside the
    enclosing body; bodies are yielded outermost-only.
    """
    depth = 0
    fn_start = None   # char pos of the function's '{'
    fn_depth = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "{":
            if fn_start is None and looks_like_function_open(code, i):
                fn_start = i
                fn_depth = depth
            depth += 1
        elif c == "}":
            depth -= 1
            if fn_start is not None and depth == fn_depth:
                yield line_of(code, fn_start), code[fn_start:i + 1]
                fn_start = None
        i += 1


def looks_like_function_open(code, brace_pos):
    # Walk back over qualifiers to find the ')' that should close the
    # parameter list.
    j = brace_pos - 1
    tail = []
    while j >= 0 and len(tail) < 160:
        tail.append(code[j])
        j -= 1
    before = "".join(reversed(tail)).rstrip()
    before = re.sub(r"(const|noexcept|override|final|mutable)\s*$", "",
                    before).rstrip()
    before = re.sub(r"noexcept\s*\([^()]*\)\s*$", "", before).rstrip()
    before = re.sub(r"->\s*[\w:<>,&*\s]+$", "", before).rstrip()
    if not before.endswith(")"):
        return False
    # Match that ')' back to its '(' and read the identifier before it.
    depth = 0
    k = brace_pos - 1
    while k >= 0:
        if code[k] == ")":
            depth += 1
        elif code[k] == "(":
            depth -= 1
            if depth == 0:
                break
        k -= 1
    if k < 0:
        return False
    m = IDENT_BACK.search(code[max(0, k - 80):k])
    if not m:
        return False  # e.g. a lambda `[...] (...) {` at top level
    return m.group(1) not in CONTROL_KEYWORDS


R3_PAIRS = (("batch_begin", "batch_end"), ("begin_op", "end_op"))


def rule_r3(path, code, comments, allowed, findings):
    for start_idx, body in function_bodies(code):
        # The opening '{' may sit below the signature line carrying the
        # allow comment, so honor the line above it too.
        if is_allowed(allowed, start_idx, "R3") or \
                is_allowed(allowed, start_idx - 1, "R3"):
            continue
        for opener, closer in R3_PAIRS:
            opens = len(re.findall(rf"\b{opener}\s*\(", body))
            closes = len(re.findall(rf"\b{closer}\s*\(", body))
            if opens != closes:
                findings.append(Finding(
                    path, start_idx + 1, "R3",
                    f"{opens} {opener}() vs {closes} {closer}() in one "
                    "function — every bracket opened must be reachable-"
                    "closed in the same function"))
        # Bare return while a hand-opened begin_op bracket is open.
        open_now = 0
        for tok in re.finditer(r"\b(begin_op|end_op|return)\b", body):
            kind = tok.group(1)
            if kind == "begin_op":
                open_now += 1
            elif kind == "end_op":
                open_now = max(0, open_now - 1)
            elif open_now > 0:
                idx = start_idx + body.count("\n", 0, tok.start())
                if not is_allowed(allowed, idx, "R3"):
                    findings.append(Finding(
                        path, idx + 1, "R3",
                        "return crosses an open begin_op bracket — the "
                        "entry-time reservation leaks"))


# ---- R4 --------------------------------------------------------------------


def rule_r4(path, code, comments, allowed, findings):
    for idx, line in enumerate(code.split("\n")):
        if is_allowed(allowed, idx, "R4"):
            continue
        if R1_DELETE.search(EQ_DELETE.sub("", line)):
            findings.append(Finding(
                path, idx + 1, "R4",
                "direct `delete` in scheme code — a Reclaimable dies "
                "through its deleter/batch_prep hooks or the pool"))


# ---- R5 --------------------------------------------------------------------

SUPP_RE = re.compile(
    r"^(race|signal|mutex|thread|deadlock|called_from_lib):(.+)$")


def rule_r5(supp_path, supp_text, symbol_exists, findings):
    lines = supp_text.split("\n")
    allow_next = False
    for idx, raw in enumerate(lines):
        line = raw.strip()
        if line.startswith("#"):
            if ALLOW_RE.search(line) and "R5" in ALLOW_RE.search(
                    line).group(1):
                allow_next = True
            continue
        m = SUPP_RE.match(line)
        if not m:
            allow_next = False
            continue
        if allow_next:
            allow_next = False
            continue
        pattern = m.group(2).strip()
        # Documentation: the nearest preceding non-suppression non-blank
        # line must be a comment, and its contiguous comment block must
        # contain a `# ---` header.
        documented = False
        j = idx - 1
        while j >= 0:
            prev = lines[j].strip()
            if SUPP_RE.match(prev) or not prev:
                j -= 1
                continue
            if prev.startswith("#"):
                while j >= 0 and lines[j].strip().startswith("#"):
                    if lines[j].strip().startswith("# ---"):
                        documented = True
                        break
                    j -= 1
            break
        if not documented:
            findings.append(Finding(
                supp_path, idx + 1, "R5",
                f"suppression '{pattern}' lacks a preceding '# ---' "
                "documentation block"))
        # Staleness: the last resolvable identifier component must still
        # exist somewhere under src/.
        parts = [re.sub(r"<[^<>]*>", "", p).replace("*", "").strip()
                 for p in pattern.split("::")]
        parts = [p for p in parts if re.fullmatch(r"[A-Za-z_]\w*", p or "")]
        if not parts:
            findings.append(Finding(
                supp_path, idx + 1, "R5",
                f"suppression '{pattern}' has no resolvable identifier "
                "component to check against src/"))
            continue
        if not symbol_exists(parts[-1]):
            findings.append(Finding(
                supp_path, idx + 1, "R5",
                f"stale suppression: symbol '{parts[-1]}' (from "
                f"'{pattern}') no longer exists under src/ — delete the "
                "entry or it will silently mask future races"))


# ---- driver ----------------------------------------------------------------

SCAN_EXTS = (".hpp", ".cpp", ".h", ".cc")


def scan_tree(root, rules):
    findings = []
    src = os.path.join(root, "src")
    files = []
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if fn.endswith(SCAN_EXTS):
                files.append(os.path.join(dirpath, fn))
    src_blob_parts = []
    for path in sorted(files):
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        src_blob_parts.append(text)
        rel = os.path.relpath(path, root)
        code, comments = strip_code(text)
        code_lines = code.split("\n")
        comment_lines = comments.split("\n")
        allowed = parse_allows(code_lines, comment_lines)
        in_ds = rel.startswith(os.path.join("src", "ds") + os.sep)
        in_smr = rel.startswith(os.path.join("src", "smr") + os.sep)
        in_core = rel.startswith(os.path.join("src", "core") + os.sep)
        if "R1" in rules and in_ds:
            rule_r1(rel, code, comments, allowed, findings)
        if "R2" in rules and (in_ds or in_smr or in_core):
            rule_r2(rel, code, comments, allowed, findings)
        if "R3" in rules:
            rule_r3(rel, code, comments, allowed, findings)
        if "R4" in rules and (in_smr or in_core) and \
                os.path.basename(path) != "retire_list.hpp":
            rule_r4(rel, code, comments, allowed, findings)
    if "R5" in rules:
        supp = os.path.join(root, "tsan.supp")
        if os.path.exists(supp):
            with open(supp, "r", encoding="utf-8") as f:
                supp_text = f.read()
            blob = "\n".join(src_blob_parts)
            rule_r5(os.path.relpath(supp, root), supp_text,
                    lambda sym: re.search(rf"\b{re.escape(sym)}\b", blob)
                    is not None, findings)
    return findings


# ---- self-test -------------------------------------------------------------

def run_rules_on(text, rules, path="fixture.hpp"):
    code, comments = strip_code(text)
    allowed = parse_allows(code.split("\n"), comments.split("\n"))
    findings = []
    if "R1" in rules:
        rule_r1(path, code, comments, allowed, findings)
    if "R2" in rules:
        rule_r2(path, code, comments, allowed, findings)
    if "R3" in rules:
        rule_r3(path, code, comments, allowed, findings)
    if "R4" in rules:
        rule_r4(path, code, comments, allowed, findings)
    return findings


FIXTURE_R1 = """\
struct Node : Reclaimable { uint64_t k; };
Node* make(Domain& d) {
  Node* bad = new Node();            // line 3: R1 raw new
  Node* ok = d.create<Node>(7);
  new (&slot) std::atomic<Node*>(nullptr);  // placement new: exempt
  delete bad;                        // line 6: R1 raw delete
  void* p = malloc(64);              // line 7: R1 raw malloc
  Node* blessed = new Node();  // smr-lint: allow(R1) fixture exemption
  Fn(const Fn&) = delete;            // declaration: exempt
  return ok;
}
"""

FIXTURE_R2 = """\
void ops(std::atomic<uint64_t>& a) {
  a.store(1);                        // line 2: R2 implicit order
  a.load(std::memory_order_acquire);
  uint64_t v = a.load();             // line 4: R2 implicit order
  a.fetch_add(1, std::memory_order_acq_rel);
  a.compare_exchange_weak(v, 2);     // line 6: R2 implicit order
  // seq_cst: announcement must be ordered before the reads.
  a.store(2, std::memory_order_seq_cst);
  a.store(3, std::memory_order_seq_cst);  // line 9: R2 stale... no wait,
  // the comment 2 lines up still covers line 9's 3-line window.
  a.exchange(4,
             std::memory_order_seq_cst);  // line 12: R2 unjustified
}
"""

FIXTURE_R3 = """\
void good(IKV& m) {
  m.batch_begin();
  m.put(1, 2);
  m.batch_end();
}
void leaky(IKV& m) {
  m.batch_begin();
  m.put(1, 2);
}
void bracket_impl(IKV& m) {  // smr-lint: allow(R3) the bracket itself
  m.batch_begin();
}
bool early_out(Domain& d) {
  d.begin_op();
  if (shortcut) return true;
  d.end_op();
  return false;
}
"""

FIXTURE_R4 = """\
void sweep(Reclaimable* n) {
  if (stale(n)) delete n;            // line 2: R4 direct delete
  n->deleter(n);
}
"""

FIXTURE_SUPP = """\
# header prose, not a doc block
race:pop::smr::LiveSymbol::method
# --- documented class ------------------------------------------------------
# why this is benign, at length.
race:LiveSymbol
race:GoneSymbol
# smr-lint: allow(R5)
race:AnotherGoneSymbol
"""


def self_test():
    failures = []

    def expect(desc, got, want):
        got_set = sorted((f.rule, f.line) for f in got)
        if got_set != sorted(want):
            failures.append(f"{desc}: expected {sorted(want)}, got "
                            f"{got_set} ({[repr(f) for f in got]})")

    expect("R1 seeded violations",
           run_rules_on(FIXTURE_R1, {"R1"}),
           [("R1", 3), ("R1", 6), ("R1", 7)])
    expect("R2 seeded violations",
           run_rules_on(FIXTURE_R2, {"R2"}),
           [("R2", 2), ("R2", 4), ("R2", 6), ("R2", 12)])
    expect("R3 seeded violations",
           run_rules_on(FIXTURE_R3, {"R3"}),
           [("R3", 6), ("R3", 15)])
    expect("R4 seeded violations",
           run_rules_on(FIXTURE_R4, {"R4"}, path="src/smr/fixture.hpp"),
           [("R4", 2)])

    r5 = []
    rule_r5("tsan.supp", FIXTURE_SUPP,
            lambda sym: sym == "LiveSymbol" or sym == "method", r5)
    expect("R5 seeded violations", r5,
           [("R5", 2), ("R5", 6)])

    # Comment/string immunity: contract words in prose must not fire.
    immune = '// new delete malloc free begin_op(\n'\
             'const char* s = "delete new malloc(x)";\n'
    expect("comment/string immunity",
           run_rules_on(immune, {"R1", "R2", "R3", "R4"}), [])

    if failures:
        for f in failures:
            print(f"smr_lint: self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("smr_lint: self-test OK — 6 fixtures, all seeded findings "
          "caught, exemptions honored")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    ap.add_argument("--rules", default=",".join(sorted(RULES)),
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the inline fixture corpus and exit")
    args = ap.parse_args()

    if args.list_rules:
        for rid in sorted(RULES):
            print(f"{rid}  {RULES[rid]}")
        return 0
    if args.self_test:
        return self_test()

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        ap.error(f"unknown rule(s): {', '.join(sorted(unknown))} "
                 f"(known: {', '.join(sorted(RULES))})")

    findings = scan_tree(args.root, rules)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"smr_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"smr_lint: clean ({', '.join(sorted(rules))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
