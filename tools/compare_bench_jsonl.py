#!/usr/bin/env python3
"""Perf-trend backstop for the networked front end's JSONL rail.

Diffs the "net" rows of a bench_loadgen artifact against a checked-in
baseline (tools/net_baseline.json by default) and fails ONLY on a
collapse: throughput down, or p99 latency up, by more than the tolerance
(default 40%). This is deliberately not a micro-regression gate — CI
runners are noisy — it exists to catch the order-of-magnitude failure
modes (an accidental per-op bracket, a serialization bug, an event-loop
busy spin) the unit tests cannot see.

Usage:

  tools/compare_bench_jsonl.py net.jsonl [--baseline tools/net_baseline.json]
      [--tolerance-pct 40] [--write-baseline]

Cells are keyed by scenario/ds/smr/connections/pipeline_depth. Artifact
cells with no baseline entry (a new ds/smr pair) and baseline entries
absent from the artifact (a trimmed sweep) are reported but never fail
the run. Re-baselining after an intentional perf change:

  POPSMR_BENCH_JSON=net.jsonl ./bench_loadgen --ds HMHT,RHHT \
      --smr EBR,EpochPOP --short --connections 4 --pipeline 8
  tools/compare_bench_jsonl.py net.jsonl --write-baseline

then commit tools/net_baseline.json with a line in the PR explaining the
shift. --write-baseline rounds conservatively (mops down, p99 up) so a
lucky run does not ratchet the reference.
"""

import argparse
import json
import sys


def cell_key(row):
    return "{}/{}/{}/c{}/p{}".format(
        row["scenario"], row["ds"], row["smr"], row["connections"],
        row["pipeline_depth"])


def load_net_rows(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"compare_bench_jsonl: {path}:{lineno}: bad JSON: {e}",
                      file=sys.stderr)
                return None
            if isinstance(row, dict) and row.get("kind") == "net":
                rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="bench_loadgen JSONL artifact")
    ap.add_argument("--baseline", default="tools/net_baseline.json",
                    metavar="FILE", help="baseline JSON (default: %(default)s)")
    ap.add_argument("--tolerance-pct", type=float, default=40.0,
                    metavar="PCT",
                    help="allowed regression before failing (default: "
                         "%(default)s — a collapse gate, not a noise gate)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from this artifact and exit")
    args = ap.parse_args()

    rows = load_net_rows(args.artifact)
    if rows is None:
        return 1
    if not rows:
        print(f"compare_bench_jsonl: {args.artifact}: no 'net' rows",
              file=sys.stderr)
        return 1
    observed = {}
    for row in rows:
        try:
            observed[cell_key(row)] = {
                "mops": float(row["mops"]),
                "p99_us": float(row["lat_p99_us"]),
            }
        except (KeyError, TypeError, ValueError) as e:
            print(f"compare_bench_jsonl: malformed net row ({e}): {row}",
                  file=sys.stderr)
            return 1

    if args.write_baseline:
        # Conservative rounding: a reference written from a lucky run
        # would fail honest future runs.
        cells = {
            k: {"mops": round(v["mops"] * 0.9, 3),
                "p99_us": round(v["p99_us"] * 1.1, 1)}
            for k, v in sorted(observed.items())
        }
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({"comment":
                       "bench_loadgen reference (see "
                       "tools/compare_bench_jsonl.py --help for "
                       "re-baselining); mops pre-derated 10%, p99 +10%",
                       "cells": cells}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"compare_bench_jsonl: wrote {len(cells)} cell(s) to "
              f"{args.baseline}")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)["cells"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"compare_bench_jsonl: cannot load baseline "
              f"{args.baseline}: {e}", file=sys.stderr)
        return 1

    tol = args.tolerance_pct / 100.0
    failures = []
    compared = 0
    for key, got in sorted(observed.items()):
        base = baseline.get(key)
        if base is None:
            print(f"compare_bench_jsonl: {key}: no baseline entry "
                  "(new cell — consider re-baselining)")
            continue
        compared += 1
        floor_mops = base["mops"] * (1.0 - tol)
        ceil_p99 = base["p99_us"] * (1.0 + tol)
        verdict = "ok"
        if got["mops"] < floor_mops:
            verdict = "THROUGHPUT COLLAPSE"
            failures.append(
                f"{key}: mops {got['mops']:.3f} < floor {floor_mops:.3f} "
                f"(baseline {base['mops']:.3f} - {args.tolerance_pct}%)")
        if got["p99_us"] > ceil_p99:
            verdict = "LATENCY COLLAPSE"
            failures.append(
                f"{key}: p99 {got['p99_us']:.1f}us > ceiling "
                f"{ceil_p99:.1f}us "
                f"(baseline {base['p99_us']:.1f}us + {args.tolerance_pct}%)")
        print(f"compare_bench_jsonl: {key}: mops {got['mops']:.3f} "
              f"(base {base['mops']:.3f}), p99 {got['p99_us']:.1f}us "
              f"(base {base['p99_us']:.1f}us) — {verdict}")
    for key in sorted(set(baseline) - set(observed)):
        print(f"compare_bench_jsonl: {key}: in baseline but not in this "
              "run (sweep trimmed?)")

    if failures:
        for fmsg in failures:
            print(f"compare_bench_jsonl: FAIL: {fmsg}", file=sys.stderr)
        return 1
    if compared == 0:
        print("compare_bench_jsonl: FAIL: no observed cell matched the "
              "baseline (key scheme drift?)", file=sys.stderr)
        return 1
    print(f"compare_bench_jsonl: OK — {compared} cell(s) within "
          f"{args.tolerance_pct}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
