#!/usr/bin/env python3
"""Validate popsmr benchmark JSONL artifacts (BENCH_*.json).

Every bench binary appends JSON Lines to POPSMR_BENCH_JSON. Three row
families exist:

  * kind-tagged rows (bench_scenarios / bench_sharded / bench_kv):
    "scenario", "phase", "mem_sample", "sharded", "shard", "kv"
  * micro rows ("bench": "...") from the microbenchmarks
  * legacy figure rows (no tag) from print_row: ds/smr/threads/mops/...

CI's smoke jobs run this gate over their artifacts so a malformed or —
the historical failure mode — silently *empty* artifact fails the job
instead of uploading garbage. Usage:

  tools/check_bench_jsonl.py BENCH_*.json [--require-kind scenario] \
      [--min-rows 1] [--summary]

Exits 0 iff every named file exists, is non-empty, every line parses as
a JSON object matching its family's schema, and every --require-kind
appears at least once across all files.
"""

import argparse
import json
import sys

# Required fields per kind-tagged row family: (name, type) pairs. bool is
# accepted for int fields only where noted; numbers must not be NaN/inf
# (json.loads would have produced float('nan') from bare NaN, which the
# emitters never write — reject them anyway).
NUM = (int, float)

# Per-op outcome breakdown shared by every row family that reports a run
# of the KV workload loop (get hit ratio, put insert/replace split, and
# the read-your-writes validation verdict).
PER_OP = {
    "gets": int, "get_hits": int, "inserts": int, "erases": int,
    "puts": int, "put_replaced": int, "rw_violations": int,
}

SCHEMAS = {
    "scenario": {
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "seconds": NUM, "mops": NUM, "read_mops": NUM,
        "retired": int, "freed": int, "signals_sent": int,
        "vm_hwm_kib": int, "churn_cycles": int,
        "baseline_unreclaimed": int, "stall_peak_unreclaimed": int,
        "final_unreclaimed": int, **PER_OP,
    },
    "phase": {
        "scenario": str, "ds": str, "smr": str, "phase": str, "idx": int,
        "threads": int, "seconds": NUM, "mops": NUM, "read_mops": NUM,
        "retired": int, "freed": int, "signals_sent": int, "pings": int,
        "neutralized": int, "max_retire_len": int, "unreclaimed_end": int,
        **PER_OP,
    },
    "kv": {
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "pct_put": int, "seconds": NUM, "mops": NUM,
        "read_mops": NUM, "retired": int, "freed": int,
        "signals_sent": int, "final_unreclaimed": int, "vm_hwm_kib": int,
        **PER_OP,
    },
    "mem_sample": {
        "scenario": str, "ds": str, "smr": str, "t_ms": int, "phase": int,
        "vm_rss_kib": int, "vm_hwm_kib": int, "unreclaimed": int,
        "pool_live_blocks": int, "victim_parked": int,
    },
    "sharded": {
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "shard_hash": str, "seconds": NUM, "mops": NUM,
        "read_mops": NUM, "retired": int, "freed": int,
        "signals_sent": int, "final_unreclaimed": int,
        "pool_live_blocks": int, "shard_ops_max": int, "shard_ops_min": int,
    },
    "shard": {
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "shard": int, "ops": int, "retired": int,
        "freed": int, "unreclaimed": int, "signals_sent": int,
        "get_hits": int, "get_misses": int, "put_inserts": int,
        "put_replaces": int,
    },
}

# Untagged families, identified by a discriminating field.
MICRO_REQUIRED = {"bench": str, "threads": int}
LEGACY_REQUIRED = {
    "ds": str, "smr": str, "threads": int, "mops": NUM, "read_mops": NUM,
    "vm_hwm_kib": int, "freed": int, "signals_sent": int,
}


def check_fields(row, schema, where, errors):
    for field, ftype in schema.items():
        if field not in row:
            errors.append(f"{where}: missing field '{field}'")
            continue
        v = row[field]
        # bools are ints in Python; reject them for numeric fields.
        if isinstance(v, bool) or not isinstance(v, ftype):
            errors.append(
                f"{where}: field '{field}' has type {type(v).__name__}, "
                f"expected {ftype}")
            continue
        if isinstance(v, float) and (v != v or v in (float("inf"),
                                                     float("-inf"))):
            errors.append(f"{where}: field '{field}' is NaN/inf")


def check_row(row, where, errors, kind_counts):
    if not isinstance(row, dict):
        errors.append(f"{where}: not a JSON object")
        return
    if "kind" in row:
        kind = row["kind"]
        if kind not in SCHEMAS:
            errors.append(f"{where}: unknown kind '{kind}'")
            return
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        check_fields(row, SCHEMAS[kind], f"{where} [{kind}]", errors)
    elif "bench" in row:
        kind_counts["micro"] = kind_counts.get("micro", 0) + 1
        check_fields(row, MICRO_REQUIRED, f"{where} [micro]", errors)
    else:
        kind_counts["workload"] = kind_counts.get("workload", 0) + 1
        check_fields(row, LEGACY_REQUIRED, f"{where} [workload]", errors)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="JSONL artifacts to validate")
    ap.add_argument("--require-kind", action="append", default=[],
                    metavar="KIND",
                    help="fail unless at least one row of KIND exists "
                         "(scenario, phase, mem_sample, sharded, shard, "
                         "kv, micro, workload); repeatable")
    ap.add_argument("--min-rows", type=int, default=1, metavar="N",
                    help="fail any file with fewer than N rows (default 1: "
                         "an empty artifact is a failure, not a pass)")
    ap.add_argument("--summary", action="store_true",
                    help="print per-kind row counts on success")
    args = ap.parse_args()

    errors = []
    kind_counts = {}
    total_rows = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            errors.append(f"{path}: unreadable: {e}")
            continue
        rows = 0
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: invalid JSON: {e}")
                continue
            rows += 1
            check_row(row, where, errors, kind_counts)
        if rows < args.min_rows:
            errors.append(
                f"{path}: only {rows} row(s), expected >= {args.min_rows} "
                "(empty artifacts previously passed CI silently)")
        total_rows += rows

    for kind in args.require_kind:
        if kind_counts.get(kind, 0) == 0:
            errors.append(
                f"required kind '{kind}' absent from all inputs "
                f"(saw: {sorted(kind_counts) or 'nothing'})")

    if errors:
        for e in errors[:50]:
            print(f"check_bench_jsonl: {e}", file=sys.stderr)
        if len(errors) > 50:
            print(f"check_bench_jsonl: ... and {len(errors) - 50} more",
                  file=sys.stderr)
        return 1

    if args.summary:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(kind_counts.items()))
        print(f"check_bench_jsonl: OK — {total_rows} rows ({counts})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
