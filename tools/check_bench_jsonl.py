#!/usr/bin/env python3
"""Validate popsmr benchmark JSONL artifacts (BENCH_*.json).

Every bench binary appends JSON Lines to POPSMR_BENCH_JSON. Three row
families exist:

  * kind-tagged rows (bench_scenarios / bench_sharded / bench_kv /
    bench_resize / bench_faults): "scenario", "phase", "mem_sample",
    "sharded", "shard", "kv", "resize", "fault", "pressure", "latency"
  * micro rows ("bench": "...") from the microbenchmarks
  * legacy figure rows (no tag) from print_row: ds/smr/threads/mops/...

CI's smoke jobs run this gate over their artifacts so a malformed or —
the historical failure mode — silently *empty* artifact fails the job
instead of uploading garbage. Usage:

  tools/check_bench_jsonl.py BENCH_*.json [--require-kind scenario] \
      [--min-rows 1] [--summary]

Exits 0 iff every named file exists, is non-empty, every line parses as
a JSON object matching its family's schema, and every --require-kind
appears at least once across all files.
"""

import argparse
import json
import sys

# Required fields per kind-tagged row family: (name, type) pairs. bool is
# accepted for int fields only where noted in BOOL_OK; numbers must not
# be NaN/inf (json.loads would have produced float('nan') from bare NaN,
# which the emitters never write — reject them anyway).
NUM = (int, float)

# The documented bool-as-int fields: a C emitter printing a flag as 0/1
# and a hand-written fixture using true/false must both pass. Every other
# field rejects bools (Python's bool is an int subclass, so without this
# carve-out `"retired": true` would silently satisfy an int schema).
BOOL_OK = {"victim_parked", "hw_valid"}

# Per-op outcome breakdown shared by every row family that reports a run
# of the KV workload loop (get hit ratio, put insert/replace split, and
# the read-your-writes validation verdict).
PER_OP = {
    "gets": int, "get_hits": int, "inserts": int, "erases": int,
    "puts": int, "put_replaced": int, "rw_violations": int,
}

# Every row (tagged, micro, and legacy alike) is stamped with the
# process-wide run id and a wall-clock ms timestamp so concatenated
# multi-run artifacts stay disambiguable.
STAMP = {"run_id": int, "ts": int}

# The --latency percentile block (zero-filled when recording is off) on
# the row families that summarize a workload run.
LAT = {
    "lat_ops": int, "lat_p50_us": NUM, "lat_p90_us": NUM,
    "lat_p99_us": NUM, "lat_p999_us": NUM, "lat_max_us": NUM,
}

# The --hw-counters derived rates; hw_valid is a documented bool-as-int
# flag (0 when perf_event_open was refused and the counts are zero-fill).
HW = {"ipc": NUM, "llc_miss_rate": NUM, "hw_valid": int}

# Wire-op outcome counters shared by the networked front end's rows
# (bench_loadgen): the wire has no insert/erase split, so the breakdown
# is GET/PUT/DEL/PING plus socket- or framing-level errors.
NET_OPS = {
    "ops": int, "gets": int, "get_hits": int, "puts": int,
    "put_replaced": int, "dels": int, "del_hits": int, "pings": int,
    "errors": int,
}

# Fields that must be strictly positive where present: a "net"/"conn" row
# claiming zero connections or a zero-deep pipeline describes a run that
# cannot have produced the ops it reports.
POSITIVE = {"connections", "pipeline_depth"}

SCHEMAS = {
    "scenario": {
        **STAMP, **LAT, **HW,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "seconds": NUM, "mops": NUM, "read_mops": NUM,
        "retired": int, "freed": int, "signals_sent": int,
        "vm_hwm_kib": int, "churn_cycles": int,
        "baseline_unreclaimed": int, "stall_peak_unreclaimed": int,
        "final_unreclaimed": int, "grows": int, "shrinks": int,
        "buckets_final": int, **PER_OP,
    },
    "latency": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "op": str, "count": int, "p50_us": NUM,
        "p90_us": NUM, "p99_us": NUM, "p999_us": NUM, "max_us": NUM,
    },
    "resize": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "deficit": int, "initial_capacity": int, "key_range": int,
        "seconds": NUM, "mops": NUM, "storm_mops": NUM, "steady_mops": NUM,
        "recovery_pct": NUM, "grows": int, "shrinks": int,
        "buckets_final": int, "retired": int, "freed": int,
        "final_unreclaimed": int,
    },
    "phase": {
        **STAMP, **LAT, **HW,
        "scenario": str, "ds": str, "smr": str, "phase": str, "idx": int,
        "threads": int, "seconds": NUM, "mops": NUM, "read_mops": NUM,
        "retired": int, "freed": int, "signals_sent": int, "pings": int,
        "neutralized": int, "max_retire_len": int, "unreclaimed_end": int,
        "cycles": int, "instructions": int, "llc_misses": int,
        "ctx_switches": int, **PER_OP,
    },
    "kv": {
        **STAMP, **LAT,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "pct_put": int, "seconds": NUM, "mops": NUM,
        "read_mops": NUM, "retired": int, "freed": int,
        "signals_sent": int, "final_unreclaimed": int, "vm_hwm_kib": int,
        **PER_OP,
    },
    "fault": {
        **STAMP, **LAT,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "fault": str, "seconds": NUM, "mops": NUM, "kills": int,
        "signals_suppressed": int, "first_kill_at_ms": int,
        "recovered_at_ms": int, "waves_timed_out": int, "tids_reaped": int,
        "orphans_adopted": int, "pressure_events": int,
        "forced_handshakes": int, "signals_sent": int, "retired": int,
        "freed": int, "peak_unreclaimed": int, "final_unreclaimed": int,
    },
    "pressure": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "pressure_bound": int, "pressure_events": int,
        "forced_handshakes": int, "baseline_unreclaimed": int,
        "peak_unreclaimed": int, "final_unreclaimed": int,
        "stall_parked_at_ms": int, "stall_resumed_at_ms": int,
        "retired": int, "freed": int,
    },
    "mem_sample": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "t_ms": int, "phase": int,
        "vm_rss_kib": int, "vm_hwm_kib": int, "unreclaimed": int,
        "pool_live_blocks": int, "victim_parked": int,
    },
    "sharded": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "shard_hash": str, "seconds": NUM, "mops": NUM,
        "read_mops": NUM, "retired": int, "freed": int,
        "signals_sent": int, "final_unreclaimed": int,
        "pool_live_blocks": int, "shard_ops_max": int, "shard_ops_min": int,
    },
    # bench_loadgen's per-cell summary: end-to-end client-side latency
    # (the lat_* block) over every connection, plus the wire-op totals.
    "net": {
        **STAMP, **LAT, **NET_OPS,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "connections": int, "pipeline_depth": int,
        "seconds": NUM, "mops": NUM,
    },
    # bench_loadgen's per-connection row: one per client connection, with
    # that connection's own percentile block (fairness across the
    # multiplexed workers is visible as p99 spread between conn rows).
    "conn": {
        **STAMP, **NET_OPS,
        "scenario": str, "ds": str, "smr": str, "conn": int,
        "connections": int, "pipeline_depth": int, "p50_us": NUM,
        "p90_us": NUM, "p99_us": NUM, "p999_us": NUM, "max_us": NUM,
    },
    "shard": {
        **STAMP,
        "scenario": str, "ds": str, "smr": str, "threads": int,
        "shards": int, "shard": int, "ops": int, "retired": int,
        "freed": int, "unreclaimed": int, "signals_sent": int,
        "get_hits": int, "get_misses": int, "put_inserts": int,
        "put_replaces": int, "resizes": int, "buckets_final": int,
        "waves_timed_out": int, "tids_reaped": int,
        "pressure_events": int, "forced_handshakes": int,
    },
}

# Optional per-kind columns, present only when the producing run armed
# the feature: the SMR contract sanitizer (POPSMR_AUDIT=1) adds
# audit_violations to its summary rows, and an unaudited run omits the
# column entirely rather than writing an ambiguous 0. When present the
# value must be 0 — a green artifact never carries contract violations.
OPTIONAL = {
    "scenario": {"audit_violations": int},
    "fault": {"audit_violations": int},
}
ZERO_REQUIRED = {"audit_violations"}

# Untagged families, identified by a discriminating field.
MICRO_REQUIRED = {**STAMP, "bench": str, "threads": int}
LEGACY_REQUIRED = {
    **STAMP, **LAT,
    "ds": str, "smr": str, "threads": int, "mops": NUM, "read_mops": NUM,
    "vm_hwm_kib": int, "freed": int, "signals_sent": int,
}


def check_fields(row, schema, where, errors):
    for field, ftype in schema.items():
        if field not in row:
            errors.append(f"{where}: missing field '{field}'")
            continue
        v = row[field]
        # bools are ints in Python; reject them for numeric fields except
        # the documented bool-as-int flags in BOOL_OK.
        if isinstance(v, bool) and field in BOOL_OK:
            continue
        if isinstance(v, bool) or not isinstance(v, ftype):
            errors.append(
                f"{where}: field '{field}' has type {type(v).__name__}, "
                f"expected {ftype}")
            continue
        if isinstance(v, float) and (v != v or v in (float("inf"),
                                                     float("-inf"))):
            errors.append(f"{where}: field '{field}' is NaN/inf")


def check_row(row, where, errors, kind_counts):
    if not isinstance(row, dict):
        errors.append(f"{where}: not a JSON object")
        return
    if "kind" in row:
        kind = row["kind"]
        if kind not in SCHEMAS:
            errors.append(f"{where}: unknown kind '{kind}'")
            return
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        check_fields(row, SCHEMAS[kind], f"{where} [{kind}]", errors)
        for field, ftype in OPTIONAL.get(kind, {}).items():
            if field not in row:
                continue
            v = row[field]
            if isinstance(v, bool) or not isinstance(v, ftype):
                errors.append(
                    f"{where} [{kind}]: field '{field}' has type "
                    f"{type(v).__name__}, expected {ftype}")
            elif field in ZERO_REQUIRED and v != 0:
                errors.append(
                    f"{where} [{kind}]: field '{field}' must be 0 in a "
                    f"green artifact, got {v}")
        for field in POSITIVE & SCHEMAS[kind].keys():
            v = row.get(field)
            if isinstance(v, int) and not isinstance(v, bool) and v <= 0:
                errors.append(
                    f"{where} [{kind}]: field '{field}' must be >= 1, "
                    f"got {v}")
    elif "bench" in row:
        kind_counts["micro"] = kind_counts.get("micro", 0) + 1
        check_fields(row, MICRO_REQUIRED, f"{where} [micro]", errors)
    else:
        kind_counts["workload"] = kind_counts.get("workload", 0) + 1
        check_fields(row, LEGACY_REQUIRED, f"{where} [workload]", errors)


def self_test():
    """Regression cases for the checker itself (run with --self-test).

    Each case is (description, row, should_pass). The load-bearing one is
    the bool regression: `"retired": true` must FAIL even though Python's
    bool is an int subclass — only the documented BOOL_OK flags may carry
    a JSON bool.
    """
    stamp_ok = {"run_id": 1754600000000000000, "ts": 1754600000000}
    lat_ok = {
        "lat_ops": 301284, "lat_p50_us": 0.294, "lat_p90_us": 0.47,
        "lat_p99_us": 0.51, "lat_p999_us": 24.192, "lat_max_us": 5984.301,
    }
    shard_ok = {
        "kind": "shard", **stamp_ok, "scenario": "s", "ds": "RHHT",
        "smr": "EBR",
        "threads": 2, "shards": 4, "shard": 0, "ops": 10, "retired": 5,
        "freed": 5, "unreclaimed": 0, "signals_sent": 0, "get_hits": 1,
        "get_misses": 1, "put_inserts": 1, "put_replaces": 1, "resizes": 3,
        "buckets_final": 256, "waves_timed_out": 0, "tids_reaped": 0,
        "pressure_events": 2, "forced_handshakes": 2,
    }
    latency_ok = {
        "kind": "latency", **stamp_ok, "scenario": "stall-recovery",
        "ds": "HML", "smr": "EpochPOP", "threads": 2, "shards": 1,
        "op": "ping_wave", "count": 18, "p50_us": 22.4, "p90_us": 28.0,
        "p99_us": 5203.6, "p999_us": 5203.6, "max_us": 5203.6,
    }
    resize_ok = {
        "kind": "resize", **stamp_ok, "scenario": "grow-storm", "ds": "RHHT",
        "smr": "EBR", "threads": 2, "deficit": 64, "initial_capacity": 256,
        "key_range": 16384, "seconds": 0.4, "mops": 1.0, "storm_mops": 0.8,
        "steady_mops": 1.2, "recovery_pct": 97.5, "grows": 6, "shrinks": 0,
        "buckets_final": 4096, "retired": 6, "freed": 6,
        "final_unreclaimed": 0,
    }
    mem_ok = {
        "kind": "mem_sample", **stamp_ok, "scenario": "s", "ds": "HML",
        "smr": "HP",
        "t_ms": 1, "phase": 0, "vm_rss_kib": 1, "vm_hwm_kib": 1,
        "unreclaimed": 0, "pool_live_blocks": 0, "victim_parked": 0,
    }
    fault_ok = {
        "kind": "fault", **stamp_ok, **lat_ok, "scenario": "zombie-storm",
        "ds": "HML",
        "smr": "EpochPOP", "threads": 3, "fault": "thread-kill",
        "seconds": 0.1, "mops": 2.5, "kills": 4, "signals_suppressed": 0,
        "first_kill_at_ms": 17, "recovered_at_ms": 25, "waves_timed_out": 0,
        "tids_reaped": 4, "orphans_adopted": 2721, "pressure_events": 0,
        "forced_handshakes": 0, "signals_sent": 19, "retired": 45663,
        "freed": 44258, "peak_unreclaimed": 0, "final_unreclaimed": 1405,
    }
    pressure_ok = {
        "kind": "pressure", **stamp_ok, "scenario": "pressure-backstop",
        "ds": "HML",
        "smr": "EBR", "threads": 3, "pressure_bound": 3072,
        "pressure_events": 601, "forced_handshakes": 601,
        "baseline_unreclaimed": 3808, "peak_unreclaimed": 11360,
        "final_unreclaimed": 3013, "stall_parked_at_ms": 33,
        "stall_resumed_at_ms": 85, "retired": 38547, "freed": 35534,
    }
    scenario_hw_missing = {
        "kind": "scenario", **stamp_ok, **lat_ok, "scenario": "s",
        "ds": "HML", "smr": "EBR", "threads": 2, "shards": 1,
        "seconds": 0.1, "mops": 1.0, "read_mops": 0.5, "retired": 1,
        "freed": 1, "signals_sent": 0, "vm_hwm_kib": 1, "churn_cycles": 0,
        "baseline_unreclaimed": 0, "stall_peak_unreclaimed": 0,
        "final_unreclaimed": 0, "grows": 0, "shrinks": 0,
        "buckets_final": 0, "gets": 1, "get_hits": 1, "inserts": 0,
        "erases": 0, "puts": 0, "put_replaced": 0, "rw_violations": 0,
    }  # deliberately lacks ipc/llc_miss_rate/hw_valid
    net_ops_ok = {
        "ops": 47748, "gets": 23946, "get_hits": 11786, "puts": 11753,
        "put_replaced": 5754, "dels": 12045, "del_hits": 5992, "pings": 4,
        "errors": 0,
    }
    net_ok = {
        "kind": "net", **stamp_ok, **lat_ok, **net_ops_ok,
        "scenario": "uniform-mixed", "ds": "HMHT", "smr": "EBR",
        "threads": 2, "shards": 1, "connections": 4, "pipeline_depth": 8,
        "seconds": 0.05, "mops": 0.952,
    }
    conn_ok = {
        "kind": "conn", **stamp_ok, **net_ops_ok,
        "scenario": "uniform-mixed", "ds": "HMHT", "smr": "EBR", "conn": 0,
        "connections": 4, "pipeline_depth": 8, "p50_us": 27.7,
        "p90_us": 51.9, "p99_us": 95.7, "p999_us": 142.3, "max_us": 152.6,
    }
    cases = [
        ("valid shard row", shard_ok, True),
        ("valid net row", net_ok, True),
        ("valid conn row", conn_ok, True),
        ("net row without the lat_* block",
         {k: v for k, v in net_ok.items() if k != "lat_p999_us"}, False),
        ("net row without pipeline_depth",
         {k: v for k, v in net_ok.items() if k != "pipeline_depth"}, False),
        ("net row with zero connections must be rejected",
         {**net_ok, "connections": 0}, False),
        ("conn row with non-positive pipeline_depth must be rejected",
         {**conn_ok, "pipeline_depth": -8}, False),
        ("conn row without per-conn percentiles",
         {k: v for k, v in conn_ok.items() if k != "p999_us"}, False),
        ("net errors counter as bool must be rejected",
         {**net_ok, "errors": False}, False),
        ("valid latency row", latency_ok, True),
        ("latency op must be a string",
         {**latency_ok, "op": 7}, False),
        ("latency row without run_id stamp",
         {k: v for k, v in latency_ok.items() if k != "run_id"}, False),
        ("valid fault row", fault_ok, True),
        ("fault row without the lat_* block",
         {k: v for k, v in fault_ok.items() if k != "lat_p99_us"}, False),
        ("scenario row must carry hw fields", scenario_hw_missing, False),
        ("hw_valid as bool (documented bool-as-int)",
         {**scenario_hw_missing, "ipc": 1.1, "llc_miss_rate": 0.2,
          "hw_valid": True}, True),
        ("shard row without fault counters",
         {k: v for k, v in shard_ok.items()
          if k != "forced_handshakes"}, False),
        ("valid pressure row", pressure_ok, True),
        ("fault name must be a string",
         {**fault_ok, "fault": 3}, False),
        ("tids_reaped as bool must be rejected",
         {**fault_ok, "tids_reaped": True}, False),
        ("missing pressure_bound", {k: v for k, v in pressure_ok.items()
                                    if k != "pressure_bound"}, False),
        ("valid resize row", resize_ok, True),
        ("valid mem_sample row", mem_ok, True),
        ("victim_parked as bool (documented bool-as-int)",
         {**mem_ok, "victim_parked": True}, True),
        ("retired as bool must be rejected",
         {**shard_ok, "retired": True}, False),
        ("recovery_pct as bool must be rejected",
         {**resize_ok, "recovery_pct": False}, False),
        ("missing deficit", {k: v for k, v in resize_ok.items()
                             if k != "deficit"}, False),
        ("unknown kind", {"kind": "nope"}, False),
        ("non-object row", [1, 2, 3], False),
        ("audited scenario row with explicit zero violations",
         {**scenario_hw_missing, "ipc": 1.1, "llc_miss_rate": 0.2,
          "hw_valid": 1, "audit_violations": 0}, True),
        ("nonzero audit_violations must be rejected",
         {**fault_ok, "audit_violations": 3}, False),
        ("audit_violations as bool must be rejected",
         {**fault_ok, "audit_violations": False}, False),
    ]
    failures = 0
    for desc, row, should_pass in cases:
        errors = []
        check_row(row, "self-test", errors, {})
        passed = not errors
        if passed != should_pass:
            failures += 1
            print(f"check_bench_jsonl: self-test FAIL: {desc} "
                  f"(expected {'pass' if should_pass else 'fail'}, "
                  f"errors={errors})", file=sys.stderr)
    if failures:
        return 1
    print(f"check_bench_jsonl: self-test OK — {len(cases)} cases")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="JSONL artifacts to validate")
    ap.add_argument("--require-kind", action="append", default=[],
                    metavar="KIND",
                    help="fail unless at least one row of KIND exists "
                         "(scenario, phase, mem_sample, sharded, shard, "
                         "kv, resize, fault, pressure, latency, net, conn, "
                         "micro, workload); "
                         "repeatable")
    ap.add_argument("--min-rows", type=int, default=1, metavar="N",
                    help="fail any file with fewer than N rows (default 1: "
                         "an empty artifact is a failure, not a pass)")
    ap.add_argument("--summary", action="store_true",
                    help="print per-kind row counts on success")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checker's own regression cases and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.files:
        ap.error("no input files (or pass --self-test)")

    errors = []
    kind_counts = {}
    total_rows = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            errors.append(f"{path}: unreadable: {e}")
            continue
        rows = 0
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            where = f"{path}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{where}: invalid JSON: {e}")
                continue
            rows += 1
            check_row(row, where, errors, kind_counts)
        if rows < args.min_rows:
            errors.append(
                f"{path}: only {rows} row(s), expected >= {args.min_rows} "
                "(empty artifacts previously passed CI silently)")
        total_rows += rows

    for kind in args.require_kind:
        if kind_counts.get(kind, 0) == 0:
            errors.append(
                f"required kind '{kind}' absent from all inputs "
                f"(saw: {sorted(kind_counts) or 'nothing'})")

    if errors:
        for e in errors[:50]:
            print(f"check_bench_jsonl: {e}", file=sys.stderr)
        if len(errors) > 50:
            print(f"check_bench_jsonl: ... and {len(errors) - 50} more",
                  file=sys.stderr)
        return 1

    if args.summary:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(kind_counts.items()))
        print(f"check_bench_jsonl: OK — {total_rows} rows ({counts})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
